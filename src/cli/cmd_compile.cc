// crnc compile: materialize a workload as .crn text — the bridge between
// the registry's compilers and anything that consumes the text format
// (files round-trip through crn::from_text / crn::to_text). --bimolecular
// additionally lowers reactions to order <= 2 (footnote 5), producing a
// population-protocol-ready network.
#include <fstream>
#include <ostream>

#include "cli/commands.h"
#include "cli/workload.h"
#include "crn/bimolecular.h"
#include "crn/io.h"
#include "util/json_writer.h"

namespace crnkit::cli {

int cmd_compile(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const bool bimolecular = args.take_flag("bimolecular");
  const auto out_path = args.take_option("out");
  const auto target = args.take_positional();
  args.finish();
  if (!target) {
    throw std::invalid_argument("compile needs a scenario or file");
  }

  Workload workload = load_workload(*target);
  crn::Crn network = std::move(workload.scenario.crn);
  if (bimolecular) network = crn::to_bimolecular(network);
  const std::string text = crn::to_text(network);

  if (out_path) {
    std::ofstream file(*out_path);
    if (!file) {
      throw std::invalid_argument("cannot write '" + *out_path + "'");
    }
    file << text;
  }

  if (json) {
    util::JsonWriter w;
    w.begin_object()
        .kv("name", network.name())
        .kv("species", network.species_count())
        .kv("reactions", network.reactions().size())
        .kv("bimolecular", bimolecular)
        .kv("out", out_path ? *out_path : "")
        .kv("crn_text", text)
        .end_object();
    out << w.str() << "\n";
  } else if (out_path) {
    out << "wrote " << *out_path << " (" << network.species_count()
        << " species, " << network.reactions().size() << " reactions)\n";
  } else {
    out << text;
  }
  return 0;
}

}  // namespace crnkit::cli
