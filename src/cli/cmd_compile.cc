// crnc compile: materialize a workload as .crn text — the bridge between
// the registry's compilers and anything that consumes the text format
// (files round-trip through crn::from_text / crn::to_text). --bimolecular
// additionally lowers reactions to order <= 2 (footnote 5), producing a
// population-protocol-ready network. Runs through svc::Service; the --out
// file write is a CLI-only capability (the daemon never parses it).
#include <ostream>

#include "cli/commands.h"
#include "svc/serialize.h"
#include "svc/service.h"

namespace crnkit::cli {

int cmd_compile(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const bool bimolecular = args.take_flag("bimolecular");
  const auto out_path = args.take_option("out");
  const auto target = args.take_positional();
  args.finish();
  if (!target) {
    throw std::invalid_argument("compile needs a scenario or file");
  }

  svc::CompileRequest request;
  request.target = *target;
  request.bimolecular = bimolecular;
  request.out_path = out_path.value_or("");
  svc::Service service;
  const svc::CompileResponse response = service.compile(request);

  if (json) {
    out << svc::to_json(response) << "\n";
  } else if (!response.out.empty()) {
    out << "wrote " << response.out << " (" << response.species
        << " species, " << response.reactions << " reactions)\n";
  } else {
    out << response.crn_text;
  }
  return 0;
}

}  // namespace crnkit::cli
