// crnc show: full metadata for one workload — roles, obliviousness, the
// verify points with expected outputs, and the CRN in .crn text form.
#include <ostream>

#include "cli/commands.h"
#include "cli/workload.h"
#include "crn/bimolecular.h"
#include "crn/checks.h"
#include "crn/io.h"
#include "util/json_writer.h"

namespace crnkit::cli {

int cmd_show(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const auto target = args.take_positional();
  args.finish();
  if (!target) throw std::invalid_argument("show needs a scenario or file");

  const Workload workload = load_workload(*target);
  const scenario::Scenario& s = workload.scenario;
  const std::vector<math::Int> expected = s.expected_outputs();

  if (json) {
    util::JsonWriter w;
    w.begin_object()
        .kv("name", s.name)
        .kv("title", s.title)
        .kv("paper_ref", s.paper_ref)
        .kv("from_registry", workload.from_registry)
        .key("tags")
        .begin_array();
    for (const std::string& t : s.tags) w.value(t);
    w.end_array()
        .kv("species", s.crn.species_count())
        .kv("reactions", s.crn.reactions().size())
        .kv("arity", s.crn.input_arity())
        .kv("leader", s.crn.leader().has_value())
        .kv("output_oblivious", crn::is_output_oblivious(s.crn))
        .kv("output_monotonic", crn::is_output_monotonic(s.crn))
        .kv("max_reaction_order",
            static_cast<std::int64_t>(crn::max_reaction_order(s.crn)))
        .kv("reference", s.reference ? s.reference->name() : "");
    if (!s.unverifiable_reason.empty()) {
      w.kv("unverifiable_reason", s.unverifiable_reason);
    }
    w.key("verify_points").begin_array();
    for (std::size_t i = 0; i < s.verify_points.size(); ++i) {
      w.begin_object().kv("x",
                          scenario::point_to_string(s.verify_points[i]));
      if (s.reference) {
        w.kv("expected", static_cast<std::int64_t>(expected[i]));
      }
      w.end_object();
    }
    w.end_array()
        .kv("sim_input", scenario::point_to_string(s.sim_input))
        .kv("crn_text", crn::to_text(s.crn))
        .end_object();
    out << w.str() << "\n";
    return 0;
  }

  out << s.name << " — " << s.title << "\n";
  if (!s.paper_ref.empty()) out << "paper:      " << s.paper_ref << "\n";
  if (!s.tags.empty()) out << "tags:       " << join(s.tags, ", ") << "\n";
  out << "species:    " << s.crn.species_count() << "\n";
  out << "reactions:  " << s.crn.reactions().size() << "\n";
  out << "arity:      " << s.crn.input_arity() << "\n";
  out << "leader:     " << (s.crn.leader() ? "yes" : "no") << "\n";
  out << "oblivious:  "
      << (crn::is_output_oblivious(s.crn) ? "yes" : "no") << "\n";
  if (s.reference) out << "reference:  " << s.reference->name() << "\n";
  if (!s.unverifiable_reason.empty()) {
    out << "unverifiable: " << s.unverifiable_reason << "\n";
  }
  if (!s.verify_points.empty()) {
    out << "verify:     " << s.verify_points.size() << " points, x = "
        << scenario::point_to_string(s.verify_points.front()) << " .. "
        << scenario::point_to_string(s.verify_points.back()) << "\n";
  }
  out << "sim input:  " << scenario::point_to_string(s.sim_input) << "\n";
  out << "\n" << crn::to_text(s.crn);
  return 0;
}

}  // namespace crnkit::cli
