// crnc show: full metadata for one workload — roles, obliviousness, the
// verify points with expected outputs, and the CRN in .crn text form —
// fetched through svc::Service.
#include <ostream>

#include "cli/commands.h"
#include "svc/serialize.h"
#include "svc/service.h"

namespace crnkit::cli {

int cmd_show(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const auto target = args.take_positional();
  args.finish();
  if (!target) throw std::invalid_argument("show needs a scenario or file");

  svc::ShowRequest request;
  request.target = *target;
  svc::Service service;
  const svc::ShowResponse response = service.show(request);
  const svc::ScenarioSummary& s = response.summary;

  if (json) {
    out << svc::to_json(response) << "\n";
    return 0;
  }

  out << s.name << " — " << s.title << "\n";
  if (!s.paper_ref.empty()) out << "paper:      " << s.paper_ref << "\n";
  if (!s.tags.empty()) out << "tags:       " << join(s.tags, ", ") << "\n";
  out << "species:    " << s.species << "\n";
  out << "reactions:  " << s.reactions << "\n";
  out << "arity:      " << s.arity << "\n";
  out << "leader:     " << (s.leader ? "yes" : "no") << "\n";
  out << "oblivious:  " << (s.output_oblivious ? "yes" : "no") << "\n";
  if (!response.reference.empty()) {
    out << "reference:  " << response.reference << "\n";
  }
  if (!s.unverifiable_reason.empty()) {
    out << "unverifiable: " << s.unverifiable_reason << "\n";
  }
  if (!response.verify_points.empty()) {
    out << "verify:     " << response.verify_points.size()
        << " points, x = " << response.verify_points.front().x << " .. "
        << response.verify_points.back().x << "\n";
  }
  out << "sim input:  " << s.sim_input << "\n";
  out << "\n" << response.crn_text;
  return 0;
}

}  // namespace crnkit::cli
