#include "cli/args.h"

#include <stdexcept>

#include "cli/commands.h"
#include "obs/trace.h"

namespace crnkit::cli {

ScopedTrace::ScopedTrace(Args& args) {
  path_ = args.take_option("trace").value_or("");
  if (!path_.empty()) obs::Tracer::start();
}

ScopedTrace::~ScopedTrace() {
  if (path_.empty()) return;
  obs::Tracer::stop();
  try {
    obs::Tracer::write_chrome_json(path_);
  } catch (const std::exception&) {
    // A failed trace write must not flip the command's exit code.
  }
}

namespace {

bool is_flag(const std::string& arg) {
  return arg.size() >= 3 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

bool Args::take_flag(const std::string& name) {
  const std::string wanted = "--" + name;
  for (auto it = argv_.begin(); it != argv_.end(); ++it) {
    if (*it == wanted) {
      argv_.erase(it);
      return true;
    }
  }
  return false;
}

std::optional<std::string> Args::take_option(const std::string& name) {
  const std::string wanted = "--" + name;
  const std::string prefix = wanted + "=";
  for (auto it = argv_.begin(); it != argv_.end(); ++it) {
    if (it->rfind(prefix, 0) == 0) {
      std::string value = it->substr(prefix.size());
      argv_.erase(it);
      return value;
    }
    if (*it == wanted) {
      const auto value_it = it + 1;
      if (value_it == argv_.end() || is_flag(*value_it)) {
        throw std::invalid_argument("flag '" + wanted + "' needs a value");
      }
      std::string value = *value_it;
      argv_.erase(it, value_it + 1);
      return value;
    }
  }
  return std::nullopt;
}

std::int64_t Args::take_int(const std::string& name, std::int64_t fallback) {
  const auto text = take_option(name);
  if (!text) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(*text, &used);
    if (used != text->size() || v < 0) throw std::invalid_argument("");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag '--" + name +
                                "' needs a nonnegative integer, got '" +
                                *text + "'");
  }
}

std::optional<std::string> Args::take_positional() {
  for (auto it = argv_.begin(); it != argv_.end(); ++it) {
    if (!is_flag(*it)) {
      std::string value = *it;
      argv_.erase(it);
      return value;
    }
  }
  return std::nullopt;
}

void Args::finish() const {
  if (argv_.empty()) return;
  throw std::invalid_argument("unrecognized argument '" + argv_.front() +
                              "'");
}

}  // namespace crnkit::cli
