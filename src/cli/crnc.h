// The crnc driver: one binary that lists, shows, compiles, simulates,
// verifies, and benchmarks any CRN workload — a registry scenario or a
// `.crn` file. tools/crnc_main.cc is a thin wrapper; tests call run_crnc
// directly with captured streams.
#ifndef CRNKIT_CLI_CRNC_H_
#define CRNKIT_CLI_CRNC_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace crnkit::cli {

/// Runs `crnc <subcommand> ...` on an argument list (argv without the
/// program name). Returns the process exit status: 0 success, 1 a check
/// or simulation disagreed, 2 usage error.
int run_crnc(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

}  // namespace crnkit::cli

#endif  // CRNKIT_CLI_CRNC_H_
