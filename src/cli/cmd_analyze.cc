// crnc analyze: the static CRN analyzer (src/lint) over one workload or
// the whole registry (--all). Prints conservation laws with their integer
// certificates, the Lemma 2.3 composability screen, and severity-typed
// diagnostics; with an input point available it also derives the invariant
// guide (per-species bounds, reachable-set bound, "x1 + y = 5"
// certificates) that invariant-guided verification feeds the explorer.
// Exit is non-zero iff a scenario NOT tagged unverifiable has an
// error-severity finding — the registry-wide static gate.
#include <fstream>
#include <ostream>

#include "cli/commands.h"
#include "lint/diagnostics.h"
#include "svc/serialize.h"
#include "svc/service.h"

namespace crnkit::cli {

namespace {

void print_report(std::ostream& out, const svc::AnalyzeScenarioReport& r) {
  out << lint::render_text(r.report);
  if (r.unverifiable) {
    out << "tagged unverifiable: error findings are expected here\n";
  }
  if (!r.input.empty()) {
    out << "invariant guide at x = (" << r.input << "):\n";
    for (const std::string& cert : r.certificates) {
      out << "  " << cert << "\n";
    }
    if (r.reachable_bound >= 0) {
      out << "  reachable configurations <= " << r.reachable_bound << "\n";
    } else {
      out << "  reachable-set bound: none (some species unbounded)\n";
    }
  }
}

}  // namespace

int cmd_analyze(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");

  svc::AnalyzeRequest request;
  request.all = args.take_flag("all");
  request.input = args.take_option("input");
  const std::string out_path = args.take_option("out").value_or("");
  const auto target = args.take_positional();
  args.finish();
  if (!request.all) {
    if (!target) {
      throw std::invalid_argument(
          "analyze needs a scenario or file (or --all)");
    }
    request.target = *target;
  }

  svc::Service service;
  const svc::AnalyzeResponse response = service.analyze(request);
  const std::string rendered = svc::to_json(response);

  if (!out_path.empty()) {
    std::ofstream file(out_path);
    if (!file) {
      throw std::invalid_argument("cannot write '" + out_path + "'");
    }
    file << rendered << "\n";
  }

  if (json) {
    out << rendered << "\n";
    return response.ok ? 0 : 1;
  }

  for (std::size_t i = 0; i < response.reports.size(); ++i) {
    if (i > 0) out << "\n";
    print_report(out, response.reports[i]);
  }
  out << "\n"
      << response.reports.size() << " network(s) analyzed: "
      << response.errors << " error(s) in verifiable scenarios, "
      << response.warnings << " warning(s)\n";
  return response.ok ? 0 : 1;
}

}  // namespace crnkit::cli
