// crnc simulate: batched stochastic simulation of a workload on the
// EnsembleRunner — one compile, N seeded trajectories across threads,
// bit-identical results for a fixed seed at any thread count. When the
// workload carries a reference function, silent trajectories are checked
// against it and a mismatch fails the run (exit 1).
#include <ostream>

#include "cli/commands.h"
#include "cli/workload.h"
#include "sim/ensemble.h"
#include "util/json_writer.h"

namespace crnkit::cli {

int cmd_simulate(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const auto input_text = args.take_option("input");
  sim::EnsembleOptions options;
  options.trajectories =
      static_cast<int>(args.take_int("trajectories", 16));
  options.seed = static_cast<std::uint64_t>(args.take_int("seed", 1));
  options.threads = static_cast<int>(args.take_int("threads", 0));
  options.max_steps = static_cast<std::uint64_t>(
      args.take_int("max-steps", static_cast<std::int64_t>(options.max_steps)));
  options.max_events = static_cast<std::uint64_t>(args.take_int(
      "max-events", static_cast<std::int64_t>(options.max_events)));
  const std::string method_name =
      args.take_option("method").value_or("direct");
  options.method = parse_ensemble_method(method_name);
  const auto target = args.take_positional();
  args.finish();
  if (!target) {
    throw std::invalid_argument("simulate needs a scenario or file");
  }

  const Workload workload = load_workload(*target);
  const scenario::Scenario& s = workload.scenario;
  const fn::Point x = input_text ? scenario::point_from_string(*input_text)
                                 : s.sim_input;

  const sim::EnsembleRunner runner(s.crn);
  const sim::EnsembleResult result = runner.run_for_input(x, options);

  const bool all_silent =
      result.silent_count == static_cast<int>(result.trajectories.size());
  // Only silent trajectories have settled: with none, output_consistent is
  // vacuously true and no comparison against the reference happened.
  const bool compared = result.silent_count > 0;
  bool ok = result.output_consistent;
  math::Int expected = 0;
  const bool has_expected = s.reference.has_value();
  if (has_expected) {
    expected = (*s.reference)(x);
    // A consistent silent output that disagrees with the reference is a
    // genuine failure.
    if (compared && result.output_consistent && result.output != expected) {
      ok = false;
    }
  }

  if (json) {
    util::JsonWriter w;
    w.begin_object()
        .kv("scenario", s.name)
        .kv("input", scenario::point_to_string(x))
        .kv("method", method_name)
        .kv("trajectories",
            static_cast<std::int64_t>(result.trajectories.size()))
        .kv("threads", options.threads)
        .kv("seed", options.seed)
        .kv("silent", result.silent_count)
        .kv("total_events", result.total_events)
        .kv_fixed("wall_seconds", result.wall_seconds, 6)
        .kv_fixed("events_per_sec", result.events_per_second(), 1)
        .kv("output_consistent", result.output_consistent)
        .kv("compared", compared)
        .kv("output", static_cast<std::int64_t>(result.output));
    if (has_expected) {
      w.kv("expected", static_cast<std::int64_t>(expected));
    }
    w.kv("ok", ok).end_object();
    out << w.str() << "\n";
  } else {
    out << s.name << " on x = (" << scenario::point_to_string(x) << "), "
        << result.trajectories.size() << " trajectories, method "
        << method_name << ":\n";
    out << result.summary() << "\n";
    if (!all_silent) {
      out << "note: " << result.trajectories.size() - result.silent_count
          << " trajectories hit the event budget before silence\n";
    }
    if (has_expected) {
      if (!compared) {
        out << "expected " << expected
            << ": inconclusive (no trajectory reached silence)\n";
      } else {
        out << "expected " << expected << ": "
            << (ok ? "agrees" : "MISMATCH") << "\n";
      }
    }
  }
  return ok ? 0 : 1;
}

}  // namespace crnkit::cli
