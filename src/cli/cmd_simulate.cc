// crnc simulate: batched stochastic simulation of a workload on the
// EnsembleRunner — one compile, N seeded trajectories across threads,
// bit-identical results for a fixed seed at any thread count. When the
// workload carries a reference function, silent trajectories are checked
// against it and a mismatch fails the run (exit 1). Runs through
// svc::Service.
#include <ostream>

#include "cli/commands.h"
#include "svc/serialize.h"
#include "svc/service.h"

namespace crnkit::cli {

int cmd_simulate(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  ScopedTrace trace(args);

  svc::SimulateRequest request;
  request.input = args.take_option("input");
  request.trajectories = static_cast<int>(args.take_int("trajectories", 16));
  request.seed = static_cast<std::uint64_t>(args.take_int("seed", 1));
  request.threads = static_cast<int>(args.take_int("threads", 0));
  request.max_steps =
      static_cast<std::uint64_t>(args.take_int("max-steps", 5'000'000));
  request.max_events =
      static_cast<std::uint64_t>(args.take_int("max-events", 10'000'000));
  request.method = args.take_option("method").value_or("direct");
  request.deadline_ms = args.take_int("deadline-ms", 0);
  const auto target = args.take_positional();
  args.finish();
  if (!target) {
    throw std::invalid_argument("simulate needs a scenario or file");
  }
  request.target = *target;

  svc::Service service;
  const svc::SimulateResponse response = service.simulate(request);

  if (json) {
    out << svc::to_json(response) << "\n";
  } else {
    out << response.scenario << " on x = (" << response.input << "), "
        << response.trajectories << " trajectories, method "
        << response.method << ":\n";
    out << response.summary << "\n";
    if (response.deadline_exceeded) {
      out << "note: deadline exceeded — " << response.cancelled
          << " trajectories were skipped\n";
    }
    if (!response.all_silent) {
      out << "note: "
          << response.trajectories - static_cast<std::size_t>(response.silent)
          << " trajectories hit the event budget before silence\n";
    }
    if (response.has_expected) {
      if (!response.compared) {
        out << "expected " << response.expected
            << ": inconclusive (no trajectory reached silence)\n";
      } else {
        out << "expected " << response.expected << ": "
            << (response.ok ? "agrees" : "MISMATCH") << "\n";
      }
    }
  }
  return response.ok ? 0 : 1;
}

}  // namespace crnkit::cli
