// crnc verify: exact stable-computation checking (the SCC-condensation
// decision procedure of verify/stable.h) over a workload's curated verify
// points, a `--grid N` sweep, or a single `--input`, through svc::Service
// and its content-addressed proof cache. Every point must be proved (ok
// and complete exploration) for exit 0. Scenarios tagged "unverifiable"
// are skipped with their recorded reason unless --force. --no-cache
// bypasses the proof cache entirely.
#include <cstdio>
#include <ostream>

#include "cli/commands.h"
#include "svc/serialize.h"
#include "svc/service.h"

namespace crnkit::cli {

int cmd_verify(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  ScopedTrace trace(args);

  svc::VerifyRequest request;
  request.force = args.take_flag("force");
  request.stats = args.take_flag("stats");
  request.use_cache = !args.take_flag("no-cache");
  request.use_invariants = !args.take_flag("no-invariants");
  request.grid = args.take_option("grid");
  request.input = args.take_option("input");
  request.expect = args.take_option("expect");
  request.max_configs =
      static_cast<std::size_t>(args.take_int("max-configs", 0));
  request.threads = static_cast<int>(args.take_int("threads", 1));
  request.deadline_ms = args.take_int("deadline-ms", 0);
  request.checkpoint_path = args.take_option("checkpoint").value_or("");
  if (const auto every = args.take_option("checkpoint-every-secs")) {
    request.checkpoint_every_secs = std::stod(*every);
  }
  request.resume = args.take_flag("resume");
  if (request.resume && request.checkpoint_path.empty()) {
    throw std::invalid_argument("verify: --resume needs --checkpoint FILE");
  }
  // Out-of-core knobs are service options, not request fields: the
  // memory budget + spill directory form the service's degradation
  // ladder (exact in RAM -> exact spilled -> truncated `degraded`), and
  // the daemon takes the same pair via `crnc serve`.
  svc::Service::Options service_options;
  service_options.memory_budget_bytes =
      static_cast<std::size_t>(args.take_int("memory-budget-mb", 0)) << 20;
  service_options.spill_dir = args.take_option("spill-dir").value_or("");
  if (!service_options.spill_dir.empty() &&
      service_options.memory_budget_bytes == 0) {
    throw std::invalid_argument(
        "verify: --spill-dir needs --memory-budget-mb N (spilling starts "
        "when resident bytes exceed the budget)");
  }
  const auto target = args.take_positional();
  args.finish();
  if (!target) throw std::invalid_argument("verify needs a scenario or file");
  request.target = *target;

  svc::Service service(service_options);
  const svc::VerifyResponse response = service.verify(request);

  if (json) {
    out << svc::to_json(response) << "\n";
    return response.ok ? 0 : 1;
  }

  if (response.skipped) {
    out << response.scenario << ": skipped (unverifiable): "
        << response.reason << "\n";
    return 0;
  }

  std::vector<std::vector<std::string>> rows;
  for (const svc::VerifyPointReport& p : response.points) {
    rows.push_back({p.x, std::to_string(p.expected), p.status,
                    std::to_string(p.configs)});
  }
  print_table(out, {"x", "expected", "status", "configs"}, rows);
  out << "\n"
      << response.scenario << ": " << response.proved << "/"
      << response.points.size() << " points proved";
  if (response.failed > 0) out << ", " << response.failed << " FAILED";
  if (response.inconclusive > 0) {
    out << ", " << response.inconclusive
        << " inconclusive (raise --max-configs)";
  }
  if (response.deadline_exceeded > 0) {
    out << ", " << response.deadline_exceeded
        << " deadline_exceeded (raise --deadline-ms)";
  }
  if (response.spilled) out << ", spilled (exact, out-of-core)";
  if (response.degraded) out << ", degraded (budget clamped max-configs)";
  out << "\n";
  if (request.stats) {
    const double total_rate =
        response.total_seconds > 0.0
            ? static_cast<double>(response.total_configs) /
                  response.total_seconds
            : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "stats: %zu configs, %zu edges in %.3fs (%.0f "
                  "configs/sec), frontier peak %zu, arena %.1f MiB\n",
                  response.total_configs, response.total_edges,
                  response.total_seconds, total_rate, response.frontier_peak,
                  static_cast<double>(response.arena_bytes_peak) /
                      (1024.0 * 1024.0));
    out << line;
    std::snprintf(
        line, sizeof(line),
        "pool:  %llu tasks, %llu steals, %llu parks (park ratio %.3f)\n",
        static_cast<unsigned long long>(response.pool_tasks),
        static_cast<unsigned long long>(response.pool_steals),
        static_cast<unsigned long long>(response.pool_parks),
        response.pool_tasks > 0
            ? static_cast<double>(response.pool_parks) /
                  static_cast<double>(response.pool_tasks)
            : 0.0);
    out << line;
    if (response.spilled) {
      std::snprintf(line, sizeof(line),
                    "spill: %.1f MiB written, %.1f MiB faulted back\n",
                    static_cast<double>(response.spill_bytes_written) /
                        (1024.0 * 1024.0),
                    static_cast<double>(response.spill_bytes_read) /
                        (1024.0 * 1024.0));
      out << line;
    }
  }
  return response.ok ? 0 : 1;
}

}  // namespace crnkit::cli
