// crnc verify: exact stable-computation checking (the SCC-condensation
// decision procedure of verify/stable.h) over a workload's curated verify
// points, a `--grid N` sweep, or a single `--input`. Every point must be
// proved (ok and complete exploration) for exit 0. Scenarios tagged
// "unverifiable" are skipped with their recorded reason unless --force.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>

#include "cli/commands.h"
#include "cli/workload.h"
#include "scenario/scenario.h"
#include "util/json_writer.h"
#include "verify/stable.h"

namespace crnkit::cli {

int cmd_verify(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const bool force = args.take_flag("force");
  const bool stats = args.take_flag("stats");
  const auto grid = args.take_option("grid");
  const auto input_text = args.take_option("input");
  const auto expect_text = args.take_option("expect");
  const std::int64_t max_configs_flag = args.take_int("max-configs", 0);
  const std::int64_t threads_flag = args.take_int("threads", 1);
  const auto target = args.take_positional();
  args.finish();
  if (!target) throw std::invalid_argument("verify needs a scenario or file");

  const Workload workload = load_workload(*target);
  const scenario::Scenario& s = workload.scenario;

  if (s.unverifiable() && !force) {
    if (json) {
      util::JsonWriter w;
      w.begin_object()
          .kv("scenario", s.name)
          .kv("skipped", true)
          .kv("reason", s.unverifiable_reason)
          .kv("ok", true)
          .end_object();
      out << w.str() << "\n";
    } else {
      out << s.name << ": skipped (unverifiable): " << s.unverifiable_reason
          << "\n";
    }
    return 0;
  }

  // Resolve the points to check and their expected outputs.
  std::vector<fn::Point> points;
  std::vector<math::Int> expected;
  if (input_text) {
    points.push_back(scenario::point_from_string(*input_text));
    if (expect_text) {
      expected.push_back(
          scenario::point_from_string(*expect_text).front());
    } else if (s.reference) {
      expected.push_back((*s.reference)(points.front()));
    } else {
      throw std::invalid_argument(
          "file workloads have no reference function; pass --expect V");
    }
  } else {
    if (!s.reference) {
      throw std::invalid_argument(
          "file workloads have no reference function; pass --input and "
          "--expect");
    }
    if (grid) {
      const math::Int m = scenario::point_from_string(*grid).front();
      points = scenario::grid_points(s.crn.input_arity(), m);
    } else {
      points = s.verify_points;
    }
    for (const fn::Point& x : points) expected.push_back((*s.reference)(x));
  }
  if (points.empty()) {
    throw std::invalid_argument("no verify points for '" + s.name + "'");
  }

  verify::StableCheckOptions options;
  if (max_configs_flag > 0) {
    options.max_configs = static_cast<std::size_t>(max_configs_flag);
  } else if (s.verify_max_configs > 0) {
    options.max_configs = s.verify_max_configs;
  }
  options.threads = static_cast<int>(threads_flag);

  int proved = 0;
  int failed = 0;
  int inconclusive = 0;
  std::size_t max_explored = 0;
  std::size_t total_configs = 0;
  std::size_t total_edges = 0;
  double total_seconds = 0.0;
  std::size_t frontier_peak = 0;
  std::size_t arena_bytes_peak = 0;
  std::uint64_t pool_tasks = 0;
  std::uint64_t pool_steals = 0;
  std::uint64_t pool_parks = 0;
  int threads_resolved = options.threads;  // explore() reports the real count
  util::JsonWriter w;
  std::vector<std::vector<std::string>> rows;
  if (json) {
    w.begin_object()
        .kv("scenario", s.name)
        .kv("max_configs", options.max_configs)
        .key("points")
        .begin_array();
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto result =
        verify::check_stable_computation(s.crn, points[i], expected[i],
                                         options);
    const bool proof = result.ok && result.complete;
    if (proof) {
      ++proved;
    } else if (!result.complete) {
      ++inconclusive;
    } else {
      ++failed;
    }
    max_explored = std::max(max_explored, result.num_configs);
    total_configs += result.num_configs;
    total_edges += result.num_edges;
    total_seconds += result.explore_stats.wall_seconds;
    frontier_peak =
        std::max(frontier_peak, result.explore_stats.frontier_peak);
    arena_bytes_peak =
        std::max(arena_bytes_peak, result.explore_stats.arena_bytes);
    pool_tasks += result.explore_stats.pool_tasks;
    pool_steals += result.explore_stats.pool_steals;
    pool_parks += result.explore_stats.pool_parks;
    threads_resolved = result.explore_stats.threads;
    const std::string status = proof          ? "proved"
                               : result.complete ? "FAILED"
                                                 : "inconclusive";
    if (json) {
      w.begin_object()
          .kv("x", scenario::point_to_string(points[i]))
          .kv("expected", static_cast<std::int64_t>(expected[i]))
          .kv("ok", result.ok)
          .kv("complete", result.complete)
          .kv("configs", result.num_configs)
          .kv("status", status);
      if (stats) {
        const double secs = result.explore_stats.wall_seconds;
        w.kv("edges", result.num_edges)
            .kv_fixed("wall_seconds", secs, 6)
            .kv_fixed("configs_per_sec",
                      secs > 0.0
                          ? static_cast<double>(result.num_configs) / secs
                          : 0.0,
                      1)
            .kv("frontier_peak", result.explore_stats.frontier_peak)
            .kv("arena_bytes", result.explore_stats.arena_bytes);
      }
      w.end_object();
    } else {
      rows.push_back({scenario::point_to_string(points[i]),
                      std::to_string(expected[i]), status,
                      std::to_string(result.num_configs)});
    }
  }

  const bool all_ok = failed == 0 && inconclusive == 0;
  const double total_rate =
      total_seconds > 0.0 ? static_cast<double>(total_configs) / total_seconds
                          : 0.0;
  if (json) {
    w.end_array()
        .kv("proved", proved)
        .kv("failed", failed)
        .kv("inconclusive", inconclusive)
        .kv("max_configs_explored", max_explored);
    if (stats) {
      w.key("stats")
          .begin_object()
          .kv("threads", threads_resolved)
          .kv("configs", total_configs)
          .kv("edges", total_edges)
          .kv_fixed("wall_seconds", total_seconds, 6)
          .kv_fixed("configs_per_sec", total_rate, 1)
          .kv("frontier_peak", frontier_peak)
          .kv("arena_bytes", arena_bytes_peak)
          .key("pool")
          .begin_object()
          .kv("tasks", pool_tasks)
          .kv("steals", pool_steals)
          .kv("parks", pool_parks)
          .kv_fixed("park_ratio",
                    pool_tasks > 0
                        ? static_cast<double>(pool_parks) /
                              static_cast<double>(pool_tasks)
                        : 0.0,
                    3)
          .end_object()
          .end_object();
    }
    w.kv("ok", all_ok).end_object();
    out << w.str() << "\n";
  } else {
    print_table(out, {"x", "expected", "status", "configs"}, rows);
    out << "\n"
        << s.name << ": " << proved << "/" << points.size()
        << " points proved";
    if (failed > 0) out << ", " << failed << " FAILED";
    if (inconclusive > 0) {
      out << ", " << inconclusive
          << " inconclusive (raise --max-configs)";
    }
    out << "\n";
    if (stats) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "stats: %zu configs, %zu edges in %.3fs (%.0f "
                    "configs/sec), frontier peak %zu, arena %.1f MiB\n",
                    total_configs, total_edges, total_seconds, total_rate,
                    frontier_peak,
                    static_cast<double>(arena_bytes_peak) / (1024.0 * 1024.0));
      out << line;
      std::snprintf(
          line, sizeof(line),
          "pool:  %llu tasks, %llu steals, %llu parks (park ratio %.3f)\n",
          static_cast<unsigned long long>(pool_tasks),
          static_cast<unsigned long long>(pool_steals),
          static_cast<unsigned long long>(pool_parks),
          pool_tasks > 0 ? static_cast<double>(pool_parks) /
                               static_cast<double>(pool_tasks)
                         : 0.0);
      out << line;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace crnkit::cli
