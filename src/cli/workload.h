// Target resolution shared by the crnc subcommands: a target is either a
// registry scenario name ("fig1/min") or a path to a `.crn` text file.
// File workloads come back as anonymous scenarios (no reference function,
// no curated verify points) so every command downstream handles one type.
#ifndef CRNKIT_CLI_WORKLOAD_H_
#define CRNKIT_CLI_WORKLOAD_H_

#include <string>

#include "scenario/registry.h"

namespace crnkit::cli {

struct Workload {
  scenario::Scenario scenario;
  bool from_registry = false;
};

/// Resolves `target` against the registry first, then the filesystem.
/// Throws std::invalid_argument (with suggestions) when it is neither.
[[nodiscard]] Workload load_workload(const std::string& target,
                                     const scenario::Registry& registry =
                                         scenario::Registry::builtin());

}  // namespace crnkit::cli

#endif  // CRNKIT_CLI_WORKLOAD_H_
