// Tiny flag parser for the crnc subcommands. A subcommand take()s the
// flags it knows — `--name value`, `--name=value`, boolean `--name` — and
// positional operands, then calls finish(), which rejects anything left
// over with a precise message. No global flag table: each command's
// parsing is local to the command.
#ifndef CRNKIT_CLI_ARGS_H_
#define CRNKIT_CLI_ARGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace crnkit::cli {

class Args {
 public:
  explicit Args(std::vector<std::string> argv) : argv_(std::move(argv)) {}

  /// Consumes boolean `--name`; true iff present.
  bool take_flag(const std::string& name);

  /// Consumes `--name value` or `--name=value`; throws
  /// std::invalid_argument when the flag is present without a value.
  std::optional<std::string> take_option(const std::string& name);

  /// take_option parsed as a nonnegative integer, with a default.
  std::int64_t take_int(const std::string& name, std::int64_t fallback);

  /// Consumes the first remaining argument that is not a flag.
  std::optional<std::string> take_positional();

  /// Throws std::invalid_argument if any argument was not consumed.
  void finish() const;

 private:
  std::vector<std::string> argv_;
};

}  // namespace crnkit::cli

#endif  // CRNKIT_CLI_ARGS_H_
