// The crnc subcommand entry points. Each takes the already-sliced
// argument list (subcommand name removed) and the output stream; usage
// errors are thrown as std::invalid_argument and mapped to exit code 2 by
// run_crnc, while check failures return 1 directly.
#ifndef CRNKIT_CLI_COMMANDS_H_
#define CRNKIT_CLI_COMMANDS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "cli/args.h"

namespace crnkit::cli {

/// Shared `--trace FILE` handling for the workload commands: consumes the
/// flag, enables obs::Tracer for the command's duration, and writes the
/// Chrome trace JSON on destruction (after the command body has run). A
/// command without --trace constructs and destroys this for free.
class ScopedTrace {
 public:
  explicit ScopedTrace(Args& args);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  std::string path_;
};

int cmd_analyze(Args& args, std::ostream& out);
int cmd_list(Args& args, std::ostream& out);
int cmd_show(Args& args, std::ostream& out);
int cmd_compile(Args& args, std::ostream& out);
int cmd_compose(Args& args, std::ostream& out);
int cmd_simulate(Args& args, std::ostream& out);
int cmd_verify(Args& args, std::ostream& out);
int cmd_bench(Args& args, std::ostream& out);
int cmd_serve(Args& args, std::ostream& out);

/// Fixed-width human table: header then rows, column widths fitted to the
/// widest cell.
void print_table(std::ostream& out,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// Renders a tag list as "a,b,c".
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& separator);

}  // namespace crnkit::cli

#endif  // CRNKIT_CLI_COMMANDS_H_
