// crnc list: catalog the scenario registry. Human table by default,
// `--json` for machines, `--markdown` for the README's catalog section,
// `--tag TAG` to filter.
#include <algorithm>
#include <ostream>

#include "cli/commands.h"
#include "crn/checks.h"
#include "scenario/registry.h"
#include "util/json_writer.h"

namespace crnkit::cli {

int cmd_list(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const bool markdown = args.take_flag("markdown");
  const auto tag = args.take_option("tag");
  args.finish();

  std::vector<scenario::Scenario> scenarios =
      scenario::Registry::builtin().build_all();
  if (tag) {
    scenarios.erase(
        std::remove_if(scenarios.begin(), scenarios.end(),
                       [&](const scenario::Scenario& s) {
                         return !s.has_tag(*tag);
                       }),
        scenarios.end());
  }

  if (json) {
    util::JsonWriter w;
    w.begin_object().key("scenarios").begin_array();
    for (const scenario::Scenario& s : scenarios) {
      w.begin_object()
          .kv("name", s.name)
          .kv("title", s.title)
          .kv("paper_ref", s.paper_ref)
          .key("tags")
          .begin_array();
      for (const std::string& t : s.tags) w.value(t);
      w.end_array()
          .kv("species", s.crn.species_count())
          .kv("reactions", s.crn.reactions().size())
          .kv("arity", s.crn.input_arity())
          .kv("leader", s.crn.leader().has_value())
          .kv("output_oblivious", crn::is_output_oblivious(s.crn))
          .kv("verify_points", s.verify_points.size())
          .kv("sim_input", scenario::point_to_string(s.sim_input));
      if (!s.unverifiable_reason.empty()) {
        w.kv("unverifiable_reason", s.unverifiable_reason);
      }
      w.end_object();
    }
    w.end_array().kv("count", scenarios.size()).end_object();
    out << w.str() << "\n";
    return 0;
  }

  if (markdown) {
    out << "| Scenario | Paper | Species | Reactions | Tags | Description "
           "|\n";
    out << "| --- | --- | ---: | ---: | --- | --- |\n";
    for (const scenario::Scenario& s : scenarios) {
      out << "| `" << s.name << "` | " << s.paper_ref << " | "
          << s.crn.species_count() << " | " << s.crn.reactions().size()
          << " | " << join(s.tags, ", ") << " | " << s.title << " |\n";
    }
    return 0;
  }

  std::vector<std::vector<std::string>> rows;
  for (const scenario::Scenario& s : scenarios) {
    rows.push_back({s.name, std::to_string(s.crn.species_count()),
                    std::to_string(s.crn.reactions().size()),
                    std::to_string(s.crn.input_arity()),
                    s.crn.leader() ? "yes" : "no",
                    crn::is_output_oblivious(s.crn) ? "yes" : "no",
                    join(s.tags, ","), s.paper_ref});
  }
  print_table(out, {"scenario", "species", "rxns", "arity", "leader",
                    "oblivious", "tags", "paper"},
              rows);
  out << "\n" << scenarios.size() << " scenarios\n";
  return 0;
}

}  // namespace crnkit::cli
