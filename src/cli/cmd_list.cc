// crnc list: catalog the scenario registry through svc::Service. Human
// table by default, `--json` for machines (the versioned service schema),
// `--markdown` for the README's catalog section, `--tag TAG` to filter.
#include <ostream>

#include "cli/commands.h"
#include "svc/serialize.h"
#include "svc/service.h"

namespace crnkit::cli {

int cmd_list(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const bool markdown = args.take_flag("markdown");
  const auto tag = args.take_option("tag");
  args.finish();

  svc::ListRequest request;
  request.tag = tag;
  svc::Service service;
  const svc::ListResponse response = service.list(request);

  if (json) {
    out << svc::to_json(response) << "\n";
    return 0;
  }

  if (markdown) {
    out << "| Scenario | Paper | Species | Reactions | Tags | Description "
           "|\n";
    out << "| --- | --- | ---: | ---: | --- | --- |\n";
    for (const svc::ScenarioSummary& s : response.scenarios) {
      out << "| `" << s.name << "` | " << s.paper_ref << " | " << s.species
          << " | " << s.reactions << " | " << join(s.tags, ", ") << " | "
          << s.title << " |\n";
    }
    return 0;
  }

  std::vector<std::vector<std::string>> rows;
  for (const svc::ScenarioSummary& s : response.scenarios) {
    rows.push_back({s.name, std::to_string(s.species),
                    std::to_string(s.reactions), std::to_string(s.arity),
                    s.leader ? "yes" : "no",
                    s.output_oblivious ? "yes" : "no", join(s.tags, ","),
                    s.paper_ref});
  }
  print_table(out, {"scenario", "species", "rxns", "arity", "leader",
                    "oblivious", "tags", "paper"},
              rows);
  out << "\n" << response.scenarios.size() << " scenarios\n";
  return 0;
}

}  // namespace crnkit::cli
