#include "cli/crnc.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "cli/commands.h"
#include "util/version.h"

namespace crnkit::cli {

namespace {

constexpr const char* kUsage =
    R"(crnc — compile, verify, simulate, and benchmark CRN workloads

usage: crnc <command> [args]

commands:
  list                        catalog the registered scenarios
      [--json | --markdown] [--tag TAG]
  show <scenario|file.crn>    metadata, verify points, and the CRN text
      [--json]
  compile <scenario|file.crn> emit the network in .crn text form
      [--out FILE] [--bimolecular] [--json]
  compose <expr|file.wire|circuit/random-N-S>
                              certify (Lemma 2.3), compile, and optimize a
                              feed-forward circuit of oblivious modules
      [--out FILE] [--no-opt] [--skip-cert] [--cert-grid N]
      [--verify [--grid N] [--max-configs N]]
      [--simcheck [--trials N] [--max-steps N] [--seed S]]
      [--threads T] [--json] [--trace out.json]
  simulate <scenario|file.crn> batched stochastic simulation (ensemble)
      [--input X1,X2,...] [--trajectories N] [--seed S] [--threads T]
      [--method silent|direct|next-reaction|population]
      [--max-steps N] [--max-events N] [--deadline-ms N]
      [--json] [--trace out.json]
  analyze <scenario|file.crn> static analysis: conservation laws with
                              integer certificates, composability screen
                              (Lemma 2.3), severity-typed diagnostics, and
                              the invariant guide fed to verification
      [--all] [--input X1,X2,...] [--out FILE] [--json]
  verify <scenario|file.crn>  exact stable-computation check
      [--grid N | --input X1,X2,... [--expect V]] [--max-configs N]
      [--threads T] [--stats] [--force] [--deadline-ms N]
      [--no-invariants] [--checkpoint FILE
      [--checkpoint-every-secs N] [--resume]]
      [--memory-budget-mb N [--spill-dir DIR]] [--json] [--trace out.json]
  bench <scenario|file.crn>   ensemble throughput measurement
      [--input X1,X2,...] [--trajectories N] [--events N] [--seed S]
      [--threads T] [--method ...] [--json]
  serve                       verification/simulation daemon: line-JSON or
                              HTTP/1.1 over TCP (auto-detected), answered
                              from a content-addressed proof cache
      [--host H] [--port P] [--cache-bytes N] [--cache-file FILE]
      [--cache-journal FILE] [--max-connections N] [--max-inflight N]
      [--retry-after-ms N] [--drain-grace-ms N] [--deadline-ms N]
      [--memory-budget-mb N [--spill-dir DIR]] [--faults SPEC]
      [--trace-dir DIR] [--log FILE]

Metrics are exposed by the daemon at GET /metrics (Prometheus text) and
the `metrics` line-JSON op; --trace writes Chrome trace_event JSON that
chrome://tracing and Perfetto load directly. `crnc --version` prints the
build identity.

A workload is a scenario name from `crnc list` (e.g. fig1/min) or a path
to a .crn text file (see src/crn/io.h for the format).
)";

}  // namespace

void print_table(std::ostream& out, const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c > 0 ? "  " : "") << std::left
          << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << "\n";
  };
  emit(header);
  std::vector<std::string> rule;
  rule.reserve(header.size());
  for (const std::size_t w : widths) rule.emplace_back(w, '-');
  emit(rule);
  for (const auto& row : rows) emit(row);
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

int run_crnc(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  if (args[0] == "--version" || args[0] == "version") {
    out << "crnc " << kVersion << " (" << kGitDescribe << ")\n";
    return 0;
  }

  const std::string command = args[0];
  Args rest(std::vector<std::string>(args.begin() + 1, args.end()));
  try {
    if (command == "analyze") return cmd_analyze(rest, out);
    if (command == "list") return cmd_list(rest, out);
    if (command == "show") return cmd_show(rest, out);
    if (command == "compile") return cmd_compile(rest, out);
    if (command == "compose") return cmd_compose(rest, out);
    if (command == "simulate") return cmd_simulate(rest, out);
    if (command == "verify") return cmd_verify(rest, out);
    if (command == "bench") return cmd_bench(rest, out);
    if (command == "serve") return cmd_serve(rest, out);
    err << "crnc: unknown command '" << command << "'\n\n" << kUsage;
    return 2;
  } catch (const std::invalid_argument& e) {
    err << "crnc " << command << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "crnc " << command << ": " << e.what() << "\n";
    return 1;
  }
}

}  // namespace crnkit::cli
