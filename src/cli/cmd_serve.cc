// crnc serve: run the verification/simulation daemon (svc::Server) over
// one shared svc::Service, so all connections hit the same
// content-addressed proof cache. --cache-file persists the cache across
// runs (loaded on start when present and valid — a stale or corrupt file
// is reported and ignored — and saved on clean shutdown). The process
// runs until SIGINT/SIGTERM, then drains connections and exits 0.
#include <csignal>
#include <fstream>
#include <ostream>

#include "cli/commands.h"
#include "obs/trace.h"
#include "svc/server.h"
#include "svc/service.h"
#include "util/fault_injector.h"

namespace crnkit::cli {

int cmd_serve(Args& args, std::ostream& out) {
  svc::Server::Options server_options;
  server_options.port = static_cast<int>(args.take_int("port", 7341));
  server_options.host = args.take_option("host").value_or("127.0.0.1");
  server_options.max_connections =
      static_cast<int>(args.take_int("max-connections", 0));
  server_options.max_inflight =
      static_cast<int>(args.take_int("max-inflight", 0));
  server_options.retry_after_ms =
      static_cast<int>(args.take_int("retry-after-ms", 250));
  server_options.drain_grace_ms =
      static_cast<int>(args.take_int("drain-grace-ms", 2000));
  svc::Service::Options service_options;
  service_options.cache.max_bytes = static_cast<std::size_t>(
      args.take_int("cache-bytes", 64ll << 20));
  service_options.default_deadline_ms = args.take_int("deadline-ms", 0);
  service_options.memory_budget_bytes = static_cast<std::size_t>(
      args.take_int("memory-budget-mb", 0)) << 20;
  // With a spill directory, over-budget verifies run out-of-core (exact,
  // marked `spilled`) instead of clamping to a `degraded` truncation.
  service_options.spill_dir = args.take_option("spill-dir").value_or("");
  const auto cache_file = args.take_option("cache-file");
  const auto cache_journal = args.take_option("cache-journal");
  const auto faults = args.take_option("faults");
  const auto trace_dir = args.take_option("trace-dir");
  const auto log_file = args.take_option("log");
  args.finish();

  if (faults) {
    // CLI equivalent of CRNKIT_FAULTS — see util/fault_injector.h for
    // the failpoint spec grammar.
    util::FaultInjector::instance().configure(*faults);
  }

  std::ofstream access_log;
  if (log_file) {
    access_log.open(*log_file, std::ios::app);
    if (!access_log) {
      throw std::invalid_argument("serve: cannot open log file '" +
                                  *log_file + "'");
    }
    server_options.access_log = &access_log;
  }
  if (trace_dir) obs::Tracer::start();

  svc::Service service(service_options);
  if (cache_file && std::ifstream(*cache_file).good()) {
    try {
      const std::size_t loaded = service.proof_cache().load(*cache_file);
      out << "crnc serve: loaded " << loaded << " cached proofs from "
          << *cache_file << "\n";
    } catch (const std::exception& e) {
      out << "crnc serve: ignoring cache file: " << e.what() << "\n";
    }
  }
  if (cache_journal) {
    // Replay first (verdicts that landed after the last snapshot), then
    // arm the journal for this run's inserts.
    const std::size_t replayed =
        service.proof_cache().replay_journal(*cache_journal);
    if (replayed > 0) {
      out << "crnc serve: replayed " << replayed
          << " journaled proofs from " << *cache_journal << "\n";
    }
    service.proof_cache().enable_journal(*cache_journal);
  }

  // Block the shutdown signals before spawning server threads (they
  // inherit the mask), then wait for one synchronously.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  svc::Server server(service, server_options);
  server.start();
  out << "crnc serve: listening on " << server_options.host << ":"
      << server.port() << " (line-JSON or HTTP/1.1, auto-detected)\n";
  out.flush();

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  out << "crnc serve: caught signal " << signal_number << ", draining\n";
  server.stop();

  if (trace_dir) {
    obs::Tracer::stop();
    const std::string trace_path = *trace_dir + "/serve_trace.json";
    try {
      obs::Tracer::write_chrome_json(trace_path);
      out << "crnc serve: wrote trace to " << trace_path << "\n";
    } catch (const std::exception& e) {
      out << "crnc serve: could not write trace: " << e.what() << "\n";
    }
  }

  const svc::Server::Stats stats = server.stats();
  const svc::ProofCache::Stats cache = service.proof_cache().stats();
  out << "crnc serve: " << stats.connections << " connections, "
      << stats.requests << " requests (" << stats.errors << " errors, "
      << stats.shed << " shed), cache " << cache.hits << " hits / "
      << cache.misses << " misses\n";
  if (cache_file) {
    try {
      service.proof_cache().save(*cache_file);
      out << "crnc serve: saved " << cache.entries << " cached proofs to "
          << *cache_file << "\n";
    } catch (const std::exception& e) {
      out << "crnc serve: could not save cache: " << e.what() << "\n";
    }
  }
  return 0;
}

}  // namespace crnkit::cli
