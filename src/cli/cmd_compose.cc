// crnc compose: the circuit composition pipeline, run through
// svc::Service (see svc/service_compose.cc for the pipeline itself:
// Lemma 2.3 certification, crn::Circuit compilation, the optimization
// passes, and the optional exact-verify / simcheck gates). This file only
// parses flags and renders the ComposeResponse.
#include <ostream>

#include "cli/commands.h"
#include "svc/serialize.h"
#include "svc/service.h"

namespace crnkit::cli {

int cmd_compose(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  ScopedTrace trace(args);

  svc::ComposeRequest request;
  request.no_opt = args.take_flag("no-opt");
  request.skip_cert = args.take_flag("skip-cert");
  request.do_verify = args.take_flag("verify");
  request.do_simcheck = args.take_flag("simcheck");
  request.use_cache = !args.take_flag("no-cache");
  request.out_path = args.take_option("out").value_or("");
  request.cert_grid = args.take_int("cert-grid", 2);
  request.grid = args.take_int("grid", 1);
  request.max_configs =
      static_cast<std::size_t>(args.take_int("max-configs", 0));
  request.trials = static_cast<int>(args.take_int("trials", 5));
  request.max_steps =
      static_cast<std::uint64_t>(args.take_int("max-steps", 5'000'000));
  request.seed = static_cast<std::uint64_t>(args.take_int("seed", 1));
  request.threads = static_cast<int>(args.take_int("threads", 1));
  const auto target = args.take_positional();
  args.finish();
  if (!target) {
    throw std::invalid_argument(
        "compose needs an expression, a .wire file, or a circuit scenario "
        "name");
  }
  request.target = *target;

  svc::Service service;
  const svc::ComposeResponse response = service.compose(request);

  if (json) {
    out << svc::to_json(response) << "\n";
    return response.ok ? 0 : 1;
  }

  out << response.name << ": " << response.modules << " module(s), arity "
      << response.arity;
  if (!response.expression.empty()) out << ", f = " << response.expression;
  out << "\n";
  for (const svc::ComposeCertRecord& c : response.certification) {
    out << "  " << c.module << ": " << c.detail << "\n";
  }

  if (!response.compiled) {
    out << response.name << ": certification FAILED — composition refused "
        << "(Lemma 2.3)\n";
    return 1;
  }

  out << "compiled: " << response.species_raw << " species, "
      << response.reactions_raw << " reactions";
  if (!request.no_opt) {
    out << " -> optimized: " << response.species << " species, "
        << response.reactions << " reactions";
  }
  out << "\n";
  std::vector<std::vector<std::string>> rows;
  for (const svc::ComposePassStat& p : response.passes) {
    if (!p.changed()) continue;
    rows.push_back({p.pass,
                    std::to_string(p.species_before) + " -> " +
                        std::to_string(p.species_after),
                    std::to_string(p.reactions_before) + " -> " +
                        std::to_string(p.reactions_after)});
  }
  if (!rows.empty()) {
    print_table(out, {"pass", "species", "reactions"}, rows);
  }

  if (!response.out.empty()) out << "wrote " << response.out << "\n";

  if (response.verify) {
    const svc::ComposeVerifySummary& v = *response.verify;
    out << "verify (exact, grid [0," << v.grid << "]^" << response.arity
        << "): " << v.proved << "/" << v.points << " proved";
    if (v.failed > 0) out << ", " << v.failed << " FAILED";
    if (v.inconclusive > 0) out << ", " << v.inconclusive << " inconclusive";
    out << "\n";
  }
  if (response.simcheck) {
    out << "simcheck: " << response.simcheck->summary << "\n";
  }
  if (response.verify || response.simcheck) {
    out << response.name << ": " << (response.ok ? "OK" : "CHECKS FAILED")
        << "\n";
  }
  return response.ok ? 0 : 1;
}

}  // namespace crnkit::cli
