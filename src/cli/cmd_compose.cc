// crnc compose: the circuit composition pipeline. A target — a function
// expression, a `.wire` wiring file over registry modules, or a
// `circuit/random-<n>-<seed>` family name — is certified module-by-module
// with Lemma 2.3 (strip-and-recheck; non-composable modules like fig1/max
// are rejected with the failing input), compiled through crn::Circuit into
// one flat network, shrunk by the optimization passes (crn/passes.h) with
// per-pass accounting, and optionally checked against the recorded
// reference function: exact stable-computation proof on a small grid,
// randomized simcheck beyond it.
#include <algorithm>
#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>
#include <tuple>

#include "cli/commands.h"
#include "cli/workload.h"
#include "compile/circuit_expr.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "crn/io.h"
#include "crn/passes.h"
#include "scenario/circuits.h"
#include "util/json_writer.h"
#include "verify/composability.h"
#include "verify/simcheck.h"
#include "verify/stable.h"

namespace crnkit::cli {

namespace {

/// One module headed into the circuit, with everything certification and
/// reporting need.
struct ComposeModule {
  std::string label;
  crn::Crn crn;
  std::optional<fn::DiscreteFunction> fn;
};

struct CertRecord {
  std::string module;
  bool oblivious = false;
  bool composable = false;
  int reactions_stripped = 0;
  std::string detail;
};

/// Lemma 2.3 certification of one module. Output-oblivious modules compose
/// by Observation 2.2. A non-oblivious module with a reference function
/// runs the strip-and-recheck experiment; when the stripped CRN still
/// computes f it is substituted (it is output-oblivious and computes the
/// same function), otherwise the module is rejected with the failing
/// input. Without a reference there is nothing to recheck against: reject.
CertRecord certify_module(ComposeModule& module, math::Int cert_grid) {
  CertRecord record;
  record.module = module.label;
  record.oblivious = crn::is_output_oblivious(module.crn);
  if (record.oblivious) {
    record.composable = true;
    record.detail = "output-oblivious (composable, Obs. 2.2)";
    return record;
  }
  const auto consuming = crn::find_output_consuming_reaction(module.crn);
  if (!module.fn || module.crn.input_arity() < 1) {
    record.detail = "not output-oblivious (" + consuming.value_or("") +
                    ") and no reference function to run the Lemma 2.3 "
                    "strip-and-recheck against";
    return record;
  }
  const auto report =
      verify::check_composability(module.crn, *module.fn, cert_grid);
  record.reactions_stripped = report.reactions_removed;
  record.composable = report.composable();
  if (report.composable()) {
    // The stripped CRN (C'_f of Lemma 2.3) computes the same function and
    // is output-oblivious: wire it instead.
    module.crn = verify::strip_output_consumers(module.crn);
    record.detail = "not output-oblivious, but the stripped CRN still "
                    "computes f on [0," +
                    std::to_string(cert_grid) +
                    "]^d; composed with " +
                    std::to_string(report.reactions_removed) +
                    " output-consuming reaction(s) stripped (Lemma 2.3)";
  } else {
    record.detail =
        "REJECTED (Lemma 2.3): consumes its output (" +
        consuming.value_or("") + ") and the stripped CRN no longer " +
        "computes f" +
        (report.failure.empty() ? std::string()
                                : "; first failure at " + report.failure) +
        " — not composable by concatenation";
  }
  return record;
}

/// Parses the `.wire` format:
///   circuit <name>
///   arity <k>
///   module <id> <registry-scenario-or-crn-file>
///   connect <x<i> | <id>> <id>.<port>     (ports 1-based)
///   output <x<i> | <id>>                  (repeatable: sum junction)
/// '#' comments and blank lines are ignored.
struct WireFile {
  std::string name = "circuit";
  int arity = 0;
  std::vector<std::pair<std::string, std::string>> modules;  // id -> target
  std::vector<std::tuple<std::string, std::string, int>> connects;
  std::vector<std::string> outputs;
};

WireFile parse_wire_file(const std::string& path, const std::string& text) {
  WireFile out;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument(path + ": line " +
                                std::to_string(line_number) + ": " + what);
  };
  while (std::getline(stream, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;
    if (keyword == "circuit") {
      if (!(words >> out.name)) fail("circuit needs a name");
    } else if (keyword == "arity") {
      if (!(words >> out.arity) || out.arity < 1) {
        fail("arity needs a positive integer");
      }
    } else if (keyword == "module") {
      std::string id;
      std::string target;
      if (!(words >> id >> target)) fail("module needs '<id> <target>'");
      // x<digits> names external inputs in wire sources; a module with
      // that id would be unreferenceable.
      if (id.size() >= 2 && id[0] == 'x' &&
          id.find_first_not_of("0123456789", 1) == std::string::npos) {
        fail("module id '" + id + "' is reserved for external inputs");
      }
      out.modules.emplace_back(id, target);
    } else if (keyword == "connect") {
      std::string source;
      std::string sink;
      if (!(words >> source >> sink)) {
        fail("connect needs '<source> <module>.<port>'");
      }
      const auto dot = sink.rfind('.');
      if (dot == std::string::npos) fail("connect sink needs '.<port>'");
      int port = 0;
      try {
        std::size_t used = 0;
        port = std::stoi(sink.substr(dot + 1), &used);
        if (used != sink.size() - dot - 1 || port < 1) throw std::exception();
      } catch (const std::exception&) {
        fail("bad port in '" + sink + "'");
      }
      out.connects.emplace_back(source, sink.substr(0, dot), port - 1);
    } else if (keyword == "output") {
      std::string source;
      if (!(words >> source)) fail("output needs a source");
      out.outputs.push_back(source);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (out.modules.empty()) {
    throw std::invalid_argument(path + ": no modules declared");
  }
  if (out.outputs.empty()) {
    throw std::invalid_argument(path + ": no output declared");
  }
  return out;
}

bool looks_like_wire_file(const std::string& target) {
  if (target.size() >= 5 &&
      target.compare(target.size() - 5, 5, ".wire") == 0) {
    return true;
  }
  return false;
}

}  // namespace

int cmd_compose(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const bool no_opt = args.take_flag("no-opt");
  const bool skip_cert = args.take_flag("skip-cert");
  const bool do_verify = args.take_flag("verify");
  const bool do_simcheck = args.take_flag("simcheck");
  const auto out_path = args.take_option("out");
  const std::int64_t cert_grid = args.take_int("cert-grid", 2);
  const std::int64_t grid = args.take_int("grid", 1);
  const std::int64_t max_configs = args.take_int("max-configs", 0);
  const std::int64_t trials = args.take_int("trials", 5);
  const std::int64_t max_steps = args.take_int("max-steps", 5'000'000);
  const std::int64_t seed = args.take_int("seed", 1);
  const std::int64_t threads = args.take_int("threads", 1);
  const auto target = args.take_positional();
  args.finish();
  if (!target) {
    throw std::invalid_argument(
        "compose needs an expression, a .wire file, or a circuit scenario "
        "name");
  }

  // --- resolve the target into modules + a wired circuit ---
  std::string name;
  std::string expression;  // rendered expression, when there is one
  std::vector<ComposeModule> modules;
  std::optional<fn::DiscreteFunction> reference;
  int arity = 1;
  // Deferred circuit construction: certification may substitute stripped
  // module CRNs, so the circuit is wired only after every module passed.
  std::function<crn::Crn()> build;

  if (looks_like_wire_file(*target)) {
    std::ifstream file(*target);
    if (!file) throw std::invalid_argument("cannot read '" + *target + "'");
    std::ostringstream contents;
    contents << file.rdbuf();
    const WireFile wire = parse_wire_file(*target, contents.str());
    name = wire.name;
    arity = std::max(1, wire.arity);
    std::vector<std::string> ids;
    for (const auto& [id, module_target] : wire.modules) {
      if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
        throw std::invalid_argument(*target + ": duplicate module id '" +
                                    id + "'");
      }
      ids.push_back(id);
      const Workload loaded = load_workload(module_target);
      ComposeModule m;
      m.label = id + " (" + module_target + ")";
      m.crn = loaded.scenario.crn;
      m.fn = loaded.scenario.reference;
      modules.push_back(std::move(m));
    }
    const auto wire_of = [ids, arity,
                          path = *target](const std::string& source) {
      if (source.size() >= 2 && source.size() <= 8 && source[0] == 'x') {
        bool digits = true;
        for (std::size_t i = 1; i < source.size(); ++i) {
          digits = digits && source[i] >= '0' && source[i] <= '9';
        }
        if (digits) {
          const int index = std::stoi(source.substr(1));
          require(index >= 1 && index <= arity,
                  path + ": input '" + source + "' out of range (arity " +
                      std::to_string(arity) + ")");
          return crn::Wire::external(index - 1);
        }
      }
      const auto it = std::find(ids.begin(), ids.end(), source);
      require(it != ids.end(),
              path + ": unknown wire source '" + source + "'");
      return crn::Wire::of_module(
          static_cast<int>(std::distance(ids.begin(), it)));
    };
    build = [&modules, wire, wire_of, name, arity]() {
      crn::Circuit circuit(arity, name);
      for (const ComposeModule& m : modules) {
        (void)circuit.add_module(m.crn);
      }
      for (const auto& [source, sink, port] : wire.connects) {
        const auto it = std::find_if(
            wire.modules.begin(), wire.modules.end(),
            [&sink = sink](const auto& m) { return m.first == sink; });
        require(it != wire.modules.end(),
                "unknown module '" + sink + "' in connect");
        circuit.connect(wire_of(source),
                        static_cast<int>(
                            std::distance(wire.modules.begin(), it)),
                        port);
      }
      for (const std::string& source : wire.outputs) {
        circuit.add_output(wire_of(source));
      }
      return circuit.compile();
    };
  } else {
    // circuit/random family name, or an inline expression.
    compile::CircuitExpr expr;
    if (const auto params = scenario::parse_random_circuit_name(*target)) {
      expr = compile::random_circuit_expr(params->modules, params->seed);
      name = *target;
    } else {
      expr = compile::parse_circuit_expr(*target);
      name = "compose";
    }
    expression = expr.to_string();
    arity = std::max(1, expr.arity());
    reference = expr.as_function(name);
    compile::LoweredCircuit lowered =
        compile::lower_circuit_expr(expr, name);
    for (compile::CircuitModule& m : lowered.modules) {
      modules.push_back(ComposeModule{std::move(m.label), std::move(m.crn),
                                      std::move(m.fn)});
    }
    crn::Crn compiled = std::move(lowered.crn);
    build = [compiled]() { return compiled; };
  }

  // --- Lemma 2.3 certification, module by module ---
  std::vector<CertRecord> certs;
  bool certified = true;
  if (!skip_cert) {
    for (ComposeModule& m : modules) {
      certs.push_back(certify_module(m, cert_grid));
      certified = certified && certs.back().composable;
      // Expression lowering only emits output-oblivious primitives (the
      // Circuit inside lower_circuit_expr already compiled them), so the
      // stripped-CRN substitution can never apply there — the deferred
      // `build` below would ignore it. Keep that assumption loud.
      ensure(expression.empty() || certs.back().oblivious,
             "compose: expression-lowered module '" + certs.back().module +
                 "' is not output-oblivious");
    }
  }

  util::JsonWriter w;
  if (json) {
    w.begin_object()
        .kv("target", *target)
        .kv("name", name)
        .kv("arity", arity)
        .kv("modules", modules.size());
    if (!expression.empty()) w.kv("expression", expression);
    w.key("certification").begin_array();
    for (const CertRecord& c : certs) {
      w.begin_object()
          .kv("module", c.module)
          .kv("oblivious", c.oblivious)
          .kv("composable", c.composable)
          .kv("reactions_stripped", c.reactions_stripped)
          .kv("detail", c.detail)
          .end_object();
    }
    w.end_array().kv("certified", certified);
  } else {
    out << name << ": " << modules.size() << " module(s), arity " << arity;
    if (!expression.empty()) out << ", f = " << expression;
    out << "\n";
    for (const CertRecord& c : certs) {
      out << "  " << c.module << ": " << c.detail << "\n";
    }
  }

  if (!certified) {
    if (json) {
      w.kv("ok", false).end_object();
      out << w.str() << "\n";
    } else {
      out << name << ": certification FAILED — composition refused "
          << "(Lemma 2.3)\n";
    }
    return 1;
  }

  // --- compile and optimize ---
  const crn::Crn raw = build();
  crn::PassOptions pass_options;
  pass_options.fuse_duplicates = pass_options.dead_species =
      pass_options.collapse_chains = pass_options.renumber = !no_opt;
  crn::PassPipelineResult optimized = crn::optimize(raw, pass_options);
  const crn::Crn& network = optimized.crn;

  if (json) {
    w.kv("species_raw", raw.species_count())
        .kv("reactions_raw", raw.reactions().size())
        .key("passes")
        .begin_array();
    for (const crn::PassStats& p : optimized.passes) {
      w.begin_object()
          .kv("pass", p.pass)
          .kv("species_before", p.species_before)
          .kv("species_after", p.species_after)
          .kv("reactions_before", p.reactions_before)
          .kv("reactions_after", p.reactions_after)
          .end_object();
    }
    w.end_array()
        .kv("species", network.species_count())
        .kv("reactions", network.reactions().size());
  } else {
    out << "compiled: " << raw.species_count() << " species, "
        << raw.reactions().size() << " reactions";
    if (!no_opt) {
      out << " -> optimized: " << network.species_count() << " species, "
          << network.reactions().size() << " reactions";
    }
    out << "\n";
    std::vector<std::vector<std::string>> rows;
    for (const crn::PassStats& p : optimized.passes) {
      if (!p.changed()) continue;
      rows.push_back({p.pass,
                      std::to_string(p.species_before) + " -> " +
                          std::to_string(p.species_after),
                      std::to_string(p.reactions_before) + " -> " +
                          std::to_string(p.reactions_after)});
    }
    if (!rows.empty()) {
      print_table(out, {"pass", "species", "reactions"}, rows);
    }
  }

  if (out_path) {
    std::ofstream file(*out_path);
    if (!file) throw std::invalid_argument("cannot write '" + *out_path + "'");
    file << crn::to_text(network);
    if (!json) out << "wrote " << *out_path << "\n";
  }

  bool checks_ok = true;

  // --- exact verification on the small grid ---
  if (do_verify) {
    require(reference.has_value(),
            "--verify needs a reference function (expression or "
            "circuit/random targets)");
    verify::StableCheckOptions options;
    if (max_configs > 0) {
      options.max_configs = static_cast<std::size_t>(max_configs);
    }
    options.threads = static_cast<int>(threads);
    int proved = 0;
    int failed = 0;
    int inconclusive = 0;
    const auto points = scenario::grid_points(arity, grid);
    for (const fn::Point& x : points) {
      const auto result = verify::check_stable_computation(
          network, x, (*reference)(x), options);
      if (result.ok && result.complete) {
        ++proved;
      } else if (!result.complete) {
        ++inconclusive;
      } else {
        ++failed;
      }
    }
    checks_ok = checks_ok && failed == 0 && inconclusive == 0;
    if (json) {
      w.key("verify")
          .begin_object()
          .kv("grid", grid)
          .kv("points", points.size())
          .kv("proved", proved)
          .kv("failed", failed)
          .kv("inconclusive", inconclusive)
          .end_object();
    } else {
      out << "verify (exact, grid [0," << grid << "]^" << arity
          << "): " << proved << "/" << points.size() << " proved";
      if (failed > 0) out << ", " << failed << " FAILED";
      if (inconclusive > 0) out << ", " << inconclusive << " inconclusive";
      out << "\n";
    }
  }

  // --- randomized check beyond the exact grid ---
  if (do_simcheck) {
    require(reference.has_value(),
            "--simcheck needs a reference function (expression or "
            "circuit/random targets)");
    verify::SimCheckOptions options;
    options.trials_per_point = static_cast<int>(trials);
    options.max_steps = static_cast<std::uint64_t>(max_steps);
    options.seed = static_cast<std::uint64_t>(seed);
    options.threads = static_cast<int>(threads);
    std::vector<fn::Point> points = scenario::grid_points(arity, grid + 2);
    points.push_back(fn::Point(static_cast<std::size_t>(arity), 7));
    fn::Point mixed;
    for (int i = 0; i < arity; ++i) mixed.push_back(3 + 5 * (i % 2));
    points.push_back(mixed);
    const auto result =
        verify::sim_check_points(network, *reference, points, options);
    checks_ok = checks_ok && result.verdict() ==
                                 verify::SimCheckResult::Verdict::kPass;
    if (json) {
      w.key("simcheck")
          .begin_object()
          .kv("points", points.size())
          .kv("trials", result.trials)
          .kv("silent_trials", result.silent_trials)
          .kv("non_silent_trials", result.non_silent_trials)
          .kv("mismatches", result.mismatches)
          .kv("inconclusive_points", result.inconclusive_points)
          .kv("verdict", result.verdict_name())
          .end_object();
    } else {
      out << "simcheck: " << result.summary() << "\n";
    }
  }

  if (json) {
    w.kv("ok", checks_ok).end_object();
    out << w.str() << "\n";
  } else if (do_verify || do_simcheck) {
    out << name << ": " << (checks_ok ? "OK" : "CHECKS FAILED") << "\n";
  }
  return checks_ok ? 0 : 1;
}

}  // namespace crnkit::cli
