// crnc bench: ensemble throughput measurement for a workload — one
// compile, a trajectory batch under a fixed event budget, aggregate
// events/sec. The JSON record shape matches the bench tables'
// BENCH_*.json (name, events_per_sec, wall_seconds, events) so CI can
// diff CLI-driven numbers against the bench binaries'.
#include <algorithm>
#include <cstdio>
#include <ostream>

#include "cli/commands.h"
#include "cli/workload.h"
#include "sim/ensemble.h"
#include "util/json_writer.h"

namespace crnkit::cli {

int cmd_bench(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");
  const auto input_text = args.take_option("input");
  const int trajectories =
      static_cast<int>(args.take_int("trajectories", 8));
  const std::uint64_t event_budget =
      static_cast<std::uint64_t>(args.take_int("events", 400'000));
  sim::EnsembleOptions options;
  options.trajectories = trajectories;
  options.seed = static_cast<std::uint64_t>(args.take_int("seed", 12345));
  options.threads = static_cast<int>(args.take_int("threads", 0));
  const std::string method_name =
      args.take_option("method").value_or("direct");
  options.method = parse_ensemble_method(method_name);
  // Split the budget across trajectories so the batch measures the same
  // amount of work regardless of the batch size.
  const std::uint64_t per_trajectory =
      std::max<std::uint64_t>(1, event_budget /
                                     static_cast<std::uint64_t>(
                                         std::max(1, trajectories)));
  options.max_events = per_trajectory;
  options.max_steps = per_trajectory;
  options.max_interactions = per_trajectory;
  const auto target = args.take_positional();
  args.finish();
  if (!target) throw std::invalid_argument("bench needs a scenario or file");

  const Workload workload = load_workload(*target);
  const scenario::Scenario& s = workload.scenario;
  const fn::Point x = input_text ? scenario::point_from_string(*input_text)
                                 : s.sim_input;

  const sim::EnsembleRunner runner(s.crn);
  const sim::EnsembleResult result = runner.run_for_input(x, options);

  if (json) {
    util::JsonWriter w;
    w.begin_object()
        .kv("name", s.name)
        .kv("input", scenario::point_to_string(x))
        .kv("method", method_name)
        .kv("trajectories", trajectories)
        .kv("species", s.crn.species_count())
        .kv("reactions", s.crn.reactions().size())
        .kv_fixed("events_per_sec", result.events_per_second(), 1)
        .kv_fixed("wall_seconds", result.wall_seconds, 6)
        .kv("events", result.total_events)
        .end_object();
    out << w.str() << "\n";
  } else {
    out << s.name << " on x = (" << scenario::point_to_string(x) << "): "
        << result.total_events << " events in " << result.wall_seconds
        << " s across " << trajectories << " trajectories (" << method_name
        << ")\n";
    char rate[64];
    std::snprintf(rate, sizeof(rate), "%.0f", result.events_per_second());
    out << "throughput: " << rate << " events/sec\n";
  }
  return 0;
}

}  // namespace crnkit::cli
