// crnc bench: ensemble throughput measurement for a workload — one
// compile, a trajectory batch under a fixed event budget, aggregate
// events/sec. The JSON record shape matches the bench tables'
// BENCH_*.json (name, events_per_sec, wall_seconds, events) so CI can
// diff CLI-driven numbers against the bench binaries'. Runs through
// svc::Service.
#include <cstdio>
#include <ostream>

#include "cli/commands.h"
#include "svc/serialize.h"
#include "svc/service.h"

namespace crnkit::cli {

int cmd_bench(Args& args, std::ostream& out) {
  const bool json = args.take_flag("json");

  svc::BenchRequest request;
  request.input = args.take_option("input");
  request.trajectories = static_cast<int>(args.take_int("trajectories", 8));
  request.events = static_cast<std::uint64_t>(args.take_int("events",
                                                            400'000));
  request.seed = static_cast<std::uint64_t>(args.take_int("seed", 12345));
  request.threads = static_cast<int>(args.take_int("threads", 0));
  request.method = args.take_option("method").value_or("direct");
  const auto target = args.take_positional();
  args.finish();
  if (!target) throw std::invalid_argument("bench needs a scenario or file");
  request.target = *target;

  svc::Service service;
  const svc::BenchResponse response = service.bench(request);

  if (json) {
    out << svc::to_json(response) << "\n";
  } else {
    out << response.name << " on x = (" << response.input << "): "
        << response.events << " events in " << response.wall_seconds
        << " s across " << response.trajectories << " trajectories ("
        << response.method << ")\n";
    char rate[64];
    std::snprintf(rate, sizeof(rate), "%.0f", response.events_per_sec);
    out << "throughput: " << rate << " events/sec\n";
  }
  return 0;
}

}  // namespace crnkit::cli
