#include "cont/scaling.h"

#include <cmath>

#include "math/check.h"

namespace crnkit::cont {

using math::Rational;
using math::RatVec;

PiecewiseLinearMin::PiecewiseLinearMin(std::vector<RatVec> gradients)
    : gradients_(std::move(gradients)) {
  require(!gradients_.empty(), "PiecewiseLinearMin: no gradients");
  for (const auto& g : gradients_) {
    require(g.size() == gradients_.front().size(),
            "PiecewiseLinearMin: mixed dimensions");
  }
}

Rational PiecewiseLinearMin::operator()(const RatVec& z) const {
  Rational best = math::dot(gradients_.front(), z);
  for (std::size_t k = 1; k < gradients_.size(); ++k) {
    const Rational v = math::dot(gradients_[k], z);
    if (v < best) best = v;
  }
  return best;
}

bool PiecewiseLinearMin::check_superadditive_on(
    const std::vector<RatVec>& points) const {
  for (const auto& a : points) {
    for (const auto& b : points) {
      const Rational lhs = (*this)(a) + (*this)(b);
      if (lhs > (*this)(math::add(a, b))) return false;
    }
  }
  return true;
}

RatVec scaling_of(const fn::QuiltAffine& g) { return g.gradient(); }

PiecewiseLinearMin scaling_of(const fn::MinOfQuiltAffine& m) {
  std::vector<RatVec> gradients;
  gradients.reserve(m.parts().size());
  for (const auto& g : m.parts()) gradients.push_back(g.gradient());
  return PiecewiseLinearMin(std::move(gradients));
}

double scaling_estimate(const fn::DiscreteFunction& f,
                        const std::vector<double>& z, double c) {
  require(static_cast<int>(z.size()) == f.dimension(),
          "scaling_estimate: dimension mismatch");
  require(c > 0, "scaling_estimate: scale must be positive");
  fn::Point x(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    require(z[i] >= 0, "scaling_estimate: negative coordinate");
    x[i] = static_cast<math::Int>(std::floor(c * z[i]));
  }
  return static_cast<double>(f(x)) / c;
}

std::vector<double> scaling_estimates(const fn::DiscreteFunction& f,
                                      const std::vector<double>& z, double c0,
                                      int count) {
  std::vector<double> out;
  double c = c0;
  for (int i = 0; i < count; ++i) {
    out.push_back(scaling_estimate(f, z, c));
    c *= 2.0;
  }
  return out;
}

}  // namespace crnkit::cont
