// The function class of Chalk-Kornerup-Reeves-Soloveichik [9] (the paper's
// continuous counterpart, Section 8): fhat : R^d_{>=0} -> R_{>=0} is
// obliviously-computable by a continuous CRN iff it is superadditive,
// positive-continuous, and piecewise rational-linear.
//
// InfinityScaling materializes the scaling of a discrete obliviously-
// computable function as one min-of-linear per face D_S = {z : z_i = 0 iff
// i in S} (the proof of Theorem 8.2 derives the face data from fixed-input
// restrictions), and the checkers sample-verify the three class properties.
#ifndef CRNKIT_CONT_CONTINUOUS_CLASS_H_
#define CRNKIT_CONT_CONTINUOUS_CLASS_H_

#include <map>
#include <optional>
#include <vector>

#include "cont/scaling.h"

namespace crnkit::cont {

/// A positive-continuous piecewise rational-linear function presented per
/// face: for each subset S of zeroed coordinates (bitmask), the min of
/// linear functionals governing D_S.
class InfinityScaling {
 public:
  explicit InfinityScaling(int dimension);

  /// Sets the min-of-linear data for the face with zero set `mask`
  /// (bit i set means z_i = 0 on this face).
  void set_face(unsigned mask, PiecewiseLinearMin face);

  [[nodiscard]] int dimension() const { return d_; }

  /// Face mask of a point: bit i set iff z_i == 0.
  [[nodiscard]] unsigned face_of(const math::RatVec& z) const;

  /// Exact evaluation; throws if the point's face was never set.
  [[nodiscard]] math::Rational operator()(const math::RatVec& z) const;

  /// Superadditivity fhat(a) + fhat(b) <= fhat(a+b) on all pairs from
  /// `points`; returns a violating pair if any.
  [[nodiscard]] std::optional<std::pair<math::RatVec, math::RatVec>>
  find_superadditivity_violation(const std::vector<math::RatVec>& points)
      const;

 private:
  int d_;
  std::map<unsigned, PiecewiseLinearMin> faces_;
};

}  // namespace crnkit::cont

#endif  // CRNKIT_CONT_CONTINUOUS_CLASS_H_
