// Deterministic mass-action semantics for continuous CRNs: the ODE
//   dc/dt = sum_j k_j (prod_s c_s^{r_{j,s}}) (P_j - R_j)
// integrated with classic fixed-step RK4. Used to demonstrate the
// continuous side of Section 8 (e.g. X1 + X2 -> Y drives Y to
// min(x1, x2) as t -> infinity in the continuous model).
#ifndef CRNKIT_CONT_ODE_H_
#define CRNKIT_CONT_ODE_H_

#include <vector>

#include "crn/network.h"

namespace crnkit::cont {

/// Real-valued concentrations indexed by SpeciesId.
using Concentrations = std::vector<double>;

struct OdeOptions {
  double dt = 1e-3;
  double t_end = 50.0;
  /// Per-reaction rate constants; empty means all 1.0.
  std::vector<double> rates;
};

/// The mass-action drift at state c.
[[nodiscard]] Concentrations mass_action_drift(const crn::Crn& crn,
                                               const Concentrations& c,
                                               const std::vector<double>&
                                                   rates);

/// Integrates the mass-action ODE from `initial` with RK4; concentrations
/// are clamped at 0 to absorb integration error near the boundary.
[[nodiscard]] Concentrations integrate_mass_action(
    const crn::Crn& crn, const Concentrations& initial,
    const OdeOptions& options = {});

}  // namespace crnkit::cont

#endif  // CRNKIT_CONT_ODE_H_
