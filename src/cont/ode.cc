#include "cont/ode.h"

#include <cmath>

#include "math/check.h"

namespace crnkit::cont {

Concentrations mass_action_drift(const crn::Crn& crn, const Concentrations& c,
                                 const std::vector<double>& rates) {
  Concentrations drift(c.size(), 0.0);
  for (std::size_t j = 0; j < crn.reactions().size(); ++j) {
    const crn::Reaction& r = crn.reactions()[j];
    double flux = rates.empty() ? 1.0 : rates[j];
    for (const crn::Term& t : r.reactants()) {
      flux *= std::pow(std::max(c[static_cast<std::size_t>(t.species)], 0.0),
                       static_cast<double>(t.count));
    }
    if (flux == 0.0) continue;
    for (const crn::Term& t : r.reactants()) {
      drift[static_cast<std::size_t>(t.species)] -=
          flux * static_cast<double>(t.count);
    }
    for (const crn::Term& t : r.products()) {
      drift[static_cast<std::size_t>(t.species)] +=
          flux * static_cast<double>(t.count);
    }
  }
  return drift;
}

Concentrations integrate_mass_action(const crn::Crn& crn,
                                     const Concentrations& initial,
                                     const OdeOptions& options) {
  require(initial.size() == crn.species_count(),
          "integrate_mass_action: state size mismatch");
  require(options.rates.empty() ||
              options.rates.size() == crn.reactions().size(),
          "integrate_mass_action: rates size mismatch");
  require(options.dt > 0 && options.t_end > 0,
          "integrate_mass_action: bad time parameters");

  Concentrations c = initial;
  const std::size_t n = c.size();
  const auto steps = static_cast<std::size_t>(options.t_end / options.dt);
  Concentrations k1, k2, k3, k4, tmp(n);
  for (std::size_t step = 0; step < steps; ++step) {
    k1 = mass_action_drift(crn, c, options.rates);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = c[i] + 0.5 * options.dt * k1[i];
    k2 = mass_action_drift(crn, tmp, options.rates);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = c[i] + 0.5 * options.dt * k2[i];
    k3 = mass_action_drift(crn, tmp, options.rates);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = c[i] + options.dt * k3[i];
    k4 = mass_action_drift(crn, tmp, options.rates);
    for (std::size_t i = 0; i < n; ++i) {
      c[i] += options.dt / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
      if (c[i] < 0.0) c[i] = 0.0;
    }
  }
  return c;
}

}  // namespace crnkit::cont
