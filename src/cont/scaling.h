// The infinity-scaling of Definition 8.1 and the discrete-to-continuous
// bridge of Theorem 8.2.
//
// For quilt-affine g, the scaling lim_c g(floor(cz))/c is exactly the linear
// functional grad_g . z (the periodic offset washes out); for an eventually-
// min-of-quilt-affine f the scaling on the positive orthant is the min of
// the part gradients. This module provides both the exact scaled objects
// and numeric estimators from the black box, so Theorem 8.2 can be checked
// computationally.
#ifndef CRNKIT_CONT_SCALING_H_
#define CRNKIT_CONT_SCALING_H_

#include <vector>

#include "fn/quilt_affine.h"

namespace crnkit::cont {

/// min_k (gradient_k . z) over R^d_{>=0}: the scaling limit of a min of
/// quilt-affine functions on the positive orthant (Equation (4) of the
/// paper's proof of Theorem 8.2).
class PiecewiseLinearMin {
 public:
  explicit PiecewiseLinearMin(std::vector<math::RatVec> gradients);

  [[nodiscard]] int dimension() const {
    return static_cast<int>(gradients_.front().size());
  }
  [[nodiscard]] const std::vector<math::RatVec>& gradients() const {
    return gradients_;
  }

  /// Exact evaluation at a rational point.
  [[nodiscard]] math::Rational operator()(const math::RatVec& z) const;

  /// True iff superadditive: for positively-homogeneous min-of-linear
  /// functions this always holds; exposed for test cross-checks on sampled
  /// pairs.
  [[nodiscard]] bool check_superadditive_on(
      const std::vector<math::RatVec>& points) const;

 private:
  std::vector<math::RatVec> gradients_;
};

/// The exact scaling of one quilt-affine function: its gradient.
[[nodiscard]] math::RatVec scaling_of(const fn::QuiltAffine& g);

/// The exact scaling of a min of quilt-affine functions on R^d_{>0}.
[[nodiscard]] PiecewiseLinearMin scaling_of(const fn::MinOfQuiltAffine& m);

/// Numeric estimate f(floor(c z)) / c of the scaling of a black box.
[[nodiscard]] double scaling_estimate(const fn::DiscreteFunction& f,
                                      const std::vector<double>& z, double c);

/// Sequence of estimates at c, 2c, 4c, ... (length `count`), for observing
/// the convergence in Definition 8.1.
[[nodiscard]] std::vector<double> scaling_estimates(
    const fn::DiscreteFunction& f, const std::vector<double>& z,
    double c0, int count);

}  // namespace crnkit::cont

#endif  // CRNKIT_CONT_SCALING_H_
