#include "cont/continuous_class.h"

#include "math/check.h"

namespace crnkit::cont {

using math::Rational;
using math::RatVec;

InfinityScaling::InfinityScaling(int dimension) : d_(dimension) {
  require(d_ >= 1 && d_ <= 31, "InfinityScaling: dimension out of range");
}

void InfinityScaling::set_face(unsigned mask, PiecewiseLinearMin face) {
  require(mask < (1u << d_), "InfinityScaling::set_face: bad mask");
  require(face.dimension() == d_,
          "InfinityScaling::set_face: face dimension mismatch");
  faces_.emplace(mask, std::move(face));
}

unsigned InfinityScaling::face_of(const RatVec& z) const {
  require(static_cast<int>(z.size()) == d_,
          "InfinityScaling::face_of: dimension mismatch");
  unsigned mask = 0;
  for (int i = 0; i < d_; ++i) {
    require(!z[static_cast<std::size_t>(i)].is_negative(),
            "InfinityScaling: negative coordinate");
    if (z[static_cast<std::size_t>(i)].is_zero()) mask |= (1u << i);
  }
  return mask;
}

Rational InfinityScaling::operator()(const RatVec& z) const {
  const unsigned mask = face_of(z);
  const auto it = faces_.find(mask);
  require(it != faces_.end(),
          "InfinityScaling: face " + std::to_string(mask) + " not defined");
  return it->second(z);
}

std::optional<std::pair<RatVec, RatVec>>
InfinityScaling::find_superadditivity_violation(
    const std::vector<RatVec>& points) const {
  for (const auto& a : points) {
    for (const auto& b : points) {
      if ((*this)(a) + (*this)(b) > (*this)(math::add(a, b))) {
        return std::make_pair(a, b);
      }
    }
  }
  return std::nullopt;
}

}  // namespace crnkit::cont
