#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/json_writer.h"
#include "util/task_pool.h"

namespace crnkit::obs {

namespace internal {

namespace {
/// Stable small shard index per thread; threads land on distinct cells
/// until the shard count is exceeded, after which they share by hash.
std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCellShards;
  return shard;
}
}  // namespace

void ShardedCells::add(std::uint64_t n) {
  cells[thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t ShardedCells::sum() const {
  std::uint64_t total = 0;
  for (const Cell& cell : cells) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace internal

void Counter::update_total(std::uint64_t total) {
  // The exposed value is max(inc'd sum, mirrored floor); both grow
  // monotonically, so scrapes never go backwards.
  std::uint64_t seen = floor_.load(std::memory_order_relaxed);
  while (seen < total && !floor_.compare_exchange_weak(
                             seen, total, std::memory_order_relaxed)) {
  }
}

std::uint64_t Counter::value() const {
  return std::max(cells_.sum(), floor_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (!(bounds_[i] < bounds_[i + 1])) {
      throw std::logic_error("Histogram: bounds must be strictly increasing");
    }
  }
  shards_.reserve(internal::kCellShards);
  for (std::size_t i = 0; i < internal::kCellShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::observe(double v) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = *shards_[internal::thread_shard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = shard.sum_bits.load(std::memory_order_relaxed);
  for (;;) {
    double sum;
    std::memcpy(&sum, &bits, sizeof(sum));
    sum += v;
    std::uint64_t next;
    std::memcpy(&next, &sum, sizeof(next));
    if (shard.sum_bits.compare_exchange_weak(bits, next,
                                             std::memory_order_relaxed)) {
      break;
    }
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += shard->buckets[b].load(std::memory_order_relaxed);
    }
    const std::uint64_t bits = shard->sum_bits.load(std::memory_order_relaxed);
    double sum;
    std::memcpy(&sum, &bits, sizeof(sum));
    snap.sum += sum;
  }
  for (const std::uint64_t n : snap.buckets) snap.count += n;
  return snap;
}

const std::vector<double>& latency_buckets_seconds() {
  static const std::vector<double> buckets = {
      1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0,
      10.0};
  return buckets;
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    // Default collectors: the task pool keeps its own monotonic counters
    // (and a live parked-worker count); every scrape mirrors them into
    // registry series so the pool needs no obs dependency of its own.
    r->register_collector([r] {
      static Counter& jobs = r->counter(
          "crnkit_pool_jobs_total", "parallel_for calls that engaged workers");
      static Counter& tasks =
          r->counter("crnkit_pool_tasks_total", "task pool chunks executed");
      static Counter& steals = r->counter(
          "crnkit_pool_steals_total", "chunks stolen across worker deques");
      static Counter& parks = r->counter("crnkit_pool_parks_total",
                                         "worker blocks on the wake condvar");
      static Gauge& workers =
          r->gauge("crnkit_pool_workers", "persistent pool worker threads");
      static Gauge& parked = r->gauge("crnkit_pool_parked_workers",
                                      "pool workers currently parked");
      const util::TaskPool& pool = util::TaskPool::instance();
      const util::TaskPool::Counters c = pool.counters();
      jobs.update_total(c.jobs);
      tasks.update_total(c.tasks);
      steals.update_total(c.steals);
      parks.update_total(c.parks);
      workers.set(pool.worker_count());
      parked.set(pool.parked_workers());
    });
    return r;
  }();
  return *registry;
}

Registry::Series& Registry::find_or_create(const std::string& name,
                                           const std::string& help,
                                           const Labels& labels, Kind kind,
                                           const std::vector<double>* bounds) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  util::MutexLock lock(mu_);
  for (const auto& series : series_) {
    if (series->name == name && series->labels == sorted) {
      if (series->kind != kind) {
        throw std::logic_error("metric '" + name +
                               "' registered with two kinds");
      }
      return *series;
    }
  }
  bool family_known = false;
  for (const auto& [fname, family] : families_) {
    if (fname == name) {
      if (family.kind != kind) {
        throw std::logic_error("metric family '" + name +
                               "' registered with two kinds");
      }
      family_known = true;
      break;
    }
  }
  if (!family_known) families_.push_back({name, Family{help, kind}});

  auto series = std::make_unique<Series>();
  series->name = name;
  series->labels = std::move(sorted);
  series->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      series->counter.reset(new Counter());
      break;
    case Kind::kGauge:
      series->gauge.reset(new Gauge());
      break;
    case Kind::kHistogram:
      series->histogram.reset(new Histogram(*bounds));
      break;
  }
  series_.push_back(std::move(series));
  return *series_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  return *find_or_create(name, help, labels, Kind::kCounter, nullptr).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  return *find_or_create(name, help, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               const std::vector<double>& bounds,
                               const Labels& labels) {
  return *find_or_create(name, help, labels, Kind::kHistogram, &bounds)
              .histogram;
}

void Registry::register_collector(std::function<void()> fn) {
  util::MutexLock lock(mu_);
  collectors_.push_back(std::move(fn));
}

void Registry::run_collectors() {
  // Copy under the lock, run outside it: collectors call back into
  // counter()/gauge() which take mu_.
  std::vector<std::function<void()>> fns;
  {
    util::MutexLock lock(mu_);
    fns = collectors_;
  }
  for (const auto& fn : fns) fn();
}

std::size_t Registry::series_count() const {
  util::MutexLock lock(mu_);
  return series_.size();
}

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}

namespace {

/// Prometheus sample value: integers render bare, doubles shortest-ish.
std::string prom_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// A label set with one extra `le` pair appended (histogram buckets).
Labels with_le(const Labels& labels, const std::string& le) {
  Labels out = labels;
  out.push_back({"le", le});
  return out;
}

}  // namespace

std::string Registry::render_prometheus() {
  run_collectors();
  util::MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [fname, family] : families_) {
    os << "# HELP " << fname << " " << family.help << "\n";
    os << "# TYPE " << fname << " "
       << (family.kind == Kind::kCounter     ? "counter"
           : family.kind == Kind::kGauge     ? "gauge"
                                             : "histogram")
       << "\n";
    for (const auto& series : series_) {
      if (series->name != fname) continue;
      switch (series->kind) {
        case Kind::kCounter:
          os << series_key(fname, series->labels) << " "
             << series->counter->value() << "\n";
          break;
        case Kind::kGauge:
          os << series_key(fname, series->labels) << " "
             << series->gauge->value() << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = series->histogram->snapshot();
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
            cumulative += snap.buckets[b];
            os << series_key(fname + "_bucket",
                             with_le(series->labels,
                                     prom_double(snap.bounds[b])))
               << " " << cumulative << "\n";
          }
          cumulative += snap.buckets.back();
          os << series_key(fname + "_bucket", with_le(series->labels, "+Inf"))
             << " " << cumulative << "\n";
          os << series_key(fname + "_sum", series->labels) << " "
             << prom_double(snap.sum) << "\n";
          os << series_key(fname + "_count", series->labels) << " "
             << snap.count << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

void Registry::write_json(util::JsonWriter& w) {
  run_collectors();
  util::MutexLock lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& series : series_) {
    if (series->kind != Kind::kCounter) continue;
    w.kv(series_key(series->name, series->labels), series->counter->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& series : series_) {
    if (series->kind != Kind::kGauge) continue;
    w.kv(series_key(series->name, series->labels), series->gauge->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& series : series_) {
    if (series->kind != Kind::kHistogram) continue;
    const Histogram::Snapshot snap = series->histogram->snapshot();
    w.key(series_key(series->name, series->labels)).begin_object();
    w.kv("count", snap.count).kv("sum", snap.sum);
    w.key("buckets").begin_array();
    for (const std::uint64_t n : snap.buckets) w.value(n);
    w.end_array().end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace crnkit::obs
