#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/json_writer.h"

namespace crnkit::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

constexpr std::size_t kRingCapacity = 1u << 16;  ///< events per thread

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  const char* arg_keys[Span::kMaxArgs];
  std::int64_t arg_values[Span::kMaxArgs];
  int n_args;
};

/// One thread's ring. Written only by the owning thread; read by the
/// exporter after stop(), when the owner has gone quiet.
struct Ring {
  std::vector<Event> events;  ///< capacity-bounded, wraps at kRingCapacity
  std::size_t next = 0;       ///< write cursor (== size until first wrap)
  bool wrapped = false;
  std::uint64_t overwritten = 0;
  std::uint64_t generation = 0;
  int tid = 0;

  void push(const Event& e) {
    if (!wrapped && events.size() < kRingCapacity) {
      events.push_back(e);
      next = events.size() % kRingCapacity;
      wrapped = next == 0 && events.size() == kRingCapacity;
      return;
    }
    events[next] = e;
    next = (next + 1) % kRingCapacity;
    ++overwritten;
  }
};

struct TraceState {
  std::mutex mu;  ///< guards ring registration and export
  std::vector<std::unique_ptr<Ring>> rings;
  std::atomic<std::uint64_t> generation{0};
  int next_tid = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

thread_local Ring* t_ring = nullptr;

}  // namespace

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state().epoch)
          .count());
}

void Tracer::start() {
  TraceState& s = state();
  s.generation.fetch_add(1, std::memory_order_acq_rel);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, const char* const* arg_keys,
                    const std::int64_t* arg_values, int n_args) {
  TraceState& s = state();
  const std::uint64_t current = s.generation.load(std::memory_order_acquire);
  Ring* ring = t_ring;
  if (ring == nullptr) {
    auto owned = std::make_unique<Ring>();
    ring = owned.get();
    std::lock_guard<std::mutex> lock(s.mu);
    ring->generation = current;
    ring->tid = s.next_tid++;
    s.rings.push_back(std::move(owned));
    t_ring = ring;
  } else if (ring->generation != current) {
    // Stale generation: a new trace started since this thread last
    // recorded. Recycle our own ring (only the owner ever mutates it).
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
    ring->overwritten = 0;
    ring->generation = current;
  }
  Event e;
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.n_args = n_args;
  for (int i = 0; i < n_args; ++i) {
    e.arg_keys[i] = arg_keys[i];
    e.arg_values[i] = arg_values[i];
  }
  ring->push(e);
}

std::uint64_t Tracer::dropped() {
  TraceState& s = state();
  const std::uint64_t current = s.generation.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t total = 0;
  for (const auto& ring : s.rings) {
    if (ring->generation == current) total += ring->overwritten;
  }
  return total;
}

std::string Tracer::render_chrome_json() {
  TraceState& s = state();
  const std::uint64_t current = s.generation.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(s.mu);
  util::JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  for (const auto& ring : s.rings) {
    if (ring->generation != current) continue;
    const std::size_t count = ring->events.size();
    const std::size_t first = ring->wrapped ? ring->next : 0;
    for (std::size_t i = 0; i < count; ++i) {
      const Event& e = ring->events[(first + i) % kRingCapacity];
      w.begin_object()
          .kv("name", e.name)
          .kv("cat", "crnkit")
          .kv("ph", "X")
          .kv("pid", 1)
          .kv("tid", ring->tid)
          .kv_fixed("ts", static_cast<double>(e.start_ns) / 1000.0, 3)
          .kv_fixed("dur", static_cast<double>(e.dur_ns) / 1000.0, 3);
      if (e.n_args > 0) {
        w.key("args").begin_object();
        for (int a = 0; a < e.n_args; ++a) {
          w.kv(e.arg_keys[a], e.arg_values[a]);
        }
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array().kv("displayTimeUnit", "ms").end_object();
  return w.str();
}

void Tracer::write_chrome_json(const std::string& path) {
  const std::string json = render_chrome_json();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trace: cannot write '" + path + "'");
  }
  out << json << "\n";
}

}  // namespace crnkit::obs
