// obs::Tracer — phase-labeled span tracing with Chrome trace_event JSON
// export, behind `crnc verify/simulate/compose --trace out.json` and
// `crnc serve --trace-dir`.
//
// A Span is an RAII complete event: construction stamps the start time,
// destruction records (name, thread, start, duration, args) into the
// calling thread's ring buffer. Numeric key=value args (const char* keys,
// static literals only) attach per span, so a BFS level can carry its
// frontier and candidate counts into the trace.
//
// Cost model:
//  * Disabled (the default): Span construction is one relaxed atomic load
//    and a branch — no clock read, no ring registration, no allocation.
//    The explore hot path stays allocation-free, asserted by obs_test.
//  * Enabled: recording appends to a fixed-capacity per-thread ring
//    (lock-free for the owning thread; the global mutex is touched once
//    per thread, at ring registration). A full ring wraps, keeping the
//    most recent events and counting what it overwrote.
//
// start() begins a new trace generation: rings from earlier generations
// are ignored by the exporter and lazily recycled by their owning thread
// on its next record, so no thread ever touches another thread's buffer.
// stop() disables recording; write_chrome_json() emits the classic
// {"traceEvents": [...]} array of "ph":"X" complete events (microsecond
// timestamps), which chrome://tracing and Perfetto load directly, nesting
// spans per thread by time containment.
#ifndef CRNKIT_OBS_TRACE_H_
#define CRNKIT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace crnkit::obs {

class Tracer {
 public:
  /// True while spans are being recorded. Relaxed load — the only cost
  /// tracing adds to an instrumented hot path when disabled.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts a new trace generation and enables recording.
  static void start();

  /// Disables recording. Spans still open keep their start stamp and
  /// record on destruction into the stopped generation, where the next
  /// export still sees them.
  static void stop();

  /// Serializes the current generation's events as Chrome trace JSON.
  /// Call after stop() (in-flight spans race the export otherwise).
  static std::string render_chrome_json();

  /// render_chrome_json() to `path`; throws std::runtime_error when the
  /// file cannot be written.
  static void write_chrome_json(const std::string& path);

  /// Events overwritten by full rings in the current generation.
  static std::uint64_t dropped();

 private:
  friend class Span;
  static void record(const char* name, std::uint64_t start_ns,
                     std::uint64_t dur_ns, const char* const* arg_keys,
                     const std::int64_t* arg_values, int n_args);
  static std::uint64_t now_ns();

  static std::atomic<bool> enabled_;
};

/// RAII span. Name must be a string literal (stored by pointer).
class Span {
 public:
  static constexpr int kMaxArgs = 4;

  explicit Span(const char* name) {
    if (!Tracer::enabled()) return;
    name_ = name;
    start_ns_ = Tracer::now_ns();
  }
  ~Span() {
    if (name_ == nullptr) return;
    Tracer::record(name_, start_ns_, Tracer::now_ns() - start_ns_, arg_keys_,
                   arg_values_, n_args_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches `key`=`value` (key must be a string literal). Ignored when
  /// the tracer was disabled at construction or kMaxArgs is exceeded.
  void arg(const char* key, std::int64_t value) {
    if (name_ == nullptr || n_args_ >= kMaxArgs) return;
    arg_keys_[n_args_] = key;
    arg_values_[n_args_] = value;
    ++n_args_;
  }

 private:
  const char* name_ = nullptr;  ///< nullptr = tracer was off; span inert
  std::uint64_t start_ns_ = 0;
  const char* arg_keys_[kMaxArgs] = {};
  std::int64_t arg_values_[kMaxArgs] = {};
  int n_args_ = 0;
};

}  // namespace crnkit::obs

#endif  // CRNKIT_OBS_TRACE_H_
