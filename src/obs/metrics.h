// obs::Registry — the process-wide metrics surface behind `GET /metrics`
// on `crnc serve`, the `metrics` line-JSON op, and serve_replay --scrape.
//
// Three instrument kinds, all safe for concurrent use and cheap enough to
// stay always-on (the fast verification bench budgets <2% for the whole
// layer):
//
//  * Counter — monotonic. The hot path is one relaxed fetch_add on a
//    per-thread-sharded cell (64 cache-line-separated slots indexed by a
//    thread hash), merged only at scrape time, so concurrent writers never
//    share a line. update_total() exists for collector-style mirrors of
//    counters another subsystem already maintains (util::TaskPool).
//  * Gauge — a current value (in-flight requests, cache bytes). One
//    atomic int64 with set/add/sub; gauges are read-mostly and their
//    writers are not hot paths.
//  * Histogram — fixed bucket boundaries chosen at registration (latency
//    seconds, batch sizes). observe() bumps the matching bucket cell in
//    the caller's shard and CAS-accumulates the sum; rendering produces
//    cumulative Prometheus `_bucket{le=...}` series plus `_sum`/`_count`.
//
// Series identity is (family name, sorted label set). Handles returned by
// counter()/gauge()/histogram() are stable for the process lifetime —
// instrumented code looks its series up once (static local) and keeps the
// reference. Collectors registered with register_collector() run at the
// start of every scrape, pulling externally-maintained totals (task pool
// counters, parked-worker count) into the registry.
//
// Exposition: render_prometheus() emits text format 0.0.4 (# HELP/# TYPE
// per family, series sorted by name then labels); write_json() emits the
// flat {"series{labels}": value} object the `metrics` op and
// serve_replay's before/after delta logic consume.
#ifndef CRNKIT_OBS_METRICS_H_
#define CRNKIT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace crnkit::util {
class JsonWriter;
}  // namespace crnkit::util

namespace crnkit::obs {

/// One `key="value"` Prometheus label.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

namespace internal {

constexpr std::size_t kCellShards = 64;

/// Cache-line-separated counter cells; writers pick a shard by thread
/// hash, readers sum. Sums are monotone across reads (each cell only
/// grows), which is what keeps scraped counters non-decreasing.
struct ShardedCells {
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells[kCellShards];

  void add(std::uint64_t n);
  [[nodiscard]] std::uint64_t sum() const;
};

}  // namespace internal

class Counter {
 public:
  void inc(std::uint64_t n = 1) { cells_.add(n); }
  /// Collector hook: raises the exposed total to `total` (an externally
  /// maintained monotonic counter). No-op when `total` is not ahead.
  void update_total(std::uint64_t total);
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend class Registry;
  Counter() = default;
  internal::ShardedCells cells_;
  std::atomic<std::uint64_t> floor_{0};  ///< update_total high-water mark
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          ///< upper bounds, +Inf excluded
    std::vector<std::uint64_t> buckets;  ///< non-cumulative, bounds+1 slots
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> sum_bits{0};  ///< double, bit-cast

    explicit Shard(std::size_t n) : buckets(n) {}
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Latency buckets shared by the request / exploration histograms:
/// 10µs .. 10s, roughly log-spaced.
[[nodiscard]] const std::vector<double>& latency_buckets_seconds();

class Registry {
 public:
  /// The process-wide registry (the one `crnc serve` scrapes).
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Looks up or creates the series. `help` is recorded on first
  /// registration of the family; kind mismatches on an existing name
  /// throw std::logic_error (a programming bug, not input).
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& bounds,
                       const Labels& labels = {});

  /// Runs `fn` at the start of every scrape (both exposition formats),
  /// before values are read — the hook for mirroring externally-owned
  /// totals (task pool, worker parks) into registry series.
  void register_collector(std::function<void()> fn);

  /// Prometheus text exposition format 0.0.4.
  [[nodiscard]] std::string render_prometheus();

  /// Flat JSON: {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with series keys rendered as name{labels}. Written into `w` as one
  /// object value (the caller owns the surrounding structure).
  void write_json(util::JsonWriter& w);

  /// Distinct series currently registered (histogram = one series).
  [[nodiscard]] std::size_t series_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string name;  ///< family name
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Kind kind;
  };

  Series& find_or_create(const std::string& name, const std::string& help,
                         const Labels& labels, Kind kind,
                         const std::vector<double>* bounds)
      CRNKIT_EXCLUDES(mu_);
  void run_collectors() CRNKIT_EXCLUDES(mu_);

  mutable util::Mutex mu_;  ///< guards registration and the collector list
  std::vector<std::unique_ptr<Series>> series_ CRNKIT_GUARDED_BY(mu_);
  /// insert order
  std::vector<std::pair<std::string, Family>> families_ CRNKIT_GUARDED_BY(mu_);
  std::vector<std::function<void()>> collectors_ CRNKIT_GUARDED_BY(mu_);
};

/// Renders "name{k1=\"v1\",k2=\"v2\"}" (bare name when no labels) — the
/// series key used by write_json and serve_replay's delta computation.
[[nodiscard]] std::string series_key(const std::string& name,
                                     const Labels& labels);

}  // namespace crnkit::obs

#endif  // CRNKIT_OBS_METRICS_H_
