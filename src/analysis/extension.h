// Unique quilt-affine extensions from determined regions (Lemma 7.7).
//
// A determined region's recession cone is full-dimensional, so the region
// contains arbitrarily deep integer points in every congruence class. The
// gradient is recovered exactly from axis-aligned period steps at a deep
// interior point (both endpoints stay in the region and share a congruence
// class, so the difference is p * grad_i); the periodic offsets follow from
// one representative per class.
#ifndef CRNKIT_ANALYSIS_EXTENSION_H_
#define CRNKIT_ANALYSIS_EXTENSION_H_

#include "analysis/decomposition.h"
#include "fn/quilt_affine.h"

namespace crnkit::analysis {

/// Fits the unique extension g (g = f on the region; Lemma 7.7) from a
/// determined region. Throws std::invalid_argument if the region is not
/// determined, and std::logic_error if the fit fails to reproduce f on the
/// region's sample points (i.e. the supplied arrangement/period do not
/// describe f).
[[nodiscard]] fn::QuiltAffine determined_extension(const AnalysisInput& input,
                                                   const RegionInfo& region);

}  // namespace crnkit::analysis

#endif  // CRNKIT_ANALYSIS_EXTENSION_H_
