// Extensions from strips of under-determined eventual regions
// (Section 7.4, Lemmas 7.16 and 7.20).
//
// Two cases, decided exactly:
//  - If no nonzero z in W-perp has all determined-neighbor gradients equal
//    along z, the averaged-gradient construction of Lemma 7.16 applies: the
//    extension has gradient avg_i(grad g_i), an enlarged period p* (a
//    multiple of p clearing the averaged gradient's denominators), offsets
//    fixed by f on the strip, and remaining offsets maximized subject to
//    being nondecreasing (computed by the exact bounded minimization over
//    one period cube).
//  - Otherwise (Lemma 7.20) the extension of the neighbor in direction z
//    must already agree with f on the strip; if it does not, f is NOT
//    obliviously-computable (this is how Equation (2)'s counterexample is
//    detected), and the result carries that diagnosis.
#ifndef CRNKIT_ANALYSIS_STRIP_EXTENSION_H_
#define CRNKIT_ANALYSIS_STRIP_EXTENSION_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/decomposition.h"
#include "fn/quilt_affine.h"
#include "geom/strips.h"

namespace crnkit::analysis {

struct StripExtensionResult {
  std::optional<fn::QuiltAffine> extension;
  bool used_neighbor_direction = false;  ///< Lemma 7.20 path taken
  std::string diagnosis;                 ///< set when extension is nullopt
};

/// Computes an extension from `strip` of under-determined eventual region
/// `regions[u]` that (empirically) dominates f. `neighbor_extensions` must
/// hold the unique extensions of `regions`' determined regions, indexed in
/// lockstep with `determined_neighbors(regions, u)`.
[[nodiscard]] StripExtensionResult strip_extension(
    const AnalysisInput& input, const std::vector<RegionInfo>& regions,
    std::size_t u, const geom::Strip& strip,
    const std::vector<fn::QuiltAffine>& neighbor_extensions);

}  // namespace crnkit::analysis

#endif  // CRNKIT_ANALYSIS_STRIP_EXTENSION_H_
