#include "analysis/strip_extension.h"

#include <map>

#include "math/check.h"
#include "math/matrix.h"

namespace crnkit::analysis {

using math::Int;
using math::Matrix;
using math::Rational;
using math::RatVec;

namespace {

/// Nonzero z with z in W-perp and all neighbor gradients equal along z,
/// if one exists (the Lemma 7.20 trigger).
std::optional<RatVec> agreeing_direction(
    const std::vector<RatVec>& w_basis,
    const std::vector<fn::QuiltAffine>& neighbor_extensions) {
  std::vector<RatVec> rows = w_basis;  // z . w = 0 for all basis w
  const RatVec& g0 = neighbor_extensions.front().gradient();
  for (std::size_t i = 1; i < neighbor_extensions.size(); ++i) {
    rows.push_back(math::sub(neighbor_extensions[i].gradient(), g0));
  }
  const auto basis = math::nullspace(Matrix::from_rows(rows));
  if (basis.empty()) return std::nullopt;
  return basis.front();
}

/// Lemma 7.16's averaged extension attempt with period multiplier `k`.
std::optional<fn::QuiltAffine> averaged_extension_attempt(
    const AnalysisInput& input, const geom::Strip& strip,
    const RatVec& grad_avg, Int p_star) {
  const int d = input.f.dimension();

  // Offsets pinned by the strip: B(a) = f(u) - grad_avg . u for u in the
  // strip. Points of one strip in one class must agree (Lemma 7.12); if
  // they do not, the arrangement/period do not describe f.
  std::map<Int, Rational> pinned;
  for (const fn::Point& u : strip.points) {
    const math::CongruenceClass a(u, p_star);
    const Rational b = Rational(input.f(u)) - math::dot(grad_avg, u);
    const auto it = pinned.find(a.index());
    if (it == pinned.end()) {
      pinned.emplace(a.index(), b);
    } else if (it->second != b) {
      return std::nullopt;  // inconsistent: averaged gradient cannot fit
    }
  }
  if (pinned.empty()) return std::nullopt;

  // Remaining offsets: B(a) = min over pinned classes b of
  // B(b) + grad_avg . ((rep_b - rep_a) mod p*), the exact form of
  // "maximize subject to g nondecreasing" (gradient is componentwise >= 0).
  const Int classes = math::checked_pow(p_star, d);
  std::vector<Rational> offsets(static_cast<std::size_t>(classes));
  for (const auto& a : math::all_classes(d, p_star)) {
    const auto it = pinned.find(a.index());
    if (it != pinned.end()) {
      offsets[static_cast<std::size_t>(a.index())] = it->second;
      continue;
    }
    bool first = true;
    Rational best;
    for (const auto& [b_index, b_offset] : pinned) {
      const auto rep_b = math::decode_mixed_radix(b_index, p_star, d);
      const auto& rep_a = a.representative();
      Rational step;
      for (int c = 0; c < d; ++c) {
        const Int dist = math::floor_mod(
            rep_b[static_cast<std::size_t>(c)] -
                rep_a[static_cast<std::size_t>(c)],
            p_star);
        step += grad_avg[static_cast<std::size_t>(c)] * Rational(dist);
      }
      const Rational candidate = b_offset + step;
      if (first || candidate < best) {
        best = candidate;
        first = false;
      }
    }
    offsets[static_cast<std::size_t>(a.index())] = best;
  }

  try {
    fn::QuiltAffine g(grad_avg, p_star, std::move(offsets), "gI");
    if (!g.is_nondecreasing()) return std::nullopt;
    // Must reproduce f on the strip.
    for (const fn::Point& u : strip.points) {
      if (g(u) != input.f(u)) return std::nullopt;
    }
    return g;
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // non-integer values: period multiple too small
  }
}

}  // namespace

StripExtensionResult strip_extension(
    const AnalysisInput& input, const std::vector<RegionInfo>& regions,
    std::size_t u, const geom::Strip& strip,
    const std::vector<fn::QuiltAffine>& neighbor_extensions) {
  StripExtensionResult result;
  require(u < regions.size(), "strip_extension: bad region index");
  require(!strip.points.empty(), "strip_extension: empty strip");
  if (neighbor_extensions.empty()) {
    result.diagnosis =
        "under-determined eventual region has no determined neighbors "
        "within the realized regions (grid too small?)";
    return result;
  }

  const auto w_basis = regions[u].region.determined_subspace_basis();
  const auto z = agreeing_direction(w_basis, neighbor_extensions);

  if (z.has_value()) {
    // Lemma 7.20: the extension of the neighbor in direction z must agree
    // with f on the strip, or f is not obliviously-computable.
    result.used_neighbor_direction = true;
    const geom::Region rz =
        geom::neighbor_in_direction(regions[u].region, *z);
    // Find rz among the classified regions and use its determined
    // extension; under-determined rz would require deeper recursion, which
    // the paper resolves by induction on codimension — for the realized
    // arrangements we target, the direction neighbor is determined.
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (!(regions[r].region == rz) || !regions[r].determined) continue;
      // Locate its extension among the determined neighbors.
      const auto neighbor_ids = determined_neighbors(regions, u);
      for (std::size_t k = 0; k < neighbor_ids.size(); ++k) {
        if (neighbor_ids[k] != r) continue;
        const fn::QuiltAffine& gz = neighbor_extensions[k];
        for (const fn::Point& x : strip.points) {
          if (gz(x) != input.f(x)) {
            result.diagnosis =
                "Lemma 7.20: all determined-neighbor gradients agree along "
                "a W-perp direction, but the direction neighbor's extension "
                "disagrees with f on the strip — f is NOT "
                "obliviously-computable (Lemma 4.1 applies)";
            return result;
          }
        }
        result.extension = gz;
        return result;
      }
    }
    result.diagnosis =
        "Lemma 7.20: direction neighbor not found among realized determined "
        "regions (grid too small?)";
    return result;
  }

  // Lemma 7.16: averaged gradient.
  RatVec grad_avg(static_cast<std::size_t>(input.f.dimension()));
  for (const auto& g : neighbor_extensions) {
    grad_avg = math::add(grad_avg, g.gradient());
  }
  grad_avg = math::scale(
      Rational(1, static_cast<Int>(neighbor_extensions.size())), grad_avg);

  // Smallest period multiple clearing denominators of the averaged
  // gradient, then escalating multiples if integrality/monotonicity fails.
  Int base = input.period;
  for (const auto& gi : grad_avg) base = math::lcm(base, gi.den());
  base = math::lcm(base, input.period);
  for (const Int mult : {Int{1}, Int{2}, Int{3}, Int{4}}) {
    const Int p_star = base * mult;
    if (auto g = averaged_extension_attempt(input, strip, grad_avg, p_star)) {
      result.extension = std::move(*g);
      return result;
    }
  }
  result.diagnosis =
      "Lemma 7.16: no averaged-gradient extension fits the strip within the "
      "tried period multiples";
  return result;
}

}  // namespace crnkit::analysis
