// Domain decomposition (Section 7.2): given a black-box function, a
// threshold arrangement, and a global period, classify the realized regions
// (finite / eventual, determined / under-determined) exactly. This is the
// front end of the constructive Theorem 7.1 pipeline.
#ifndef CRNKIT_ANALYSIS_DECOMPOSITION_H_
#define CRNKIT_ANALYSIS_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "fn/function.h"
#include "geom/arrangement.h"
#include "geom/region.h"

namespace crnkit::analysis {

/// Input of the analysis pipeline: f with the arrangement T and period p of
/// (some) semilinear representation (Lemma 7.3), plus the enumeration bound
/// used to find realized regions and strip points.
struct AnalysisInput {
  fn::DiscreteFunction f;
  geom::Arrangement arrangement;
  math::Int period = 1;
  math::Int grid_max = 12;
};

/// One realized region with its classification.
struct RegionInfo {
  geom::Region region;
  std::vector<fn::Point> samples;  ///< realizing grid points
  int cone_dimension = 0;
  bool determined = false;
  bool eventual = false;

  [[nodiscard]] std::string to_string() const;
};

/// Enumerates and classifies the regions realized on [0, grid_max]^d.
[[nodiscard]] std::vector<RegionInfo> decompose(const AnalysisInput& input);

/// Indices (into `regions`) of the determined regions whose recession cones
/// contain recc(regions[u]) — the determined neighbors of Definition 7.11.
[[nodiscard]] std::vector<std::size_t> determined_neighbors(
    const std::vector<RegionInfo>& regions, std::size_t u);

}  // namespace crnkit::analysis

#endif  // CRNKIT_ANALYSIS_DECOMPOSITION_H_
