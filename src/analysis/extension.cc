#include "analysis/extension.h"

#include "math/check.h"

namespace crnkit::analysis {

using math::Int;
using math::Rational;

fn::QuiltAffine determined_extension(const AnalysisInput& input,
                                     const RegionInfo& region) {
  require(region.determined,
          "determined_extension: region is not determined");
  require(!region.samples.empty(),
          "determined_extension: region has no sample points");
  const int d = input.f.dimension();
  const Int p = input.period;

  const auto direction = region.region.interior_direction();
  ensure(direction.has_value(),
         "determined_extension: determined region lacks an interior "
         "direction");

  // Deep anchor: margin p*(d+2) leaves room for a period step along every
  // axis and the class adjustment.
  const fn::Point anchor = region.region.deep_point(
      region.samples.front(), *direction, p * (d + 2));

  // Gradient from axis-aligned period steps.
  math::RatVec gradient(static_cast<std::size_t>(d));
  const Int f_anchor = input.f(anchor);
  for (int i = 0; i < d; ++i) {
    fn::Point stepped = anchor;
    stepped[static_cast<std::size_t>(i)] += p;
    ensure(region.region.contains(stepped),
           "determined_extension: period step left the region");
    gradient[static_cast<std::size_t>(i)] =
        Rational(input.f(stepped) - f_anchor, p);
  }

  // Offsets from one representative per congruence class.
  const Int classes = math::checked_pow(p, d);
  std::vector<Rational> offsets(static_cast<std::size_t>(classes));
  for (const auto& a : math::all_classes(d, p)) {
    const fn::Point rep =
        region.region.representative_in_class(a, region.samples.front());
    offsets[static_cast<std::size_t>(a.index())] =
        Rational(input.f(rep)) - math::dot(gradient, rep);
  }

  fn::QuiltAffine g(std::move(gradient), p, std::move(offsets),
                    "ext" + region.region.key());

  // The extension must agree with f on every realized sample of the region;
  // disagreement means the arrangement/period do not represent f.
  for (const fn::Point& x : region.samples) {
    ensure(g(x) == input.f(x),
           "determined_extension: fitted extension disagrees with f at a "
           "sample point — the supplied arrangement/period do not describe "
           "f (Lemma 7.3 form violated)");
  }
  return g;
}

}  // namespace crnkit::analysis
