// One-call obliviousness classification: the executable Theorem 5.2 /
// Theorem 5.4 decision surface.
//
// Given a black box f with its arrangement and period, the classifier
// combines everything this library knows:
//   1. Observation 2.1: nondecreasing check (grid);
//   2. Theorem 5.4 negative side: Lemma 4.1 linear-family witness search;
//   3. Theorem 7.1 positive side: the Section 7 pipeline, yielding the
//      eventual-min spec when it succeeds (with which compile_theorem52
//      produces the actual CRN).
// Verdicts carry evidence: a witness family, a strip diagnosis, or the
// compilable spec.
#ifndef CRNKIT_ANALYSIS_OBLIVIOUSNESS_H_
#define CRNKIT_ANALYSIS_OBLIVIOUSNESS_H_

#include <optional>
#include <string>

#include "analysis/eventual_min.h"
#include "verify/witness.h"

namespace crnkit::analysis {

enum class Obliviousness {
  kComputable,     ///< eventual-min spec extracted; CRN can be compiled
  kNotComputable,  ///< a structural obstruction or witness was found
  kInconclusive,   ///< bounded analysis could not decide
};

struct ObliviousnessVerdict {
  Obliviousness verdict = Obliviousness::kInconclusive;
  std::string reason;
  /// The Lemma 4.1 family, when one was found.
  std::optional<verify::Lemma41Witness> witness;
  /// The compilable spec, when the pipeline succeeded.
  std::optional<compile::ObliviousSpec> spec;

  [[nodiscard]] std::string summary() const;
};

struct ClassifyOptions {
  math::Int nondecreasing_grid = 10;
  math::Int witness_max_entry = 2;
  int witness_prefix = 8;
};

/// Classifies f. The negative direction (witness found) is sound assuming
/// the family pattern persists beyond the checked prefix — exactly the
/// instantiation pattern the paper uses; the positive direction is sound up
/// to the grid bounds of the eventual-min extraction.
[[nodiscard]] ObliviousnessVerdict classify_obliviousness(
    const AnalysisInput& input, const ClassifyOptions& options = {});

}  // namespace crnkit::analysis

#endif  // CRNKIT_ANALYSIS_OBLIVIOUSNESS_H_
