// The constructive shadow of Theorem 7.1: extract quilt-affine functions
// g_1..g_m and a threshold n with f = min_k g_k on x >= n, from a black box
// plus its threshold arrangement and period. Determined regions contribute
// their unique extensions (Lemma 7.7); strips of under-determined eventual
// regions contribute averaged or neighbor-direction extensions
// (Lemmas 7.16 / 7.20). Failure carries a diagnosis — for functions like
// Equation (2) the diagnosis is exactly "not obliviously-computable".
//
// `make_spec_via_analysis` packages the result as a Theorem 5.2 compiler
// spec, wiring a restriction provider that recursively analyzes fixed-input
// restrictions over the restricted arrangement.
#ifndef CRNKIT_ANALYSIS_EVENTUAL_MIN_H_
#define CRNKIT_ANALYSIS_EVENTUAL_MIN_H_

#include <string>
#include <vector>

#include "analysis/strip_extension.h"
#include "compile/theorem52.h"

namespace crnkit::analysis {

struct EventualMinResult {
  bool ok = false;
  std::vector<fn::QuiltAffine> parts;
  math::Int threshold = -1;  ///< least n with f = min(parts) on the grid
  std::vector<std::string> notes;

  [[nodiscard]] std::string summary() const;
};

/// Runs the full Section 7 pipeline on the grid.
[[nodiscard]] EventualMinResult extract_eventual_min(
    const AnalysisInput& input);

/// The arrangement induced on the remaining coordinates when input i is
/// pinned to j: each normal drops coordinate i and the offset absorbs
/// t_i * j; hyperplanes whose restricted normal is zero no longer separate
/// and are dropped.
[[nodiscard]] geom::Arrangement restrict_arrangement(
    const geom::Arrangement& arrangement, int i, math::Int j);

/// Builds a Theorem 5.2 spec from the analysis, including a restriction
/// provider that recurses through restricted arrangements. Throws if the
/// analysis fails (see EventualMinResult::notes via the exception message).
[[nodiscard]] compile::ObliviousSpec make_spec_via_analysis(
    const AnalysisInput& input);

}  // namespace crnkit::analysis

#endif  // CRNKIT_ANALYSIS_EVENTUAL_MIN_H_
