#include "analysis/decomposition.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::analysis {

std::string RegionInfo::to_string() const {
  std::ostringstream os;
  os << region.to_string() << " cone_dim=" << cone_dimension
     << (determined ? " determined" : " under-determined")
     << (eventual ? " eventual" : " finite") << " samples=" << samples.size();
  return os.str();
}

std::vector<RegionInfo> decompose(const AnalysisInput& input) {
  require(input.f.dimension() == input.arrangement.dimension(),
          "decompose: function/arrangement dimension mismatch");
  require(input.period >= 1, "decompose: period must be >= 1");
  std::vector<RegionInfo> out;
  for (auto& realized : input.arrangement.enumerate_regions(input.grid_max)) {
    RegionInfo info{std::move(realized.region),
                    std::move(realized.sample_points), 0, false, false};
    info.cone_dimension = info.region.cone_dimension();
    info.determined = info.cone_dimension == input.f.dimension();
    info.eventual = info.region.is_eventual();
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::size_t> determined_neighbors(
    const std::vector<RegionInfo>& regions, std::size_t u) {
  require(u < regions.size(), "determined_neighbors: bad region index");
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    if (r == u || !regions[r].determined) continue;
    if (geom::cone_subset(regions[u].region, regions[r].region)) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace crnkit::analysis
