#include "analysis/obliviousness.h"

#include "fn/properties.h"

namespace crnkit::analysis {

std::string ObliviousnessVerdict::summary() const {
  switch (verdict) {
    case Obliviousness::kComputable:
      return "obliviously-computable: " + reason;
    case Obliviousness::kNotComputable:
      return "NOT obliviously-computable: " + reason;
    case Obliviousness::kInconclusive:
      return "inconclusive: " + reason;
  }
  return "unknown";
}

ObliviousnessVerdict classify_obliviousness(const AnalysisInput& input,
                                            const ClassifyOptions& options) {
  ObliviousnessVerdict verdict;

  // 1. Observation 2.1: nondecreasing is necessary.
  if (const auto violation = fn::find_nondecreasing_violation(
          input.f, options.nondecreasing_grid)) {
    verdict.verdict = Obliviousness::kNotComputable;
    verdict.reason = "not nondecreasing (Observation 2.1): " +
                     violation->to_string();
    return verdict;
  }

  // 2. Theorem 5.4 negative side: Lemma 4.1 linear-family search.
  if (auto witness = verify::find_lemma41_witness(
          input.f, options.witness_max_entry, options.witness_prefix)) {
    verdict.verdict = Obliviousness::kNotComputable;
    verdict.reason = "Lemma 4.1 witness family: " + witness->to_string();
    verdict.witness = std::move(witness);
    return verdict;
  }

  // 3. Theorem 7.1 positive side: eventual-min extraction and, recursively,
  //    the full spec.
  try {
    compile::ObliviousSpec spec = make_spec_via_analysis(input);
    verdict.verdict = Obliviousness::kComputable;
    verdict.reason = "eventual min of " +
                     std::to_string(spec.eventual.size()) +
                     " quilt-affine function(s) beyond n = " +
                     std::to_string(spec.threshold) +
                     " (Theorem 5.2 spec ready)";
    verdict.spec = std::move(spec);
    return verdict;
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // A strip diagnosis of the Lemma 7.20 kind is a structural obstruction.
    if (what.find("NOT obliviously-computable") != std::string::npos) {
      verdict.verdict = Obliviousness::kNotComputable;
      verdict.reason = what;
      return verdict;
    }
    verdict.verdict = Obliviousness::kInconclusive;
    verdict.reason = what;
    return verdict;
  } catch (const std::exception& e) {
    // Fitting failures (e.g. an arrangement/period that does not describe
    // f in Lemma 7.3 form) must never masquerade as impossibility.
    verdict.verdict = Obliviousness::kInconclusive;
    verdict.reason = std::string("analysis failed: ") + e.what();
    return verdict;
  }
}

}  // namespace crnkit::analysis
