#include "analysis/eventual_min.h"

#include <sstream>

#include "analysis/extension.h"
#include "math/check.h"

namespace crnkit::analysis {

using math::Int;

namespace {

/// Structural equality of quilt-affine functions over a common period.
bool quilt_equal(const fn::QuiltAffine& a, const fn::QuiltAffine& b) {
  if (a.dimension() != b.dimension()) return false;
  if (!(a.gradient() == b.gradient())) return false;
  const Int q = math::lcm(a.period(), b.period());
  const fn::QuiltAffine aa = a.with_period(q);
  const fn::QuiltAffine bb = b.with_period(q);
  for (const auto& cls : math::all_classes(a.dimension(), q)) {
    if (aa.offset(cls) != bb.offset(cls)) return false;
  }
  return true;
}

}  // namespace

std::string EventualMinResult::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << " parts=" << parts.size()
     << " threshold=" << threshold;
  for (const auto& note : notes) os << "\n  note: " << note;
  return os.str();
}

EventualMinResult extract_eventual_min(const AnalysisInput& input) {
  EventualMinResult result;
  const std::vector<RegionInfo> regions = decompose(input);

  // Determined regions first (they are all eventual: a full-dimensional
  // recession cone inside the nonnegative orthant has strictly positive
  // interior points).
  std::vector<std::size_t> determined_ids;
  std::vector<fn::QuiltAffine> determined_exts;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    if (!regions[r].determined) continue;
    determined_ids.push_back(r);
    determined_exts.push_back(determined_extension(input, regions[r]));
  }
  if (determined_exts.empty()) {
    result.notes.push_back("no determined regions realized on the grid");
    return result;
  }
  for (const auto& g : determined_exts) result.parts.push_back(g);

  // Strips of under-determined eventual regions.
  for (std::size_t u = 0; u < regions.size(); ++u) {
    if (regions[u].determined || !regions[u].eventual) continue;
    const auto neighbor_ids = determined_neighbors(regions, u);
    std::vector<fn::QuiltAffine> neighbor_exts;
    for (const std::size_t r : neighbor_ids) {
      for (std::size_t k = 0; k < determined_ids.size(); ++k) {
        if (determined_ids[k] == r) {
          neighbor_exts.push_back(determined_exts[k]);
          break;
        }
      }
    }
    const auto strips = geom::decompose_strips(regions[u].region,
                                               input.grid_max);
    for (const auto& strip : strips) {
      const auto ext =
          strip_extension(input, regions, u, strip, neighbor_exts);
      if (!ext.extension) {
        result.notes.push_back("region " + regions[u].region.key() + ": " +
                               ext.diagnosis);
        return result;
      }
      bool duplicate = false;
      for (const auto& existing : result.parts) {
        if (quilt_equal(existing, *ext.extension)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) result.parts.push_back(*ext.extension);
    }
  }

  // Find the least threshold n with f = min(parts) on [n, grid]^d.
  fn::MinOfQuiltAffine min_parts(result.parts);
  for (Int n = 0; n + 2 <= input.grid_max; ++n) {
    bool all_match = true;
    const fn::Point lo(static_cast<std::size_t>(input.f.dimension()), n);
    const fn::Point hi(static_cast<std::size_t>(input.f.dimension()),
                       input.grid_max);
    geom::for_each_box_point(lo, hi, [&](const std::vector<Int>& x) {
      if (!all_match) return;
      if (min_parts(x) != input.f(x)) all_match = false;
    });
    if (all_match) {
      result.threshold = n;
      result.ok = true;
      return result;
    }
  }
  result.notes.push_back(
      "no threshold within the grid makes f equal min of the extensions");
  return result;
}

geom::Arrangement restrict_arrangement(const geom::Arrangement& arrangement,
                                       int i, Int j) {
  require(i >= 0 && i < arrangement.dimension(),
          "restrict_arrangement: bad coordinate");
  require(arrangement.dimension() >= 2,
          "restrict_arrangement: needs dimension >= 2");
  std::vector<geom::ThresholdHyperplane> restricted;
  for (const auto& hp : arrangement.hyperplanes()) {
    std::vector<Int> normal;
    for (int k = 0; k < arrangement.dimension(); ++k) {
      if (k != i) normal.push_back(hp.normal[static_cast<std::size_t>(k)]);
    }
    bool zero = true;
    for (const Int t : normal) {
      if (t != 0) zero = false;
    }
    if (zero) continue;  // constant sign after pinning: not a separator
    restricted.push_back(
        {std::move(normal),
         hp.offset - hp.normal[static_cast<std::size_t>(i)] * j});
  }
  return geom::Arrangement(arrangement.dimension() - 1,
                           std::move(restricted));
}

compile::ObliviousSpec make_spec_via_analysis(const AnalysisInput& input) {
  if (input.f.dimension() == 1) {
    // Base case: the Theorem 3.1 compiler needs no eventual-min data, but
    // the spec shape requires at least one part; provide the detected
    // eventual quilt-affine function.
    const auto s = fn::require_oned_structure(input.f);
    compile::ObliviousSpec spec{input.f, s.n, {s.eventual_quilt_affine()}, {}};
    return spec;
  }
  const EventualMinResult result = extract_eventual_min(input);
  if (!result.ok) {
    throw std::invalid_argument("make_spec_via_analysis: " +
                                result.summary());
  }
  compile::ObliviousSpec spec{input.f, result.threshold, result.parts, {}};
  // Populate restriction specs recursively so the Theorem 5.2 compiler
  // needs no provider hook at any level. 1D restrictions are omitted (the
  // compiler derives them by scanning, Theorem 3.1).
  if (input.f.dimension() - 1 >= 2) {
    for (int i = 0; i < input.f.dimension(); ++i) {
      for (Int j = 0; j < result.threshold; ++j) {
        AnalysisInput child{compile::drop_input(input.f, i, j),
                            restrict_arrangement(input.arrangement, i, j),
                            input.period, input.grid_max};
        spec.children[{i, j}] = std::make_shared<compile::ObliviousSpec>(
            make_spec_via_analysis(child));
      }
    }
  }
  return spec;
}

}  // namespace crnkit::analysis
