// Population-protocol-style scheduler (Section 1 of the paper): molecules
// are agents, at each step a uniformly random ordered pair of distinct
// molecules "collides", and an applicable reaction whose reactant multiset
// matches the pair fires. Parallel time is interactions divided by the
// current population size — the standard PP time measure.
//
// The CRN is required to be at-most-bimolecular in its reactants (run
// to_bimolecular first); unimolecular reactions fire when their reactant is
// either member of the colliding pair. Unlike strict population protocols,
// total molecule count may change (CRNs are not conservative); the scheduler
// uses the live count.
#ifndef CRNKIT_SIM_POPULATION_H_
#define CRNKIT_SIM_POPULATION_H_

#include <cstdint>

#include "crn/network.h"
#include "sim/rng.h"

namespace crnkit::sim {

struct PopulationRunResult {
  crn::Config final_config;
  std::uint64_t interactions = 0;       ///< collisions, incl. null ones
  std::uint64_t null_interactions = 0;  ///< collisions firing nothing
  double parallel_time = 0.0;           ///< sum over steps of 1/population
  bool silent = false;
};

struct PopulationRunOptions {
  std::uint64_t max_interactions = 50'000'000;
};

/// Runs the pair scheduler from `initial` until the CRN is silent or the
/// interaction budget is exhausted. Throws if a reaction has more than two
/// reactants.
[[nodiscard]] PopulationRunResult run_population(
    const crn::Crn& crn, const crn::Config& initial, Rng& rng,
    const PopulationRunOptions& options = {});

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_POPULATION_H_
