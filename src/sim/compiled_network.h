// CompiledNetwork: a sparse, cache-friendly compilation of crn::Crn for the
// hot simulation loops.
//
// The dense crn::Crn representation is ideal for construction, composition,
// and proof-style enumeration, but the simulators used to pay O(R) per event
// to recompute every propensity through std::vector<Term> indirections. A
// CompiledNetwork precomputes, once per network:
//
//  * CSR (compressed sparse row) reactant lists and *net-delta* lists, so
//    applying a reaction touches only the species it actually changes;
//  * a per-reaction propensity kernel specialised for the orders that
//    dominate the paper's constructions (0th/1st/2nd order), falling back to
//    the general combinatorial product;
//  * the reaction dependency graph: dependents(j) lists exactly the
//    reactions whose propensity (equivalently, applicability) can change
//    when j fires — the reactions reading a species j's net delta touches.
//    After firing j, a simulator recomputes only those, turning the direct
//    method's O(R) per-event cost into O(deg).
//
// Propensities are bit-identical to sim::propensity (same double-arithmetic
// order), so the compiled engines are drop-in replacements for the dense
// ones; tests cross-validate the two.
#ifndef CRNKIT_SIM_COMPILED_NETWORK_H_
#define CRNKIT_SIM_COMPILED_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crn/network.h"

namespace crnkit::sim {

/// A contiguous [begin, end) view into a CSR adjacency array.
template <typename T>
struct Span {
  const T* begin_ = nullptr;
  const T* end_ = nullptr;
  [[nodiscard]] const T* begin() const { return begin_; }
  [[nodiscard]] const T* end() const { return end_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(end_ - begin_);
  }
  [[nodiscard]] bool empty() const { return begin_ == end_; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return begin_[i]; }
};

class CompiledNetwork {
 public:
  explicit CompiledNetwork(const crn::Crn& crn);

  [[nodiscard]] std::size_t reaction_count() const { return kinds_.size(); }
  [[nodiscard]] std::size_t species_count() const { return species_count_; }

  /// Exact combinatorial propensity of reaction j at `config` (rate 1.0);
  /// bit-identical to sim::propensity on the source reaction. Defined
  /// inline below — it is the innermost call of every simulation loop.
  [[nodiscard]] double propensity(std::size_t j,
                                  const crn::Config& config) const;

  /// True iff `config` has all reactants of reaction j. Inline below.
  [[nodiscard]] bool applicable(std::size_t j,
                                const crn::Config& config) const {
    return applicable(j, config.data());
  }

  /// Raw-pointer applicability over the CSR reactant slice — the shared
  /// fast path of the simulators and the exact verifier's arena explorer
  /// (which stores configurations as 32-bit counts without crn::Config
  /// wrappers; any integral element type promotes correctly).
  template <typename CountT>
  [[nodiscard]] bool applicable(std::size_t j, const CountT* config) const {
    for (std::size_t i = reactant_off_[j]; i < reactant_off_[j + 1]; ++i) {
      if (config[reactant_species_[i]] < reactant_count_[i]) return false;
    }
    return true;
  }

  /// Applies reaction j's net deltas in place; the caller must have checked
  /// applicability.
  void apply(std::size_t j, crn::Config& config) const {
    apply_delta(j, config.data());
  }

  /// Raw-pointer delta application — the simulators' and any explorer's
  /// fast path.
  void apply_delta(std::size_t j, math::Int* config) const {
    for (std::size_t i = delta_off_[j]; i < delta_off_[j + 1]; ++i) {
      config[delta_species_[i]] += delta_value_[i];
    }
  }

  /// Reactions whose propensity can change when j fires (sorted, unique).
  /// j itself appears iff its own reactants overlap its net deltas — a
  /// purely catalytic self-read leaves j's propensity unchanged.
  [[nodiscard]] Span<std::uint32_t> dependents(std::size_t j) const {
    return {dep_.data() + dep_off_[j], dep_.data() + dep_off_[j + 1]};
  }

  /// Species j's net delta touches, as parallel (species, delta) spans.
  [[nodiscard]] Span<std::uint32_t> delta_species(std::size_t j) const {
    return {delta_species_.data() + delta_off_[j],
            delta_species_.data() + delta_off_[j + 1]};
  }
  [[nodiscard]] Span<math::Int> delta_values(std::size_t j) const {
    return {delta_value_.data() + delta_off_[j],
            delta_value_.data() + delta_off_[j + 1]};
  }

  /// Largest dependents() size over all reactions (the per-event update
  /// cost bound).
  [[nodiscard]] std::size_t max_dependency_degree() const {
    return max_degree_;
  }

 private:
  // Propensity kernel shapes, by total reactant multiplicity.
  enum class Kind : std::uint8_t {
    kConstant,  // no reactants: a = 1
    kUnary,     // X:            a = c
    kPair,      // 2X:           a = C(c, 2)
    kBinary,    // X + Z:        a = c_x * c_z
    kGeneral,   // anything else: product of binomials over the CSR slice
  };

  std::size_t species_count_ = 0;
  std::size_t max_degree_ = 0;

  std::vector<Kind> kinds_;
  std::vector<std::uint32_t> kernel_s0_;  // first reactant species
  std::vector<std::uint32_t> kernel_s1_;  // second reactant species (kBinary)

  // CSR reactant lists (species, multiplicity), all reactions concatenated.
  std::vector<std::size_t> reactant_off_;
  std::vector<std::uint32_t> reactant_species_;
  std::vector<math::Int> reactant_count_;

  // CSR net-delta lists (species, net change), zero deltas dropped.
  std::vector<std::size_t> delta_off_;
  std::vector<std::uint32_t> delta_species_;
  std::vector<math::Int> delta_value_;

  // CSR dependency graph.
  std::vector<std::size_t> dep_off_;
  std::vector<std::uint32_t> dep_;
};

inline double CompiledNetwork::propensity(std::size_t j,
                                          const crn::Config& config) const {
  switch (kinds_[j]) {
    case Kind::kConstant:
      return 1.0;
    case Kind::kUnary: {
      const math::Int c = config[kernel_s0_[j]];
      return c > 0 ? static_cast<double>(c) : 0.0;
    }
    case Kind::kPair: {
      const math::Int c = config[kernel_s0_[j]];
      if (c < 2) return 0.0;
      // Same operation order as sim::propensity: (c/1) * ((c-1)/2).
      return static_cast<double>(c) * (static_cast<double>(c - 1) / 2.0);
    }
    case Kind::kBinary: {
      const math::Int c0 = config[kernel_s0_[j]];
      const math::Int c1 = config[kernel_s1_[j]];
      if (c0 < 1 || c1 < 1) return 0.0;
      return static_cast<double>(c0) * static_cast<double>(c1);
    }
    case Kind::kGeneral:
      break;
  }
  double a = 1.0;
  for (std::size_t i = reactant_off_[j]; i < reactant_off_[j + 1]; ++i) {
    const math::Int c = config[reactant_species_[i]];
    const math::Int r = reactant_count_[i];
    if (c < r) return 0.0;
    for (math::Int k = 0; k < r; ++k) {
      a *= static_cast<double>(c - k) / static_cast<double>(k + 1);
    }
  }
  return a;
}

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_COMPILED_NETWORK_H_
