#include "sim/ensemble.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "math/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/gillespie.h"
#include "sim/next_reaction.h"
#include "sim/population.h"
#include "sim/scheduler.h"
#include "util/task_pool.h"

namespace crnkit::sim {

namespace {

/// Always-on ensemble metrics, bumped once per run() (batch granularity,
/// never per event), so simulation throughput is untouched.
struct EnsembleMetrics {
  obs::Counter& runs;
  obs::Counter& events;
  obs::Histogram& trajectories;

  static EnsembleMetrics& get() {
    static EnsembleMetrics m{
        obs::Registry::instance().counter("crnkit_sim_runs_total",
                                          "ensemble batches executed"),
        obs::Registry::instance().counter(
            "crnkit_sim_events_total",
            "reaction events simulated across all ensemble runs"),
        obs::Registry::instance().histogram(
            "crnkit_sim_trajectories", "trajectories per ensemble batch",
            {1, 4, 16, 64, 256, 1024, 4096, 16384}),
    };
    return m;
  }
};

}  // namespace

std::string EnsembleResult::summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "trajectories=" << trajectories.size() << " silent=" << silent_count
     << " events=" << total_events << " wall=" << wall_seconds << "s ("
     << events_per_second() << " ev/s)";
  if (cancelled_count > 0) {
    os << " cancelled=" << cancelled_count;
  }
  if (!output_consistent) {
    os << " OUTPUT-INCONSISTENT";
  }
  return os.str();
}

EnsembleRunner::EnsembleRunner(const crn::Crn& crn)
    : crn_(&crn), compiled_(crn) {}

EnsembleResult EnsembleRunner::run(const crn::Config& initial,
                                   const EnsembleOptions& options) const {
  require(options.trajectories >= 0,
          "EnsembleRunner::run: negative trajectory count");
  // Rates are validated at the batch boundary for *every* method — the
  // kSilentRun/kPopulation paths ignore them, but a mis-sized vector is a
  // caller bug either way and must not surface only when the method flips.
  require(options.rates.empty() ||
              options.rates.size() == compiled_.reaction_count(),
          "EnsembleRunner::run: options.rates has " +
              std::to_string(options.rates.size()) +
              " entries for a network with " +
              std::to_string(compiled_.reaction_count()) + " reactions");
  EnsembleResult result;
  const std::size_t count = static_cast<std::size_t>(options.trajectories);
  result.trajectories.resize(count);
  if (count == 0) return result;
  obs::Span run_span("sim.ensemble_run");
  run_span.arg("trajectories", static_cast<std::int64_t>(count));

  const auto run_one = [&](std::size_t i) {
    if (options.cancel != nullptr && options.cancel->expired()) {
      result.trajectories[i].skipped = true;
      return;
    }
    Rng rng(Rng::derive_stream_seed(options.seed, i));
    Trajectory& out = result.trajectories[i];
    switch (options.method) {
      case EnsembleMethod::kSilentRun: {
        const auto r = run_until_silent(compiled_, initial, rng,
                                        SilentRunOptions{options.max_steps});
        out = {r.final_config, r.steps, 0.0, r.silent};
        break;
      }
      case EnsembleMethod::kDirect:
      case EnsembleMethod::kNextReaction: {
        GillespieOptions go;
        go.max_events = options.max_events;
        go.max_time = options.max_time;
        go.rates = options.rates;
        const auto r = options.method == EnsembleMethod::kDirect
                           ? simulate_direct(compiled_, initial, rng, go)
                           : simulate_next_reaction(compiled_, initial, rng,
                                                    go);
        out = {r.final_config, r.events, r.time, r.exhausted};
        break;
      }
      case EnsembleMethod::kPopulation: {
        const auto r =
            run_population(*crn_, initial, rng,
                           PopulationRunOptions{options.max_interactions});
        out = {r.final_config, r.interactions, r.parallel_time, r.silent};
        break;
      }
    }
  };

  unsigned workers = options.threads > 0
                         ? static_cast<unsigned>(options.threads)
                         : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > count) workers = static_cast<unsigned>(count);

  const auto start = std::chrono::steady_clock::now();
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) run_one(i);
  } else {
    // Persistent pool, reused across run() calls: simcheck and compose
    // certification issue hundreds of small batches, and the per-call
    // thread spawn/join this replaces used to dominate their wall time.
    // Chunked scheduling: aim for a few chunks per worker so the
    // work-stealing deques can balance uneven trajectory lengths, but
    // never chunks so small that scheduling overhead swamps a tiny batch.
    const std::size_t grain = std::max<std::size_t>(
        1, count / (static_cast<std::size_t>(workers) * 4));
    util::TaskPool::instance().parallel_for(count, grain, run_one,
                                            static_cast<int>(workers));
  }
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

  // Deterministic aggregation, in trajectory order.
  bool first_output = true;
  for (const Trajectory& t : result.trajectories) {
    if (t.skipped) {
      ++result.cancelled_count;
      continue;
    }
    result.total_events += t.events;
    result.events_stats.add(static_cast<double>(t.events));
    result.time_stats.add(t.time);
    if (!t.silent) continue;
    ++result.silent_count;
    if (!crn_->output().has_value()) continue;
    const math::Int y = crn_->output_count(t.final_config);
    result.output_stats.add(static_cast<double>(y));
    if (first_output) {
      result.output = y;
      first_output = false;
    } else if (y != result.output) {
      result.output_consistent = false;
    }
  }
  EnsembleMetrics& metrics = EnsembleMetrics::get();
  metrics.runs.inc();
  metrics.events.inc(result.total_events);
  metrics.trajectories.observe(static_cast<double>(count));
  run_span.arg("events", static_cast<std::int64_t>(result.total_events));
  return result;
}

EnsembleResult EnsembleRunner::run_for_input(
    const fn::Point& x, const EnsembleOptions& options) const {
  return run(crn_->initial_configuration(x), options);
}

}  // namespace crnkit::sim
