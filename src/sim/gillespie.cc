#include "sim/gillespie.h"

#include <algorithm>

#include "math/check.h"
#include "sim/fast_random.h"

namespace crnkit::sim {

double propensity(const crn::Reaction& reaction, const crn::Config& config) {
  double a = 1.0;
  for (const crn::Term& t : reaction.reactants()) {
    const math::Int c = config[static_cast<std::size_t>(t.species)];
    if (c < t.count) return 0.0;
    // C(c, r) computed incrementally to stay in double range.
    for (math::Int i = 0; i < t.count; ++i) {
      a *= static_cast<double>(c - i) / static_cast<double>(i + 1);
    }
  }
  return a;
}

namespace {

/// Binary sum tree over per-reaction propensities: point update and
/// proportional sampling in O(log R). Parent nodes are recomputed from
/// their children on every update, so node values are exact sums of the
/// current leaves — no incremental drift.
class PropensityTree {
 public:
  explicit PropensityTree(std::size_t n) : n_(n) {
    leaves_ = 1;
    while (leaves_ < n_) leaves_ <<= 1;
    if (leaves_ == 0) leaves_ = 1;
    tree_.assign(2 * leaves_, 0.0);
  }

  void set(std::size_t j, double value) {
    std::size_t i = leaves_ + j;
    tree_[i] = value;
    for (i >>= 1; i >= 1; i >>= 1) {
      tree_[i] = tree_[2 * i] + tree_[2 * i + 1];
    }
  }

  [[nodiscard]] double get(std::size_t j) const {
    return tree_[leaves_ + j];
  }

  [[nodiscard]] double total() const { return tree_[1]; }

  /// Index of the leaf containing prefix mass `x` in [0, total()).
  [[nodiscard]] std::size_t sample(double x) const {
    std::size_t i = 1;
    while (i < leaves_) {
      i *= 2;
      if (x >= tree_[i]) {
        x -= tree_[i];
        ++i;
      }
    }
    std::size_t j = i - leaves_;
    if (j >= n_) j = n_ - 1;  // float edge case at the right boundary
    return j;
  }

 private:
  std::size_t n_;
  std::size_t leaves_;
  std::vector<double> tree_;
};

}  // namespace

namespace {

/// Direct method with a flat propensity array: O(deg) dependency updates,
/// incremental total (exactly resynced every kResyncPeriod events so
/// floating drift never accumulates), and linear-scan selection. The scan
/// is O(R) but branch-light and cache-local — fastest for the small-R
/// networks the compilers emit. Used when R <= kSmallNetwork.
constexpr std::size_t kSmallNetwork = 64;
constexpr std::uint64_t kResyncPeriod = 8192;

GillespieResult direct_flat(const CompiledNetwork& net,
                            const crn::Config& initial, Rng& rng,
                            const GillespieOptions& options) {
  const std::size_t n = net.reaction_count();
  GillespieResult result;
  result.final_config = initial;
  FastStream stream(rng);
  const ExpZiggurat& zig = ExpZiggurat::instance();

  const bool has_rates = !options.rates.empty();
  std::vector<double> a(n);
  std::size_t num_active = 0;
  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double rate = has_rates ? options.rates[j] : 1.0;
    a[j] = rate * net.propensity(j, result.final_config);
    if (a[j] > 0.0) ++num_active;
    total += a[j];
  }

  const bool has_observer = static_cast<bool>(options.observer);
  std::uint64_t until_resync = kResyncPeriod;
  while (result.events < options.max_events && result.time < options.max_time) {
    if (num_active == 0) {
      result.exhausted = true;
      return result;
    }
    if (--until_resync == 0 || total <= 0.0) {
      // Periodic exact resync (and immediately when drift would zero the
      // total while reactions are still active).
      total = 0.0;
      for (std::size_t j = 0; j < n; ++j) total += a[j];
      until_resync = kResyncPeriod;
    }
    result.time += zig.sample(stream) / total;
    if (result.time >= options.max_time) break;

    double u = stream.uniform() * total;
    std::size_t pick = n;
    std::size_t last_active = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (a[j] <= 0.0) continue;
      last_active = j;
      if (u < a[j]) {
        pick = j;
        break;
      }
      u -= a[j];
    }
    if (pick == n) pick = last_active;  // drift pushed u past the end

    net.apply(pick, result.final_config);
    ++result.events;
    if (has_observer) options.observer(result.time, result.final_config);

    for (const std::uint32_t k : net.dependents(pick)) {
      const double a_old = a[k];
      const double rate = has_rates ? options.rates[k] : 1.0;
      const double a_new = rate * net.propensity(k, result.final_config);
      if ((a_old > 0.0) != (a_new > 0.0)) {
        num_active += (a_new > 0.0) ? 1 : -1;
      }
      a[k] = a_new;
      total += a_new - a_old;
    }
  }
  result.exhausted = num_active == 0;
  return result;
}

GillespieResult direct_tree(const CompiledNetwork& net,
                            const crn::Config& initial, Rng& rng,
                            const GillespieOptions& options) {
  const std::size_t n = net.reaction_count();
  GillespieResult result;
  result.final_config = initial;
  FastStream stream(rng);
  const ExpZiggurat& zig = ExpZiggurat::instance();

  const bool has_rates = !options.rates.empty();
  PropensityTree tree(n);
  std::size_t num_active = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double rate = has_rates ? options.rates[j] : 1.0;
    const double a = rate * net.propensity(j, result.final_config);
    if (a > 0.0) ++num_active;
    tree.set(j, a);
  }

  const bool has_observer = static_cast<bool>(options.observer);
  while (result.events < options.max_events && result.time < options.max_time) {
    if (num_active == 0) {
      result.exhausted = true;
      return result;
    }
    const double total = tree.total();
    result.time += zig.sample(stream) / total;
    if (result.time >= options.max_time) break;

    std::size_t pick = tree.sample(stream.uniform() * total);
    if (tree.get(pick) <= 0.0) {
      // Floating-point boundary: fall back to the first active reaction.
      for (pick = 0; pick < n && tree.get(pick) <= 0.0; ++pick) {
      }
      if (pick == n) {
        result.exhausted = true;
        return result;
      }
    }
    net.apply(pick, result.final_config);
    ++result.events;
    if (has_observer) options.observer(result.time, result.final_config);

    for (const std::uint32_t k : net.dependents(pick)) {
      const double a_old = tree.get(k);
      const double rate = has_rates ? options.rates[k] : 1.0;
      const double a_new = rate * net.propensity(k, result.final_config);
      if ((a_old > 0.0) != (a_new > 0.0)) {
        num_active += (a_new > 0.0) ? 1 : -1;
      }
      tree.set(k, a_new);
    }
  }
  result.exhausted = num_active == 0;
  return result;
}

}  // namespace

GillespieResult simulate_direct(const CompiledNetwork& net,
                                const crn::Config& initial, Rng& rng,
                                const GillespieOptions& options) {
  const std::size_t n = net.reaction_count();
  require(options.rates.empty() || options.rates.size() == n,
          "simulate_direct: options.rates has " +
              std::to_string(options.rates.size()) +
              " entries for a network with " + std::to_string(n) +
              " reactions");
  if (n == 0) {
    GillespieResult result;
    result.final_config = initial;
    result.exhausted = true;
    return result;
  }
  return n <= kSmallNetwork ? direct_flat(net, initial, rng, options)
                            : direct_tree(net, initial, rng, options);
}

GillespieResult simulate_direct(const crn::Crn& crn,
                                const crn::Config& initial, Rng& rng,
                                const GillespieOptions& options) {
  return simulate_direct(CompiledNetwork(crn), initial, rng, options);
}

GillespieResult simulate_direct_dense(const crn::Crn& crn,
                                      const crn::Config& initial, Rng& rng,
                                      const GillespieOptions& options) {
  require(options.rates.empty() ||
              options.rates.size() == crn.reactions().size(),
          "simulate_direct_dense: options.rates has " +
              std::to_string(options.rates.size()) +
              " entries for a network with " +
              std::to_string(crn.reactions().size()) + " reactions");
  GillespieResult result;
  result.final_config = initial;

  const std::size_t n = crn.reactions().size();
  std::vector<double> a(n, 0.0);
  auto rate_of = [&](std::size_t j) {
    return options.rates.empty() ? 1.0 : options.rates[j];
  };

  while (result.events < options.max_events && result.time < options.max_time) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a[j] = rate_of(j) * propensity(crn.reactions()[j], result.final_config);
      total += a[j];
    }
    if (total <= 0.0) {
      result.exhausted = true;
      return result;
    }
    result.time += rng.exponential(total);
    if (result.time >= options.max_time) break;
    // Pick reaction proportionally to propensity.
    double u = rng.uniform() * total;
    std::size_t pick = n - 1;
    for (std::size_t j = 0; j < n; ++j) {
      if (u < a[j]) {
        pick = j;
        break;
      }
      u -= a[j];
    }
    crn.reactions()[pick].apply_in_place(result.final_config);
    ++result.events;
    if (options.observer) options.observer(result.time, result.final_config);
  }
  result.exhausted = crn.is_silent(result.final_config);
  return result;
}

}  // namespace crnkit::sim
