#include "sim/gillespie.h"

#include "math/check.h"

namespace crnkit::sim {

double propensity(const crn::Reaction& reaction, const crn::Config& config) {
  double a = 1.0;
  for (const crn::Term& t : reaction.reactants()) {
    const math::Int c = config[static_cast<std::size_t>(t.species)];
    if (c < t.count) return 0.0;
    // C(c, r) computed incrementally to stay in double range.
    for (math::Int i = 0; i < t.count; ++i) {
      a *= static_cast<double>(c - i) / static_cast<double>(i + 1);
    }
  }
  return a;
}

GillespieResult simulate_direct(const crn::Crn& crn,
                                const crn::Config& initial, Rng& rng,
                                const GillespieOptions& options) {
  require(options.rates.empty() ||
              options.rates.size() == crn.reactions().size(),
          "simulate_direct: rates size mismatch");
  GillespieResult result;
  result.final_config = initial;

  const std::size_t n = crn.reactions().size();
  std::vector<double> a(n, 0.0);
  auto rate_of = [&](std::size_t j) {
    return options.rates.empty() ? 1.0 : options.rates[j];
  };

  while (result.events < options.max_events && result.time < options.max_time) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a[j] = rate_of(j) * propensity(crn.reactions()[j], result.final_config);
      total += a[j];
    }
    if (total <= 0.0) {
      result.exhausted = true;
      return result;
    }
    result.time += rng.exponential(total);
    if (result.time >= options.max_time) break;
    // Pick reaction proportionally to propensity.
    double u = rng.uniform() * total;
    std::size_t pick = n - 1;
    for (std::size_t j = 0; j < n; ++j) {
      if (u < a[j]) {
        pick = j;
        break;
      }
      u -= a[j];
    }
    crn.reactions()[pick].apply_in_place(result.final_config);
    ++result.events;
    if (options.observer) options.observer(result.time, result.final_config);
  }
  result.exhausted = crn.is_silent(result.final_config);
  return result;
}

}  // namespace crnkit::sim
