#include "sim/stats.h"

#include <cmath>
#include <sstream>

#include "math/check.h"

namespace crnkit::sim {

void SampleStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / count_;
  m2_ += delta * (value - mean_);
}

double SampleStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double SampleStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / (count_ - 1);
}

double SampleStats::stddev() const { return std::sqrt(variance()); }

double SampleStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

std::string SampleStats::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << mean() << " +- " << ci95_halfwidth() << " (n=" << count_ << ")";
  return os.str();
}

ConvergenceStats measure_convergence(const crn::Crn& crn, const fn::Point& x,
                                     int trials, std::uint64_t seed_base) {
  require(trials >= 1, "measure_convergence: need at least one trial");
  ConvergenceStats stats;
  bool first = true;
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed_base + 7919 * static_cast<std::uint64_t>(t));
    const auto run =
        run_until_silent(crn, crn.initial_configuration(x), rng);
    ++stats.trials;
    if (!run.silent) continue;
    ++stats.silent_trials;
    stats.steps.add(static_cast<double>(run.steps));
    const math::Int y = crn.output_count(run.final_config);
    if (first) {
      stats.output = y;
      first = false;
    } else if (y != stats.output) {
      stats.output_consistent = false;
    }
  }
  return stats;
}

PopulationStats measure_population_convergence(const crn::Crn& crn,
                                               const fn::Point& x, int trials,
                                               std::uint64_t seed_base) {
  require(trials >= 1,
          "measure_population_convergence: need at least one trial");
  PopulationStats stats;
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed_base + 104729 * static_cast<std::uint64_t>(t));
    const auto run =
        run_population(crn, crn.initial_configuration(x), rng);
    ++stats.trials;
    if (!run.silent) continue;
    ++stats.silent_trials;
    stats.parallel_time.add(run.parallel_time);
    stats.interactions.add(static_cast<double>(run.interactions));
  }
  return stats;
}

}  // namespace crnkit::sim
