#include "sim/stats.h"

#include <cmath>
#include <sstream>

#include "math/check.h"
#include "sim/ensemble.h"

namespace crnkit::sim {

void SampleStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / count_;
  m2_ += delta * (value - mean_);
}

double SampleStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double SampleStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / (count_ - 1);
}

double SampleStats::stddev() const { return std::sqrt(variance()); }

double SampleStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

std::string SampleStats::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << mean() << " +- " << ci95_halfwidth() << " (n=" << count_ << ")";
  return os.str();
}

ConvergenceStats measure_convergence(const crn::Crn& crn, const fn::Point& x,
                                     int trials, std::uint64_t seed_base) {
  require(trials >= 1, "measure_convergence: need at least one trial");
  const EnsembleRunner runner(crn);
  EnsembleOptions options;
  options.trajectories = trials;
  options.seed = seed_base;
  options.method = EnsembleMethod::kSilentRun;
  const EnsembleResult batch = runner.run_for_input(x, options);

  ConvergenceStats stats;
  stats.trials = static_cast<int>(batch.trajectories.size());
  stats.silent_trials = batch.silent_count;
  stats.output_consistent = batch.output_consistent;
  stats.output = batch.output;
  for (const Trajectory& run : batch.trajectories) {
    if (run.silent) stats.steps.add(static_cast<double>(run.events));
  }
  return stats;
}

PopulationStats measure_population_convergence(const crn::Crn& crn,
                                               const fn::Point& x, int trials,
                                               std::uint64_t seed_base) {
  require(trials >= 1,
          "measure_population_convergence: need at least one trial");
  const EnsembleRunner runner(crn);
  EnsembleOptions options;
  options.trajectories = trials;
  options.seed = seed_base;
  options.method = EnsembleMethod::kPopulation;
  const EnsembleResult batch = runner.run_for_input(x, options);

  PopulationStats stats;
  stats.trials = static_cast<int>(batch.trajectories.size());
  stats.silent_trials = batch.silent_count;
  for (const Trajectory& run : batch.trajectories) {
    if (!run.silent) continue;
    stats.parallel_time.add(run.time);
    stats.interactions.add(static_cast<double>(run.events));
  }
  return stats;
}

}  // namespace crnkit::sim
