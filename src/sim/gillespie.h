// Gillespie's exact stochastic simulation algorithm, direct method
// (Gillespie 1977, the paper's reference [20] and the kinetic ground truth
// of the discrete CRN model).
//
// Propensity of reaction j in configuration c with rate constant k_j:
//   a_j(c) = k_j * prod_s C(c_s, r_{j,s})
// i.e. the number of distinct reactant combinations. The next reaction fires
// after an Exp(sum_j a_j) delay and is chosen proportionally to a_j.
//
// Two implementations of the same process law:
//  * simulate_direct — the production path, on a CompiledNetwork: after an
//    event only the propensities of dependent reactions are recomputed
//    (O(deg) instead of O(R)) and the proportional pick runs over a binary
//    sum tree (O(log R) instead of O(R)).
//  * simulate_direct_dense — the original dense implementation, kept as the
//    cross-validation reference and benchmark baseline.
#ifndef CRNKIT_SIM_GILLESPIE_H_
#define CRNKIT_SIM_GILLESPIE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "crn/network.h"
#include "sim/compiled_network.h"
#include "sim/rng.h"

namespace crnkit::sim {

struct GillespieOptions {
  std::uint64_t max_events = 10'000'000;
  double max_time = 1e300;
  /// Per-reaction rate constants; empty means all 1.0.
  std::vector<double> rates;
  /// Optional observer invoked after every event with (time, config).
  std::function<void(double, const crn::Config&)> observer;
};

struct GillespieResult {
  crn::Config final_config;
  std::uint64_t events = 0;
  double time = 0.0;
  bool exhausted = false;  ///< true iff total propensity reached zero
};

/// Exact combinatorial propensity of reaction j at `config` (rate 1.0),
/// as a double (counts can be large; callers needing exactness should use
/// the reachability layer instead).
[[nodiscard]] double propensity(const crn::Reaction& reaction,
                                const crn::Config& config);

/// Direct-method SSA from `initial` on a precompiled network. Use this
/// overload (or an EnsembleRunner) when simulating the same network many
/// times.
[[nodiscard]] GillespieResult simulate_direct(const CompiledNetwork& net,
                                              const crn::Config& initial,
                                              Rng& rng,
                                              const GillespieOptions& options =
                                                  {});

/// Direct-method SSA from `initial`; compiles `crn` and runs the compiled
/// engine.
[[nodiscard]] GillespieResult simulate_direct(const crn::Crn& crn,
                                              const crn::Config& initial,
                                              Rng& rng,
                                              const GillespieOptions& options =
                                                  {});

/// The original dense direct method: every propensity recomputed from
/// crn::Reaction terms on every event. Reference implementation for
/// cross-validation tests and the benchmark baseline; prefer
/// simulate_direct.
[[nodiscard]] GillespieResult simulate_direct_dense(
    const crn::Crn& crn, const crn::Config& initial, Rng& rng,
    const GillespieOptions& options = {});

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_GILLESPIE_H_
