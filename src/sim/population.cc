#include "sim/population.h"

#include <map>

#include "math/check.h"

namespace crnkit::sim {

using crn::SpeciesId;
using math::Int;

PopulationRunResult run_population(const crn::Crn& crn,
                                   const crn::Config& initial, Rng& rng,
                                   const PopulationRunOptions& options) {
  // Index reactions by reactant shape.
  std::map<std::pair<SpeciesId, SpeciesId>, std::vector<std::size_t>> pair_rules;
  std::map<SpeciesId, std::vector<std::size_t>> mono_rules;
  for (std::size_t j = 0; j < crn.reactions().size(); ++j) {
    const crn::Reaction& r = crn.reactions()[j];
    require(r.order() >= 1 && r.order() <= 2,
            "run_population: reaction order must be 1 or 2 (run "
            "to_bimolecular first): " +
                r.to_string(crn.species_table()));
    if (r.order() == 1) {
      mono_rules[r.reactants().front().species].push_back(j);
    } else if (r.reactants().size() == 1) {
      const SpeciesId s = r.reactants().front().species;
      pair_rules[{s, s}].push_back(j);
    } else {
      SpeciesId a = r.reactants()[0].species;
      SpeciesId b = r.reactants()[1].species;
      if (a > b) std::swap(a, b);
      pair_rules[{a, b}].push_back(j);
    }
  }

  PopulationRunResult result;
  result.final_config = initial;
  Int population = 0;
  for (const Int c : initial) population += c;

  // Samples the species of a uniformly random molecule, optionally skipping
  // one already-drawn molecule of species `skip`.
  auto sample_species = [&](std::optional<SpeciesId> skip) -> SpeciesId {
    Int total = population - (skip ? 1 : 0);
    ensure(total > 0, "run_population: sampling from empty population");
    Int target = static_cast<Int>(rng.uniform_index(
        static_cast<std::size_t>(total)));
    for (std::size_t s = 0; s < result.final_config.size(); ++s) {
      Int c = result.final_config[s];
      if (skip && static_cast<SpeciesId>(s) == *skip) --c;
      if (target < c) return static_cast<SpeciesId>(s);
      target -= c;
    }
    throw std::logic_error("run_population: sampling fell off the end");
  };

  std::uint64_t null_streak = 0;
  std::vector<std::size_t> candidates;
  while (result.interactions < options.max_interactions) {
    if (population == 0) {
      result.silent = crn.is_silent(result.final_config);
      return result;
    }
    candidates.clear();
    if (population == 1) {
      const SpeciesId a = sample_species(std::nullopt);
      const auto it = mono_rules.find(a);
      if (it != mono_rules.end()) {
        candidates = it->second;
      }
      if (candidates.empty()) {
        result.silent = crn.is_silent(result.final_config);
        return result;
      }
    } else {
      const SpeciesId a = sample_species(std::nullopt);
      const SpeciesId b = sample_species(a);
      SpeciesId lo = a;
      SpeciesId hi = b;
      if (lo > hi) std::swap(lo, hi);
      const auto pit = pair_rules.find({lo, hi});
      if (pit != pair_rules.end()) {
        candidates.insert(candidates.end(), pit->second.begin(),
                          pit->second.end());
      }
      const auto ma = mono_rules.find(a);
      if (ma != mono_rules.end()) {
        candidates.insert(candidates.end(), ma->second.begin(),
                          ma->second.end());
      }
      if (b != a) {
        const auto mb = mono_rules.find(b);
        if (mb != mono_rules.end()) {
          candidates.insert(candidates.end(), mb->second.begin(),
                            mb->second.end());
        }
      }
    }

    result.parallel_time += 1.0 / static_cast<double>(population);
    ++result.interactions;

    if (candidates.empty()) {
      ++result.null_interactions;
      ++null_streak;
      // Moderate null streak: check global silence. The check is cheap
      // (reactions x terms), so checking early keeps the measured parallel
      // time from being dominated by a post-convergence null tail.
      if (null_streak >= 32 + 2 * static_cast<std::uint64_t>(population)) {
        if (crn.is_silent(result.final_config)) {
          result.silent = true;
          return result;
        }
        null_streak = 0;
      }
      continue;
    }
    null_streak = 0;
    const std::size_t j = candidates[rng.uniform_index(candidates.size())];
    const crn::Reaction& r = crn.reactions()[j];
    r.apply_in_place(result.final_config);
    for (const crn::Term& t : r.reactants()) population -= t.count;
    for (const crn::Term& t : r.products()) population += t.count;
  }
  result.silent = crn.is_silent(result.final_config);
  return result;
}

}  // namespace crnkit::sim
