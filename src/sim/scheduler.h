// The random silent-run scheduler: repeatedly fires a uniformly random
// applicable reaction until the configuration is silent (no reaction
// applicable) or a step bound is hit.
//
// For the convergent CRNs produced by this library's compilers, every fair
// execution reaches a silent configuration, and a silent configuration is
// stable; so silent-run output equals the stably computed value. The
// exhaustive checker in verify/ proves this for small inputs; the scheduler
// scales the check to compositions whose reachable space is too large to
// enumerate.
//
// Runs on CompiledNetwork: the set of applicable reactions is maintained
// incrementally through the dependency graph (O(deg) per step instead of
// O(R)), with O(1) uniform sampling from the live set.
#ifndef CRNKIT_SIM_SCHEDULER_H_
#define CRNKIT_SIM_SCHEDULER_H_

#include <cstdint>

#include "crn/network.h"
#include "sim/compiled_network.h"
#include "sim/rng.h"

namespace crnkit::sim {

struct SilentRunResult {
  crn::Config final_config;
  std::uint64_t steps = 0;
  bool silent = false;  ///< false iff the step bound was hit first
};

struct SilentRunOptions {
  std::uint64_t max_steps = 5'000'000;
};

/// Runs from `initial` until silence (uniform choice among applicable
/// reactions at every step) on a precompiled network.
[[nodiscard]] SilentRunResult run_until_silent(
    const CompiledNetwork& net, const crn::Config& initial, Rng& rng,
    const SilentRunOptions& options = {});

/// Convenience overload: compiles `crn` and runs the compiled engine.
[[nodiscard]] SilentRunResult run_until_silent(
    const crn::Crn& crn, const crn::Config& initial, Rng& rng,
    const SilentRunOptions& options = {});

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_SCHEDULER_H_
