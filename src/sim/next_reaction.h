// Gibson-Bruck next-reaction method: an exact SSA equivalent to the direct
// method but with per-reaction putative firing times kept in an indexed
// priority queue and propensity updates restricted to reactions that share
// species with the fired one. Asymptotically faster for CRNs with many
// reactions touching disjoint species — e.g. the composed circuits the
// Theorem 5.2 compiler emits.
//
// Runs on CompiledNetwork: the dependency graph is precompiled once per
// network instead of rebuilt per simulation call.
#ifndef CRNKIT_SIM_NEXT_REACTION_H_
#define CRNKIT_SIM_NEXT_REACTION_H_

#include "sim/gillespie.h"

namespace crnkit::sim {

/// Next-reaction-method SSA from `initial` on a precompiled network.
/// Semantically identical to simulate_direct (same exact process law,
/// different random stream usage).
[[nodiscard]] GillespieResult simulate_next_reaction(
    const CompiledNetwork& net, const crn::Config& initial, Rng& rng,
    const GillespieOptions& options = {});

/// Convenience overload: compiles `crn` and runs the compiled engine.
[[nodiscard]] GillespieResult simulate_next_reaction(
    const crn::Crn& crn, const crn::Config& initial, Rng& rng,
    const GillespieOptions& options = {});

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_NEXT_REACTION_H_
