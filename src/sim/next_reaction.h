// Gibson-Bruck next-reaction method: an exact SSA equivalent to the direct
// method but with per-reaction putative firing times kept in an indexed
// priority queue and propensity updates restricted to reactions that share
// species with the fired one. Asymptotically faster for CRNs with many
// reactions touching disjoint species — e.g. the composed circuits the
// Theorem 5.2 compiler emits.
#ifndef CRNKIT_SIM_NEXT_REACTION_H_
#define CRNKIT_SIM_NEXT_REACTION_H_

#include "sim/gillespie.h"

namespace crnkit::sim {

/// Next-reaction-method SSA from `initial`. Semantically identical to
/// simulate_direct (same exact process law, different random stream usage).
[[nodiscard]] GillespieResult simulate_next_reaction(
    const crn::Crn& crn, const crn::Config& initial, Rng& rng,
    const GillespieOptions& options = {});

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_NEXT_REACTION_H_
