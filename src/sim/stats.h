// Convergence statistics over repeated stochastic runs: sample mean,
// variance, min/max, and normal-approximation confidence half-widths for
// events, SSA time, and population parallel time. The paper's conclusion
// raises computation *time* as an open direction; these estimators back
// the convergence-time tables (bench/table_convergence) with defensible
// uncertainty instead of single-run numbers.
#ifndef CRNKIT_SIM_STATS_H_
#define CRNKIT_SIM_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crn/network.h"
#include "sim/population.h"
#include "sim/scheduler.h"

namespace crnkit::sim {

/// Running summary of a scalar sample.
class SampleStats {
 public:
  void add(double value);

  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// 95% normal-approximation confidence half-width of the mean.
  [[nodiscard]] double ci95_halfwidth() const;

  [[nodiscard]] std::string to_string() const;

 private:
  int count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Aggregate convergence statistics of repeated silent runs on one input.
struct ConvergenceStats {
  SampleStats steps;          ///< reactions fired until silence
  int trials = 0;
  int silent_trials = 0;
  bool output_consistent = true;  ///< all silent runs agreed on the output
  math::Int output = 0;           ///< the common output (if consistent)
};

/// Runs `trials` seeded silent runs from I_x.
[[nodiscard]] ConvergenceStats measure_convergence(
    const crn::Crn& crn, const fn::Point& x, int trials,
    std::uint64_t seed_base = 1000);

/// Population-scheduler analogue, measuring parallel time.
struct PopulationStats {
  SampleStats parallel_time;
  SampleStats interactions;
  int trials = 0;
  int silent_trials = 0;
};

[[nodiscard]] PopulationStats measure_population_convergence(
    const crn::Crn& crn, const fn::Point& x, int trials,
    std::uint64_t seed_base = 2000);

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_STATS_H_
