// Deterministic random source for all stochastic components. A thin wrapper
// over std::mt19937_64 so simulations are reproducible from a single seed.
#ifndef CRNKIT_SIM_RNG_H_
#define CRNKIT_SIM_RNG_H_

#include <cstdint>
#include <random>

namespace crnkit::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform integer in [0, bound); bound must be positive.
  [[nodiscard]] std::size_t uniform_index(std::size_t bound) {
    return std::uniform_int_distribution<std::size_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Exponential with the given rate (> 0).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_RNG_H_
