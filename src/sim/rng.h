// Deterministic random source for all stochastic components. A thin wrapper
// over std::mt19937_64 so simulations are reproducible from a single seed.
#ifndef CRNKIT_SIM_RNG_H_
#define CRNKIT_SIM_RNG_H_

#include <cstdint>
#include <random>

namespace crnkit::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform integer in [0, bound); bound must be positive.
  [[nodiscard]] std::size_t uniform_index(std::size_t bound) {
    return std::uniform_int_distribution<std::size_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Exponential with the given rate (> 0).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  /// Decorrelated per-stream seed for stream `index` of a base seed
  /// (splitmix64 finalizer). Used by the ensemble runner so trajectory i's
  /// random stream depends only on (base, i) — never on thread scheduling.
  [[nodiscard]] static std::uint64_t derive_stream_seed(std::uint64_t base,
                                                        std::uint64_t index) {
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_RNG_H_
