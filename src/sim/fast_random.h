// Fast random primitives for the simulation hot loops.
//
// The public Rng (mt19937_64 + std::distributions) costs ~30ns per SSA
// event in distribution overhead alone. The engines instead derive a
// FastStream from the caller's Rng at simulation start: a xoshiro256++
// generator (~2ns per draw) seeded by four mt19937_64 draws, plus a
// Marsaglia-Tsang ziggurat sampler for Exp(1) (~4ns vs ~18ns for
// std::exponential_distribution). Everything remains deterministic in the
// caller's seed: the derived stream is a pure function of the Rng state.
//
// The ziggurat tables are built once per process (magic-static init) from
// first principles; the layer recursion is the standard one for
// f(x) = exp(-x) with 256 strips and tail cutoff R.
#ifndef CRNKIT_SIM_FAST_RANDOM_H_
#define CRNKIT_SIM_FAST_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "sim/rng.h"

namespace crnkit::sim {

/// xoshiro256++ (Blackman-Vigna), a small-state generator whose full
/// 256-bit state is seeded from the caller's Rng.
class FastStream {
 public:
  explicit FastStream(Rng& rng) {
    // Four mt19937_64 draws; xoshiro must not start all-zero (mt19937_64
    // cannot emit four zeros in a row from a valid state, but guard
    // anyway).
    for (int tries = 0; tries < 4; ++tries) {
      for (std::uint64_t& word : s_) word = rng.engine()();
      if ((s_[0] | s_[1] | s_[2] | s_[3]) != 0) break;
    }
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1), 53 random bits.
  double uniform() { return static_cast<double>((*this)() >> 11) * kInv53; }

  /// Uniform index in [0, bound), bound > 0 — Lemire's unbiased
  /// multiply-shift rejection method (no division on the hot path).
  std::size_t uniform_index(std::size_t bound) {
    const std::uint64_t n = bound;
    std::uint64_t x = (*this)();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<unsigned __int128>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::size_t>(m >> 64);
  }

 private:
  static constexpr double kInv53 = 1.0 / 9007199254740992.0;  // 2^-53
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

/// Ziggurat sampler for the Exp(1) distribution.
class ExpZiggurat {
 public:
  static const ExpZiggurat& instance() {
    static const ExpZiggurat z;
    return z;
  }

  /// One Exp(1) variate from `stream`.
  double sample(FastStream& stream) const {
    for (;;) {
      const std::uint64_t u = stream();
      const std::size_t i = u & 255u;
      const std::uint64_t r = u >> 8;  // 56 uniform bits
      const double x = static_cast<double>(r) * we_[i];
      if (r < ke_[i]) return x;  // inside the strip: ~98.9% of draws
      if (i == 0) {
        // Tail beyond R: Exp(1) memorylessness, x = R + Exp(1).
        return kR - std::log(1.0 - stream.uniform());
      }
      if (fe_[i] + stream.uniform() * (fe_[i - 1] - fe_[i]) <
          std::exp(-x)) {
        return x;  // wedge acceptance
      }
    }
  }

 private:
  static constexpr double kR = 7.69711747013104972;  // tail cutoff
  static constexpr double kV = 3.949659822581572e-3;  // strip area
  static constexpr double kM = 72057594037927936.0;   // 2^56

  ExpZiggurat() {
    const double f_r = std::exp(-kR);
    const double q = kV / f_r;  // virtual width of the base strip
    ke_[0] = static_cast<std::uint64_t>((kR / q) * kM);
    ke_[1] = 0;
    we_[0] = q / kM;
    we_[255] = kR / kM;
    fe_[0] = 1.0;
    fe_[255] = f_r;
    double x_next = kR;
    for (int i = 254; i >= 1; --i) {
      const double x = -std::log(kV / x_next + std::exp(-x_next));
      ke_[i + 1] = static_cast<std::uint64_t>((x / x_next) * kM);
      x_next = x;
      fe_[i] = std::exp(-x);
      we_[i] = x / kM;
    }
  }

  std::uint64_t ke_[256];
  double we_[256];
  double fe_[256];
};

/// Exp(rate) variate, rate > 0.
inline double fast_exponential(FastStream& stream, double rate) {
  return ExpZiggurat::instance().sample(stream) / rate;
}

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_FAST_RANDOM_H_
