#include "sim/scheduler.h"

namespace crnkit::sim {

SilentRunResult run_until_silent(const crn::Crn& crn,
                                 const crn::Config& initial, Rng& rng,
                                 const SilentRunOptions& options) {
  SilentRunResult result;
  result.final_config = initial;
  std::vector<std::size_t> applicable;
  applicable.reserve(crn.reactions().size());
  for (std::uint64_t step = 0; step < options.max_steps; ++step) {
    applicable.clear();
    for (std::size_t i = 0; i < crn.reactions().size(); ++i) {
      if (crn.reactions()[i].applicable(result.final_config)) {
        applicable.push_back(i);
      }
    }
    if (applicable.empty()) {
      result.silent = true;
      result.steps = step;
      return result;
    }
    const std::size_t pick = applicable[rng.uniform_index(applicable.size())];
    crn.reactions()[pick].apply_in_place(result.final_config);
  }
  result.steps = options.max_steps;
  result.silent = crn.is_silent(result.final_config);
  return result;
}

}  // namespace crnkit::sim
