#include "sim/scheduler.h"

#include <vector>

#include "sim/fast_random.h"

namespace crnkit::sim {

SilentRunResult run_until_silent(const CompiledNetwork& net,
                                 const crn::Config& initial, Rng& rng,
                                 const SilentRunOptions& options) {
  SilentRunResult result;
  result.final_config = initial;
  FastStream stream(rng);
  const std::size_t n = net.reaction_count();

  // Live applicable set: a swap-remove vector plus an index map, so uniform
  // sampling is O(1) and membership updates are O(1).
  std::vector<std::uint32_t> live;
  constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
  std::vector<std::size_t> pos(n, kAbsent);
  live.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (net.applicable(j, result.final_config)) {
      pos[j] = live.size();
      live.push_back(static_cast<std::uint32_t>(j));
    }
  }
  auto set_live = [&](std::size_t j, bool applicable) {
    const bool was = pos[j] != kAbsent;
    if (applicable == was) return;
    if (applicable) {
      pos[j] = live.size();
      live.push_back(static_cast<std::uint32_t>(j));
    } else {
      const std::size_t hole = pos[j];
      const std::uint32_t moved = live.back();
      live[hole] = moved;
      pos[moved] = hole;
      live.pop_back();
      pos[j] = kAbsent;
    }
  };

  for (std::uint64_t step = 0; step < options.max_steps; ++step) {
    if (live.empty()) {
      result.silent = true;
      result.steps = step;
      return result;
    }
    const std::size_t pick = live[stream.uniform_index(live.size())];
    net.apply(pick, result.final_config);
    for (const std::uint32_t k : net.dependents(pick)) {
      set_live(k, net.applicable(k, result.final_config));
    }
  }
  result.steps = options.max_steps;
  result.silent = live.empty();
  return result;
}

SilentRunResult run_until_silent(const crn::Crn& crn,
                                 const crn::Config& initial, Rng& rng,
                                 const SilentRunOptions& options) {
  return run_until_silent(CompiledNetwork(crn), initial, rng, options);
}

}  // namespace crnkit::sim
