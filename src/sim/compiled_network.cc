#include "sim/compiled_network.h"

#include <algorithm>

#include "math/check.h"

namespace crnkit::sim {

CompiledNetwork::CompiledNetwork(const crn::Crn& crn)
    : species_count_(crn.species_count()) {
  const std::vector<crn::Reaction>& reactions = crn.reactions();
  const std::size_t n = reactions.size();

  kinds_.resize(n, Kind::kGeneral);
  kernel_s0_.resize(n, 0);
  kernel_s1_.resize(n, 0);
  reactant_off_.assign(n + 1, 0);
  delta_off_.assign(n + 1, 0);

  // --- CSR reactants and net deltas ---
  for (std::size_t j = 0; j < n; ++j) {
    reactant_off_[j] = reactant_species_.size();
    for (const crn::Term& t : reactions[j].reactants()) {
      reactant_species_.push_back(static_cast<std::uint32_t>(t.species));
      reactant_count_.push_back(t.count);
    }

    delta_off_[j] = delta_species_.size();
    // Terms are sorted by species id on both sides; merge to net changes.
    const auto& rs = reactions[j].reactants();
    const auto& ps = reactions[j].products();
    std::size_t ri = 0;
    std::size_t pi = 0;
    while (ri < rs.size() || pi < ps.size()) {
      crn::SpeciesId s;
      math::Int delta = 0;
      if (pi == ps.size() ||
          (ri < rs.size() && rs[ri].species < ps[pi].species)) {
        s = rs[ri].species;
        delta = -rs[ri].count;
        ++ri;
      } else if (ri == rs.size() || ps[pi].species < rs[ri].species) {
        s = ps[pi].species;
        delta = ps[pi].count;
        ++pi;
      } else {
        s = rs[ri].species;
        delta = ps[pi].count - rs[ri].count;
        ++ri;
        ++pi;
      }
      if (delta != 0) {
        delta_species_.push_back(static_cast<std::uint32_t>(s));
        delta_value_.push_back(delta);
      }
    }

    // --- kernel specialisation ---
    if (rs.empty()) {
      kinds_[j] = Kind::kConstant;
    } else if (rs.size() == 1 && rs[0].count == 1) {
      kinds_[j] = Kind::kUnary;
      kernel_s0_[j] = static_cast<std::uint32_t>(rs[0].species);
    } else if (rs.size() == 1 && rs[0].count == 2) {
      kinds_[j] = Kind::kPair;
      kernel_s0_[j] = static_cast<std::uint32_t>(rs[0].species);
    } else if (rs.size() == 2 && rs[0].count == 1 && rs[1].count == 1) {
      kinds_[j] = Kind::kBinary;
      kernel_s0_[j] = static_cast<std::uint32_t>(rs[0].species);
      kernel_s1_[j] = static_cast<std::uint32_t>(rs[1].species);
    }
  }
  reactant_off_[n] = reactant_species_.size();
  delta_off_[n] = delta_species_.size();

  // --- dependency graph: j -> reactions reading a species j changes ---
  std::vector<std::vector<std::uint32_t>> readers(species_count_);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = reactant_off_[j]; i < reactant_off_[j + 1]; ++i) {
      readers[reactant_species_[i]].push_back(static_cast<std::uint32_t>(j));
    }
  }
  dep_off_.assign(n + 1, 0);
  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t tick = 0;
  std::vector<std::uint32_t> scratch;
  for (std::size_t j = 0; j < n; ++j) {
    dep_off_[j] = dep_.size();
    ++tick;
    scratch.clear();
    for (std::size_t i = delta_off_[j]; i < delta_off_[j + 1]; ++i) {
      for (const std::uint32_t k : readers[delta_species_[i]]) {
        if (stamp[k] != tick) {
          stamp[k] = tick;
          scratch.push_back(k);
        }
      }
    }
    std::sort(scratch.begin(), scratch.end());
    dep_.insert(dep_.end(), scratch.begin(), scratch.end());
    max_degree_ = std::max(max_degree_, scratch.size());
  }
  dep_off_[n] = dep_.size();
}

}  // namespace crnkit::sim
