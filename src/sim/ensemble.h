// EnsembleRunner: batched high-throughput stochastic simulation.
//
// Compiles a crn::Crn once into a CompiledNetwork, then runs many
// independent trajectories on the persistent util::TaskPool (work-stealing
// deques, parked workers — no thread spawn/join per run() call, so
// verify/simcheck's hundreds of small batches pay submission cost only).
// Each trajectory i gets its own Rng seeded by
// Rng::derive_stream_seed(options.seed, i), and results are collected into
// a slot indexed by i — so the full result set (and every aggregate
// computed from it) is bit-identical for a fixed seed regardless of the
// thread count. Aggregation (sim::SampleStats over steps/events, SSA or
// parallel time, and output counts) happens after the batch, in trajectory
// order.
//
// This is the production path for verify/simcheck (randomized stable-
// computation checking on compositions too large to enumerate) and for the
// bench tables: one compile, N trajectories, all cores.
#ifndef CRNKIT_SIM_ENSEMBLE_H_
#define CRNKIT_SIM_ENSEMBLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crn/network.h"
#include "fn/function.h"
#include "sim/compiled_network.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "util/deadline.h"

namespace crnkit::sim {

/// Which per-trajectory simulator the ensemble batches.
enum class EnsembleMethod {
  kSilentRun,     ///< random silent-run scheduler (step counts)
  kDirect,        ///< Gillespie direct method on the compiled network
  kNextReaction,  ///< Gibson-Bruck next-reaction method
  kPopulation,    ///< population-protocol pair scheduler (parallel time)
};

struct EnsembleOptions {
  int trajectories = 1;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int threads = 0;
  std::uint64_t seed = 0x5eed5eedULL;
  EnsembleMethod method = EnsembleMethod::kSilentRun;
  /// Budgets, by method: silent-run steps, SSA events, pair interactions.
  std::uint64_t max_steps = 5'000'000;
  std::uint64_t max_events = 10'000'000;
  std::uint64_t max_interactions = 50'000'000;
  double max_time = 1e300;
  /// Per-reaction SSA rate constants; empty means all 1.0.
  std::vector<double> rates;
  /// Cooperative cancellation, polled before each trajectory starts:
  /// once expired, remaining trajectories are skipped (marked in their
  /// slot and counted in EnsembleResult::cancelled_count) and the batch
  /// returns with whatever completed. Note a partially-cancelled batch
  /// is NOT seed-reproducible — callers must treat it as degraded.
  const util::CancelToken* cancel = nullptr;
};

/// One trajectory's outcome. `events` counts steps / SSA events / pair
/// interactions depending on the method; `time` is SSA time (kDirect,
/// kNextReaction) or parallel time (kPopulation), 0 for kSilentRun.
struct Trajectory {
  crn::Config final_config;
  std::uint64_t events = 0;
  double time = 0.0;
  bool silent = false;  ///< reached a silent configuration within budget
  bool skipped = false;  ///< never ran: the batch's cancel token expired
};

struct EnsembleResult {
  std::vector<Trajectory> trajectories;  ///< indexed by trajectory id
  std::uint64_t total_events = 0;
  double wall_seconds = 0.0;  ///< wall time of the whole batch
  int silent_count = 0;
  int cancelled_count = 0;  ///< trajectories skipped by an expired token

  SampleStats events_stats;  ///< per-trajectory steps/events/interactions
  SampleStats time_stats;    ///< per-trajectory SSA or parallel time
  SampleStats output_stats;  ///< per-trajectory output counts (if declared)

  /// All silent trajectories agreed on the output count.
  bool output_consistent = true;
  math::Int output = 0;  ///< the common output (meaningful if consistent)

  /// Aggregate throughput of the batch.
  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(total_events) / wall_seconds
               : 0.0;
  }

  [[nodiscard]] std::string summary() const;
};

class EnsembleRunner {
 public:
  /// Compiles `crn`. The Crn must outlive the runner (the population
  /// scheduler and output accounting read it).
  explicit EnsembleRunner(const crn::Crn& crn);

  [[nodiscard]] const CompiledNetwork& compiled() const { return compiled_; }

  /// Runs options.trajectories independent trajectories from `initial`.
  [[nodiscard]] EnsembleResult run(const crn::Config& initial,
                                   const EnsembleOptions& options) const;

  /// Runs from the paper's initial configuration I_x.
  [[nodiscard]] EnsembleResult run_for_input(
      const fn::Point& x, const EnsembleOptions& options) const;

 private:
  const crn::Crn* crn_;
  CompiledNetwork compiled_;
};

}  // namespace crnkit::sim

#endif  // CRNKIT_SIM_ENSEMBLE_H_
