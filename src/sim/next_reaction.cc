#include "sim/next_reaction.h"

#include <cmath>
#include <limits>
#include <vector>

#include "math/check.h"
#include "sim/fast_random.h"

namespace crnkit::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Binary min-heap over reaction indices keyed by putative time, with
/// an index map for decrease/increase-key (the Gibson-Bruck structure).
class IndexedPriorityQueue {
 public:
  explicit IndexedPriorityQueue(std::size_t n)
      : keys_(n, kInf), heap_(n), pos_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      heap_[i] = i;
      pos_[i] = i;
    }
  }

  [[nodiscard]] std::size_t top() const { return heap_.front(); }
  [[nodiscard]] double key(std::size_t item) const { return keys_[item]; }

  void update(std::size_t item, double key) {
    keys_[item] = key;
    sift_up(pos_[item]);
    sift_down(pos_[item]);
  }

 private:
  void swap_nodes(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (keys_[heap_[parent]] <= keys_[heap_[i]]) break;
      swap_nodes(i, parent);
      i = parent;
    }
  }
  void sift_down(std::size_t i) {
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      std::size_t best = i;
      if (left < heap_.size() && keys_[heap_[left]] < keys_[heap_[best]]) {
        best = left;
      }
      if (right < heap_.size() && keys_[heap_[right]] < keys_[heap_[best]]) {
        best = right;
      }
      if (best == i) break;
      swap_nodes(i, best);
      i = best;
    }
  }

  std::vector<double> keys_;
  std::vector<std::size_t> heap_;  // heap of items
  std::vector<std::size_t> pos_;   // item -> heap position
};

}  // namespace

GillespieResult simulate_next_reaction(const CompiledNetwork& net,
                                       const crn::Config& initial, Rng& rng,
                                       const GillespieOptions& options) {
  const std::size_t n = net.reaction_count();
  require(options.rates.empty() || options.rates.size() == n,
          "simulate_next_reaction: options.rates has " +
              std::to_string(options.rates.size()) +
              " entries for a network with " + std::to_string(n) +
              " reactions");
  GillespieResult result;
  result.final_config = initial;
  if (n == 0) {
    result.exhausted = true;
    return result;
  }

  auto rate_of = [&](std::size_t j) {
    return options.rates.empty() ? 1.0 : options.rates[j];
  };

  FastStream stream(rng);
  auto exp_draw = [&](double rate) { return fast_exponential(stream, rate); };

  std::vector<double> a(n);
  IndexedPriorityQueue queue(n);
  for (std::size_t j = 0; j < n; ++j) {
    a[j] = rate_of(j) * net.propensity(j, result.final_config);
    queue.update(j, a[j] > 0.0 ? exp_draw(a[j]) : kInf);
  }

  while (result.events < options.max_events) {
    const std::size_t j = queue.top();
    const double t_next = queue.key(j);
    if (t_next == kInf) {
      result.exhausted = true;
      return result;
    }
    if (t_next >= options.max_time) {
      result.time = options.max_time;
      break;
    }
    result.time = t_next;
    net.apply(j, result.final_config);
    ++result.events;
    if (options.observer) options.observer(result.time, result.final_config);

    bool redrew_self = false;
    for (const std::uint32_t k : net.dependents(j)) {
      if (k == j) {
        // The fired reaction always draws a fresh exponential.
        a[j] = rate_of(j) * net.propensity(j, result.final_config);
        queue.update(j,
                     a[j] > 0.0 ? result.time + exp_draw(a[j]) : kInf);
        redrew_self = true;
        continue;
      }
      const double a_old = a[k];
      a[k] = rate_of(k) * net.propensity(k, result.final_config);
      if (a[k] <= 0.0) {
        queue.update(k, kInf);
      } else if (a_old > 0.0 && queue.key(k) != kInf) {
        // Reuse the old exponential (Gibson-Bruck time rescaling).
        queue.update(k,
                     result.time + (a_old / a[k]) * (queue.key(k) -
                                                     result.time));
      } else {
        queue.update(k, result.time + exp_draw(a[k]));
      }
    }
    if (!redrew_self) {
      // j's propensity is unchanged (its deltas miss its own reactants,
      // e.g. catalytic or source reactions), but its clock has fired and
      // must be rescheduled with a fresh exponential.
      queue.update(j,
                   a[j] > 0.0 ? result.time + exp_draw(a[j]) : kInf);
    }
  }
  result.exhausted = queue.key(queue.top()) == kInf;
  return result;
}

GillespieResult simulate_next_reaction(const crn::Crn& crn,
                                       const crn::Config& initial, Rng& rng,
                                       const GillespieOptions& options) {
  return simulate_next_reaction(CompiledNetwork(crn), initial, rng, options);
}

}  // namespace crnkit::sim
