#include "lint/guide.h"

#include <string>

#include "lint/analyzer.h"
#include "math/check.h"
#include "math/numtheory.h"

namespace crnkit::lint {

namespace {

using math::Int;

constexpr Int kSaturated = Int{1} << 62;

Int law_value(const ConservationLaw& law, const crn::Config& initial) {
  require(law.weights.size() == initial.size(),
          "invariant guide: law/config width mismatch");
  Int acc = 0;
  for (std::size_t s = 0; s < initial.size(); ++s) {
    acc = math::checked_add(acc, math::checked_mul(law.weights[s],
                                                   initial[s]));
  }
  return acc;
}

}  // namespace

InvariantGuide make_guide(const std::vector<ConservationLaw>& laws,
                          const crn::Config& initial) {
  InvariantGuide guide;
  guide.laws = laws;
  guide.bounds.assign(initial.size(), -1);
  for (const ConservationLaw& law : laws) {
    if (!law.semiflow) continue;
    const Int value = law_value(law, initial);
    for (std::size_t s = 0; s < initial.size(); ++s) {
      if (law.weights[s] <= 0) continue;
      const Int bound = value / law.weights[s];
      if (guide.bounds[s] < 0 || bound < guide.bounds[s]) {
        guide.bounds[s] = bound;
      }
    }
  }
  guide.reachable_bound = 1;
  for (const Int b : guide.bounds) {
    if (b < 0) {
      guide.reachable_bound = -1;
      break;
    }
    if (guide.reachable_bound >= kSaturated / (b + 1)) {
      guide.reachable_bound = kSaturated;
      continue;
    }
    guide.reachable_bound *= b + 1;
  }
  return guide;
}

InvariantGuide make_guide(const crn::Crn& crn, const crn::Config& initial) {
  return make_guide(extract_conservation_laws(crn), initial);
}

std::vector<std::string> certificates(const InvariantGuide& guide,
                                      const crn::Config& initial) {
  std::vector<std::string> out;
  out.reserve(guide.laws.size());
  for (const ConservationLaw& law : guide.laws) {
    out.push_back(law.rendering + " = " +
                  std::to_string(law_value(law, initial)));
  }
  return out;
}

}  // namespace crnkit::lint
