// Severity-typed diagnostics for the static CRN analyzer. A Diagnostic is
// one finding (a dead species, an unfirable reaction, a consumed output...)
// with a stable machine-readable code, a human message, and optional
// reaction/species anchors. AnalysisReport aggregates the findings of one
// analyzer run together with the extracted conservation laws and the static
// composability screen (Lemma 2.3's syntactic half).
#ifndef CRNKIT_LINT_DIAGNOSTICS_H_
#define CRNKIT_LINT_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "math/numtheory.h"

namespace crnkit::lint {

enum class Severity { kInfo = 0, kWarn = 1, kError = 2 };

/// "info" / "warn" / "error".
[[nodiscard]] const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kInfo;
  /// Stable kebab-case code, e.g. "dead-species", "unfirable-reaction",
  /// "consumes-output", "output-never-produced".
  std::string code;
  /// Human-readable one-liner.
  std::string message;
  /// Index of the reaction this finding anchors to, or -1.
  int reaction = -1;
  /// Name of the species this finding anchors to, or "".
  std::string species;
};

/// A P-invariant with an exact integer certificate: weights w (one per
/// species, primitive: gcd 1, first nonzero positive) with w . (P - R) = 0
/// for every reaction, so w . C is constant on every reachable path.
struct ConservationLaw {
  std::vector<math::Int> weights;
  /// "x1 + 2 y - z" style rendering over species names.
  std::string rendering;
  /// All weights >= 0 (a P-semiflow): then w bounds every covered species
  /// count by w . I_x / w[s].
  bool semiflow = false;
};

/// Result of the syntactic composability screen (the static half of
/// Lemma 2.3): a module whose reactions consume its own output species is
/// rejected before any BFS.
struct CompositionScreen {
  bool output_declared = false;
  /// No reaction uses the output as a reactant (Obs. 2.2: safe to compose).
  bool oblivious = false;
  /// Index + rendering of the first output-consuming reaction, if any.
  int offending_reaction = -1;
  std::string offending_rendering;
};

struct AnalysisReport {
  std::string crn_name;
  std::size_t species = 0;
  std::size_t reactions = 0;
  std::vector<ConservationLaw> laws;
  CompositionScreen screen;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] bool has_errors() const { return count(Severity::kError) > 0; }
};

/// Human rendering of the full report, one finding per line.
[[nodiscard]] std::string render_text(const AnalysisReport& report);

}  // namespace crnkit::lint

#endif  // CRNKIT_LINT_DIAGNOSTICS_H_
