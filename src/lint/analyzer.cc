#include "lint/analyzer.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "crn/invariants.h"
#include "math/matrix.h"

namespace crnkit::lint {

namespace {

using crn::Crn;
using crn::Reaction;
using crn::SpeciesId;
using crn::Term;
using math::Int;

std::string render_law(const Crn& crn, const std::vector<Int>& w) {
  std::ostringstream os;
  bool first = true;
  for (std::size_t s = 0; s < w.size(); ++s) {
    if (w[s] == 0) continue;
    const Int mag = w[s] < 0 ? -w[s] : w[s];
    if (first) {
      if (w[s] < 0) os << "-";
    } else {
      os << (w[s] < 0 ? " - " : " + ");
    }
    if (mag != 1) os << mag << " ";
    os << crn.species_name(static_cast<SpeciesId>(s));
    first = false;
  }
  return first ? "0" : os.str();
}

std::string render_reaction(const Crn& crn, std::size_t index) {
  return crn.reactions()[index].to_string(crn.species_table());
}

void extract_laws(const Crn& crn, AnalysisReport& report) {
  const auto basis =
      math::integer_nullspace(crn::stoichiometry_matrix(crn));
  for (const auto& w : basis) {
    ConservationLaw law;
    law.weights = w;
    law.rendering = render_law(crn, w);
    law.semiflow = std::all_of(w.begin(), w.end(),
                               [](const Int x) { return x >= 0; });
    report.laws.push_back(std::move(law));
  }
}

void species_diagnostics(const Crn& crn, AnalysisReport& report) {
  const std::size_t n = crn.species_count();
  std::vector<bool> read(n, false), written(n, false), has_role(n, false);
  for (const SpeciesId s : crn.inputs()) has_role[s] = true;
  if (crn.output()) has_role[*crn.output()] = true;
  if (crn.leader()) has_role[*crn.leader()] = true;
  for (const Reaction& r : crn.reactions()) {
    for (const Term& t : r.reactants()) read[t.species] = true;
    for (const Term& t : r.products()) written[t.species] = true;
  }
  for (std::size_t s = 0; s < n; ++s) {
    const std::string& name = crn.species_name(static_cast<SpeciesId>(s));
    if (!read[s] && !written[s] && !has_role[s]) {
      report.diagnostics.push_back(
          {Severity::kInfo, "dead-species",
           "species " + name + " appears in no reaction and has no role", -1,
           name});
    } else if (written[s] && !read[s] &&
               (!crn.output() || *crn.output() != s)) {
      report.diagnostics.push_back(
          {Severity::kInfo, "write-only-species",
           "species " + name +
               " is produced but never consumed (accumulates; not the "
               "output)",
           -1, name});
    }
  }
  // Unbounded-species note: species not covered by any P-semiflow may grow
  // without bound, so BFS budgets (not invariants) are the only cap.
  std::vector<std::string> uncovered;
  bool non_output_uncovered = false;
  for (std::size_t s = 0; s < n; ++s) {
    bool covered = false;
    for (const ConservationLaw& law : report.laws) {
      if (law.semiflow && law.weights[s] > 0) {
        covered = true;
        break;
      }
    }
    if (!covered && (read[s] || written[s] || has_role[s])) {
      uncovered.push_back(crn.species_name(static_cast<SpeciesId>(s)));
      if (!crn.output() || *crn.output() != s) non_output_uncovered = true;
    }
  }
  if (!uncovered.empty()) {
    std::string list;
    for (std::size_t i = 0; i < uncovered.size(); ++i) {
      if (i > 0) list += ", ";
      list += uncovered[i];
    }
    report.diagnostics.push_back(
        {non_output_uncovered ? Severity::kWarn : Severity::kInfo,
         "unbounded-species",
         "no P-semiflow bounds: " + list +
             " (reachable counts limited only by the exploration budget)",
         -1, ""});
  }
}

void reaction_diagnostics(const Crn& crn, AnalysisReport& report) {
  const auto& reactions = crn.reactions();
  // Duplicate / shadowed reactions. Term lists are normalized (merged,
  // sorted) by the Reaction constructor, so direct comparison is exact.
  const auto same_terms = [](const std::vector<Term>& a,
                             const std::vector<Term>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].species != b[i].species || a[i].count != b[i].count) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t j = 0; j < reactions.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (!same_terms(reactions[i].reactants(), reactions[j].reactants())) {
        continue;
      }
      if (same_terms(reactions[i].products(), reactions[j].products())) {
        report.diagnostics.push_back(
            {Severity::kWarn, "duplicate-reaction",
             "reaction #" + std::to_string(j) + " (" +
                 render_reaction(crn, j) + ") duplicates reaction #" +
                 std::to_string(i),
             static_cast<int>(j), ""});
      } else {
        report.diagnostics.push_back(
            {Severity::kInfo, "shadowed-reaction",
             "reaction #" + std::to_string(j) + " (" +
                 render_reaction(crn, j) +
                 ") shares its reactant multiset with reaction #" +
                 std::to_string(i) + " (the pair races nondeterministically)",
             static_cast<int>(j), ""});
      }
      break;
    }
  }
  // Statically unfirable reactions: least fixpoint of producible species
  // starting from the declared initial pattern (inputs + leader). This is a
  // count-insensitive over-approximation of producibility, so a species
  // outside the closure provably always has count 0 — any reaction reading
  // it can never fire. Skipped when the CRN declares no roles (the initial
  // pattern is unknown for a bare .crn file).
  if (crn.inputs().empty() && !crn.leader()) return;
  std::vector<bool> producible(crn.species_count(), false);
  for (const SpeciesId s : crn.inputs()) producible[s] = true;
  if (crn.leader()) producible[*crn.leader()] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Reaction& r : reactions) {
      const bool fireable =
          std::all_of(r.reactants().begin(), r.reactants().end(),
                      [&](const Term& t) { return producible[t.species]; });
      if (!fireable) continue;
      for (const Term& t : r.products()) {
        if (!producible[t.species]) {
          producible[t.species] = true;
          changed = true;
        }
      }
    }
  }
  for (std::size_t j = 0; j < reactions.size(); ++j) {
    for (const Term& t : reactions[j].reactants()) {
      if (producible[t.species]) continue;
      report.diagnostics.push_back(
          {Severity::kWarn, "unfirable-reaction",
           "reaction #" + std::to_string(j) + " (" + render_reaction(crn, j) +
               ") can never fire: species " + crn.species_name(t.species) +
               " is never producible from the initial pattern",
           static_cast<int>(j), crn.species_name(t.species)});
      break;
    }
  }
  // Output never produced: a declared output that no reaction produces and
  // that is not an input can only ever compute 0 — almost certainly a
  // broken module.
  if (crn.output()) {
    const SpeciesId y = *crn.output();
    const bool is_input = std::find(crn.inputs().begin(), crn.inputs().end(),
                                    y) != crn.inputs().end();
    bool produced = false;
    for (const Reaction& r : reactions) {
      if (r.product_count(y) > 0) {
        produced = true;
        break;
      }
    }
    if (!produced && !is_input) {
      report.diagnostics.push_back(
          {Severity::kError, "output-never-produced",
           "output species " + crn.species_name(y) +
               " is produced by no reaction and is not an input: the CRN "
               "can only compute 0",
           -1, crn.species_name(y)});
    }
  }
}

void composability_screen(const Crn& crn, AnalysisReport& report) {
  CompositionScreen& screen = report.screen;
  screen.output_declared = crn.output().has_value();
  if (!screen.output_declared) return;
  const SpeciesId y = *crn.output();
  screen.oblivious = true;
  const auto& reactions = crn.reactions();
  for (std::size_t j = 0; j < reactions.size(); ++j) {
    if (reactions[j].reactant_count(y) == 0) continue;
    screen.oblivious = false;
    screen.offending_reaction = static_cast<int>(j);
    screen.offending_rendering = render_reaction(crn, j);
    report.diagnostics.push_back(
        {Severity::kWarn, "consumes-output",
         "reaction #" + std::to_string(j) + " (" +
             screen.offending_rendering + ") consumes the output species " +
             crn.species_name(y) +
             ": not composable as a module (Lemma 2.3) without "
             "strip-and-recheck certification",
         static_cast<int>(j), crn.species_name(y)});
    break;
  }
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

std::size_t AnalysisReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::vector<ConservationLaw> extract_conservation_laws(const crn::Crn& crn) {
  AnalysisReport report;
  extract_laws(crn, report);
  return std::move(report.laws);
}

AnalysisReport analyze(const crn::Crn& crn) {
  AnalysisReport report;
  report.crn_name = crn.name();
  report.species = crn.species_count();
  report.reactions = crn.reactions().size();
  extract_laws(crn, report);
  composability_screen(crn, report);
  species_diagnostics(crn, report);
  reaction_diagnostics(crn, report);
  // Errors first, then warnings, then notes; stable within a severity.
  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return report;
}

std::string render_text(const AnalysisReport& report) {
  std::ostringstream os;
  os << report.crn_name << ": " << report.species << " species, "
     << report.reactions << " reactions\n";
  os << "conservation laws (" << report.laws.size() << "):\n";
  for (const ConservationLaw& law : report.laws) {
    os << "  " << law.rendering << " = const"
       << (law.semiflow ? "  [semiflow]" : "") << "\n";
  }
  if (report.screen.output_declared) {
    if (report.screen.oblivious) {
      os << "composability: output-oblivious (composable, Obs. 2.2)\n";
    } else {
      os << "composability: NOT output-oblivious; reaction #"
         << report.screen.offending_reaction << " ("
         << report.screen.offending_rendering
         << ") consumes the output (Lemma 2.3)\n";
    }
  }
  os << "diagnostics: " << report.count(Severity::kError) << " error, "
     << report.count(Severity::kWarn) << " warn, "
     << report.count(Severity::kInfo) << " info\n";
  for (const Diagnostic& d : report.diagnostics) {
    os << "  [" << severity_name(d.severity) << "] " << d.code << ": "
       << d.message << "\n";
  }
  return os.str();
}

}  // namespace crnkit::lint
