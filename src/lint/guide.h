// The invariant guide: what the static analyzer hands the exact explorer.
// Every P-semiflow w pins w . C = w . I_x on all reachable configs, so each
// covered species s obeys C[s] <= (w . I_x) / w[s]. The guide packages the
// tightest such per-species bounds plus a bound on the whole reachable
// space, letting verify/reachability.cc right-size its arena and pre-size
// its hash shards instead of growing into them, and reject any candidate
// that violates a bound with one comparison (on exact exploration the
// bounds are invariants, so rejection never fires — which is precisely why
// guided runs are bit-identical to unguided ones).
#ifndef CRNKIT_LINT_GUIDE_H_
#define CRNKIT_LINT_GUIDE_H_

#include <string>
#include <vector>

#include "crn/network.h"
#include "lint/diagnostics.h"

namespace crnkit::lint {

struct InvariantGuide {
  /// The laws the bounds were derived from (integer certificates).
  std::vector<ConservationLaw> laws;
  /// Per-species reachable-count upper bound, or -1 when no semiflow
  /// covers the species.
  std::vector<math::Int> bounds;
  /// Upper bound on the number of reachable configurations: the product of
  /// (bounds[s] + 1), saturated at 2^62; -1 when any species is unbounded.
  math::Int reachable_bound = -1;

  [[nodiscard]] bool empty() const { return laws.empty(); }
};

/// Extracts conservation laws and derives bounds for the initial
/// configuration I_x.
[[nodiscard]] InvariantGuide make_guide(const crn::Crn& crn,
                                        const crn::Config& initial);

/// Same, from laws already extracted by the analyzer.
[[nodiscard]] InvariantGuide make_guide(
    const std::vector<ConservationLaw>& laws, const crn::Config& initial);

/// Rendered invariant certificates at this initial configuration, e.g.
/// "x1 + y = 5" — the strings stamped into proof-cache entries.
[[nodiscard]] std::vector<std::string> certificates(
    const InvariantGuide& guide, const crn::Config& initial);

}  // namespace crnkit::lint

#endif  // CRNKIT_LINT_GUIDE_H_
