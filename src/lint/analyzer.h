// The static CRN analyzer: everything it reports is decided from the
// stoichiometry matrix and reaction structure alone — no configuration is
// ever explored. Passes:
//
//   1. conservation-law extraction — the integer left-nullspace of the
//      stoichiometry matrix (fraction-free elimination), yielding
//      P-invariants with exact integer certificates;
//   2. structural diagnostics — dead species, write-only species,
//      statically unfirable reactions (a reactant species is never
//      producible from the declared initial pattern), duplicate and
//      shadowed reactions, unbounded-species notes;
//   3. the static composability screen — modules consuming their own
//      output are flagged with the offending reaction (Lemma 2.3's
//      syntactic half) before any BFS runs.
#ifndef CRNKIT_LINT_ANALYZER_H_
#define CRNKIT_LINT_ANALYZER_H_

#include "crn/network.h"
#include "lint/diagnostics.h"

namespace crnkit::lint {

/// Runs all static passes over the CRN.
[[nodiscard]] AnalysisReport analyze(const crn::Crn& crn);

/// Just the conservation laws (integer P-invariant basis), for callers that
/// need the certificates without the diagnostics.
[[nodiscard]] std::vector<ConservationLaw> extract_conservation_laws(
    const crn::Crn& crn);

}  // namespace crnkit::lint

#endif  // CRNKIT_LINT_ANALYZER_H_
