// Congruence classes of Z^d modulo p (the group Z^d/pZ^d of Section 2.1).
//
// Quilt-affine periodic offsets B : Z^d/pZ^d -> Q are tables indexed by these
// classes; the Lemma 6.1 construction emits one leader state per class. We
// represent a class canonically by its representative in [0,p)^d, and also
// provide a dense index in [0, p^d) for table storage.
#ifndef CRNKIT_MATH_CONGRUENCE_H_
#define CRNKIT_MATH_CONGRUENCE_H_

#include <string>
#include <vector>

#include "math/numtheory.h"

namespace crnkit::math {

/// An element of Z^d / pZ^d, stored as its canonical representative.
class CongruenceClass {
 public:
  /// The class of x modulo p (componentwise).
  CongruenceClass(const std::vector<Int>& x, Int p);

  [[nodiscard]] Int period() const { return p_; }
  [[nodiscard]] int dimension() const { return static_cast<int>(rep_.size()); }

  /// Canonical representative in [0,p)^d.
  [[nodiscard]] const std::vector<Int>& representative() const { return rep_; }

  /// Dense index in [0, p^d).
  [[nodiscard]] Int index() const;

  /// The class of (this + e_i), where e_i is the i-th standard basis vector.
  [[nodiscard]] CongruenceClass shifted(int i) const;

  /// The class of (this + v).
  [[nodiscard]] CongruenceClass plus(const std::vector<Int>& v) const;

  /// True iff x mod p equals this class.
  [[nodiscard]] bool contains(const std::vector<Int>& x) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const CongruenceClass& a, const CongruenceClass& b) {
    return a.p_ == b.p_ && a.rep_ == b.rep_;
  }
  friend bool operator!=(const CongruenceClass& a, const CongruenceClass& b) {
    return !(a == b);
  }

 private:
  Int p_;
  std::vector<Int> rep_;
};

/// Enumerates all p^d congruence classes of Z^d/pZ^d in index order.
[[nodiscard]] std::vector<CongruenceClass> all_classes(int d, Int p);

}  // namespace crnkit::math

#endif  // CRNKIT_MATH_CONGRUENCE_H_
