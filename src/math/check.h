// Precondition / invariant checking helpers for crnkit.
//
// Following the C++ Core Guidelines (I.6, E.12-ish policy): violated
// preconditions on *library API boundaries* throw std::invalid_argument with
// a descriptive message; violated internal invariants throw std::logic_error.
// We deliberately avoid assert() so that release builds keep full checking —
// this library's value is exactness, not raw speed on malformed inputs.
#ifndef CRNKIT_MATH_CHECK_H_
#define CRNKIT_MATH_CHECK_H_

#include <stdexcept>
#include <string>

namespace crnkit {

/// Throws std::invalid_argument if `cond` is false. Use for caller errors.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument(what);
}

/// Throws std::logic_error if `cond` is false. Use for internal invariants.
inline void ensure(bool cond, const std::string& what) {
  if (!cond) throw std::logic_error(what);
}

/// Thrown when an exact integer computation would overflow 64 bits.
class OverflowError : public std::overflow_error {
 public:
  using std::overflow_error::overflow_error;
};

}  // namespace crnkit

#endif  // CRNKIT_MATH_CHECK_H_
