// Exact rational arithmetic over 64-bit integers.
//
// Quilt-affine gradients live in Q^d (Definition 5.1 of the paper), region
// geometry uses rational hyperplane data, and the analysis pipeline fits
// rational affine functions exactly — so the whole library is built on this
// type. Intermediates use __int128 and results are checked to fit in 64 bits;
// on overflow an OverflowError is thrown (never silent wraparound).
#ifndef CRNKIT_MATH_RATIONAL_H_
#define CRNKIT_MATH_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "math/numtheory.h"

namespace crnkit::math {

/// An exact rational number num/den with den > 0 and gcd(num,den) == 1.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}

  /// Integer n/1. Implicit by design: integers embed naturally in Q.
  constexpr Rational(Int n) : num_(n), den_(1) {}  // NOLINT(runtime/explicit)

  /// num/den, normalized. Throws std::invalid_argument if den == 0.
  Rational(Int num, Int den);

  [[nodiscard]] Int num() const { return num_; }
  [[nodiscard]] Int den() const { return den_; }

  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_negative() const { return num_ < 0; }
  [[nodiscard]] bool is_positive() const { return num_ > 0; }

  /// The integer value; throws std::invalid_argument unless is_integer().
  [[nodiscard]] Int as_integer() const;

  /// floor(q) as an integer.
  [[nodiscard]] Int floor() const;
  /// ceil(q) as an integer.
  [[nodiscard]] Int ceil() const;

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] std::string to_string() const;

  Rational operator-() const { return Rational(-num_, den_); }
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

 private:
  Int num_;
  Int den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& q);

/// A vector of rationals (used for gradients, hyperplane normals, points).
using RatVec = std::vector<Rational>;

/// Exact dot product of two equal-length rational vectors.
[[nodiscard]] Rational dot(const RatVec& a, const RatVec& b);

/// Exact dot product of a rational and an integer vector.
[[nodiscard]] Rational dot(const RatVec& a, const std::vector<Int>& b);

/// Componentwise sum / difference / scalar multiple.
[[nodiscard]] RatVec add(const RatVec& a, const RatVec& b);
[[nodiscard]] RatVec sub(const RatVec& a, const RatVec& b);
[[nodiscard]] RatVec scale(const Rational& c, const RatVec& a);

/// Converts an integer vector into a rational vector.
[[nodiscard]] RatVec to_rational(const std::vector<Int>& v);

/// True iff every component is zero.
[[nodiscard]] bool is_zero(const RatVec& v);

/// Least common multiple of all denominators (>= 1).
[[nodiscard]] Int common_denominator(const RatVec& v);

/// Scales v by the common denominator, returning an integer vector with the
/// same direction. Useful for clearing denominators of cone directions.
[[nodiscard]] std::vector<Int> clear_denominators(const RatVec& v);

/// Human-readable "(a, b, c)" rendering.
[[nodiscard]] std::string to_string(const RatVec& v);

}  // namespace crnkit::math

#endif  // CRNKIT_MATH_RATIONAL_H_
