#include "math/rational.h"

#include <ostream>
#include <sstream>

#include "math/check.h"

namespace crnkit::math {
namespace {

using Wide = __int128;

Int narrow(Wide v, const char* context) {
  if (v > static_cast<Wide>(INT64_MAX) || v < static_cast<Wide>(INT64_MIN)) {
    throw OverflowError(std::string(context) + ": 64-bit overflow");
  }
  return static_cast<Int>(v);
}

Wide wide_gcd(Wide a, Wide b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Wide t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Builds a normalized rational from wide intermediates.
Rational make(Wide num, Wide den) {
  require(den != 0, "Rational: zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const Wide g = num == 0 ? den : wide_gcd(num, den);
  num /= g;
  den /= g;
  return Rational(narrow(num, "Rational numerator"),
                  narrow(den, "Rational denominator"));
}

}  // namespace

Rational::Rational(Int num, Int den) : num_(num), den_(den) {
  require(den_ != 0, "Rational: zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const Int g = num_ == 0 ? den_ : gcd(num_, den_);
  num_ /= g;
  den_ /= g;
}

Int Rational::as_integer() const {
  require(den_ == 1, "Rational::as_integer: " + to_string() +
                         " is not an integer");
  return num_;
}

Int Rational::floor() const { return floor_div(num_, den_); }

Int Rational::ceil() const { return -floor_div(-num_, den_); }

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational& Rational::operator+=(const Rational& o) {
  *this = make(static_cast<Wide>(num_) * o.den_ +
                   static_cast<Wide>(o.num_) * den_,
               static_cast<Wide>(den_) * o.den_);
  return *this;
}

Rational& Rational::operator-=(const Rational& o) {
  *this = make(static_cast<Wide>(num_) * o.den_ -
                   static_cast<Wide>(o.num_) * den_,
               static_cast<Wide>(den_) * o.den_);
  return *this;
}

Rational& Rational::operator*=(const Rational& o) {
  *this = make(static_cast<Wide>(num_) * o.num_,
               static_cast<Wide>(den_) * o.den_);
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  require(o.num_ != 0, "Rational: division by zero");
  *this = make(static_cast<Wide>(num_) * o.den_,
               static_cast<Wide>(den_) * o.num_);
  return *this;
}

bool operator<(const Rational& a, const Rational& b) {
  return static_cast<__int128>(a.num_) * b.den_ <
         static_cast<__int128>(b.num_) * a.den_;
}

std::ostream& operator<<(std::ostream& os, const Rational& q) {
  return os << q.to_string();
}

Rational dot(const RatVec& a, const RatVec& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  Rational acc;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Rational dot(const RatVec& a, const std::vector<Int>& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  Rational acc;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * Rational(b[i]);
  return acc;
}

RatVec add(const RatVec& a, const RatVec& b) {
  require(a.size() == b.size(), "add: size mismatch");
  RatVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

RatVec sub(const RatVec& a, const RatVec& b) {
  require(a.size() == b.size(), "sub: size mismatch");
  RatVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

RatVec scale(const Rational& c, const RatVec& a) {
  RatVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = c * a[i];
  return out;
}

RatVec to_rational(const std::vector<Int>& v) {
  RatVec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = Rational(v[i]);
  return out;
}

bool is_zero(const RatVec& v) {
  for (const auto& q : v) {
    if (!q.is_zero()) return false;
  }
  return true;
}

Int common_denominator(const RatVec& v) {
  Int acc = 1;
  for (const auto& q : v) acc = lcm(acc, q.den());
  return acc;
}

std::vector<Int> clear_denominators(const RatVec& v) {
  const Int m = common_denominator(v);
  std::vector<Int> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = checked_mul(v[i].num(), m / v[i].den());
  }
  return out;
}

std::string to_string(const RatVec& v) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  os << ")";
  return os.str();
}

}  // namespace crnkit::math
