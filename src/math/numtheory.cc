#include "math/numtheory.h"

#include <cstdlib>

#include "math/check.h"

namespace crnkit::math {

Int gcd(Int a, Int b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

Int lcm(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  const Int g = gcd(a, b);
  return checked_mul(a / g, b);
}

Int lcm(const std::vector<Int>& values) {
  Int acc = 1;
  for (const Int v : values) acc = lcm(acc, v);
  return acc < 0 ? -acc : acc;
}

Int checked_add(Int a, Int b) {
  Int out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw OverflowError("checked_add: 64-bit overflow");
  }
  return out;
}

Int checked_mul(Int a, Int b) {
  Int out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw OverflowError("checked_mul: 64-bit overflow");
  }
  return out;
}

Int floor_div(Int a, Int b) {
  require(b != 0, "floor_div: division by zero");
  Int q = a / b;
  const Int r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

Int floor_mod(Int a, Int b) {
  require(b != 0, "floor_mod: division by zero");
  const Int r = a - floor_div(a, b) * b;
  return r;
}

std::vector<Int> mod_vec(const std::vector<Int>& x, Int p) {
  require(p > 0, "mod_vec: period must be positive");
  std::vector<Int> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = floor_mod(x[i], p);
  return out;
}

Int encode_mixed_radix(const std::vector<Int>& digits, Int p) {
  require(p > 0, "encode_mixed_radix: base must be positive");
  Int index = 0;
  Int weight = 1;
  for (const Int digit : digits) {
    require(digit >= 0 && digit < p, "encode_mixed_radix: digit out of range");
    index = checked_add(index, checked_mul(digit, weight));
    weight = checked_mul(weight, p);
  }
  return index;
}

std::vector<Int> decode_mixed_radix(Int index, Int p, int d) {
  require(p > 0 && d >= 0, "decode_mixed_radix: bad base or dimension");
  require(index >= 0, "decode_mixed_radix: negative index");
  std::vector<Int> digits(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) {
    digits[static_cast<std::size_t>(i)] = index % p;
    index /= p;
  }
  ensure(index == 0, "decode_mixed_radix: index out of range for p^d");
  return digits;
}

Int checked_pow(Int p, int d) {
  require(p >= 0 && d >= 0, "checked_pow: negative inputs");
  Int acc = 1;
  for (int i = 0; i < d; ++i) acc = checked_mul(acc, p);
  return acc;
}

}  // namespace crnkit::math
