#include "math/congruence.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::math {

CongruenceClass::CongruenceClass(const std::vector<Int>& x, Int p)
    : p_(p), rep_(mod_vec(x, p)) {
  require(p > 0, "CongruenceClass: period must be positive");
}

Int CongruenceClass::index() const { return encode_mixed_radix(rep_, p_); }

CongruenceClass CongruenceClass::shifted(int i) const {
  require(i >= 0 && i < dimension(), "CongruenceClass::shifted: bad axis");
  std::vector<Int> rep = rep_;
  rep[static_cast<std::size_t>(i)] =
      floor_mod(rep[static_cast<std::size_t>(i)] + 1, p_);
  return CongruenceClass(rep, p_);
}

CongruenceClass CongruenceClass::plus(const std::vector<Int>& v) const {
  require(v.size() == rep_.size(), "CongruenceClass::plus: size mismatch");
  std::vector<Int> rep(rep_.size());
  for (std::size_t i = 0; i < rep_.size(); ++i) {
    rep[i] = floor_mod(rep_[i] + v[i], p_);
  }
  return CongruenceClass(rep, p_);
}

bool CongruenceClass::contains(const std::vector<Int>& x) const {
  if (x.size() != rep_.size()) return false;
  for (std::size_t i = 0; i < rep_.size(); ++i) {
    if (floor_mod(x[i], p_) != rep_[i]) return false;
  }
  return true;
}

std::string CongruenceClass::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < rep_.size(); ++i) {
    if (i > 0) os << ",";
    os << rep_[i];
  }
  os << ") mod " << p_;
  return os.str();
}

std::vector<CongruenceClass> all_classes(int d, Int p) {
  require(d >= 0 && p > 0, "all_classes: bad arguments");
  const Int total = checked_pow(p, d);
  std::vector<CongruenceClass> out;
  out.reserve(static_cast<std::size_t>(total));
  for (Int index = 0; index < total; ++index) {
    out.emplace_back(decode_mixed_radix(index, p, d), p);
  }
  return out;
}

}  // namespace crnkit::math
