#include "math/matrix.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::math {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

Matrix Matrix::from_rows(const std::vector<RatVec>& rows) {
  Matrix m;
  if (rows.empty()) return m;
  m.rows_ = rows.size();
  m.cols_ = rows.front().size();
  m.data_.reserve(m.rows_ * m.cols_);
  for (const auto& r : rows) {
    require(r.size() == m.cols_, "Matrix::from_rows: ragged rows");
    m.data_.insert(m.data_.end(), r.begin(), r.end());
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Rational(1);
  return m;
}

const Rational& Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

Rational& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

RatVec Matrix::row(std::size_t r) const {
  require(r < rows_, "Matrix::row: index out of range");
  return RatVec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

RatVec Matrix::col(std::size_t c) const {
  require(c < cols_, "Matrix::col: index out of range");
  RatVec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
  return out;
}

void Matrix::append_row(const RatVec& row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  require(row.size() == cols_, "Matrix::append_row: width mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

RatVec Matrix::apply(const RatVec& x) const {
  require(x.size() == cols_, "Matrix::apply: size mismatch");
  RatVec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Rational acc;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  require(cols_ == other.rows_, "Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Rational& a = at(r, k);
      if (a.is_zero()) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

std::size_t Matrix::reduce() {
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols_ && pivot_row < rows_; ++col) {
    // Find a nonzero pivot in this column.
    std::size_t sel = pivot_row;
    while (sel < rows_ && at(sel, col).is_zero()) ++sel;
    if (sel == rows_) continue;
    // Swap into place.
    if (sel != pivot_row) {
      for (std::size_t c = 0; c < cols_; ++c) {
        std::swap(at(sel, c), at(pivot_row, c));
      }
    }
    // Normalize pivot to 1.
    const Rational inv = Rational(1) / at(pivot_row, col);
    for (std::size_t c = 0; c < cols_; ++c) at(pivot_row, c) *= inv;
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const Rational factor = at(r, col);
      if (factor.is_zero()) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pivot_row, c);
      }
    }
    ++pivot_row;
  }
  return pivot_row;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << "\t";
      os << at(r, c);
    }
    os << (r + 1 == rows_ ? "]" : "\n");
  }
  return os.str();
}

std::size_t rank(Matrix m) { return m.reduce(); }

std::vector<RatVec> nullspace(Matrix m) {
  const std::size_t n = m.cols();
  m.reduce();
  // Identify pivot columns.
  std::vector<bool> is_pivot(n, false);
  std::vector<std::size_t> pivot_col_of_row;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    std::size_t c = 0;
    while (c < n && m.at(r, c).is_zero()) ++c;
    if (c == n) break;  // zero row; all subsequent rows are zero too
    is_pivot[c] = true;
    pivot_col_of_row.push_back(c);
  }
  std::vector<RatVec> basis;
  for (std::size_t free_col = 0; free_col < n; ++free_col) {
    if (is_pivot[free_col]) continue;
    RatVec v(n);
    v[free_col] = Rational(1);
    for (std::size_t r = 0; r < pivot_col_of_row.size(); ++r) {
      v[pivot_col_of_row[r]] = -m.at(r, free_col);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::vector<std::vector<Int>> integer_nullspace(const Matrix& m) {
  const std::size_t rows = m.rows();
  const std::size_t n = m.cols();
  // Copy into an integer working matrix.
  std::vector<std::vector<Int>> a(rows, std::vector<Int>(n));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      require(m.at(r, c).is_integer(),
              "integer_nullspace: non-integer entry");
      a[r][c] = m.at(r, c).as_integer();
    }
  }
  // Montante (fraction-free Gauss-Jordan): at each pivot step every other
  // row is updated as (p*a[i][j] - a[i][col]*a[r][j]) / prev, which is an
  // exact integer division; the remainder is asserted zero anyway.
  std::vector<std::size_t> pivot_cols;
  Int prev = 1;
  std::size_t pr = 0;
  for (std::size_t col = 0; col < n && pr < rows; ++col) {
    std::size_t sel = pr;
    while (sel < rows && a[sel][col] == 0) ++sel;
    if (sel == rows) continue;
    if (sel != pr) std::swap(a[sel], a[pr]);
    const Int p = a[pr][col];
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == pr) continue;
      const Int f = a[i][col];
      for (std::size_t j = 0; j < n; ++j) {
        const Int t =
            checked_add(checked_mul(p, a[i][j]), -checked_mul(f, a[pr][j]));
        ensure(t % prev == 0, "integer_nullspace: inexact Bareiss division");
        a[i][j] = t / prev;
      }
    }
    prev = p;
    pivot_cols.push_back(col);
    ++pr;
  }
  // Per free column f: x[f] = L (lcm of pivot values), x[pivot col of row r]
  // = -a[r][f] * L / a[r][pivot_col], everything else 0; then make primitive.
  std::vector<bool> is_pivot(n, false);
  for (const std::size_t c : pivot_cols) is_pivot[c] = true;
  std::vector<Int> pivots;
  pivots.reserve(pivot_cols.size());
  for (std::size_t r = 0; r < pivot_cols.size(); ++r) {
    pivots.push_back(a[r][pivot_cols[r]]);
  }
  const Int big_l = lcm(pivots);
  std::vector<std::vector<Int>> basis;
  for (std::size_t f = 0; f < n; ++f) {
    if (is_pivot[f]) continue;
    std::vector<Int> v(n, 0);
    v[f] = big_l;
    for (std::size_t r = 0; r < pivot_cols.size(); ++r) {
      const Int q = checked_mul(a[r][f], big_l / pivots[r]);
      v[pivot_cols[r]] = -q;
    }
    Int g = 0;
    for (const Int x : v) g = gcd(g, x);
    if (g > 1) {
      for (Int& x : v) x /= g;
    }
    for (const Int x : v) {
      if (x == 0) continue;
      if (x < 0) {
        for (Int& y : v) y = -y;
      }
      break;
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::optional<RatVec> solve(Matrix m, RatVec b) {
  require(b.size() == m.rows(), "solve: rhs size mismatch");
  const std::size_t n = m.cols();
  // Augment.
  Matrix aug(m.rows(), n + 1);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < n; ++c) aug.at(r, c) = m.at(r, c);
    aug.at(r, n) = b[r];
  }
  aug.reduce();
  RatVec x(n);
  for (std::size_t r = 0; r < aug.rows(); ++r) {
    std::size_t c = 0;
    while (c < n + 1 && aug.at(r, c).is_zero()) ++c;
    if (c == n + 1) continue;         // zero row
    if (c == n) return std::nullopt;  // 0 = nonzero: inconsistent
    x[c] = aug.at(r, n);              // free variables remain 0
  }
  return x;
}

RatVec project_onto_span(const RatVec& v, const std::vector<RatVec>& basis) {
  if (basis.empty()) return RatVec(v.size());
  const std::size_t k = basis.size();
  // Solve the Gram system G c = rhs, where G_ij = <b_i, b_j>.
  Matrix gram(k, k);
  RatVec rhs(k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) gram.at(i, j) = dot(basis[i], basis[j]);
    rhs[i] = dot(basis[i], v);
  }
  const auto coeffs = solve(gram, rhs);
  ensure(coeffs.has_value(), "project_onto_span: singular Gram system");
  RatVec out(v.size());
  for (std::size_t i = 0; i < k; ++i) {
    out = add(out, scale((*coeffs)[i], basis[i]));
  }
  return out;
}

RatVec orthogonal_component(const RatVec& v,
                            const std::vector<RatVec>& basis) {
  return sub(v, project_onto_span(v, basis));
}

bool in_span(const RatVec& v, const std::vector<RatVec>& basis) {
  return is_zero(orthogonal_component(v, basis));
}

}  // namespace crnkit::math
