// Dense matrices over exact rationals, with the linear algebra the geometry
// and analysis layers need: Gaussian elimination (reduced row echelon form),
// rank, nullspace bases, linear system solving, and projections onto rational
// subspaces. Dimensions in this library are tiny (d <= ~6), so the O(n^3)
// schoolbook algorithms are the right tool; everything stays exact.
#ifndef CRNKIT_MATH_MATRIX_H_
#define CRNKIT_MATH_MATRIX_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "math/rational.h"

namespace crnkit::math {

/// A rows x cols dense rational matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from a list of equal-length rows.
  static Matrix from_rows(const std::vector<RatVec>& rows);

  /// Identity matrix.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] const Rational& at(std::size_t r, std::size_t c) const;
  Rational& at(std::size_t r, std::size_t c);

  [[nodiscard]] RatVec row(std::size_t r) const;
  [[nodiscard]] RatVec col(std::size_t c) const;

  void append_row(const RatVec& row);

  /// Matrix-vector product.
  [[nodiscard]] RatVec apply(const RatVec& x) const;

  /// Matrix-matrix product.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  [[nodiscard]] Matrix transpose() const;

  /// In-place reduction to reduced row echelon form; returns the rank.
  std::size_t reduce();

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Rational> data_;
};

/// Rank of a (copy of the) matrix.
[[nodiscard]] std::size_t rank(Matrix m);

/// A basis of the right nullspace {x : Mx = 0}. Each basis vector is exact.
[[nodiscard]] std::vector<RatVec> nullspace(Matrix m);

/// A basis of the integer right nullspace {x in Z^n : Mx = 0} of an
/// integer-valued matrix, computed fraction-free (Montante/Bareiss
/// elimination: every intermediate value is an exact integer, every division
/// is checked exact). Basis vectors are primitive — entry gcd 1, first
/// nonzero entry positive — and span the same space as nullspace(m).
/// Throws std::invalid_argument if m has a non-integer entry.
[[nodiscard]] std::vector<std::vector<Int>> integer_nullspace(const Matrix& m);

/// Solves M x = b. Returns std::nullopt if inconsistent. If the system is
/// under-determined, returns one particular solution (free variables = 0).
[[nodiscard]] std::optional<RatVec> solve(Matrix m, RatVec b);

/// Projects vector v orthogonally onto span(basis). The basis vectors need
/// not be orthogonal; a Gram system is solved exactly.
[[nodiscard]] RatVec project_onto_span(const RatVec& v,
                                       const std::vector<RatVec>& basis);

/// Component of v orthogonal to span(basis): v - project_onto_span(v, basis).
[[nodiscard]] RatVec orthogonal_component(const RatVec& v,
                                          const std::vector<RatVec>& basis);

/// True iff v lies in span(basis).
[[nodiscard]] bool in_span(const RatVec& v, const std::vector<RatVec>& basis);

}  // namespace crnkit::math

#endif  // CRNKIT_MATH_MATRIX_H_
