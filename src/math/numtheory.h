// Small exact number-theory helpers used throughout crnkit: gcd/lcm on
// 64-bit integers (with overflow checking for lcm), checked arithmetic,
// floored division/modulus with mathematician's sign conventions, and
// mixed-radix encoding of congruence-class tuples.
#ifndef CRNKIT_MATH_NUMTHEORY_H_
#define CRNKIT_MATH_NUMTHEORY_H_

#include <cstdint>
#include <vector>

namespace crnkit::math {

using Int = std::int64_t;

/// Greatest common divisor; gcd(0,0) == 0. Result is nonnegative.
[[nodiscard]] Int gcd(Int a, Int b);

/// Least common multiple; throws OverflowError if it exceeds 64 bits.
[[nodiscard]] Int lcm(Int a, Int b);

/// lcm over a list (empty list -> 1).
[[nodiscard]] Int lcm(const std::vector<Int>& values);

/// a + b with overflow detection.
[[nodiscard]] Int checked_add(Int a, Int b);

/// a * b with overflow detection.
[[nodiscard]] Int checked_mul(Int a, Int b);

/// Floored division: floor_div(-3, 2) == -2.
[[nodiscard]] Int floor_div(Int a, Int b);

/// Mathematical modulus: result in [0, |b|). floor_mod(-3, 2) == 1.
[[nodiscard]] Int floor_mod(Int a, Int b);

/// Componentwise floor_mod by p: x mod p in [0,p)^d.
[[nodiscard]] std::vector<Int> mod_vec(const std::vector<Int>& x, Int p);

/// Encodes a tuple in [0,p)^d as a single index in [0, p^d), little-endian.
[[nodiscard]] Int encode_mixed_radix(const std::vector<Int>& digits, Int p);

/// Inverse of encode_mixed_radix.
[[nodiscard]] std::vector<Int> decode_mixed_radix(Int index, Int p, int d);

/// p^d as a checked 64-bit integer.
[[nodiscard]] Int checked_pow(Int p, int d);

}  // namespace crnkit::math

#endif  // CRNKIT_MATH_NUMTHEORY_H_
