#include "fn/quilt_affine.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::fn {

using math::CongruenceClass;
using math::Int;
using math::Rational;
using math::RatVec;

QuiltAffine::QuiltAffine(RatVec gradient, Int period,
                         std::vector<Rational> offsets, std::string name)
    : gradient_(std::move(gradient)),
      p_(period),
      offsets_(std::move(offsets)),
      name_(std::move(name)) {
  require(!gradient_.empty(), "QuiltAffine: empty gradient");
  require(p_ >= 1, "QuiltAffine: period must be >= 1");
  const Int expected =
      math::checked_pow(p_, static_cast<int>(gradient_.size()));
  require(static_cast<Int>(offsets_.size()) == expected,
          "QuiltAffine: offsets table must have p^d entries, expected " +
              std::to_string(expected) + " got " +
              std::to_string(offsets_.size()));
  // Integer-valuedness: p * gradient must be integral, and the value at each
  // class representative must be an integer (then all values are: moving by
  // p along axis i changes the value by the integer p * grad_i).
  for (const auto& gi : gradient_) {
    const Rational scaled = Rational(p_) * gi;
    require(scaled.is_integer(),
            "QuiltAffine '" + name_ + "': p * gradient not integral");
  }
  for (const auto& a : math::all_classes(dimension(), p_)) {
    const Rational value =
        math::dot(gradient_, a.representative()) + offset(a);
    require(value.is_integer(), "QuiltAffine '" + name_ +
                                    "': non-integer value at class " +
                                    a.to_string());
  }
}

QuiltAffine QuiltAffine::affine(RatVec gradient, Rational offset,
                                std::string name) {
  return QuiltAffine(std::move(gradient), 1, {std::move(offset)},
                     std::move(name));
}

const Rational& QuiltAffine::offset(const CongruenceClass& a) const {
  require(a.period() == p_ && a.dimension() == dimension(),
          "QuiltAffine::offset: class shape mismatch");
  return offsets_[static_cast<std::size_t>(a.index())];
}

Int QuiltAffine::operator()(const Point& x) const {
  require(static_cast<int>(x.size()) == dimension(),
          "QuiltAffine '" + name_ + "': arity mismatch");
  const CongruenceClass a(x, p_);
  const Rational value = math::dot(gradient_, x) + offset(a);
  return value.as_integer();
}

Int QuiltAffine::finite_difference(int i, const CongruenceClass& a) const {
  require(i >= 0 && i < dimension(), "finite_difference: bad axis");
  const Rational delta = gradient_[static_cast<std::size_t>(i)] +
                         offset(a.shifted(i)) - offset(a);
  return delta.as_integer();
}

bool QuiltAffine::is_nondecreasing() const {
  for (const auto& a : math::all_classes(dimension(), p_)) {
    for (int i = 0; i < dimension(); ++i) {
      if (finite_difference(i, a) < 0) return false;
    }
  }
  return true;
}

bool QuiltAffine::is_nonnegative_everywhere() const {
  for (const auto& gi : gradient_) {
    if (gi.is_negative()) return false;
  }
  for (const auto& a : math::all_classes(dimension(), p_)) {
    const Rational value =
        math::dot(gradient_, a.representative()) + offset(a);
    if (value.is_negative()) return false;
  }
  return true;
}

QuiltAffine QuiltAffine::translated(const Point& n) const {
  require(static_cast<int>(n.size()) == dimension(),
          "QuiltAffine::translated: arity mismatch");
  // g(x + n) = grad . x + [grad . n + B((x + n) mod p)].
  std::vector<Rational> offsets(offsets_.size());
  const Rational shift = math::dot(gradient_, n);
  for (const auto& a : math::all_classes(dimension(), p_)) {
    offsets[static_cast<std::size_t>(a.index())] = shift + offset(a.plus(n));
  }
  return QuiltAffine(gradient_, p_, std::move(offsets),
                     name_ + "(+" + math::to_string(math::to_rational(n)) +
                         ")");
}

QuiltAffine QuiltAffine::with_period(Int q) const {
  require(q >= 1 && q % p_ == 0,
          "QuiltAffine::with_period: new period must be a positive multiple "
          "of the old");
  if (q == p_) return *this;
  const Int count = math::checked_pow(q, dimension());
  std::vector<Rational> offsets(static_cast<std::size_t>(count));
  for (const auto& a : math::all_classes(dimension(), q)) {
    const CongruenceClass fine(a.representative(), p_);
    offsets[static_cast<std::size_t>(a.index())] = offset(fine);
  }
  return QuiltAffine(gradient_, q, std::move(offsets), name_);
}

DiscreteFunction QuiltAffine::as_function() const {
  QuiltAffine copy = *this;
  return DiscreteFunction(
      dimension(), [copy](const Point& x) { return copy(x); }, name_);
}

std::string QuiltAffine::to_string() const {
  std::ostringstream os;
  os << name_ << "(x) = " << math::to_string(gradient_) << " . x + B(x mod "
     << p_ << ")";
  return os.str();
}

MinOfQuiltAffine::MinOfQuiltAffine(std::vector<QuiltAffine> parts)
    : parts_(std::move(parts)) {
  require(!parts_.empty(), "MinOfQuiltAffine: need at least one part");
  for (const auto& g : parts_) {
    require(g.dimension() == parts_.front().dimension(),
            "MinOfQuiltAffine: mixed dimensions");
  }
}

int MinOfQuiltAffine::dimension() const { return parts_.front().dimension(); }

Int MinOfQuiltAffine::operator()(const Point& x) const {
  Int best = parts_.front()(x);
  for (std::size_t k = 1; k < parts_.size(); ++k) {
    best = std::min(best, parts_[k](x));
  }
  return best;
}

DiscreteFunction MinOfQuiltAffine::as_function() const {
  MinOfQuiltAffine copy = *this;
  return DiscreteFunction(
      dimension(), [copy](const Point& x) { return copy(x); }, "min-of-quilt");
}

}  // namespace crnkit::fn
