// Eventual quilt-affine structure of 1D functions (Theorem 3.1 / Figure 5).
//
// Every semilinear nondecreasing f : N -> N is eventually quilt-affine:
// there are n and a period p with f(x+1) - f(x) = delta_{x mod p} for all
// x >= n. This module detects (n, p, deltas) from a black box by scanning,
// which is exactly the data the Theorem 3.1 and Theorem 9.2 CRN compilers
// consume.
#ifndef CRNKIT_FN_ONED_STRUCTURE_H_
#define CRNKIT_FN_ONED_STRUCTURE_H_

#include <optional>
#include <string>
#include <vector>

#include "fn/function.h"
#include "fn/quilt_affine.h"

namespace crnkit::fn {

/// The eventual 1D structure: f(x+1) - f(x) = deltas[x mod p] for x >= n,
/// plus the initial values f(0..n) needed by the constructions.
struct OneDStructure {
  math::Int n = 0;                      ///< eventual threshold
  math::Int p = 1;                      ///< period
  std::vector<math::Int> deltas;        ///< deltas[a] for a in [0,p)
  std::vector<math::Int> initial;       ///< f(0), f(1), ..., f(n)

  /// f(x) for any x >= 0, reconstructed from the structure.
  [[nodiscard]] math::Int evaluate(math::Int x) const;

  /// The eventual quilt-affine extension g with gradient (sum deltas)/p,
  /// agreeing with f on x >= n (it may differ from f below n).
  [[nodiscard]] QuiltAffine eventual_quilt_affine() const;

  [[nodiscard]] std::string to_string() const;
};

/// Options for structure detection.
struct OneDStructureOptions {
  math::Int max_period = 12;     ///< largest period tried
  math::Int max_threshold = 64;  ///< largest eventual threshold tried
  math::Int scan_extent = 3;     ///< verify over [n, n + scan_extent*p*...]:
                                 ///< differences are checked on
                                 ///< [n, max_threshold + scan_extent * p].
};

/// Detects the minimal (p, n) structure of a 1D black box by scanning.
/// Returns std::nullopt if no structure fits within the option bounds
/// (either f is not eventually quilt-affine, or the bounds are too small).
[[nodiscard]] std::optional<OneDStructure> detect_oned_structure(
    const DiscreteFunction& f, const OneDStructureOptions& options = {});

/// Like detect_oned_structure but throws std::invalid_argument with a
/// diagnostic on failure.
[[nodiscard]] OneDStructure require_oned_structure(
    const DiscreteFunction& f, const OneDStructureOptions& options = {});

}  // namespace crnkit::fn

#endif  // CRNKIT_FN_ONED_STRUCTURE_H_
