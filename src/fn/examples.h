// The paper's worked examples as reusable library objects: the Figure 1/2
// functions, the Figure 3 quilt-affine functions, the Figure 4a
// obliviously-computable function, the Figure 7 three-region function, the
// Equation (2) counterexample, and the Figure 8 arrangements. Tests,
// examples, and the figure-regeneration benches all build on these.
#ifndef CRNKIT_FN_EXAMPLES_H_
#define CRNKIT_FN_EXAMPLES_H_

#include <vector>

#include "fn/function.h"
#include "fn/quilt_affine.h"
#include "geom/arrangement.h"

namespace crnkit::fn::examples {

/// f(x) = 2x (Fig 1, computed by X -> 2Y).
[[nodiscard]] DiscreteFunction twice();

/// f(x1,x2) = min(x1,x2) (Fig 1, computed by X1 + X2 -> Y).
[[nodiscard]] DiscreteFunction min2();

/// f(x1,x2) = max(x1,x2) (Fig 1; not obliviously-computable, Section 4).
[[nodiscard]] DiscreteFunction max2();

/// f(x) = min(1, x) (Fig 2; obliviously-computable only with a leader).
[[nodiscard]] DiscreteFunction min_const1();

/// f(x) = floor(3x/2) (Fig 3a), quilt-affine with period 2.
[[nodiscard]] DiscreteFunction floor_3x_over_2();

/// The exact quilt-affine form of Fig 3a: (3/2) x + B(x mod 2),
/// B(0) = 0, B(1) = -1/2.
[[nodiscard]] QuiltAffine fig3a_quilt();

/// The 2D quilt-affine function of Fig 3b: (1,2) . x + B(x mod 3), where
/// B = -1 on classes {(1,2),(2,2),(2,1)} and 0 elsewhere ("bumpy quilt").
[[nodiscard]] QuiltAffine fig3b_quilt();

/// The three quilt-affine functions whose min gives the eventual region of
/// our Fig 4a instance: g1 = 2x1 + x2, g2 = x1 + 2x2,
/// g3 = x1 + x2 + (5 if x1+x2 even else 4).
[[nodiscard]] MinOfQuiltAffine fig4a_eventual();

/// A concrete Fig 4a-style obliviously-computable function: the min of
/// fig4a_eventual(), with finite-region perturbations at (1,2), (2,1) and
/// (3,3) (all below n = (4,4), keeping the function nondecreasing).
[[nodiscard]] DiscreteFunction fig4a();

/// The eventual threshold of fig4a(): n = (4,4).
[[nodiscard]] Point fig4a_threshold();

/// Threshold arrangement suitable for analyzing fig4a() (the min-switch
/// hyperplanes and the finite-region boundaries) with global period 2.
[[nodiscard]] geom::Arrangement fig4a_arrangement();

/// The Section 7.1 motivating function (Fig 7):
/// f = x1 + 1 if x1 < x2; x2 + 1 if x1 > x2; x1 if x1 = x2.
[[nodiscard]] DiscreteFunction fig7();

/// Arrangement for fig7(): hyperplanes x1 - x2 >= 1 and x2 - x1 >= 1,
/// creating determined regions D1, D2 and the diagonal strip U.
[[nodiscard]] geom::Arrangement fig7_arrangement();

/// The three quilt-affine extensions of Fig 7: g1 = x1 + 1, g2 = x2 + 1,
/// gU = ceil((x1 + x2)/2).
[[nodiscard]] std::vector<QuiltAffine> fig7_extensions();

/// The Equation (2) counterexample: f = x1 + x2 + 1 off the diagonal,
/// x1 + x2 on it. Semilinear and nondecreasing but NOT obliviously-
/// computable (Lemma 4.1 applies with a_i = (i,0), Delta_ij = (0,j)).
[[nodiscard]] DiscreteFunction eq2_counterexample();

/// Fig 8a: 2D arrangement with 3 hyperplanes realizing exactly 5 regions
/// (two finite, one under-determined eventual strip, two determined).
[[nodiscard]] geom::Arrangement fig8a_arrangement();

/// Fig 8c: 3D arrangement with two pairs of parallel hyperplanes realizing
/// 9 eventual regions (4 determined corners, 4 under-determined sides with
/// 2D cones, 1 center with a 1D cone).
[[nodiscard]] geom::Arrangement fig8c_arrangement();

/// A suite of semilinear nondecreasing 1D functions for parameterized
/// sweeps over the Theorem 3.1 compiler.
[[nodiscard]] std::vector<DiscreteFunction> oned_suite();

/// A suite of semilinear *superadditive* 1D functions for sweeps over the
/// Theorem 9.2 leaderless compiler.
[[nodiscard]] std::vector<DiscreteFunction> oned_superadditive_suite();

}  // namespace crnkit::fn::examples

#endif  // CRNKIT_FN_EXAMPLES_H_
