// Explicit semilinear functions in the normal form of Lemma 7.3: a threshold
// arrangement partitions N^d into regions, a global period p refines each
// region into congruence classes, and f restricted to (region, class) is a
// rational affine partial function.
//
// This is the representation Definition 2.6 reduces to once the Boolean
// combinations of threshold and mod sets are expanded, and it is the exact
// input format of the Section 7 analysis pipeline.
#ifndef CRNKIT_FN_SEMILINEAR_H_
#define CRNKIT_FN_SEMILINEAR_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fn/function.h"
#include "geom/arrangement.h"
#include "math/congruence.h"
#include "math/rational.h"

namespace crnkit::fn {

/// A rational affine partial function x -> gradient . x + offset.
struct AffinePiece {
  math::RatVec gradient;
  math::Rational offset;

  [[nodiscard]] math::Rational evaluate(const Point& x) const {
    return math::dot(gradient, x) + offset;
  }
};

/// A total function N^d -> Z in Lemma 7.3 normal form.
class SemilinearFunction {
 public:
  SemilinearFunction(geom::Arrangement arrangement, math::Int period,
                     std::string name = "f");

  [[nodiscard]] int dimension() const { return arrangement_.dimension(); }
  [[nodiscard]] math::Int period() const { return p_; }
  [[nodiscard]] const geom::Arrangement& arrangement() const {
    return arrangement_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Defines the piece on (region with signs `signs`, class `a`).
  void set_piece(const std::vector<int>& signs, const math::CongruenceClass& a,
                 AffinePiece piece);

  /// Defines the same piece for every congruence class of the region.
  void set_region_piece(const std::vector<int>& signs, AffinePiece piece);

  /// True iff a piece is defined for x's (region, class).
  [[nodiscard]] bool has_piece_at(const Point& x) const;

  /// The piece governing x; throws if undefined.
  [[nodiscard]] const AffinePiece& piece_at(const Point& x) const;

  /// Exact evaluation; throws if the value is not an integer or no piece is
  /// defined for x's (region, class).
  [[nodiscard]] math::Int operator()(const Point& x) const;

  [[nodiscard]] DiscreteFunction as_function() const;

 private:
  [[nodiscard]] std::string piece_key(const std::vector<int>& signs,
                                      const math::CongruenceClass& a) const;

  geom::Arrangement arrangement_;
  math::Int p_;
  std::map<std::string, AffinePiece> pieces_;
  std::string name_;
};

}  // namespace crnkit::fn

#endif  // CRNKIT_FN_SEMILINEAR_H_
