// Quilt-affine functions (Definition 5.1): nondecreasing g : N^d -> Z of the
// form g(x) = grad . x + B(x mod p), where grad is a rational gradient and
// B : Z^d/pZ^d -> Q is a periodic offset. Both parts may be fractional but
// the sum is always an integer.
//
// Quilt-affine functions are the building blocks of the paper's main
// characterization: every obliviously-computable f is eventually a min of
// them (Theorem 7.1), and each nonnegative one has a direct output-oblivious
// CRN (Lemma 6.1) driven by its periodic finite differences delta^i_a.
#ifndef CRNKIT_FN_QUILT_AFFINE_H_
#define CRNKIT_FN_QUILT_AFFINE_H_

#include <string>
#include <vector>

#include "fn/function.h"
#include "math/congruence.h"
#include "math/rational.h"

namespace crnkit::fn {

class QuiltAffine {
 public:
  /// Builds g(x) = gradient . x + offsets[class index of (x mod p)].
  /// Checks exact integer-valuedness of the sum; throws otherwise.
  QuiltAffine(math::RatVec gradient, math::Int period,
              std::vector<math::Rational> offsets, std::string name = "g");

  /// An affine function grad . x + b viewed as quilt-affine with period 1.
  static QuiltAffine affine(math::RatVec gradient, math::Rational offset,
                            std::string name = "g");

  [[nodiscard]] int dimension() const {
    return static_cast<int>(gradient_.size());
  }
  [[nodiscard]] math::Int period() const { return p_; }
  [[nodiscard]] const math::RatVec& gradient() const { return gradient_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// The periodic offset B(a).
  [[nodiscard]] const math::Rational& offset(
      const math::CongruenceClass& a) const;

  /// Exact evaluation (always an integer by the class invariant).
  [[nodiscard]] math::Int operator()(const Point& x) const;

  /// Finite difference delta^i_a = g(x + e_i) - g(x) for any x with
  /// x mod p == a (Lemma 6.1). Always an integer.
  [[nodiscard]] math::Int finite_difference(int i,
                                            const math::CongruenceClass& a)
      const;

  /// True iff all finite differences are nonnegative — equivalently g is
  /// nondecreasing (the paper characterizes quilt-affine functions by
  /// "nonnegative periodic finite differences").
  [[nodiscard]] bool is_nondecreasing() const;

  /// True iff g(x) >= 0 for all x in N^d: the gradient is componentwise
  /// nonnegative (otherwise g is unbounded below) and g >= 0 on the period
  /// cube [0,p)^d, whose values bound all others from below.
  [[nodiscard]] bool is_nonnegative_everywhere() const;

  /// The translate g_n(x) = g(x + n), also quilt-affine with the same
  /// gradient and period (used by Lemma 6.2 to make offsets nonnegative).
  [[nodiscard]] QuiltAffine translated(const Point& n) const;

  /// Reinterprets this function with period q = k * period (any positive
  /// multiple): same function, coarser congruence classes. Used when several
  /// quilt-affine functions must share a common period.
  [[nodiscard]] QuiltAffine with_period(math::Int q) const;

  /// Lowers to a black-box function.
  [[nodiscard]] DiscreteFunction as_function() const;

  [[nodiscard]] std::string to_string() const;

 private:
  math::RatVec gradient_;
  math::Int p_;
  std::vector<math::Rational> offsets_;  // indexed by class index
  std::string name_;
};

/// The pointwise minimum of finitely many quilt-affine functions, evaluated
/// exactly. This is the "eventual" shape of every obliviously-computable
/// function (Theorem 5.2 condition (ii)).
class MinOfQuiltAffine {
 public:
  explicit MinOfQuiltAffine(std::vector<QuiltAffine> parts);

  [[nodiscard]] int dimension() const;
  [[nodiscard]] const std::vector<QuiltAffine>& parts() const {
    return parts_;
  }

  [[nodiscard]] math::Int operator()(const Point& x) const;

  [[nodiscard]] DiscreteFunction as_function() const;

 private:
  std::vector<QuiltAffine> parts_;
};

}  // namespace crnkit::fn

#endif  // CRNKIT_FN_QUILT_AFFINE_H_
