#include "fn/examples.h"

#include <algorithm>

#include "math/check.h"

namespace crnkit::fn::examples {

using geom::Arrangement;
using geom::ThresholdHyperplane;
using math::Int;
using math::Rational;

DiscreteFunction twice() {
  return DiscreteFunction(
      1, [](const Point& x) { return 2 * x[0]; }, "2x");
}

DiscreteFunction min2() {
  return DiscreteFunction(
      2, [](const Point& x) { return std::min(x[0], x[1]); }, "min");
}

DiscreteFunction max2() {
  return DiscreteFunction(
      2, [](const Point& x) { return std::max(x[0], x[1]); }, "max");
}

DiscreteFunction min_const1() {
  return DiscreteFunction(
      1, [](const Point& x) { return std::min<Int>(1, x[0]); }, "min(1,x)");
}

DiscreteFunction floor_3x_over_2() {
  return DiscreteFunction(
      1, [](const Point& x) { return (3 * x[0]) / 2; }, "floor(3x/2)");
}

QuiltAffine fig3a_quilt() {
  return QuiltAffine({Rational(3, 2)}, 2, {Rational(0), Rational(-1, 2)},
                     "fig3a");
}

QuiltAffine fig3b_quilt() {
  // B = -1 on classes {(1,2),(2,2),(2,1)} mod 3, 0 elsewhere. All finite
  // differences stay nonnegative (gradient (1,2) gives enough slack).
  const int d = 2;
  const Int p = 3;
  std::vector<Rational> offsets(static_cast<std::size_t>(9), Rational(0));
  for (const auto& bump : std::vector<std::vector<Int>>{{1, 2}, {2, 2}, {2, 1}}) {
    const math::CongruenceClass a(bump, p);
    offsets[static_cast<std::size_t>(a.index())] = Rational(-1);
  }
  QuiltAffine g({Rational(1), Rational(2)}, p, std::move(offsets), "fig3b");
  ensure(g.is_nondecreasing(), "fig3b_quilt: expected nondecreasing");
  (void)d;
  return g;
}

MinOfQuiltAffine fig4a_eventual() {
  QuiltAffine g1 = QuiltAffine::affine({Rational(2), Rational(1)},
                                       Rational(0), "g1");
  QuiltAffine g2 = QuiltAffine::affine({Rational(1), Rational(2)},
                                       Rational(0), "g2");
  // g3 = x1 + x2 + (5 if x1+x2 even else 4), period 2.
  std::vector<Rational> offsets(4);
  for (const auto& a : math::all_classes(2, 2)) {
    const auto& r = a.representative();
    offsets[static_cast<std::size_t>(a.index())] =
        ((r[0] + r[1]) % 2 == 0) ? Rational(5) : Rational(4);
  }
  QuiltAffine g3({Rational(1), Rational(1)}, 2, std::move(offsets), "g3");
  return MinOfQuiltAffine({g1, g2, g3});
}

DiscreteFunction fig4a() {
  const MinOfQuiltAffine base = fig4a_eventual();
  return DiscreteFunction(
      2,
      [base](const Point& x) -> Int {
        // Finite-region perturbations (all below (4,4); nondecreasingness
        // was hand-checked and is re-verified in tests).
        if (x == Point{1, 2} || x == Point{2, 1}) return 3;
        if (x == Point{3, 3}) return 8;
        return base(x);
      },
      "fig4a");
}

Point fig4a_threshold() { return Point{4, 4}; }

Arrangement fig4a_arrangement() {
  // Min-switch boundaries: g1 vs g2 at x1 = x2; g1/g2 vs g3 roughly at
  // min(x1,x2) = 5; finite-region boundaries at x_i = 4.
  std::vector<ThresholdHyperplane> hps;
  hps.push_back({{1, -1}, 1});   // x1 - x2 >= 1   (x1 > x2)
  hps.push_back({{-1, 1}, 1});   // x2 - x1 >= 1   (x2 > x1)
  hps.push_back({{1, 0}, 6});    // x1 >= 6
  hps.push_back({{0, 1}, 6});    // x2 >= 6
  hps.push_back({{1, 0}, 4});    // x1 >= 4
  hps.push_back({{0, 1}, 4});    // x2 >= 4
  return Arrangement(2, std::move(hps));
}

DiscreteFunction fig7() {
  return DiscreteFunction(
      2,
      [](const Point& x) -> Int {
        if (x[0] < x[1]) return x[0] + 1;
        if (x[0] > x[1]) return x[1] + 1;
        return x[0];
      },
      "fig7");
}

Arrangement fig7_arrangement() {
  std::vector<ThresholdHyperplane> hps;
  hps.push_back({{1, -1}, 1});  // x1 - x2 >= 1
  hps.push_back({{-1, 1}, 1});  // x2 - x1 >= 1
  return Arrangement(2, std::move(hps));
}

std::vector<QuiltAffine> fig7_extensions() {
  QuiltAffine g1 = QuiltAffine::affine({Rational(0), Rational(1)},
                                       Rational(1), "g1");
  QuiltAffine g2 = QuiltAffine::affine({Rational(1), Rational(0)},
                                       Rational(1), "g2");
  // gU = ceil((x1+x2)/2) = (1/2,1/2) . x + B, B = 1/2 on odd-sum classes.
  std::vector<Rational> offsets(4);
  for (const auto& a : math::all_classes(2, 2)) {
    const auto& r = a.representative();
    offsets[static_cast<std::size_t>(a.index())] =
        ((r[0] + r[1]) % 2 == 0) ? Rational(0) : Rational(1, 2);
  }
  QuiltAffine gu({Rational(1, 2), Rational(1, 2)}, 2, std::move(offsets),
                 "gU");
  return {g1, g2, gu};
}

DiscreteFunction eq2_counterexample() {
  return DiscreteFunction(
      2,
      [](const Point& x) -> Int {
        return x[0] + x[1] + (x[0] == x[1] ? 0 : 1);
      },
      "eq2");
}

Arrangement fig8a_arrangement() {
  std::vector<ThresholdHyperplane> hps;
  hps.push_back({{1, -1}, 1});  // x1 - x2 >= 1
  hps.push_back({{1, -1}, 4});  // x1 - x2 >= 4
  hps.push_back({{1, 1}, 4});   // x1 + x2 >= 4
  return Arrangement(2, std::move(hps));
}

Arrangement fig8c_arrangement() {
  std::vector<ThresholdHyperplane> hps;
  hps.push_back({{1, -1, 0}, 2});  // x1 - x2 >= 2
  hps.push_back({{-1, 1, 0}, 2});  // x2 - x1 >= 2
  hps.push_back({{0, 1, -1}, 2});  // x2 - x3 >= 2
  hps.push_back({{0, -1, 1}, 2});  // x3 - x2 >= 2
  return Arrangement(3, std::move(hps));
}

std::vector<DiscreteFunction> oned_suite() {
  std::vector<DiscreteFunction> fns;
  fns.push_back(twice());
  fns.push_back(floor_3x_over_2());
  fns.push_back(min_const1());
  fns.push_back(DiscreteFunction(
      1, [](const Point& x) { return std::min<Int>(3, x[0]); }, "min(3,x)"));
  fns.push_back(DiscreteFunction(
      1, [](const Point& x) { return x[0] + x[0] / 3; }, "x+floor(x/3)"));
  fns.push_back(DiscreteFunction(
      1,
      [](const Point& x) -> Int {
        // Arbitrary finite behavior, then slope-2 with a parity wiggle.
        if (x[0] == 0) return 1;
        if (x[0] == 1) return 1;
        if (x[0] == 2) return 4;
        return 2 * x[0] + (x[0] % 2);
      },
      "piecewise-wiggle"));
  fns.push_back(DiscreteFunction(
      1, [](const Point&) { return 7; }, "const7"));
  fns.push_back(DiscreteFunction(
      1, [](const Point& x) { return x[0] / 5; }, "floor(x/5)"));
  return fns;
}

std::vector<DiscreteFunction> oned_superadditive_suite() {
  std::vector<DiscreteFunction> fns;
  fns.push_back(twice());
  fns.push_back(DiscreteFunction(
      1, [](const Point& x) { return x[0]; }, "identity"));
  fns.push_back(DiscreteFunction(
      1, [](const Point& x) { return (3 * x[0]) / 2; }, "floor(3x/2)"));
  fns.push_back(DiscreteFunction(
      1, [](const Point& x) { return x[0] / 3; }, "floor(x/3)"));
  fns.push_back(DiscreteFunction(
      1,
      [](const Point& x) -> Int {
        // Superadditive with a jump: f(x) = 0 for x < 3, else 2x - 5.
        return x[0] < 3 ? 0 : 2 * x[0] - 5;
      },
      "jump-then-slope2"));
  fns.push_back(DiscreteFunction(
      1, [](const Point&) { return 0; }, "zero"));
  return fns;
}

}  // namespace crnkit::fn::examples
