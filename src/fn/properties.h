// Grid-checked properties of functions: nondecreasing (Observation 2.1),
// superadditive (Observation 9.1), and agreement/eventual-domination checks
// used throughout the analysis pipeline and tests.
//
// These are bounded empirical checks — the properties themselves are
// Pi_1 statements — so each returns an optional counterexample rather than a
// bare bool, and callers choose the grid.
#ifndef CRNKIT_FN_PROPERTIES_H_
#define CRNKIT_FN_PROPERTIES_H_

#include <optional>
#include <string>
#include <vector>

#include "fn/function.h"

namespace crnkit::fn {

/// A violation of a pointwise property, with the witnessing points.
struct Violation {
  Point a;
  Point b;
  math::Int fa = 0;
  math::Int fb = 0;
  std::string what;

  [[nodiscard]] std::string to_string() const;
};

/// Checks f nondecreasing on [0, grid_max]^d: a <= b implies f(a) <= f(b).
/// Implemented via unit steps (sufficient by transitivity).
[[nodiscard]] std::optional<Violation> find_nondecreasing_violation(
    const DiscreteFunction& f, math::Int grid_max);

/// Checks f superadditive on pairs with a + b inside [0, grid_max]^d:
/// f(a) + f(b) <= f(a + b).
[[nodiscard]] std::optional<Violation> find_superadditive_violation(
    const DiscreteFunction& f, math::Int grid_max);

/// Checks f == g on [0, grid_max]^d; returns a differing point if any.
[[nodiscard]] std::optional<Point> find_disagreement(
    const DiscreteFunction& f, const DiscreteFunction& g, math::Int grid_max);

/// Checks g >= f on the box [n, n + window]^d (Definition 7.8, bounded).
/// Returns a point where g(x) < f(x) if any.
[[nodiscard]] std::optional<Point> find_domination_violation(
    const DiscreteFunction& f, const DiscreteFunction& g, const Point& n,
    math::Int window);

/// True iff f is nonnegative on [0, grid_max]^d.
[[nodiscard]] bool is_nonnegative_on_grid(const DiscreteFunction& f,
                                          math::Int grid_max);

}  // namespace crnkit::fn

#endif  // CRNKIT_FN_PROPERTIES_H_
