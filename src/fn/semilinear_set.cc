#include "fn/semilinear_set.h"

#include <sstream>

#include "geom/arrangement.h"
#include "math/check.h"

namespace crnkit::fn {

using math::Int;

struct SemilinearSet::Node {
  enum class Kind { kThreshold, kMod, kUnion, kIntersection, kComplement,
                    kAll, kNone };
  Kind kind;
  int dimension = 0;
  // Atom payload.
  std::vector<Int> a;
  Int b = 0;
  Int c = 1;
  // Children.
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

SemilinearSet::SemilinearSet(std::shared_ptr<const Node> root)
    : root_(std::move(root)) {}

SemilinearSet SemilinearSet::threshold(std::vector<Int> a, Int b) {
  require(!a.empty(), "SemilinearSet::threshold: empty coefficient vector");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kThreshold;
  node->dimension = static_cast<int>(a.size());
  node->a = std::move(a);
  node->b = b;
  return SemilinearSet(std::move(node));
}

SemilinearSet SemilinearSet::mod(std::vector<Int> a, Int b, Int c) {
  require(!a.empty(), "SemilinearSet::mod: empty coefficient vector");
  require(c >= 1, "SemilinearSet::mod: modulus must be >= 1");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kMod;
  node->dimension = static_cast<int>(a.size());
  node->a = std::move(a);
  node->b = math::floor_mod(b, c);
  node->c = c;
  return SemilinearSet(std::move(node));
}

SemilinearSet SemilinearSet::none(int dimension) {
  require(dimension >= 1, "SemilinearSet::none: bad dimension");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNone;
  node->dimension = dimension;
  return SemilinearSet(std::move(node));
}

SemilinearSet SemilinearSet::all(int dimension) {
  require(dimension >= 1, "SemilinearSet::all: bad dimension");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAll;
  node->dimension = dimension;
  return SemilinearSet(std::move(node));
}

SemilinearSet SemilinearSet::operator|(const SemilinearSet& other) const {
  require(dimension() == other.dimension(),
          "SemilinearSet: union dimension mismatch");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kUnion;
  node->dimension = dimension();
  node->left = root_;
  node->right = other.root_;
  return SemilinearSet(std::move(node));
}

SemilinearSet SemilinearSet::operator&(const SemilinearSet& other) const {
  require(dimension() == other.dimension(),
          "SemilinearSet: intersection dimension mismatch");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kIntersection;
  node->dimension = dimension();
  node->left = root_;
  node->right = other.root_;
  return SemilinearSet(std::move(node));
}

SemilinearSet SemilinearSet::operator~() const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kComplement;
  node->dimension = dimension();
  node->left = root_;
  return SemilinearSet(std::move(node));
}

int SemilinearSet::dimension() const { return root_->dimension; }

namespace {

Int dot_int(const std::vector<Int>& a, const Point& x) {
  Int acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = math::checked_add(acc, math::checked_mul(a[i], x[i]));
  }
  return acc;
}

}  // namespace

struct SemilinearSetEval {
  static bool eval(const SemilinearSet::Node& node, const Point& x) {
    using Kind = SemilinearSet::Node::Kind;
    switch (node.kind) {
      case Kind::kThreshold:
        return dot_int(node.a, x) >= node.b;
      case Kind::kMod:
        return math::floor_mod(dot_int(node.a, x), node.c) == node.b;
      case Kind::kUnion:
        return eval(*node.left, x) || eval(*node.right, x);
      case Kind::kIntersection:
        return eval(*node.left, x) && eval(*node.right, x);
      case Kind::kComplement:
        return !eval(*node.left, x);
      case Kind::kAll:
        return true;
      case Kind::kNone:
        return false;
    }
    return false;
  }

  static std::string render(const SemilinearSet::Node& node) {
    using Kind = SemilinearSet::Node::Kind;
    auto vec = [](const std::vector<Int>& a) {
      std::ostringstream os;
      os << "(";
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) os << ",";
        os << a[i];
      }
      os << ")";
      return os.str();
    };
    switch (node.kind) {
      case Kind::kThreshold:
        return vec(node.a) + ".x>=" + std::to_string(node.b);
      case Kind::kMod:
        return vec(node.a) + ".x=" + std::to_string(node.b) + "(mod " +
               std::to_string(node.c) + ")";
      case Kind::kUnion:
        return "(" + render(*node.left) + " | " + render(*node.right) + ")";
      case Kind::kIntersection:
        return "(" + render(*node.left) + " & " + render(*node.right) + ")";
      case Kind::kComplement:
        return "~(" + render(*node.left) + ")";
      case Kind::kAll:
        return "ALL";
      case Kind::kNone:
        return "NONE";
    }
    return "?";
  }
};

bool SemilinearSet::contains(const Point& x) const {
  require(static_cast<int>(x.size()) == dimension(),
          "SemilinearSet::contains: arity mismatch");
  return SemilinearSetEval::eval(*root_, x);
}

DiscreteFunction SemilinearSet::indicator(const std::string& name) const {
  SemilinearSet copy = *this;
  return DiscreteFunction(
      dimension(),
      [copy](const Point& x) -> Int { return copy.contains(x) ? 1 : 0; },
      name);
}

Int SemilinearSet::count_within(Int grid_max) const {
  Int count = 0;
  geom::for_each_grid_point(dimension(), grid_max,
                            [&](const std::vector<Int>& x) {
                              if (contains(x)) ++count;
                            });
  return count;
}

std::string SemilinearSet::to_string() const {
  return SemilinearSetEval::render(*root_);
}

}  // namespace crnkit::fn
