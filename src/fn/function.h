// Black-box integer functions f : N^d -> Z.
//
// The library treats functions three ways: as black boxes (this wrapper),
// as exact structured representations (QuiltAffine, SemilinearFunction), and
// as CRNs that stably compute them. DiscreteFunction is the common currency:
// every structured representation can lower itself to one, and the verifiers
// compare CRN output against one.
#ifndef CRNKIT_FN_FUNCTION_H_
#define CRNKIT_FN_FUNCTION_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "math/check.h"
#include "math/numtheory.h"

namespace crnkit::fn {

/// An input point x in N^d.
using Point = std::vector<math::Int>;

/// A named black-box function f : N^d -> Z. Evaluation is pure; the wrapper
/// adds dimension checking and a human-readable name for diagnostics.
class DiscreteFunction {
 public:
  DiscreteFunction() = default;

  DiscreteFunction(int dimension,
                   std::function<math::Int(const Point&)> evaluate,
                   std::string name = "f")
      : d_(dimension), fn_(std::move(evaluate)), name_(std::move(name)) {
    require(d_ >= 1, "DiscreteFunction: dimension must be >= 1");
    require(static_cast<bool>(fn_), "DiscreteFunction: empty callable");
  }

  [[nodiscard]] int dimension() const { return d_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] math::Int operator()(const Point& x) const {
    require(static_cast<int>(x.size()) == d_,
            "DiscreteFunction '" + name_ + "': arity mismatch");
    for (const math::Int v : x) {
      require(v >= 0, "DiscreteFunction '" + name_ + "': negative input");
    }
    return fn_(x);
  }

  /// Convenience for 1D functions.
  [[nodiscard]] math::Int operator()(math::Int x) const {
    return (*this)(Point{x});
  }

  /// Convenience for 2D functions.
  [[nodiscard]] math::Int operator()(math::Int x1, math::Int x2) const {
    return (*this)(Point{x1, x2});
  }

  /// The fixed-input restriction f_[x(i) -> j] of Section 5: input i is
  /// pinned to j; the restriction keeps domain N^d (input i is ignored),
  /// exactly as in the paper's footnote 11.
  [[nodiscard]] DiscreteFunction restrict_input(int i, math::Int j) const {
    require(i >= 0 && i < d_, "restrict_input: bad input index");
    require(j >= 0, "restrict_input: negative pin value");
    auto inner = fn_;
    const int d = d_;
    return DiscreteFunction(
        d,
        [inner, i, j, d](const Point& x) {
          require(static_cast<int>(x.size()) == d,
                  "restricted function: arity mismatch");
          Point y = x;
          y[static_cast<std::size_t>(i)] = j;
          return inner(y);
        },
        name_ + "[x(" + std::to_string(i + 1) + ")->" + std::to_string(j) +
            "]");
  }

 private:
  int d_ = 0;
  std::function<math::Int(const Point&)> fn_;
  std::string name_;
};

/// Componentwise max of x and the constant vector (n, ..., n) — the
/// "x v n" of Lemma 6.2.
[[nodiscard]] inline Point componentwise_max(const Point& x, math::Int n) {
  Point out = x;
  for (auto& v : out) v = std::max(v, n);
  return out;
}

}  // namespace crnkit::fn

#endif  // CRNKIT_FN_FUNCTION_H_
