#include "fn/oned_structure.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::fn {

using math::Int;

Int OneDStructure::evaluate(Int x) const {
  require(x >= 0, "OneDStructure::evaluate: negative input");
  if (x <= n) return initial[static_cast<std::size_t>(x)];
  // f(x) = f(n) + sum of deltas over [n, x).
  Int value = initial[static_cast<std::size_t>(n)];
  // Full periods first.
  const Int steps = x - n;
  const Int full = steps / p;
  Int period_sum = 0;
  for (Int a = 0; a < p; ++a) {
    period_sum += deltas[static_cast<std::size_t>(math::floor_mod(n + a, p))];
  }
  value = math::checked_add(value, math::checked_mul(full, period_sum));
  for (Int t = n + full * p; t < x; ++t) {
    value = math::checked_add(
        value, deltas[static_cast<std::size_t>(math::floor_mod(t, p))]);
  }
  return value;
}

QuiltAffine OneDStructure::eventual_quilt_affine() const {
  // Gradient = average delta; offsets chosen so the function agrees with f
  // (i.e. with evaluate()) on each congruence class at large inputs.
  Int sum = 0;
  for (const Int d : deltas) sum = math::checked_add(sum, d);
  const math::Rational grad(sum, p);
  // Pick the representative x_a = first x >= n with x mod p == a; then
  // B(a) = f(x_a) - grad * x_a.
  std::vector<math::Rational> offsets(static_cast<std::size_t>(p));
  for (Int a = 0; a < p; ++a) {
    Int x = n;
    while (math::floor_mod(x, p) != a) ++x;
    offsets[static_cast<std::size_t>(a)] =
        math::Rational(evaluate(x)) - grad * math::Rational(x);
  }
  return QuiltAffine({grad}, p, std::move(offsets), "g_eventual");
}

std::string OneDStructure::to_string() const {
  std::ostringstream os;
  os << "OneDStructure{n=" << n << ", p=" << p << ", deltas=[";
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    if (i > 0) os << ",";
    os << deltas[i];
  }
  os << "]}";
  return os.str();
}

std::optional<OneDStructure> detect_oned_structure(
    const DiscreteFunction& f, const OneDStructureOptions& options) {
  require(f.dimension() == 1, "detect_oned_structure: f must be 1D");
  const Int scan_max =
      options.max_threshold + options.scan_extent * options.max_period *
                                  options.max_period;
  // Memoize values once.
  std::vector<Int> values(static_cast<std::size_t>(scan_max + 2));
  for (Int x = 0; x <= scan_max + 1; ++x) {
    values[static_cast<std::size_t>(x)] = f(x);
  }
  auto diff = [&](Int x) {
    return values[static_cast<std::size_t>(x + 1)] -
           values[static_cast<std::size_t>(x)];
  };

  for (Int p = 1; p <= options.max_period; ++p) {
    // For this period, the smallest valid n is the first point after which
    // differences are p-periodic all the way to the scan horizon.
    Int n = -1;
    // Find the last x in [0, scan_max - p) violating periodicity.
    Int last_violation = -1;
    for (Int x = 0; x + p + 1 <= scan_max + 1; ++x) {
      if (diff(x) != diff(x + p)) last_violation = x;
    }
    n = last_violation + 1;
    if (n > options.max_threshold) continue;
    // Require enough periodic evidence beyond n to trust the detection.
    if (n + (options.scan_extent + 1) * p > scan_max) continue;
    OneDStructure s;
    s.n = n;
    s.p = p;
    s.deltas.resize(static_cast<std::size_t>(p));
    for (Int a = 0; a < p; ++a) {
      // delta_a = f(x+1) - f(x) for the first x >= n with x mod p == a.
      Int x = n;
      while (math::floor_mod(x, p) != a) ++x;
      s.deltas[static_cast<std::size_t>(a)] = diff(x);
    }
    s.initial.assign(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(n + 1));
    return s;
  }
  return std::nullopt;
}

OneDStructure require_oned_structure(const DiscreteFunction& f,
                                     const OneDStructureOptions& options) {
  auto s = detect_oned_structure(f, options);
  require(s.has_value(),
          "require_oned_structure: '" + f.name() +
              "' has no eventually-periodic difference structure within "
              "bounds (max_period=" +
              std::to_string(options.max_period) +
              ", max_threshold=" + std::to_string(options.max_threshold) +
              "); it may not be semilinear-nondecreasing");
  return *s;
}

}  // namespace crnkit::fn
