#include "fn/semilinear.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::fn {

using math::CongruenceClass;
using math::Int;
using math::Rational;

SemilinearFunction::SemilinearFunction(geom::Arrangement arrangement,
                                       Int period, std::string name)
    : arrangement_(std::move(arrangement)), p_(period), name_(std::move(name)) {
  require(p_ >= 1, "SemilinearFunction: period must be >= 1");
}

std::string SemilinearFunction::piece_key(const std::vector<int>& signs,
                                          const CongruenceClass& a) const {
  std::ostringstream os;
  for (const int s : signs) os << (s > 0 ? '+' : '-');
  os << "#" << a.index();
  return os.str();
}

void SemilinearFunction::set_piece(const std::vector<int>& signs,
                                   const CongruenceClass& a,
                                   AffinePiece piece) {
  require(signs.size() == arrangement_.hyperplanes().size(),
          "SemilinearFunction::set_piece: sign arity mismatch");
  require(a.period() == p_ && a.dimension() == dimension(),
          "SemilinearFunction::set_piece: class shape mismatch");
  require(static_cast<int>(piece.gradient.size()) == dimension(),
          "SemilinearFunction::set_piece: piece arity mismatch");
  pieces_[piece_key(signs, a)] = std::move(piece);
}

void SemilinearFunction::set_region_piece(const std::vector<int>& signs,
                                          AffinePiece piece) {
  for (const auto& a : math::all_classes(dimension(), p_)) {
    set_piece(signs, a, piece);
  }
}

bool SemilinearFunction::has_piece_at(const Point& x) const {
  const auto signs = arrangement_.sign_pattern(x);
  const CongruenceClass a(x, p_);
  return pieces_.count(piece_key(signs, a)) > 0;
}

const AffinePiece& SemilinearFunction::piece_at(const Point& x) const {
  const auto signs = arrangement_.sign_pattern(x);
  const CongruenceClass a(x, p_);
  const auto it = pieces_.find(piece_key(signs, a));
  require(it != pieces_.end(),
          "SemilinearFunction '" + name_ + "': no piece defined at " +
              math::to_string(math::to_rational(x)));
  return it->second;
}

Int SemilinearFunction::operator()(const Point& x) const {
  const Rational value = piece_at(x).evaluate(x);
  require(value.is_integer(), "SemilinearFunction '" + name_ +
                                  "': non-integer value at " +
                                  math::to_string(math::to_rational(x)));
  return value.as_integer();
}

DiscreteFunction SemilinearFunction::as_function() const {
  SemilinearFunction copy = *this;
  return DiscreteFunction(
      dimension(), [copy](const Point& x) { return copy(x); }, name_);
}

}  // namespace crnkit::fn
