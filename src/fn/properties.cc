#include "fn/properties.h"

#include <sstream>

#include "geom/arrangement.h"
#include "math/check.h"

namespace crnkit::fn {

using math::Int;

std::string Violation::to_string() const {
  std::ostringstream os;
  os << what << " at a=" << math::to_string(math::to_rational(a))
     << " (f=" << fa << "), b=" << math::to_string(math::to_rational(b))
     << " (f=" << fb << ")";
  return os.str();
}

std::optional<Violation> find_nondecreasing_violation(
    const DiscreteFunction& f, Int grid_max) {
  std::optional<Violation> found;
  geom::for_each_grid_point(
      f.dimension(), grid_max, [&](const std::vector<Int>& x) {
        if (found) return;
        const Int fx = f(x);
        for (int i = 0; i < f.dimension(); ++i) {
          Point y = x;
          ++y[static_cast<std::size_t>(i)];
          if (y[static_cast<std::size_t>(i)] > grid_max) continue;
          const Int fy = f(y);
          if (fy < fx) {
            found = Violation{x, y, fx, fy, "nondecreasing violated"};
            return;
          }
        }
      });
  return found;
}

std::optional<Violation> find_superadditive_violation(
    const DiscreteFunction& f, Int grid_max) {
  std::optional<Violation> found;
  geom::for_each_grid_point(
      f.dimension(), grid_max, [&](const std::vector<Int>& a) {
        if (found) return;
        geom::for_each_grid_point(
            f.dimension(), grid_max, [&](const std::vector<Int>& b) {
              if (found) return;
              Point sum(a.size());
              for (std::size_t i = 0; i < a.size(); ++i) {
                sum[i] = a[i] + b[i];
                if (sum[i] > grid_max) return;
              }
              const Int fa = f(a);
              const Int fb = f(b);
              if (fa + fb > f(sum)) {
                found = Violation{a, b, fa, fb, "superadditivity violated"};
              }
            });
      });
  return found;
}

std::optional<Point> find_disagreement(const DiscreteFunction& f,
                                       const DiscreteFunction& g,
                                       Int grid_max) {
  require(f.dimension() == g.dimension(),
          "find_disagreement: dimension mismatch");
  std::optional<Point> found;
  geom::for_each_grid_point(f.dimension(), grid_max,
                            [&](const std::vector<Int>& x) {
                              if (found) return;
                              if (f(x) != g(x)) found = x;
                            });
  return found;
}

std::optional<Point> find_domination_violation(const DiscreteFunction& f,
                                               const DiscreteFunction& g,
                                               const Point& n, Int window) {
  require(f.dimension() == g.dimension(),
          "find_domination_violation: dimension mismatch");
  require(static_cast<int>(n.size()) == f.dimension(),
          "find_domination_violation: bad n");
  Point hi(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) hi[i] = n[i] + window;
  std::optional<Point> found;
  geom::for_each_box_point(n, hi, [&](const std::vector<Int>& x) {
    if (found) return;
    if (g(x) < f(x)) found = x;
  });
  return found;
}

bool is_nonnegative_on_grid(const DiscreteFunction& f, Int grid_max) {
  bool ok = true;
  geom::for_each_grid_point(f.dimension(), grid_max,
                            [&](const std::vector<Int>& x) {
                              if (!ok) return;
                              if (f(x) < 0) ok = false;
                            });
  return ok;
}

}  // namespace crnkit::fn
