// Semilinear sets (Definition 2.5): finite Boolean combinations of
// threshold sets {x : a.x >= b} and mod sets {x : a.x = b (mod c)}.
//
// These are the domains of the affine partial functions in Definition 2.6,
// and the sets definable by population-protocol predicates [6]. The class
// here is a small expression tree with exact membership evaluation,
// supporting union, intersection, complement, and indicator lowering.
#ifndef CRNKIT_FN_SEMILINEAR_SET_H_
#define CRNKIT_FN_SEMILINEAR_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "fn/function.h"

namespace crnkit::fn {

class SemilinearSet {
 public:
  /// {x in N^d : a . x >= b}.
  [[nodiscard]] static SemilinearSet threshold(std::vector<math::Int> a,
                                               math::Int b);

  /// {x in N^d : a . x = b (mod c)}, c >= 1.
  [[nodiscard]] static SemilinearSet mod(std::vector<math::Int> a,
                                         math::Int b, math::Int c);

  /// The empty and full sets over N^d.
  [[nodiscard]] static SemilinearSet none(int dimension);
  [[nodiscard]] static SemilinearSet all(int dimension);

  [[nodiscard]] SemilinearSet operator|(const SemilinearSet& other) const;
  [[nodiscard]] SemilinearSet operator&(const SemilinearSet& other) const;
  [[nodiscard]] SemilinearSet operator~() const;
  [[nodiscard]] SemilinearSet minus(const SemilinearSet& other) const {
    return *this & ~other;
  }

  [[nodiscard]] int dimension() const;
  [[nodiscard]] bool contains(const Point& x) const;

  /// The 0/1 indicator as a DiscreteFunction.
  [[nodiscard]] DiscreteFunction indicator(const std::string& name = "1_S")
      const;

  /// Number of members within [0, grid_max]^d (exact enumeration).
  [[nodiscard]] math::Int count_within(math::Int grid_max) const;

  [[nodiscard]] std::string to_string() const;

  /// Expression-tree node (public so the evaluator in the implementation
  /// file can traverse it; not part of the stable API).
  struct Node;

 private:
  explicit SemilinearSet(std::shared_ptr<const Node> root);
  std::shared_ptr<const Node> root_;
};

}  // namespace crnkit::fn

#endif  // CRNKIT_FN_SEMILINEAR_SET_H_
