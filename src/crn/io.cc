#include "crn/io.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::crn {

std::string to_text(const Crn& crn) {
  std::ostringstream os;
  os << "crn " << crn.name() << "\n";
  os << "species";
  for (const std::string& s : crn.species_table().names()) os << " " << s;
  os << "\n";
  if (crn.input_arity() > 0) {
    os << "inputs";
    for (const SpeciesId id : crn.inputs()) {
      os << " " << crn.species_name(id);
    }
    os << "\n";
  }
  if (crn.output()) {
    os << "output " << crn.species_name(*crn.output()) << "\n";
  }
  if (crn.leader()) {
    os << "leader " << crn.species_name(*crn.leader()) << "\n";
  }
  for (const Reaction& r : crn.reactions()) {
    os << "rxn " << r.to_string(crn.species_table()) << "\n";
  }
  return os.str();
}

Crn from_text(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  Crn out;
  bool named = false;
  while (std::getline(stream, line)) {
    // Trim leading whitespace; skip blanks and comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    line = line.substr(first);
    if (line.empty() || line[0] == '#') continue;

    std::istringstream words(line);
    std::string keyword;
    words >> keyword;
    if (keyword == "crn") {
      std::string name;
      std::getline(words, name);
      const auto start = name.find_first_not_of(" \t");
      out.set_name(start == std::string::npos ? "crn" : name.substr(start));
      named = true;
    } else if (keyword == "species") {
      std::string s;
      while (words >> s) out.get_or_add_species(s);
    } else if (keyword == "inputs") {
      std::vector<std::string> names;
      std::string s;
      while (words >> s) names.push_back(s);
      out.set_input_species(names);
    } else if (keyword == "output") {
      std::string s;
      require(static_cast<bool>(words >> s), "from_text: output needs a name");
      out.set_output_species(s);
    } else if (keyword == "leader") {
      std::string s;
      require(static_cast<bool>(words >> s), "from_text: leader needs a name");
      out.set_leader_species(s);
    } else if (keyword == "rxn") {
      std::string rest;
      std::getline(words, rest);
      out.add_reaction_str(rest);
    } else {
      throw std::invalid_argument("from_text: unknown keyword '" + keyword +
                                  "'");
    }
  }
  require(named, "from_text: missing 'crn <name>' header");
  return out;
}

}  // namespace crnkit::crn
