#include "crn/io.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::crn {

std::string to_text(const Crn& crn) {
  std::ostringstream os;
  os << "crn " << crn.name() << "\n";
  os << "species";
  for (const std::string& s : crn.species_table().names()) os << " " << s;
  os << "\n";
  if (crn.input_arity() > 0) {
    os << "inputs";
    for (const SpeciesId id : crn.inputs()) {
      os << " " << crn.species_name(id);
    }
    os << "\n";
  }
  if (crn.output()) {
    os << "output " << crn.species_name(*crn.output()) << "\n";
  }
  if (crn.leader()) {
    os << "leader " << crn.species_name(*crn.leader()) << "\n";
  }
  for (const Reaction& r : crn.reactions()) {
    os << "rxn " << r.to_string(crn.species_table()) << "\n";
  }
  return os.str();
}

namespace {

/// Strips an inline `# comment` and surrounding whitespace.
std::string strip_line(std::string line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line = line.substr(0, hash);
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

/// Parses one non-blank line into `out`; errors are reported by the caller
/// with the line number attached.
void parse_line(Crn& out, const std::string& line, bool& named) {
  std::istringstream words(line);
  std::string keyword;
  words >> keyword;
  if (keyword == "crn") {
    std::string name;
    std::getline(words, name);
    const auto start = name.find_first_not_of(" \t");
    out.set_name(start == std::string::npos ? "crn" : name.substr(start));
    named = true;
  } else if (keyword == "species") {
    std::string s;
    while (words >> s) out.get_or_add_species(s);
  } else if (keyword == "inputs") {
    std::vector<std::string> names;
    std::string s;
    while (words >> s) names.push_back(s);
    out.set_input_species(names);
  } else if (keyword == "output") {
    std::string s;
    require(static_cast<bool>(words >> s), "output needs a species name");
    out.set_output_species(s);
  } else if (keyword == "leader") {
    std::string s;
    require(static_cast<bool>(words >> s), "leader needs a species name");
    out.set_leader_species(s);
  } else if (keyword == "rxn") {
    std::string rest;
    std::getline(words, rest);
    // Reversible `A + B <-> C` (spaces optional) expands to the two
    // directed reactions. An empty side is the empty multiset, exactly as
    // in the directed syntax. More than one arrow of either kind is
    // rejected (add_reaction_str refuses stray '->' in either side rather
    // than absorbing it into a species name).
    const auto arrow = rest.find("<->");
    if (arrow != std::string::npos) {
      require(rest.find("<->", arrow + 3) == std::string::npos,
              "multiple '<->' in '" + rest + "'");
      const std::string lhs = rest.substr(0, arrow);
      const std::string rhs = rest.substr(arrow + 3);
      out.add_reaction_str(lhs + " -> " + rhs);
      out.add_reaction_str(rhs + " -> " + lhs);
    } else {
      out.add_reaction_str(rest);
    }
  } else {
    throw std::invalid_argument("unknown keyword '" + keyword + "'");
  }
}

}  // namespace

Crn from_text(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  Crn out;
  bool named = false;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    line = strip_line(line);
    if (line.empty()) continue;
    try {
      parse_line(out, line, named);
    } catch (const std::exception& e) {
      throw std::invalid_argument("from_text: line " +
                                  std::to_string(line_number) + ": " +
                                  e.what());
    }
  }
  require(named, "from_text: missing 'crn <name>' header");
  return out;
}

}  // namespace crnkit::crn
