// Structure-preserving CRN transformations used by the paper's proofs:
//  - renaming / prefixing species (the substrate of composition, Section 2.3)
//  - hardcoding an input (Observation 5.3): replace L, X_i by L', X'_i and
//    add L -> j X'_i + L'
//  - output-monotonic -> output-oblivious (Observation 2.4): replace the
//    output acting as a catalyst by a shadow species Z co-produced with Y.
#ifndef CRNKIT_CRN_TRANSFORM_H_
#define CRNKIT_CRN_TRANSFORM_H_

#include <functional>
#include <map>
#include <string>

#include "crn/network.h"

namespace crnkit::crn {

/// Renames species via the given (total or partial) map; species not in the
/// map keep their names. Role declarations follow the renaming. Throws if
/// the renaming creates collisions.
[[nodiscard]] Crn rename_species(const Crn& crn,
                                 const std::map<std::string, std::string>&
                                     renames);

/// Prefixes every species name (used to make module namespaces disjoint
/// before composition).
[[nodiscard]] Crn prefix_species(const Crn& crn, const std::string& prefix);

/// Observation 5.3: the CRN computing the fixed-input restriction
/// f_[x(i) -> j]. Input i remains declared (the restriction keeps domain
/// N^d) but its molecules are ignored; the leader seeds j copies of a
/// private replacement X'_i.
[[nodiscard]] Crn hardcode_input(const Crn& crn, int input_index,
                                 math::Int j);

/// Observation 2.4: converts an output-monotonic CRN into an output-
/// oblivious one computing the same function, replacing catalytic uses of
/// the output Y by a shadow species that is produced whenever Y is.
[[nodiscard]] Crn monotonic_to_oblivious(const Crn& crn);

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_TRANSFORM_H_
