// Conversion of higher-order reactions to (at most) bimolecular form,
// following the paper's footnote 5: "3X -> Y is equivalent to two reactions
// 2X <-> X2 and X + X2 -> Y". Reversible pairing of reactants into complex
// species preserves reachability-based stable computation (partial complexes
// can always dissociate), and output-obliviousness is preserved because
// complex species are fresh and the back reactions only release original
// reactants (never the output).
//
// This is the bridge to the population-protocol view of the model
// (Section 1): population protocols are CRNs with two reactants and two
// products; after this pass every reaction has at most two reactants.
#ifndef CRNKIT_CRN_BIMOLECULAR_H_
#define CRNKIT_CRN_BIMOLECULAR_H_

#include "crn/network.h"

namespace crnkit::crn {

/// Rewrites every reaction of order >= 3 into a chain of reversible
/// pairings plus one final irreversible step. Reactions of order <= 2 are
/// kept as-is. Roles are preserved.
[[nodiscard]] Crn to_bimolecular(const Crn& crn);

/// The largest reactant order over all reactions.
[[nodiscard]] math::Int max_reaction_order(const Crn& crn);

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_BIMOLECULAR_H_
