// Optimization passes over CRNs, sized for the networks the composition
// pipeline emits (src/compile/circuit_expr.h): module wiring leaves behind
// unary conversion chains, write-only waste species, and duplicated
// reactions that the flat network no longer needs. Every pass preserves
// stable computation — the optimized network stably computes f on x iff the
// input network does — so `crnc compose` can verify the optimized artifact
// against the reference function and tests can cross-validate optimized
// vs. unoptimized verdicts (exact checker on small grids, simcheck beyond).
//
// Passes:
//   - fuse_duplicate_reactions: drop textually identical reactions (counts
//     only affect kinetics, never reachability or stability).
//   - eliminate_dead_species: remove reactions that can never fire (some
//     reactant is never producible from any initial configuration) and
//     write-only waste species (produced, never consumed, no role).
//   - collapse_fanout_chains: a species W with no role whose only consumer
//     is the unary conversion W -> Z is renamed to Z and the conversion
//     deleted — the pattern fan-out wiring produces in long chains.
//   - renumber_species: canonical compact numbering (inputs, leader, then
//     first use, output) dropping species no reaction or role mentions.
#ifndef CRNKIT_CRN_PASSES_H_
#define CRNKIT_CRN_PASSES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crn/network.h"

namespace crnkit::crn {

/// Before/after size accounting for one pass application.
struct PassStats {
  std::string pass;
  std::size_t species_before = 0;
  std::size_t species_after = 0;
  std::size_t reactions_before = 0;
  std::size_t reactions_after = 0;

  [[nodiscard]] bool changed() const {
    return species_before != species_after ||
           reactions_before != reactions_after;
  }
};

struct PassOptions {
  bool fuse_duplicates = true;
  bool dead_species = true;
  bool collapse_chains = true;
  bool renumber = true;
  /// The fuse/dead/collapse cycle repeats until a fixpoint or this bound.
  int max_rounds = 16;
};

struct PassPipelineResult {
  Crn crn;
  /// One entry per executed pass application, in order.
  std::vector<PassStats> passes;
  std::size_t species_before = 0;
  std::size_t species_after = 0;
  std::size_t reactions_before = 0;
  std::size_t reactions_after = 0;
};

/// Removes duplicate reactions (identical canonical reactant and product
/// term lists).
[[nodiscard]] Crn fuse_duplicate_reactions(const Crn& crn);

/// Removes never-firing reactions (a reactant is not producible from any
/// initial configuration: not an input, not the leader, and not a product
/// of any producible reaction) and write-only species (never a reactant,
/// no input/output/leader role) from product lists. Reactions whose product
/// removal makes them no-ops are dropped.
[[nodiscard]] Crn eliminate_dead_species(const Crn& crn);

/// Collapses unary conversion chains: W (no role) whose only consuming
/// reaction is exactly W -> Z gets renamed to Z everywhere and the
/// conversion deleted. Iterates to a fixpoint internally.
[[nodiscard]] Crn collapse_fanout_chains(const Crn& crn);

/// Rebuilds the CRN with canonical species numbering: inputs first, then
/// the leader, then species in order of first appearance in the reaction
/// list, then the output. Species mentioned by no reaction and no role are
/// dropped.
[[nodiscard]] Crn renumber_species(const Crn& crn);

/// Runs the full pipeline (fuse -> dead -> collapse, repeated to fixpoint,
/// then one renumbering) with per-pass size accounting.
[[nodiscard]] PassPipelineResult optimize(const Crn& crn,
                                          const PassOptions& options = {});

/// The canonical form behind canonical_hash: species are ordered by a
/// name-free color refinement (roles seed the colors, reaction structure
/// refines them), reactions are sorted by their color signatures, and the
/// result is rebuilt through renumber_species so numbering follows the
/// canonical reaction order. Two CRNs that differ only by species
/// renaming/reordering or reaction reordering canonicalize to structurally
/// identical networks (same ids, same sorted reaction list, same roles).
[[nodiscard]] Crn canonical_form(const Crn& crn);

/// Content hash of the canonical form: splitmix64-chained over the
/// flattened structure (arity, role ids, sorted reaction term lists).
/// Invariant under species renaming and reaction reordering; the
/// content-addressed proof cache keys verdicts by it.
[[nodiscard]] std::uint64_t canonical_hash(const Crn& crn);

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_PASSES_H_
