#include "crn/transform.h"

#include <set>

#include "crn/checks.h"
#include "math/check.h"

namespace crnkit::crn {

Crn rename_species(const Crn& crn,
                   const std::map<std::string, std::string>& renames) {
  // Compute the full name list up front and check for collisions.
  std::vector<std::string> new_names;
  std::set<std::string> seen;
  for (const std::string& old : crn.species_table().names()) {
    const auto it = renames.find(old);
    const std::string next = it == renames.end() ? old : it->second;
    require(seen.insert(next).second,
            "rename_species: name collision on '" + next + "'");
    new_names.push_back(next);
  }
  Crn out(crn.name());
  for (const std::string& name : new_names) out.add_species(name);
  for (const Reaction& r : crn.reactions()) out.add_reaction(r);
  std::vector<std::string> input_names;
  for (const SpeciesId id : crn.inputs()) {
    input_names.push_back(new_names[static_cast<std::size_t>(id)]);
  }
  if (!input_names.empty()) out.set_input_species(input_names);
  if (crn.output()) {
    out.set_output_species(new_names[static_cast<std::size_t>(*crn.output())]);
  }
  if (crn.leader()) {
    out.set_leader_species(new_names[static_cast<std::size_t>(*crn.leader())]);
  }
  return out;
}

Crn prefix_species(const Crn& crn, const std::string& prefix) {
  std::map<std::string, std::string> renames;
  for (const std::string& old : crn.species_table().names()) {
    renames[old] = prefix + old;
  }
  return rename_species(crn, renames);
}

Crn hardcode_input(const Crn& crn, int input_index, math::Int j) {
  require(input_index >= 0 && input_index < crn.input_arity(),
          "hardcode_input: bad input index");
  require(j >= 0, "hardcode_input: negative pin value");
  require_computing_shape(crn);

  const std::string xi_name =
      crn.species_name(crn.inputs()[static_cast<std::size_t>(input_index)]);
  std::map<std::string, std::string> renames;
  renames[xi_name] = xi_name + "#pinned";
  std::string inner_leader_name;
  if (crn.leader()) {
    inner_leader_name = crn.species_name(*crn.leader()) + "#inner";
    renames[crn.species_name(*crn.leader())] = inner_leader_name;
  }
  Crn out = rename_species(crn, renames);
  out.set_name(crn.name() + "[x(" + std::to_string(input_index + 1) + ")->" +
               std::to_string(j) + "]");

  // Fresh leader with the seeding reaction L -> j X'_i (+ L').
  const std::string new_leader = "Lpin#" + std::to_string(input_index);
  std::vector<std::pair<std::string, math::Int>> products;
  if (j > 0) products.emplace_back(xi_name + "#pinned", j);
  if (crn.leader()) products.emplace_back(inner_leader_name, 1);
  if (products.empty()) {
    // Nothing to seed: j == 0 and the CRN is leaderless. Keep a harmless
    // leader that converts to an inert token, so roles stay uniform.
    products.emplace_back("Lpin#inert", 1);
  }
  out.add_reaction({{new_leader, 1}}, products);
  out.set_leader_species(new_leader);

  // Re-declare input i as a fresh inert species with the original name
  // (the rename freed it); its molecules never react, exactly "ignoring"
  // the pinned input. The other inputs kept their names.
  std::vector<std::string> rebuilt;
  for (int i = 0; i < crn.input_arity(); ++i) {
    const std::string original =
        crn.species_name(crn.inputs()[static_cast<std::size_t>(i)]);
    if (i == input_index && !out.has_species(original)) {
      out.add_species(original);
    }
    rebuilt.push_back(original);
  }
  out.set_input_species(rebuilt);
  return out;
}

Crn monotonic_to_oblivious(const Crn& crn) {
  require_computing_shape(crn);
  require(is_output_monotonic(crn),
          "monotonic_to_oblivious: CRN is not output-monotonic");
  if (is_output_oblivious(crn)) return crn;

  const SpeciesId y = crn.output_or_throw();
  const std::string y_name = crn.species_name(y);
  const std::string z_name = y_name + "#shadow";
  require(!crn.has_species(z_name),
          "monotonic_to_oblivious: shadow name taken");

  Crn out(crn.name() + "+oblivious");
  for (const std::string& name : crn.species_table().names()) {
    out.add_species(name);
  }
  const SpeciesId z = out.add_species(z_name);

  for (const Reaction& r : crn.reactions()) {
    const math::Int k = r.reactant_count(y);
    const math::Int m = r.product_count(y);
    std::vector<Term> reactants;
    std::vector<Term> products;
    for (const Term& t : r.reactants()) {
      if (t.species == y) {
        reactants.push_back({z, t.count});  // catalyst Y -> shadow Z
      } else {
        reactants.push_back(t);
      }
    }
    for (const Term& t : r.products()) {
      if (t.species == y) {
        if (m - k > 0) products.push_back({y, m - k});  // fresh Y only
      } else {
        products.push_back(t);
      }
    }
    if (m > 0) products.push_back({z, m});  // Z twin for every Y returned/made
    out.add_reaction(Reaction(std::move(reactants), std::move(products)));
  }

  std::vector<std::string> input_names;
  for (const SpeciesId id : crn.inputs()) {
    input_names.push_back(crn.species_name(id));
  }
  out.set_input_species(input_names);
  out.set_output_species(y_name);
  if (crn.leader()) out.set_leader_species(crn.species_name(*crn.leader()));
  require_output_oblivious(out);
  return out;
}

}  // namespace crnkit::crn
