#include "crn/invariants.h"

#include "math/check.h"

namespace crnkit::crn {

using math::Matrix;
using math::Rational;
using math::RatVec;

Matrix stoichiometry_matrix(const Crn& crn) {
  Matrix m(crn.reactions().size(), crn.species_count());
  for (std::size_t j = 0; j < crn.reactions().size(); ++j) {
    const Reaction& r = crn.reactions()[j];
    for (const Term& t : r.reactants()) {
      m.at(j, static_cast<std::size_t>(t.species)) -= Rational(t.count);
    }
    for (const Term& t : r.products()) {
      m.at(j, static_cast<std::size_t>(t.species)) += Rational(t.count);
    }
  }
  return m;
}

std::vector<RatVec> conservation_laws(const Crn& crn) {
  return math::nullspace(stoichiometry_matrix(crn));
}

Rational invariant_value(const RatVec& w, const Config& config) {
  require(w.size() == config.size(), "invariant_value: size mismatch");
  Rational acc;
  for (std::size_t i = 0; i < w.size(); ++i) {
    acc += w[i] * Rational(config[i]);
  }
  return acc;
}

bool is_conserved(const Crn& crn, const RatVec& w) {
  require(w.size() == crn.species_count(), "is_conserved: size mismatch");
  const Matrix m = stoichiometry_matrix(crn);
  for (std::size_t j = 0; j < m.rows(); ++j) {
    if (!math::dot(m.row(j), w).is_zero()) return false;
  }
  return true;
}

}  // namespace crnkit::crn
