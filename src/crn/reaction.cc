#include "crn/reaction.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "math/check.h"

namespace crnkit::crn {

namespace {

std::vector<Term> normalize(std::vector<Term> terms, const char* side) {
  std::map<SpeciesId, math::Int> merged;
  for (const Term& t : terms) {
    require(t.count >= 0, std::string("Reaction: negative count on ") + side);
    if (t.count == 0) continue;
    merged[t.species] += t.count;
  }
  std::vector<Term> out;
  out.reserve(merged.size());
  for (const auto& [species, count] : merged) out.push_back({species, count});
  return out;
}

math::Int count_of(const std::vector<Term>& terms, SpeciesId s) {
  for (const Term& t : terms) {
    if (t.species == s) return t.count;
  }
  return 0;
}

}  // namespace

Reaction::Reaction(std::vector<Term> reactants, std::vector<Term> products)
    : reactants_(normalize(std::move(reactants), "reactant side")),
      products_(normalize(std::move(products), "product side")) {
  require(!(reactants_.empty() && products_.empty()),
          "Reaction: both sides empty");
  // A no-op reaction (R == P) never changes any configuration; constructing
  // one is almost certainly a bug in a compiler, so reject it.
  require(!(reactants_.size() == products_.size() &&
            std::equal(reactants_.begin(), reactants_.end(), products_.begin(),
                       [](const Term& a, const Term& b) {
                         return a.species == b.species && a.count == b.count;
                       })),
          "Reaction: reactants equal products (no-op)");
}

math::Int Reaction::reactant_count(SpeciesId s) const {
  return count_of(reactants_, s);
}

math::Int Reaction::product_count(SpeciesId s) const {
  return count_of(products_, s);
}

math::Int Reaction::order() const {
  math::Int total = 0;
  for (const Term& t : reactants_) total += t.count;
  return total;
}

bool Reaction::applicable(const Config& config) const {
  for (const Term& t : reactants_) {
    if (config[static_cast<std::size_t>(t.species)] < t.count) return false;
  }
  return true;
}

void Reaction::apply_in_place(Config& config) const {
  for (const Term& t : reactants_) {
    config[static_cast<std::size_t>(t.species)] -= t.count;
  }
  for (const Term& t : products_) {
    config[static_cast<std::size_t>(t.species)] += t.count;
  }
}

std::string Reaction::to_string(const SpeciesTable& table) const {
  auto side = [&](const std::vector<Term>& terms) {
    if (terms.empty()) return std::string("0");
    std::ostringstream os;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) os << " + ";
      if (terms[i].count != 1) os << terms[i].count << " ";
      os << table.name(terms[i].species);
    }
    return os.str();
  };
  return side(reactants_) + " -> " + side(products_);
}

}  // namespace crnkit::crn
