// Syntactic checks from Section 2.3: output-oblivious (the output species
// never appears as a reactant) and output-monotonic (no reaction decreases
// the output count). Obliviousness is the paper's central composability
// notion; Observation 2.4 shows the two classes compute the same functions.
#ifndef CRNKIT_CRN_CHECKS_H_
#define CRNKIT_CRN_CHECKS_H_

#include <optional>
#include <string>

#include "crn/network.h"

namespace crnkit::crn {

/// True iff no reaction uses the declared output species as a reactant.
[[nodiscard]] bool is_output_oblivious(const Crn& crn);

/// True iff no reaction strictly decreases the output count (the weaker
/// notion of [13], footnote 7).
[[nodiscard]] bool is_output_monotonic(const Crn& crn);

/// The first reaction (rendered) violating output-obliviousness, if any.
[[nodiscard]] std::optional<std::string> find_output_consuming_reaction(
    const Crn& crn);

/// Throws std::logic_error unless the CRN is output-oblivious. Compilers
/// call this on everything they emit.
void require_output_oblivious(const Crn& crn);

/// Basic well-formedness for function computation: an output species must
/// be declared (inputs may be empty for constant modules). Throws on
/// violation.
void require_computing_shape(const Crn& crn);

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_CHECKS_H_
