// Stoichiometric structure: the stoichiometry matrix and its conservation
// laws (P-invariants). A conservation law is a rational weight vector w
// with w . (P - R) = 0 for every reaction, so w . C is constant along
// every reachable path — including every stochastic trajectory.
//
// Conservation laws are the workhorse sanity check of a CRN library
// (Gillespie trajectories must preserve them exactly), and they explain
// several of the paper's examples: the min CRN conserves x1 - x2 and
// x1 + y; the Theorem 3.1 constructions conserve the leader-token count.
#ifndef CRNKIT_CRN_INVARIANTS_H_
#define CRNKIT_CRN_INVARIANTS_H_

#include <vector>

#include "crn/network.h"
#include "math/matrix.h"

namespace crnkit::crn {

/// The |reactions| x |species| net-change matrix (row j = P_j - R_j).
[[nodiscard]] math::Matrix stoichiometry_matrix(const Crn& crn);

/// A basis of the conservation laws: all w with stoichiometry * w = 0
/// (the right nullspace of the net-change matrix).
[[nodiscard]] std::vector<math::RatVec> conservation_laws(const Crn& crn);

/// Exact value of w . config.
[[nodiscard]] math::Rational invariant_value(const math::RatVec& w,
                                             const Config& config);

/// True iff w is conserved by every reaction of the CRN.
[[nodiscard]] bool is_conserved(const Crn& crn, const math::RatVec& w);

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_INVARIANTS_H_
