// The chemical reaction network C = (S, R) of Section 2.2, with the roles
// needed for stable function computation: an ordered list of input species
// X_1..X_d, an output species Y, and an optional leader L.
//
// The initial configuration I_x encodes x with counts x(i) of X_i, one
// leader (when a leader is declared), and zero of everything else.
#ifndef CRNKIT_CRN_NETWORK_H_
#define CRNKIT_CRN_NETWORK_H_

#include <optional>
#include <string>
#include <vector>

#include "crn/reaction.h"
#include "crn/species.h"
#include "fn/function.h"

namespace crnkit::crn {

class Crn {
 public:
  explicit Crn(std::string name = "crn");

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- species ---
  SpeciesId add_species(const std::string& name) { return table_.add(name); }
  SpeciesId get_or_add_species(const std::string& name) {
    return table_.get_or_add(name);
  }
  [[nodiscard]] SpeciesId species(const std::string& name) const {
    return table_.id(name);
  }
  [[nodiscard]] bool has_species(const std::string& name) const {
    return table_.find(name).has_value();
  }
  [[nodiscard]] const std::string& species_name(SpeciesId id) const {
    return table_.name(id);
  }
  [[nodiscard]] std::size_t species_count() const { return table_.size(); }
  [[nodiscard]] const SpeciesTable& species_table() const { return table_; }

  // --- reactions ---
  void add_reaction(Reaction r);
  /// Adds a reaction given species names:
  /// add_reaction({{"A",1},{"B",2}}, {{"C",1}}) is A + 2B -> C.
  /// Unknown species are created.
  void add_reaction(
      const std::vector<std::pair<std::string, math::Int>>& reactants,
      const std::vector<std::pair<std::string, math::Int>>& products);
  /// Parses "A + 2 B -> C" / "X -> 2 Y + Z" / "L -> 0" (empty side "0").
  void add_reaction_str(const std::string& text);
  [[nodiscard]] const std::vector<Reaction>& reactions() const {
    return reactions_;
  }

  // --- computation roles ---
  void set_input_species(const std::vector<std::string>& names);
  void set_output_species(const std::string& name);
  void set_leader_species(const std::string& name);

  [[nodiscard]] const std::vector<SpeciesId>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] int input_arity() const {
    return static_cast<int>(inputs_.size());
  }
  [[nodiscard]] std::optional<SpeciesId> output() const { return output_; }
  [[nodiscard]] SpeciesId output_or_throw() const;
  [[nodiscard]] std::optional<SpeciesId> leader() const { return leader_; }

  /// The initial configuration I_x (Section 2.2): counts x(i) of X_i, one
  /// leader if declared, zero otherwise.
  [[nodiscard]] Config initial_configuration(const fn::Point& x) const;

  /// Zero configuration of the right width.
  [[nodiscard]] Config empty_configuration() const;

  /// Output count of a configuration.
  [[nodiscard]] math::Int output_count(const Config& config) const;

  /// True iff no reaction is applicable at `config` ("silent"; a silent
  /// configuration is trivially stable).
  [[nodiscard]] bool is_silent(const Config& config) const;

  /// Indices of reactions applicable at `config`.
  [[nodiscard]] std::vector<std::size_t> applicable_reactions(
      const Config& config) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string config_to_string(const Config& config) const;

 private:
  std::string name_;
  SpeciesTable table_;
  std::vector<Reaction> reactions_;
  std::vector<SpeciesId> inputs_;
  std::optional<SpeciesId> output_;
  std::optional<SpeciesId> leader_;
};

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_NETWORK_H_
