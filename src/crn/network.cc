#include "crn/network.h"

#include <cctype>
#include <sstream>

#include "math/check.h"

namespace crnkit::crn {

Crn::Crn(std::string name) : name_(std::move(name)) {}

void Crn::add_reaction(Reaction r) {
  for (const Term& t : r.reactants()) {
    require(static_cast<std::size_t>(t.species) < table_.size(),
            "Crn::add_reaction: unknown reactant species id");
  }
  for (const Term& t : r.products()) {
    require(static_cast<std::size_t>(t.species) < table_.size(),
            "Crn::add_reaction: unknown product species id");
  }
  reactions_.push_back(std::move(r));
}

void Crn::add_reaction(
    const std::vector<std::pair<std::string, math::Int>>& reactants,
    const std::vector<std::pair<std::string, math::Int>>& products) {
  std::vector<Term> r;
  std::vector<Term> p;
  for (const auto& [name, count] : reactants) {
    r.push_back({get_or_add_species(name), count});
  }
  for (const auto& [name, count] : products) {
    p.push_back({get_or_add_species(name), count});
  }
  add_reaction(Reaction(std::move(r), std::move(p)));
}

namespace {

/// Parses one side of a reaction string into (name, count) pairs.
/// Accepts "A + 2 B + 3C", "0", and "" (the last two mean the empty side).
std::vector<std::pair<std::string, math::Int>> parse_side(
    const std::string& text) {
  std::vector<std::pair<std::string, math::Int>> out;
  std::string token;
  std::vector<std::string> tokens;
  std::istringstream stream(text);
  std::string plus_separated;
  while (std::getline(stream, plus_separated, '+')) {
    tokens.push_back(plus_separated);
  }
  for (std::string t : tokens) {
    // Trim whitespace.
    const auto first = t.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = t.find_last_not_of(" \t");
    t = t.substr(first, last - first + 1);
    if (t == "0" || t.empty()) continue;
    // Leading integer coefficient, optionally separated by whitespace.
    std::size_t i = 0;
    while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) {
      ++i;
    }
    math::Int count = 1;
    std::string name = t;
    if (i > 0) {
      // 19+ digits would overflow std::stoll (std::out_of_range escaping
      // as a crash instead of a parse error).
      require(i <= 18,
              "parse_side: coefficient out of range in '" + t + "'");
      count = std::stoll(t.substr(0, i));
      name = t.substr(i);
      const auto name_start = name.find_first_not_of(" \t");
      require(name_start != std::string::npos,
              "parse_side: coefficient without species in '" + t + "'");
      name = name.substr(name_start);
    }
    // A name with interior whitespace or arrow characters means the
    // reaction text was malformed (e.g. a second '->'); never let it
    // silently become a species.
    for (const char c : name) {
      require(!std::isspace(static_cast<unsigned char>(c)) && c != '<' &&
                  c != '>',
              "parse_side: invalid species name '" + name + "'");
    }
    out.emplace_back(name, count);
  }
  return out;
}

}  // namespace

void Crn::add_reaction_str(const std::string& text) {
  require(text.find("<->") == std::string::npos,
          "add_reaction_str: reversible '<->' in '" + text +
              "' (only crn::from_text expands reversible reactions)");
  const auto arrow = text.find("->");
  require(arrow != std::string::npos,
          "add_reaction_str: missing '->' in '" + text + "'");
  require(text.find("->", arrow + 2) == std::string::npos,
          "add_reaction_str: multiple '->' in '" + text + "'");
  add_reaction(parse_side(text.substr(0, arrow)),
               parse_side(text.substr(arrow + 2)));
}

void Crn::set_input_species(const std::vector<std::string>& names) {
  inputs_.clear();
  for (const auto& name : names) inputs_.push_back(get_or_add_species(name));
}

void Crn::set_output_species(const std::string& name) {
  output_ = get_or_add_species(name);
}

void Crn::set_leader_species(const std::string& name) {
  leader_ = get_or_add_species(name);
}

SpeciesId Crn::output_or_throw() const {
  require(output_.has_value(),
          "Crn '" + name_ + "': no output species declared");
  return *output_;
}

Config Crn::initial_configuration(const fn::Point& x) const {
  require(static_cast<int>(x.size()) == input_arity(),
          "Crn '" + name_ + "': input arity mismatch");
  Config config(table_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    require(x[i] >= 0, "Crn::initial_configuration: negative input");
    config[static_cast<std::size_t>(inputs_[i])] += x[i];
  }
  if (leader_) config[static_cast<std::size_t>(*leader_)] += 1;
  return config;
}

Config Crn::empty_configuration() const { return Config(table_.size(), 0); }

math::Int Crn::output_count(const Config& config) const {
  return config[static_cast<std::size_t>(output_or_throw())];
}

bool Crn::is_silent(const Config& config) const {
  for (const Reaction& r : reactions_) {
    if (r.applicable(config)) return false;
  }
  return true;
}

std::vector<std::size_t> Crn::applicable_reactions(const Config& config) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < reactions_.size(); ++i) {
    if (reactions_[i].applicable(config)) out.push_back(i);
  }
  return out;
}

std::string Crn::to_string() const {
  std::ostringstream os;
  os << "CRN '" << name_ << "' (" << table_.size() << " species, "
     << reactions_.size() << " reactions)\n";
  os << "  inputs:";
  for (const SpeciesId id : inputs_) os << " " << table_.name(id);
  if (output_) os << "\n  output: " << table_.name(*output_);
  if (leader_) os << "\n  leader: " << table_.name(*leader_);
  for (const Reaction& r : reactions_) os << "\n  " << r.to_string(table_);
  return os.str();
}

std::string Crn::config_to_string(const Config& config) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (std::size_t s = 0; s < config.size(); ++s) {
    if (config[s] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << table_.name(static_cast<SpeciesId>(s)) << ": " << config[s];
  }
  os << "}";
  return os.str();
}

}  // namespace crnkit::crn
