#include "crn/bimolecular.h"

#include "crn/checks.h"
#include "math/check.h"

namespace crnkit::crn {

math::Int max_reaction_order(const Crn& crn) {
  math::Int best = 0;
  for (const Reaction& r : crn.reactions()) best = std::max(best, r.order());
  return best;
}

Crn to_bimolecular(const Crn& crn) {
  Crn out(crn.name() + "+bimolecular");
  for (const std::string& s : crn.species_table().names()) out.add_species(s);

  int complex_counter = 0;
  for (const Reaction& r : crn.reactions()) {
    if (r.order() <= 2) {
      out.add_reaction(r);
      continue;
    }
    // Flatten the reactant multiset into an ordered list.
    std::vector<SpeciesId> flat;
    for (const Term& t : r.reactants()) {
      for (math::Int c = 0; c < t.count; ++c) flat.push_back(t.species);
    }
    // Chain: C2 <-> r1 + r2; C_{k+1} <-> C_k + r_{k+1}; final step consumes
    // C_{n-1} + r_n irreversibly into the products.
    SpeciesId current = flat[0];
    for (std::size_t k = 1; k + 1 < flat.size(); ++k) {
      const std::string cname = "cplx#" + std::to_string(complex_counter) +
                                "#" + std::to_string(k);
      const SpeciesId complex_id = out.add_species(cname);
      out.add_reaction(Reaction({{current, 1}, {flat[k], 1}},
                                {{complex_id, 1}}));
      out.add_reaction(Reaction({{complex_id, 1}},
                                {{current, 1}, {flat[k], 1}}));
      current = complex_id;
    }
    std::vector<Term> products(r.products().begin(), r.products().end());
    out.add_reaction(
        Reaction({{current, 1}, {flat.back(), 1}}, std::move(products)));
    ++complex_counter;
  }

  std::vector<std::string> input_names;
  for (const SpeciesId id : crn.inputs()) {
    input_names.push_back(crn.species_name(id));
  }
  if (!input_names.empty()) out.set_input_species(input_names);
  if (crn.output()) {
    out.set_output_species(crn.species_name(*crn.output()));
  }
  if (crn.leader()) out.set_leader_species(crn.species_name(*crn.leader()));
  ensure(max_reaction_order(out) <= 2,
         "to_bimolecular: conversion left a higher-order reaction");
  return out;
}

}  // namespace crnkit::crn
