#include "crn/species.h"

#include "math/check.h"

namespace crnkit::crn {

SpeciesId SpeciesTable::add(const std::string& name) {
  require(!name.empty(), "SpeciesTable::add: empty species name");
  require(ids_.find(name) == ids_.end(),
          "SpeciesTable::add: duplicate species '" + name + "'");
  const SpeciesId id = static_cast<SpeciesId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

SpeciesId SpeciesTable::get_or_add(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  return add(name);
}

std::optional<SpeciesId> SpeciesTable::find(const std::string& name) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

SpeciesId SpeciesTable::id(const std::string& name) const {
  const auto it = ids_.find(name);
  require(it != ids_.end(), "SpeciesTable::id: unknown species '" + name +
                                "'");
  return it->second;
}

const std::string& SpeciesTable::name(SpeciesId id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
          "SpeciesTable::name: bad id");
  return names_[static_cast<std::size_t>(id)];
}

}  // namespace crnkit::crn
