// Reactions (R, P) in N^S x N^S (Section 2.2): sparse reactant and product
// term lists with positive counts, plus applicability and application to
// configurations. A configuration is a dense count vector indexed by
// SpeciesId.
#ifndef CRNKIT_CRN_REACTION_H_
#define CRNKIT_CRN_REACTION_H_

#include <string>
#include <vector>

#include "crn/species.h"
#include "math/numtheory.h"

namespace crnkit::crn {

/// A configuration: molecular counts indexed by SpeciesId.
using Config = std::vector<math::Int>;

/// count copies of one species on one side of a reaction.
struct Term {
  SpeciesId species = 0;
  math::Int count = 0;
};

class Reaction {
 public:
  /// Terms are merged, zero counts dropped, and sorted by species id.
  /// A reaction must change the configuration (R != P) and may not have
  /// both sides empty.
  Reaction(std::vector<Term> reactants, std::vector<Term> products);

  [[nodiscard]] const std::vector<Term>& reactants() const {
    return reactants_;
  }
  [[nodiscard]] const std::vector<Term>& products() const { return products_; }

  [[nodiscard]] math::Int reactant_count(SpeciesId s) const;
  [[nodiscard]] math::Int product_count(SpeciesId s) const;

  /// Net change of species s when the reaction fires.
  [[nodiscard]] math::Int net_change(SpeciesId s) const {
    return product_count(s) - reactant_count(s);
  }

  /// Total reactant multiplicity (the reaction's order).
  [[nodiscard]] math::Int order() const;

  /// True iff the configuration has all reactants.
  [[nodiscard]] bool applicable(const Config& config) const;

  /// Applies the reaction in place; the caller must check applicability.
  void apply_in_place(Config& config) const;

  [[nodiscard]] std::string to_string(const SpeciesTable& table) const;

 private:
  std::vector<Term> reactants_;
  std::vector<Term> products_;
};

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_REACTION_H_
