// Species identifiers and the name <-> id table used by every CRN.
//
// Species are dense integer ids into a per-CRN table, so configurations are
// plain count vectors and reactions are sparse term lists. Names exist for
// construction, composition (renaming), and diagnostics.
#ifndef CRNKIT_CRN_SPECIES_H_
#define CRNKIT_CRN_SPECIES_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace crnkit::crn {

using SpeciesId = int;

class SpeciesTable {
 public:
  /// Adds a new species; throws std::invalid_argument on duplicates or
  /// empty names.
  SpeciesId add(const std::string& name);

  /// Adds the species if absent; returns its id either way.
  SpeciesId get_or_add(const std::string& name);

  /// The id of `name`, if present.
  [[nodiscard]] std::optional<SpeciesId> find(const std::string& name) const;

  /// The id of `name`; throws if absent.
  [[nodiscard]] SpeciesId id(const std::string& name) const;

  [[nodiscard]] const std::string& name(SpeciesId id) const;

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

 private:
  std::vector<std::string> names_;
  std::map<std::string, SpeciesId> ids_;
};

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_SPECIES_H_
