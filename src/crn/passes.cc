#include "crn/passes.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "math/check.h"
#include "util/hash.h"

namespace crnkit::crn {

namespace {

/// Canonical term list: merged counts, zero terms dropped, sorted by
/// species — the same normal form Reaction's constructor produces, usable
/// before construction (Reaction refuses no-op reactions, so passes must
/// detect them first).
std::vector<Term> canonical_terms(const std::vector<Term>& terms) {
  std::map<SpeciesId, math::Int> counts;
  for (const Term& t : terms) counts[t.species] += t.count;
  std::vector<Term> out;
  for (const auto& [species, count] : counts) {
    if (count != 0) out.push_back({species, count});
  }
  return out;
}

bool terms_equal(const std::vector<Term>& a, const std::vector<Term>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].species != b[i].species || a[i].count != b[i].count) {
      return false;
    }
  }
  return true;
}

/// A stable text key for reaction deduplication.
std::string reaction_key(const Reaction& r) {
  std::ostringstream os;
  for (const Term& t : r.reactants()) os << t.species << "*" << t.count << ",";
  os << ">";
  for (const Term& t : r.products()) os << t.species << "*" << t.count << ",";
  return os.str();
}

bool has_role(const Crn& crn, SpeciesId s) {
  if (crn.output() && *crn.output() == s) return true;
  if (crn.leader() && *crn.leader() == s) return true;
  return std::find(crn.inputs().begin(), crn.inputs().end(), s) !=
         crn.inputs().end();
}

void copy_roles(const Crn& from, Crn& to) {
  std::vector<std::string> input_names;
  for (const SpeciesId id : from.inputs()) {
    input_names.push_back(from.species_name(id));
  }
  to.set_input_species(input_names);
  if (from.output()) to.set_output_species(from.species_name(*from.output()));
  if (from.leader()) to.set_leader_species(from.species_name(*from.leader()));
}

/// Rebuilds `crn` keeping only species in `keep` (by id) and the reactions
/// for which `keep_reaction` is true, with products filtered to kept
/// species. Role species must be in `keep`.
Crn rebuild(const Crn& crn, const std::vector<bool>& keep,
            const std::vector<bool>& keep_reaction) {
  Crn out(crn.name());
  for (std::size_t s = 0; s < crn.species_count(); ++s) {
    if (keep[s]) out.get_or_add_species(crn.species_name(
        static_cast<SpeciesId>(s)));
  }
  for (std::size_t i = 0; i < crn.reactions().size(); ++i) {
    if (!keep_reaction[i]) continue;
    const Reaction& r = crn.reactions()[i];
    std::vector<Term> reactants;
    std::vector<Term> products;
    for (const Term& t : r.reactants()) {
      reactants.push_back({out.species(crn.species_name(t.species)), t.count});
    }
    for (const Term& t : r.products()) {
      if (!keep[static_cast<std::size_t>(t.species)]) continue;
      products.push_back({out.species(crn.species_name(t.species)), t.count});
    }
    const std::vector<Term> cr = canonical_terms(reactants);
    const std::vector<Term> cp = canonical_terms(products);
    // Product filtering can only strip write-only waste; a reaction reduced
    // to a no-op no longer changes any kept species and is dropped.
    if (terms_equal(cr, cp)) continue;
    out.add_reaction(Reaction(cr, cp));
  }
  copy_roles(crn, out);
  return out;
}

}  // namespace

Crn fuse_duplicate_reactions(const Crn& crn) {
  Crn out(crn.name());
  for (const std::string& s : crn.species_table().names()) {
    out.get_or_add_species(s);
  }
  std::set<std::string> seen;
  for (const Reaction& r : crn.reactions()) {
    if (!seen.insert(reaction_key(r)).second) continue;
    out.add_reaction(r);
  }
  copy_roles(crn, out);
  return out;
}

Crn eliminate_dead_species(const Crn& crn) {
  const std::size_t n = crn.species_count();

  // Producibility fixpoint: a species can appear in some reachable
  // configuration iff it is an input, the leader, or a product of a
  // reaction all of whose reactants are producible.
  std::vector<bool> producible(n, false);
  for (const SpeciesId id : crn.inputs()) {
    producible[static_cast<std::size_t>(id)] = true;
  }
  if (crn.leader()) producible[static_cast<std::size_t>(*crn.leader())] = true;
  bool grew = true;
  std::vector<bool> fires(crn.reactions().size(), false);
  while (grew) {
    grew = false;
    for (std::size_t i = 0; i < crn.reactions().size(); ++i) {
      if (fires[i]) continue;
      const Reaction& r = crn.reactions()[i];
      bool all = true;
      for (const Term& t : r.reactants()) {
        if (!producible[static_cast<std::size_t>(t.species)]) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      fires[i] = true;
      for (const Term& t : r.products()) {
        std::size_t s = static_cast<std::size_t>(t.species);
        if (!producible[s]) {
          producible[s] = true;
          grew = true;
        }
      }
    }
  }

  // Write-only species: never a reactant of a firing reaction and no role.
  // They only pad configurations; strip them from product lists.
  std::vector<bool> consumed(n, false);
  for (std::size_t i = 0; i < crn.reactions().size(); ++i) {
    if (!fires[i]) continue;
    for (const Term& t : crn.reactions()[i].reactants()) {
      consumed[static_cast<std::size_t>(t.species)] = true;
    }
  }
  std::vector<bool> keep(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    const SpeciesId id = static_cast<SpeciesId>(s);
    keep[s] = has_role(crn, id) || (producible[s] && consumed[s]);
  }
  return rebuild(crn, keep, fires);
}

Crn collapse_fanout_chains(const Crn& crn) {
  Crn current = crn;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::size_t n = current.species_count();
    std::vector<int> consumer_count(n, 0);
    std::vector<std::size_t> consumer_index(n, 0);
    for (std::size_t i = 0; i < current.reactions().size(); ++i) {
      for (const Term& t : current.reactions()[i].reactants()) {
        ++consumer_count[static_cast<std::size_t>(t.species)];
        consumer_index[static_cast<std::size_t>(t.species)] = i;
      }
    }
    for (std::size_t s = 0; s < n && !changed; ++s) {
      const SpeciesId w = static_cast<SpeciesId>(s);
      if (has_role(current, w) || consumer_count[s] != 1) continue;
      const std::size_t ridx = consumer_index[s];
      const Reaction& conv = current.reactions()[ridx];
      if (conv.reactants().size() != 1 || conv.reactants()[0].count != 1 ||
          conv.products().size() != 1 || conv.products()[0].count != 1 ||
          conv.products()[0].species == w) {
        continue;
      }
      const SpeciesId z = conv.products()[0].species;
      // W's only fate is the inevitable conversion W -> Z: substituting Z
      // for W (and dropping the conversion) quotients away the pending-
      // conversion configurations without touching any stable output.
      Crn next(current.name());
      for (std::size_t t = 0; t < n; ++t) {
        if (t == s) continue;
        next.get_or_add_species(
            current.species_name(static_cast<SpeciesId>(t)));
      }
      const std::string& z_name = current.species_name(z);
      auto mapped_name = [&](SpeciesId id) -> const std::string& {
        return id == w ? z_name : current.species_name(id);
      };
      for (std::size_t i = 0; i < current.reactions().size(); ++i) {
        if (i == ridx) continue;
        const Reaction& r = current.reactions()[i];
        std::vector<Term> reactants;
        std::vector<Term> products;
        for (const Term& t : r.reactants()) {
          reactants.push_back({next.species(mapped_name(t.species)), t.count});
        }
        for (const Term& t : r.products()) {
          products.push_back({next.species(mapped_name(t.species)), t.count});
        }
        const std::vector<Term> cr = canonical_terms(reactants);
        const std::vector<Term> cp = canonical_terms(products);
        if (terms_equal(cr, cp)) continue;  // e.g. Z -> W became a no-op
        next.add_reaction(Reaction(cr, cp));
      }
      copy_roles(current, next);
      current = std::move(next);
      changed = true;
    }
  }
  return current;
}

Crn renumber_species(const Crn& crn) {
  std::vector<std::string> order;
  std::set<std::string> placed;
  const auto place = [&](const std::string& name) {
    if (placed.insert(name).second) order.push_back(name);
  };
  for (const SpeciesId id : crn.inputs()) place(crn.species_name(id));
  if (crn.leader()) place(crn.species_name(*crn.leader()));
  for (const Reaction& r : crn.reactions()) {
    for (const Term& t : r.reactants()) place(crn.species_name(t.species));
    for (const Term& t : r.products()) place(crn.species_name(t.species));
  }
  if (crn.output()) place(crn.species_name(*crn.output()));

  Crn out(crn.name());
  for (const std::string& name : order) out.get_or_add_species(name);
  for (const Reaction& r : crn.reactions()) {
    std::vector<Term> reactants;
    std::vector<Term> products;
    for (const Term& t : r.reactants()) {
      reactants.push_back({out.species(crn.species_name(t.species)), t.count});
    }
    for (const Term& t : r.products()) {
      products.push_back({out.species(crn.species_name(t.species)), t.count});
    }
    out.add_reaction(Reaction(std::move(reactants), std::move(products)));
  }
  copy_roles(crn, out);
  return out;
}

namespace {

using util::hash_chain;
using util::splitmix64;

/// Order-independent signature of one reaction side under a species
/// coloring: per-term hashes, sorted, then chained.
std::uint64_t side_signature(const std::vector<Term>& terms,
                             const std::vector<std::uint64_t>& color) {
  std::vector<std::uint64_t> parts;
  parts.reserve(terms.size());
  for (const Term& t : terms) {
    parts.push_back(
        hash_chain(splitmix64(static_cast<std::uint64_t>(t.count)),
                   color[static_cast<std::size_t>(t.species)]));
  }
  std::sort(parts.begin(), parts.end());
  std::uint64_t h = 0xc53ab5f00d15ea5eULL;
  for (const std::uint64_t p : parts) h = hash_chain(h, p);
  return h;
}

/// Name-free species colors: roles seed the coloring (input position,
/// leader, output), then Weisfeiler-Leman-style rounds refine it with each
/// species's multiset of reaction-side signatures until the color ranking
/// stabilizes. Renaming species or permuting the reaction list cannot
/// change the final colors.
std::vector<std::uint64_t> species_colors(const Crn& crn) {
  const std::size_t n = crn.species_count();
  std::vector<std::uint64_t> color(n, splitmix64(0x517cc1b727220a95ULL));
  for (std::size_t i = 0; i < crn.inputs().size(); ++i) {
    auto& c = color[static_cast<std::size_t>(crn.inputs()[i])];
    c = hash_chain(c, 0x1000 + i);
  }
  if (crn.leader()) {
    auto& c = color[static_cast<std::size_t>(*crn.leader())];
    c = hash_chain(c, 0x2000);
  }
  if (crn.output()) {
    auto& c = color[static_cast<std::size_t>(*crn.output())];
    c = hash_chain(c, 0x3000);
  }

  std::vector<std::size_t> previous_rank;
  for (std::size_t round = 0; round < n + 2; ++round) {
    std::vector<std::vector<std::uint64_t>> contrib(n);
    for (const Reaction& r : crn.reactions()) {
      const std::uint64_t rsig =
          hash_chain(side_signature(r.reactants(), color),
                     side_signature(r.products(), color));
      for (const Term& t : r.reactants()) {
        contrib[static_cast<std::size_t>(t.species)].push_back(hash_chain(
            hash_chain(0xAA, static_cast<std::uint64_t>(t.count)), rsig));
      }
      for (const Term& t : r.products()) {
        contrib[static_cast<std::size_t>(t.species)].push_back(hash_chain(
            hash_chain(0xBB, static_cast<std::uint64_t>(t.count)), rsig));
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      std::sort(contrib[s].begin(), contrib[s].end());
      std::uint64_t folded = 0x9ae16a3b2f90404fULL;
      for (const std::uint64_t c : contrib[s]) folded = hash_chain(folded, c);
      color[s] = hash_chain(color[s], folded);
    }
    // Stop once the induced ranking is stable (the usual case after a few
    // rounds; the n+2 cap guards pathological inputs).
    std::vector<std::uint64_t> sorted = color;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::size_t> rank(n);
    for (std::size_t s = 0; s < n; ++s) {
      rank[s] = static_cast<std::size_t>(
          std::lower_bound(sorted.begin(), sorted.end(), color[s]) -
          sorted.begin());
    }
    if (rank == previous_rank) break;
    previous_rank = std::move(rank);
  }
  return color;
}

/// Flattened numeric key of a reaction for the final in-canonical-ids sort:
/// reactant terms then product terms, each (species, count).
std::vector<std::uint64_t> reaction_numeric_key(const Reaction& r) {
  std::vector<std::uint64_t> key;
  key.push_back(r.reactants().size());
  for (const Term& t : r.reactants()) {
    key.push_back(static_cast<std::uint64_t>(t.species));
    key.push_back(static_cast<std::uint64_t>(t.count));
  }
  for (const Term& t : r.products()) {
    key.push_back(static_cast<std::uint64_t>(t.species));
    key.push_back(static_cast<std::uint64_t>(t.count));
  }
  return key;
}

}  // namespace

Crn canonical_form(const Crn& crn) {
  const std::vector<std::uint64_t> color = species_colors(crn);

  // Sort reactions by their color signatures (ties broken by the sorted
  // per-side (count, color) lists; remaining ties are automorphic).
  struct Keyed {
    std::uint64_t sig;
    std::vector<std::uint64_t> detail;
    const Reaction* reaction;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(crn.reactions().size());
  for (const Reaction& r : crn.reactions()) {
    Keyed k;
    k.sig = hash_chain(side_signature(r.reactants(), color),
                       side_signature(r.products(), color));
    const auto detail_side = [&](const std::vector<Term>& terms) {
      std::vector<std::uint64_t> parts;
      for (const Term& t : terms) {
        parts.push_back(
            hash_chain(splitmix64(static_cast<std::uint64_t>(t.count)),
                       color[static_cast<std::size_t>(t.species)]));
      }
      std::sort(parts.begin(), parts.end());
      return parts;
    };
    k.detail = detail_side(r.reactants());
    k.detail.push_back(0xD1Dull);  // side separator
    const auto products = detail_side(r.products());
    k.detail.insert(k.detail.end(), products.begin(), products.end());
    k.reaction = &r;
    keyed.push_back(std::move(k));
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.sig != b.sig) return a.sig < b.sig;
                     return a.detail < b.detail;
                   });

  Crn staged(crn.name());
  for (const std::string& s : crn.species_table().names()) {
    staged.get_or_add_species(s);
  }
  for (const Keyed& k : keyed) staged.add_reaction(*k.reaction);
  copy_roles(crn, staged);

  // Canonical species ids come from the name-free colors, not from term
  // order inside reactions (Reaction stores terms sorted by the *input's*
  // species ids, so first-appearance numbering would leak them). Ties are
  // WL-indistinguishable; first use in the canonical reaction order breaks
  // them.
  const std::size_t n = crn.species_count();
  std::vector<std::size_t> first_use(n, n);
  {
    std::size_t slot = 0;
    const auto use = [&](SpeciesId id) {
      auto& u = first_use[static_cast<std::size_t>(id)];
      if (u == n) u = slot++;
    };
    for (const SpeciesId id : staged.inputs()) use(id);
    if (staged.leader()) use(*staged.leader());
    for (const Reaction& r : staged.reactions()) {
      for (const Term& t : r.reactants()) use(t.species);
      for (const Term& t : r.products()) use(t.species);
    }
    if (staged.output()) use(*staged.output());
  }
  std::vector<SpeciesId> by_color(n);
  for (std::size_t s = 0; s < n; ++s) by_color[s] = static_cast<SpeciesId>(s);
  std::sort(by_color.begin(), by_color.end(),
            [&](SpeciesId a, SpeciesId b) {
              const auto ai = static_cast<std::size_t>(a);
              const auto bi = static_cast<std::size_t>(b);
              if (color[ai] != color[bi]) return color[ai] < color[bi];
              return first_use[ai] < first_use[bi];
            });
  Crn renumbered(staged.name());
  for (const SpeciesId id : by_color) {
    renumbered.get_or_add_species(staged.species_name(id));
  }
  for (const Reaction& r : staged.reactions()) {
    std::vector<Term> reactants;
    std::vector<Term> products;
    for (const Term& t : r.reactants()) {
      reactants.push_back(
          {renumbered.species(staged.species_name(t.species)), t.count});
    }
    for (const Term& t : r.products()) {
      products.push_back(
          {renumbered.species(staged.species_name(t.species)), t.count});
    }
    renumbered.add_reaction(Reaction(std::move(reactants), std::move(products)));
  }
  copy_roles(staged, renumbered);
  std::vector<const Reaction*> order;
  order.reserve(renumbered.reactions().size());
  for (const Reaction& r : renumbered.reactions()) order.push_back(&r);
  std::stable_sort(order.begin(), order.end(),
                   [](const Reaction* a, const Reaction* b) {
                     return reaction_numeric_key(*a) <
                            reaction_numeric_key(*b);
                   });
  Crn out(renumbered.name());
  for (const std::string& s : renumbered.species_table().names()) {
    out.get_or_add_species(s);
  }
  for (const Reaction* r : order) out.add_reaction(*r);
  copy_roles(renumbered, out);
  return out;
}

std::uint64_t canonical_hash(const Crn& crn) {
  const Crn canon = canonical_form(crn);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = hash_chain(h, canon.species_count());
  h = hash_chain(h, canon.inputs().size());
  for (const SpeciesId id : canon.inputs()) {
    h = hash_chain(h, static_cast<std::uint64_t>(id));
  }
  h = hash_chain(h, canon.leader()
                        ? static_cast<std::uint64_t>(*canon.leader()) + 1
                        : 0);
  h = hash_chain(h, canon.output()
                        ? static_cast<std::uint64_t>(*canon.output()) + 1
                        : 0);
  h = hash_chain(h, canon.reactions().size());
  for (const Reaction& r : canon.reactions()) {
    for (const std::uint64_t v : reaction_numeric_key(r)) {
      h = hash_chain(h, v);
    }
    h = hash_chain(h, 0x5eedULL);  // reaction separator
  }
  return h;
}

PassPipelineResult optimize(const Crn& crn, const PassOptions& options) {
  PassPipelineResult result;
  result.crn = crn;
  result.species_before = crn.species_count();
  result.reactions_before = crn.reactions().size();

  const auto apply = [&result](const std::string& name, Crn next) {
    PassStats stats;
    stats.pass = name;
    stats.species_before = result.crn.species_count();
    stats.reactions_before = result.crn.reactions().size();
    stats.species_after = next.species_count();
    stats.reactions_after = next.reactions().size();
    result.passes.push_back(stats);
    result.crn = std::move(next);
    return result.passes.back().changed();
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;
    if (options.fuse_duplicates) {
      changed |= apply("fuse-duplicates",
                       fuse_duplicate_reactions(result.crn));
    }
    if (options.dead_species) {
      changed |= apply("dead-species", eliminate_dead_species(result.crn));
    }
    if (options.collapse_chains) {
      changed |= apply("collapse-chains", collapse_fanout_chains(result.crn));
    }
    if (!changed) break;
  }
  if (options.renumber) {
    apply("renumber", renumber_species(result.crn));
  }
  result.species_after = result.crn.species_count();
  result.reactions_after = result.crn.reactions().size();
  return result;
}

}  // namespace crnkit::crn
