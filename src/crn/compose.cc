#include "crn/compose.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "math/check.h"

namespace crnkit::crn {

Crn concatenate(const Crn& upstream, const Crn& downstream,
                const std::string& name) {
  require_computing_shape(upstream);
  require_computing_shape(downstream);
  require(downstream.input_arity() == 1,
          "concatenate: downstream must take exactly one input");

  const Crn f = prefix_species(upstream, "f.");
  // Rename downstream's input species to upstream's (prefixed) output, the
  // paper's literal "rename output of C_f to match input of C_g".
  const std::string common =
      "f." + upstream.species_name(upstream.output_or_throw());
  Crn g = prefix_species(downstream, "g.");
  g = rename_species(
      g, {{g.species_name(g.inputs()[0]), common}});

  Crn out(name);
  for (const std::string& s : f.species_table().names()) {
    out.get_or_add_species(s);
  }
  for (const std::string& s : g.species_table().names()) {
    out.get_or_add_species(s);
  }
  auto absorb = [&out](const Crn& part) {
    for (const Reaction& r : part.reactions()) {
      std::vector<Term> reactants;
      std::vector<Term> products;
      for (const Term& t : r.reactants()) {
        reactants.push_back({out.species(part.species_name(t.species)),
                             t.count});
      }
      for (const Term& t : r.products()) {
        products.push_back({out.species(part.species_name(t.species)),
                            t.count});
      }
      out.add_reaction(Reaction(std::move(reactants), std::move(products)));
    }
  };
  absorb(f);
  absorb(g);

  std::vector<std::string> input_names;
  for (const SpeciesId id : f.inputs()) {
    input_names.push_back(f.species_name(id));
  }
  out.set_input_species(input_names);
  out.set_output_species(g.species_name(g.output_or_throw()));

  // L -> Lf + Lg for whichever leaders exist.
  std::vector<std::pair<std::string, math::Int>> split;
  if (f.leader()) split.emplace_back(f.species_name(*f.leader()), 1);
  if (g.leader()) split.emplace_back(g.species_name(*g.leader()), 1);
  if (!split.empty()) {
    out.add_reaction({{"L", 1}}, split);
    out.set_leader_species("L");
  }
  return out;
}

Circuit::Circuit(int arity, std::string name)
    : arity_(arity), name_(std::move(name)) {
  require(arity_ >= 1, "Circuit: arity must be >= 1");
}

int Circuit::add_module(Crn module) {
  require_computing_shape(module);
  require_output_oblivious(module);
  modules_.push_back(std::move(module));
  return static_cast<int>(modules_.size()) - 1;
}

const Crn& Circuit::module(int m) const {
  require(m >= 0 && m < module_count(), "Circuit::module: bad index");
  return modules_[static_cast<std::size_t>(m)];
}

void Circuit::connect(Wire source, int m, int port) {
  require(m >= 0 && m < module_count(), "Circuit::connect: bad module");
  require(port >= 0 && port < module(m).input_arity(),
          "Circuit::connect: arity mismatch: port " + std::to_string(port) +
              " out of range for module " + std::to_string(m) + " (arity " +
              std::to_string(module(m).input_arity()) + ")");
  if (source.module == -1) {
    require(source.input >= 0 && source.input < arity_,
            "Circuit::connect: bad external input");
  } else {
    require(source.module >= 0 && source.module < module_count(),
            "Circuit::connect: bad source module");
    require(source.module != m, "Circuit::connect: self-loop");
  }
  connections_.push_back({source, m, port});
}

void Circuit::add_output(Wire source) {
  if (source.module == -1) {
    require(source.input >= 0 && source.input < arity_,
            "Circuit::add_output: bad external input");
  } else {
    require(source.module >= 0 && source.module < module_count(),
            "Circuit::add_output: bad source module");
  }
  // The sum junction adds *distinct* wires; the same wire twice would fold
  // into one fan-out reaction emitting 2 Y per molecule, silently doubling
  // that summand (use a scale module to multiply).
  require(std::find(outputs_.begin(), outputs_.end(), source) ==
              outputs_.end(),
          "Circuit::add_output: duplicate sum-junction wire");
  outputs_.push_back(source);
}

std::string Circuit::wire_species_name(const Wire& w) const {
  if (w.module == -1) return "X" + std::to_string(w.input + 1);
  const Crn& m = module(w.module);
  return "m" + std::to_string(w.module) + "." +
         m.species_name(m.output_or_throw());
}

Crn Circuit::compile() const {
  require(!outputs_.empty(), "Circuit::compile: no output declared");

  // Every port connected exactly once.
  std::set<std::pair<int, int>> seen_ports;
  for (const Connection& c : connections_) {
    require(seen_ports.insert({c.module, c.port}).second,
            "Circuit::compile: port connected twice");
  }
  for (int m = 0; m < module_count(); ++m) {
    for (int port = 0; port < module(m).input_arity(); ++port) {
      require(seen_ports.count({m, port}) > 0,
              "Circuit::compile: module " + std::to_string(m) + " port " +
                  std::to_string(port) + " unconnected");
    }
  }

  // Feed-forward check: module dependency graph must be acyclic.
  {
    std::vector<std::vector<int>> deps(modules_.size());
    for (const Connection& c : connections_) {
      if (c.source.module != -1) {
        deps[static_cast<std::size_t>(c.module)].push_back(c.source.module);
      }
    }
    std::vector<int> state(modules_.size(), 0);  // 0 new, 1 active, 2 done
    std::function<void(int)> dfs = [&](int m) {
      require(state[static_cast<std::size_t>(m)] != 1,
              "Circuit::compile: cycle through module " + std::to_string(m));
      if (state[static_cast<std::size_t>(m)] == 2) return;
      state[static_cast<std::size_t>(m)] = 1;
      for (const int dep : deps[static_cast<std::size_t>(m)]) dfs(dep);
      state[static_cast<std::size_t>(m)] = 2;
    };
    for (int m = 0; m < module_count(); ++m) dfs(m);
  }

  // Consumer census per wire. A consumer is either a (module, port) pair or
  // the circuit output Y (module == -2 marker).
  struct Consumer {
    int module;  // -2 means circuit output
    int port;
  };
  std::map<Wire, std::vector<Consumer>> consumers;
  for (const Connection& c : connections_) {
    consumers[c.source].push_back({c.module, c.port});
  }
  for (const Wire& w : outputs_) consumers[w].push_back({-2, 0});

  // Every module's output must flow somewhere: an unconsumed output species
  // would accumulate outside the declared circuit function.
  for (int m = 0; m < module_count(); ++m) {
    require(consumers.count(Wire::of_module(m)) > 0,
            "Circuit::compile: module " + std::to_string(m) +
                " output unconsumed (wire it to a port or add_output it)");
  }

  // Decide renames: single-consumer wires unify names, except that an
  // external input is never renamed onto Y (a conversion reaction is used).
  std::vector<std::map<std::string, std::string>> renames(modules_.size());
  std::set<Wire> fanout_wires;
  for (const auto& [wire, cs] : consumers) {
    if (cs.size() == 1) {
      const Consumer& c = cs.front();
      if (c.module == -2) {
        if (wire.module != -1) {
          // Module output renamed to the circuit output Y.
          const Crn& m = module(wire.module);
          renames[static_cast<std::size_t>(wire.module)]
                 [m.species_name(m.output_or_throw())] = "Y";
        } else {
          fanout_wires.insert(wire);  // external input -> Y conversion
        }
      } else {
        // Input port renamed to the wire's species.
        const Crn& m = module(c.module);
        renames[static_cast<std::size_t>(c.module)]
               [m.species_name(m.inputs()[static_cast<std::size_t>(c.port)])] =
            wire_species_name(wire);
      }
    } else {
      fanout_wires.insert(wire);
    }
  }

  // Build the composed CRN.
  Crn out(name_);
  std::vector<std::string> external_names;
  for (int i = 0; i < arity_; ++i) {
    external_names.push_back("X" + std::to_string(i + 1));
    out.add_species(external_names.back());
  }
  out.get_or_add_species("Y");

  std::vector<Crn> placed;
  placed.reserve(modules_.size());
  for (int m = 0; m < module_count(); ++m) {
    Crn renamed = prefix_species(module(m), "m" + std::to_string(m) + ".");
    // The per-module rename map refers to unprefixed names; translate.
    std::map<std::string, std::string> prefixed;
    for (const auto& [from, to] : renames[static_cast<std::size_t>(m)]) {
      prefixed["m" + std::to_string(m) + "." + from] = to;
    }
    if (!prefixed.empty()) renamed = rename_species(renamed, prefixed);
    for (const std::string& s : renamed.species_table().names()) {
      out.get_or_add_species(s);
    }
    for (const Reaction& r : renamed.reactions()) {
      std::vector<Term> reactants;
      std::vector<Term> products;
      for (const Term& t : r.reactants()) {
        reactants.push_back({out.species(renamed.species_name(t.species)),
                             t.count});
      }
      for (const Term& t : r.products()) {
        products.push_back({out.species(renamed.species_name(t.species)),
                            t.count});
      }
      out.add_reaction(Reaction(std::move(reactants), std::move(products)));
    }
    placed.push_back(std::move(renamed));
  }

  // Fan-out / conversion reactions.
  for (const Wire& wire : fanout_wires) {
    std::string source_name;
    if (wire.module == -1) {
      source_name = external_names[static_cast<std::size_t>(wire.input)];
    } else {
      const Crn& m = placed[static_cast<std::size_t>(wire.module)];
      source_name = m.species_name(m.output_or_throw());
    }
    std::vector<std::pair<std::string, math::Int>> products;
    for (const Consumer& c : consumers.at(wire)) {
      if (c.module == -2) {
        products.emplace_back("Y", 1);
      } else {
        const Crn& m = placed[static_cast<std::size_t>(c.module)];
        products.emplace_back(
            m.species_name(m.inputs()[static_cast<std::size_t>(c.port)]), 1);
      }
    }
    out.add_reaction({{source_name, 1}}, products);
  }

  // Roles.
  out.set_input_species(external_names);
  out.set_output_species("Y");
  std::vector<std::pair<std::string, math::Int>> split;
  for (std::size_t m = 0; m < placed.size(); ++m) {
    if (placed[m].leader()) {
      split.emplace_back(placed[m].species_name(*placed[m].leader()), 1);
    }
  }
  if (!split.empty()) {
    out.add_reaction({{"L", 1}}, split);
    out.set_leader_species("L");
  }
  require_output_oblivious(out);
  return out;
}

TupleCrn parallel_tuple(const std::vector<Crn>& components,
                        const std::string& name) {
  require(!components.empty(), "parallel_tuple: no components");
  const int d = components.front().input_arity();
  require(d >= 1, "parallel_tuple: components need inputs");
  for (const Crn& c : components) {
    require(c.input_arity() == d, "parallel_tuple: mixed arities");
    require_computing_shape(c);
    require_output_oblivious(c);
  }

  TupleCrn out;
  out.crn.set_name(name);
  std::vector<std::string> external;
  for (int i = 0; i < d; ++i) {
    external.push_back("X" + std::to_string(i + 1));
    out.crn.add_species(external.back());
  }

  std::vector<Crn> placed;
  for (std::size_t k = 0; k < components.size(); ++k) {
    Crn renamed =
        prefix_species(components[k], "m" + std::to_string(k) + ".");
    // The component's output becomes the tuple output Y{k+1}.
    const std::string y = "Y" + std::to_string(k + 1);
    renamed = rename_species(
        renamed, {{renamed.species_name(renamed.output_or_throw()), y}});
    for (const std::string& s : renamed.species_table().names()) {
      out.crn.get_or_add_species(s);
    }
    for (const Reaction& r : renamed.reactions()) {
      std::vector<Term> reactants;
      std::vector<Term> products;
      for (const Term& t : r.reactants()) {
        reactants.push_back(
            {out.crn.species(renamed.species_name(t.species)), t.count});
      }
      for (const Term& t : r.products()) {
        products.push_back(
            {out.crn.species(renamed.species_name(t.species)), t.count});
      }
      out.crn.add_reaction(
          Reaction(std::move(reactants), std::move(products)));
    }
    out.outputs.push_back(y);
    placed.push_back(std::move(renamed));
  }

  // Fan each external input out to every module's corresponding port.
  for (int i = 0; i < d; ++i) {
    std::vector<std::pair<std::string, math::Int>> copies;
    for (const Crn& m : placed) {
      copies.emplace_back(
          m.species_name(m.inputs()[static_cast<std::size_t>(i)]), 1);
    }
    out.crn.add_reaction({{external[static_cast<std::size_t>(i)], 1}},
                         copies);
  }

  out.crn.set_input_species(external);
  // Declare the first component's output as "the" output so single-output
  // tooling (checks, config printing) still works; all outputs are in
  // `outputs`.
  out.crn.set_output_species(out.outputs.front());

  std::vector<std::pair<std::string, math::Int>> split;
  for (const Crn& m : placed) {
    if (m.leader()) split.emplace_back(m.species_name(*m.leader()), 1);
  }
  if (!split.empty()) {
    out.crn.add_reaction({{"L", 1}}, split);
    out.crn.set_leader_species("L");
  }
  return out;
}

}  // namespace crnkit::crn
