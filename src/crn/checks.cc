#include "crn/checks.h"

#include "math/check.h"

namespace crnkit::crn {

bool is_output_oblivious(const Crn& crn) {
  const SpeciesId y = crn.output_or_throw();
  for (const Reaction& r : crn.reactions()) {
    if (r.reactant_count(y) > 0) return false;
  }
  return true;
}

bool is_output_monotonic(const Crn& crn) {
  const SpeciesId y = crn.output_or_throw();
  for (const Reaction& r : crn.reactions()) {
    if (r.net_change(y) < 0) return false;
  }
  return true;
}

std::optional<std::string> find_output_consuming_reaction(const Crn& crn) {
  const SpeciesId y = crn.output_or_throw();
  for (const Reaction& r : crn.reactions()) {
    if (r.reactant_count(y) > 0) return r.to_string(crn.species_table());
  }
  return std::nullopt;
}

void require_output_oblivious(const Crn& crn) {
  const auto bad = find_output_consuming_reaction(crn);
  ensure(!bad.has_value(), "CRN '" + crn.name() +
                               "' is not output-oblivious; offending "
                               "reaction: " +
                               bad.value_or(""));
}

void require_computing_shape(const Crn& crn) {
  // Zero-input modules (constants) are legal inside circuits; an output is
  // always required.
  (void)crn.output_or_throw();
}

}  // namespace crnkit::crn
