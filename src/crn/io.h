// Text serialization of CRNs. A CRN round-trips through a small line
// format, so compiled networks can be saved, diffed, and reloaded:
//
//   crn <name>
//   inputs X1 X2
//   output Y
//   leader L            (optional)
//   rxn X1 + X2 -> Y
//   rxn L -> 2 Y + L0
//   rxn 2 X <-> X2          (reversible; expands to the two directions)
//
// Species are declared implicitly by the reactions and role lines; an
// optional `species` line pins declaration order (ids) exactly, which keeps
// round-trips id-stable. Blank lines are skipped and `#` starts a comment
// (full-line or trailing); parse errors carry the 1-based line number.
#ifndef CRNKIT_CRN_IO_H_
#define CRNKIT_CRN_IO_H_

#include <iosfwd>
#include <string>

#include "crn/network.h"

namespace crnkit::crn {

/// Serializes the CRN (including declaration order, roles, reactions).
[[nodiscard]] std::string to_text(const Crn& crn);

/// Parses a CRN from the text format; throws std::invalid_argument on
/// malformed input.
[[nodiscard]] Crn from_text(const std::string& text);

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_IO_H_
