// Composition of output-oblivious CRNs (Section 2.3, Observation 2.2).
//
// `concatenate` is the paper's literal construction: rename the upstream
// output to the downstream input, keep all other species disjoint, and add
// L -> Lf + Lg. `Circuit` generalizes it to arbitrary feed-forward wiring:
// modules (CRNs with declared inputs/output), wires (external inputs or
// module outputs), automatic fan-out reactions W -> W_1 + ... + W_k when a
// wire has several consumers, sum junctions (several wires renamed onto the
// circuit output), and a single top-level leader split across the modules.
// This is exactly the machinery the Lemma 6.2 compiler needs.
#ifndef CRNKIT_CRN_COMPOSE_H_
#define CRNKIT_CRN_COMPOSE_H_

#include <string>
#include <vector>

#include "crn/checks.h"
#include "crn/network.h"
#include "crn/transform.h"

namespace crnkit::crn {

/// The concatenated CRN C_{g o f} of Section 2.3: upstream's output species
/// is renamed to downstream's (single) input species, all other species are
/// made disjoint, and a fresh leader splits into both module leaders.
/// The caller is responsible for upstream being output-oblivious if the
/// composition is to be correct (Observation 2.2); this function performs
/// the syntactic construction either way (the Fig 1 `2 max` failure demo
/// depends on being able to build the incorrect composition).
[[nodiscard]] Crn concatenate(const Crn& upstream, const Crn& downstream,
                              const std::string& name = "g.f");

/// A source of molecules in a circuit: either external input i, or the
/// output of module m.
struct Wire {
  int module = -1;  ///< -1 for external inputs
  int input = -1;   ///< external input index when module == -1

  [[nodiscard]] static Wire external(int input_index) {
    return Wire{-1, input_index};
  }
  [[nodiscard]] static Wire of_module(int module_index) {
    return Wire{module_index, -1};
  }
  friend bool operator<(const Wire& a, const Wire& b) {
    return std::pair(a.module, a.input) < std::pair(b.module, b.input);
  }
  friend bool operator==(const Wire& a, const Wire& b) {
    return a.module == b.module && a.input == b.input;
  }
};

/// Feed-forward composition of output-oblivious modules.
class Circuit {
 public:
  Circuit(int arity, std::string name = "circuit");

  /// Adds a module instance (copied). The module must declare inputs and an
  /// output, and must be output-oblivious (checked): only output-oblivious
  /// upstream modules compose correctly.
  int add_module(Crn module);

  [[nodiscard]] int arity() const { return arity_; }
  [[nodiscard]] int module_count() const {
    return static_cast<int>(modules_.size());
  }
  [[nodiscard]] const Crn& module(int m) const;

  /// Connects a wire to input port `port` of module `m`. Each port must be
  /// connected exactly once before compile().
  void connect(Wire source, int m, int port);

  /// Declares a wire as (one summand of) the circuit output.
  void add_output(Wire source);

  /// Builds the composed CRN: external inputs X1..Xd, output Y, leader L
  /// (only when some module has a leader), with fan-out reactions where a
  /// wire has several consumers and renaming (unification) where it has one.
  [[nodiscard]] Crn compile() const;

 private:
  struct Connection {
    Wire source;
    int module = 0;
    int port = 0;
  };

  [[nodiscard]] std::string wire_species_name(const Wire& w) const;

  int arity_;
  std::string name_;
  std::vector<Crn> modules_;
  std::vector<Connection> connections_;
  std::vector<Wire> outputs_;
};

/// A CRN computing a tuple-valued function f : N^d -> N^l, with one output
/// species per component.
struct TupleCrn {
  Crn crn;
  std::vector<std::string> outputs;  ///< names of Y1..Yl in declaration order

  [[nodiscard]] math::Int output_count(const Config& config, int k) const {
    return config[static_cast<std::size_t>(
        crn.species(outputs[static_cast<std::size_t>(k)]))];
  }
};

/// Footnote 6 of the paper: f : N^d -> N^l is stably computable iff each
/// component is, "by parallel CRNs". Combines l single-output
/// output-oblivious modules over the same d inputs: each input species fans
/// out one copy per module, outputs become Y1..Yl, and a single leader
/// splits into the module leaders.
[[nodiscard]] TupleCrn parallel_tuple(const std::vector<Crn>& components,
                                      const std::string& name = "tuple");

}  // namespace crnkit::crn

#endif  // CRNKIT_CRN_COMPOSE_H_
