#include "geom/fourier_motzkin.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "math/check.h"

namespace crnkit::geom {

using math::RatVec;
using math::Rational;

std::string LinearConstraint::to_string() const {
  std::ostringstream os;
  os << math::to_string(coeffs) << " . y ";
  switch (rel) {
    case Rel::kGe:
      os << ">= ";
      break;
    case Rel::kGt:
      os << "> ";
      break;
    case Rel::kEq:
      os << "== ";
      break;
  }
  os << rhs;
  return os.str();
}

LinearConstraint ge(RatVec coeffs, Rational rhs) {
  return LinearConstraint{std::move(coeffs), std::move(rhs), Rel::kGe};
}
LinearConstraint gt(RatVec coeffs, Rational rhs) {
  return LinearConstraint{std::move(coeffs), std::move(rhs), Rel::kGt};
}
LinearConstraint eq(RatVec coeffs, Rational rhs) {
  return LinearConstraint{std::move(coeffs), std::move(rhs), Rel::kEq};
}

bool satisfies(const LinearConstraint& c, const RatVec& y) {
  const Rational lhs = math::dot(c.coeffs, y);
  switch (c.rel) {
    case Rel::kGe:
      return lhs >= c.rhs;
    case Rel::kGt:
      return lhs > c.rhs;
    case Rel::kEq:
      return lhs == c.rhs;
  }
  return false;  // unreachable
}

namespace {

// Internal normal form: coeffs . y >= rhs (strict flag separate).
struct NormConstraint {
  RatVec coeffs;
  Rational rhs;
  bool strict = false;
};

// A bound on one variable: value = coeffs . y_prefix + constant, where
// y_prefix are the variables with smaller index.
struct Bound {
  RatVec coeffs;
  Rational constant;
  bool strict = false;
};

// Per-eliminated-variable record for witness back-substitution.
struct EliminationLevel {
  std::vector<Bound> lowers;  // variable >= bound
  std::vector<Bound> uppers;  // variable <= bound
};

// Scales so the leading nonzero coefficient (or rhs) has absolute value 1,
// producing a canonical key for de-duplication.
std::pair<std::string, NormConstraint> canonicalize(NormConstraint c) {
  Rational lead;
  for (const auto& q : c.coeffs) {
    if (!q.is_zero()) {
      lead = q;
      break;
    }
  }
  if (lead.is_zero()) lead = c.rhs.is_zero() ? Rational(1) : c.rhs;
  if (lead.is_negative()) lead = -lead;
  if (!(lead == Rational(1))) {
    const Rational inv = Rational(1) / lead;
    for (auto& q : c.coeffs) q *= inv;
    c.rhs *= inv;
  }
  std::ostringstream key;
  for (const auto& q : c.coeffs) key << q << "|";
  key << c.rhs;
  // Note: strictness is intentionally not part of the key; when a strict and
  // a non-strict copy of the same inequality coexist, the strict one implies
  // the other, so we keep the stronger (strict) version.
  return {key.str(), std::move(c)};
}

void insert_deduped(std::map<std::string, NormConstraint>& set,
                    NormConstraint c) {
  auto [key, canon] = canonicalize(std::move(c));
  auto it = set.find(key);
  if (it == set.end()) {
    set.emplace(std::move(key), std::move(canon));
  } else if (canon.strict && !it->second.strict) {
    it->second.strict = true;
  }
}

constexpr std::size_t kMaxConstraints = 200000;

}  // namespace

std::optional<RatVec> find_solution(
    const std::vector<LinearConstraint>& constraints, int dimension) {
  require(dimension >= 0, "find_solution: negative dimension");
  const auto d = static_cast<std::size_t>(dimension);

  // Convert to normal form (>= / >), splitting equalities.
  std::vector<NormConstraint> work;
  for (const auto& c : constraints) {
    require(c.coeffs.size() == d, "find_solution: constraint dimension " +
                                      std::to_string(c.coeffs.size()) +
                                      " != " + std::to_string(dimension));
    switch (c.rel) {
      case Rel::kGe:
        work.push_back({c.coeffs, c.rhs, false});
        break;
      case Rel::kGt:
        work.push_back({c.coeffs, c.rhs, true});
        break;
      case Rel::kEq: {
        work.push_back({c.coeffs, c.rhs, false});
        RatVec neg(c.coeffs.size());
        for (std::size_t i = 0; i < c.coeffs.size(); ++i) neg[i] = -c.coeffs[i];
        work.push_back({std::move(neg), -c.rhs, false});
        break;
      }
    }
  }

  std::vector<EliminationLevel> levels(d);

  // Eliminate variables from highest index down to 0; expressions at level k
  // then only mention variables 0..k-1.
  for (std::size_t k = d; k-- > 0;) {
    EliminationLevel level;
    std::vector<NormConstraint> rest;
    for (const auto& c : work) {
      const Rational& a = c.coeffs[k];
      if (a.is_zero()) {
        rest.push_back(c);
        continue;
      }
      // a * y_k + a' . y' >= rhs   =>   y_k >=/<= (rhs - a' . y') / a
      Bound b;
      b.coeffs.assign(c.coeffs.begin(),
                      c.coeffs.begin() + static_cast<std::ptrdiff_t>(k));
      const Rational inv = Rational(1) / a;
      for (auto& q : b.coeffs) q = -(q * inv);
      b.constant = c.rhs * inv;
      b.strict = c.strict;
      if (a.is_positive()) {
        level.lowers.push_back(std::move(b));
      } else {
        level.uppers.push_back(std::move(b));
      }
    }

    std::map<std::string, NormConstraint> next;
    for (auto& c : rest) insert_deduped(next, std::move(c));
    // Combine each (lower, upper) pair: upper - lower >= 0 (strict if either).
    for (const auto& lo : level.lowers) {
      for (const auto& up : level.uppers) {
        NormConstraint combined;
        combined.coeffs = math::sub(lo.coeffs, up.coeffs);
        combined.rhs = up.constant - lo.constant;
        combined.strict = lo.strict || up.strict;
        // lo.expr <= up.expr  <=>  (lo.coeffs - up.coeffs) . y <= up.c - lo.c.
        // Flip to >= form.
        for (auto& q : combined.coeffs) q = -q;
        combined.rhs = -(combined.rhs);
        // combined: (up.coeffs - lo.coeffs) . y >= lo.c - up.c
        insert_deduped(next, std::move(combined));
        if (next.size() > kMaxConstraints) {
          throw std::runtime_error(
              "find_solution: Fourier-Motzkin constraint blowup");
        }
      }
    }
    levels[k] = std::move(level);
    work.clear();
    work.reserve(next.size());
    for (auto& [key, c] : next) work.push_back(std::move(c));
  }

  // All variables eliminated: constraints are "0 >= rhs" / "0 > rhs".
  for (const auto& c : work) {
    const bool ok = c.strict ? (Rational(0) > c.rhs) : (Rational(0) >= c.rhs);
    if (!ok) return std::nullopt;
  }

  // Back-substitute a witness.
  RatVec y;
  y.reserve(d);
  for (std::size_t k = 0; k < d; ++k) {
    const EliminationLevel& level = levels[k];
    bool has_lo = false;
    bool has_up = false;
    Rational lo;
    Rational up;
    bool lo_strict = false;
    bool up_strict = false;
    for (const auto& b : level.lowers) {
      const Rational v = math::dot(b.coeffs, y) + b.constant;
      if (!has_lo) {
        lo = v;
        lo_strict = b.strict;
        has_lo = true;
      } else if (v > lo) {
        lo = v;
        lo_strict = b.strict;
      } else if (v == lo && b.strict) {
        lo_strict = true;
      }
    }
    for (const auto& b : level.uppers) {
      const Rational v = math::dot(b.coeffs, y) + b.constant;
      if (!has_up) {
        up = v;
        up_strict = b.strict;
        has_up = true;
      } else if (v < up) {
        up = v;
        up_strict = b.strict;
      } else if (v == up && b.strict) {
        up_strict = true;
      }
    }
    Rational value;
    if (has_lo && has_up) {
      ensure(lo < up || (lo == up && !lo_strict && !up_strict),
             "find_solution: back-substitution found empty interval");
      value = (lo == up) ? lo : (lo + up) / Rational(2);
    } else if (has_lo) {
      value = lo_strict ? lo + Rational(1) : lo;
    } else if (has_up) {
      value = up_strict ? up - Rational(1) : up;
    } else {
      value = Rational(0);
    }
    y.push_back(value);
  }
  return y;
}

bool feasible(const std::vector<LinearConstraint>& constraints,
              int dimension) {
  return find_solution(constraints, dimension).has_value();
}

}  // namespace crnkit::geom
