// Threshold hyperplanes of Section 7.2.
//
// A semilinear threshold set is {x in N^d : t . x >= h} with t in Z^d, h in Z.
// Following the paper, we interpret the boundary as the shifted hyperplane
// t . x = h - 1/2, which contains no integer points, so the hyperplanes
// partition N^d cleanly: every integer point is strictly on one side.
#ifndef CRNKIT_GEOM_HYPERPLANE_H_
#define CRNKIT_GEOM_HYPERPLANE_H_

#include <string>
#include <vector>

#include "math/numtheory.h"
#include "math/rational.h"

namespace crnkit::geom {

/// The threshold set {x : t . x >= h}, with lattice-point-free boundary
/// t . x = h - 1/2.
struct ThresholdHyperplane {
  std::vector<math::Int> normal;  ///< t
  math::Int offset = 0;           ///< h

  /// +1 if t . x >= h (x in the threshold set), -1 otherwise.
  [[nodiscard]] int sign_of(const std::vector<math::Int>& x) const {
    math::Int acc = 0;
    for (std::size_t i = 0; i < normal.size(); ++i) {
      acc = math::checked_add(acc, math::checked_mul(normal[i], x[i]));
    }
    return acc >= offset ? +1 : -1;
  }

  /// The boundary right-hand side h - 1/2 as an exact rational.
  [[nodiscard]] math::Rational boundary_rhs() const {
    return math::Rational(2 * offset - 1, 2);
  }

  /// L1 norm of the normal (used for interior-margin bounds).
  [[nodiscard]] math::Int normal_l1() const {
    math::Int acc = 0;
    for (const math::Int t : normal) acc += t < 0 ? -t : t;
    return acc;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "{x : (";
    for (std::size_t i = 0; i < normal.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(normal[i]);
    }
    s += ") . x >= " + std::to_string(offset) + "}";
    return s;
  }
};

}  // namespace crnkit::geom

#endif  // CRNKIT_GEOM_HYPERPLANE_H_
