// A threshold-hyperplane arrangement over N^d (Section 7.2): the collection
// T of threshold sets from a semilinear representation of f. Every integer
// point has a unique sign pattern, hence a unique region; this class maps
// points to regions and enumerates the regions realized on a grid.
#ifndef CRNKIT_GEOM_ARRANGEMENT_H_
#define CRNKIT_GEOM_ARRANGEMENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "geom/hyperplane.h"
#include "geom/region.h"

namespace crnkit::geom {

/// A region together with the integer points of the enumeration grid that
/// realized it (sample points, in enumeration order).
struct RealizedRegion {
  Region region;
  std::vector<std::vector<math::Int>> sample_points;
};

class Arrangement {
 public:
  Arrangement(int dimension, std::vector<ThresholdHyperplane> hyperplanes);

  [[nodiscard]] int dimension() const { return d_; }
  [[nodiscard]] const std::vector<ThresholdHyperplane>& hyperplanes() const {
    return hyperplanes_;
  }

  /// Sign pattern of an integer point (+1/-1 per hyperplane).
  [[nodiscard]] std::vector<int> sign_pattern(
      const std::vector<math::Int>& x) const;

  /// The unique region containing integer point x.
  [[nodiscard]] Region region_of(const std::vector<math::Int>& x) const;

  /// Enumerates the regions realized by integer points in [0, grid_max]^d,
  /// each with its realizing sample points. Deterministic order (by sign
  /// pattern key).
  [[nodiscard]] std::vector<RealizedRegion> enumerate_regions(
      math::Int grid_max) const;

  [[nodiscard]] std::string to_string() const;

 private:
  int d_;
  std::vector<ThresholdHyperplane> hyperplanes_;
};

/// Iterates all integer points of [0, grid_max]^d in lexicographic order,
/// invoking fn(point) for each. Used by region enumeration, verification
/// sweeps, and the analysis pipeline.
void for_each_grid_point(
    int dimension, math::Int grid_max,
    const std::function<void(const std::vector<math::Int>&)>& fn);

/// Iterates integer points of the box [lo, hi]^d (componentwise bounds).
void for_each_box_point(
    const std::vector<math::Int>& lo, const std::vector<math::Int>& hi,
    const std::function<void(const std::vector<math::Int>&)>& fn);

}  // namespace crnkit::geom

#endif  // CRNKIT_GEOM_ARRANGEMENT_H_
