#include "geom/arrangement.h"

#include <functional>
#include <sstream>

#include "math/check.h"

namespace crnkit::geom {

using math::Int;

Arrangement::Arrangement(int dimension,
                         std::vector<ThresholdHyperplane> hyperplanes)
    : d_(dimension), hyperplanes_(std::move(hyperplanes)) {
  require(d_ >= 1, "Arrangement: dimension must be >= 1");
  for (const auto& hp : hyperplanes_) {
    require(static_cast<int>(hp.normal.size()) == d_,
            "Arrangement: hyperplane dimension mismatch");
  }
}

std::vector<int> Arrangement::sign_pattern(const std::vector<Int>& x) const {
  require(static_cast<int>(x.size()) == d_,
          "Arrangement::sign_pattern: point dimension mismatch");
  std::vector<int> signs(hyperplanes_.size());
  for (std::size_t i = 0; i < hyperplanes_.size(); ++i) {
    signs[i] = hyperplanes_[i].sign_of(x);
  }
  return signs;
}

Region Arrangement::region_of(const std::vector<Int>& x) const {
  return Region(d_, hyperplanes_, sign_pattern(x));
}

std::vector<RealizedRegion> Arrangement::enumerate_regions(
    Int grid_max) const {
  require(grid_max >= 0, "Arrangement::enumerate_regions: negative grid");
  std::map<std::string, RealizedRegion> by_key;
  for_each_grid_point(d_, grid_max, [&](const std::vector<Int>& x) {
    Region r = region_of(x);
    const std::string key = r.key();
    auto it = by_key.find(key);
    if (it == by_key.end()) {
      RealizedRegion realized{std::move(r), {x}};
      by_key.emplace(key, std::move(realized));
    } else {
      it->second.sample_points.push_back(x);
    }
  });
  std::vector<RealizedRegion> out;
  out.reserve(by_key.size());
  for (auto& [key, realized] : by_key) out.push_back(std::move(realized));
  return out;
}

std::string Arrangement::to_string() const {
  std::ostringstream os;
  os << "Arrangement(d=" << d_ << ", " << hyperplanes_.size()
     << " hyperplanes)";
  for (const auto& hp : hyperplanes_) os << "\n  " << hp.to_string();
  return os.str();
}

void for_each_grid_point(
    int dimension, Int grid_max,
    const std::function<void(const std::vector<Int>&)>& fn) {
  std::vector<Int> lo(static_cast<std::size_t>(dimension), 0);
  std::vector<Int> hi(static_cast<std::size_t>(dimension), grid_max);
  for_each_box_point(lo, hi, fn);
}

void for_each_box_point(
    const std::vector<Int>& lo, const std::vector<Int>& hi,
    const std::function<void(const std::vector<Int>&)>& fn) {
  require(lo.size() == hi.size(), "for_each_box_point: bound size mismatch");
  const std::size_t d = lo.size();
  for (std::size_t i = 0; i < d; ++i) {
    if (lo[i] > hi[i]) return;  // empty box
  }
  std::vector<Int> x = lo;
  while (true) {
    fn(x);
    std::size_t i = 0;
    while (i < d) {
      if (x[i] < hi[i]) {
        ++x[i];
        break;
      }
      x[i] = lo[i];
      ++i;
    }
    if (i == d) return;
  }
}

}  // namespace crnkit::geom
