// Strips of under-determined regions (Definition 7.13).
//
// For an under-determined region U with determined subspace
// W = span(recc(U)), the relation x ~ y iff x - y in W partitions the
// integer points of U into finitely many strips (Lemma 7.15). Each strip
// lies on a translate of W (its affine hull, aff(I) = u + W).
//
// We enumerate strips over a bounded grid; the strip key is the exact
// orthogonal component of a representative relative to W, which is constant
// on the strip and distinct across strips.
#ifndef CRNKIT_GEOM_STRIPS_H_
#define CRNKIT_GEOM_STRIPS_H_

#include <string>
#include <vector>

#include "geom/region.h"

namespace crnkit::geom {

/// One strip: integer points of U (within the enumeration grid) sharing
/// their W-coset.
struct Strip {
  /// Exact projection of the strip onto W-perp (equal for all its points).
  math::RatVec key;
  /// The strip's integer points found within the grid, lexicographic order.
  std::vector<std::vector<math::Int>> points;
};

/// Decomposes region `u`'s integer points in [0, grid_max]^d into strips.
/// Works for any region; a determined region yields a single strip.
[[nodiscard]] std::vector<Strip> decompose_strips(const Region& u,
                                                  math::Int grid_max);

/// True iff x and y lie in the same W-coset for region u's subspace W.
[[nodiscard]] bool same_strip(const Region& u, const std::vector<math::Int>& x,
                              const std::vector<math::Int>& y);

}  // namespace crnkit::geom

#endif  // CRNKIT_GEOM_STRIPS_H_
