// Exact feasibility of systems of linear inequalities over Q^d, by
// Fourier-Motzkin elimination, with witness extraction.
//
// The geometry of Section 7 of the paper repeatedly needs exact answers to
// small queries of the form "is there y with A y >= 0 and a . y > 0?"
// (implicit-equality detection for recession-cone dimension, Lemma 7.17),
// "is there y in the cone with y > 0 componentwise?" (eventual regions,
// Definition 7.10) and "is a . y >= 0 valid on this cone?" (the neighbor
// relation, Definition 7.11). All involve <= ~6 variables and a handful of
// constraints, so exact Fourier-Motzkin elimination is simpler and more
// trustworthy than floating-point LP.
#ifndef CRNKIT_GEOM_FOURIER_MOTZKIN_H_
#define CRNKIT_GEOM_FOURIER_MOTZKIN_H_

#include <optional>
#include <string>
#include <vector>

#include "math/rational.h"

namespace crnkit::geom {

/// Relation of a linear constraint coeffs . y REL rhs.
enum class Rel { kGe, kGt, kEq };

/// A single linear constraint over Q^d.
struct LinearConstraint {
  math::RatVec coeffs;
  math::Rational rhs;
  Rel rel = Rel::kGe;

  [[nodiscard]] std::string to_string() const;
};

/// Convenience constructors.
[[nodiscard]] LinearConstraint ge(math::RatVec coeffs, math::Rational rhs);
[[nodiscard]] LinearConstraint gt(math::RatVec coeffs, math::Rational rhs);
[[nodiscard]] LinearConstraint eq(math::RatVec coeffs, math::Rational rhs);

/// True iff point y satisfies the constraint exactly.
[[nodiscard]] bool satisfies(const LinearConstraint& c, const math::RatVec& y);

/// Decides feasibility of the conjunction of `constraints` over y in Q^d
/// (equivalently R^d: FM elimination preserves rational witnesses).
/// Returns a rational witness point if feasible, std::nullopt otherwise.
/// Throws std::invalid_argument on ragged dimensions.
[[nodiscard]] std::optional<math::RatVec> find_solution(
    const std::vector<LinearConstraint>& constraints, int dimension);

/// Feasibility without needing the witness.
[[nodiscard]] bool feasible(const std::vector<LinearConstraint>& constraints,
                            int dimension);

}  // namespace crnkit::geom

#endif  // CRNKIT_GEOM_FOURIER_MOTZKIN_H_
