// Regions induced by sign matrices over a threshold arrangement
// (Definition 7.2), their recession cones (Definition 7.4), the
// determined / under-determined classification (Section 7.3), eventual
// regions (Definition 7.10), and the neighbor relation (Definition 7.11,
// Lemma 7.18).
//
// A region is R = {x in R^d_{>=0} : S(Tx - h) >= 0} for a diagonal sign
// matrix S; we store the sign vector directly. All predicates are decided
// exactly with the Fourier-Motzkin solver.
#ifndef CRNKIT_GEOM_REGION_H_
#define CRNKIT_GEOM_REGION_H_

#include <optional>
#include <string>
#include <vector>

#include "geom/fourier_motzkin.h"
#include "geom/hyperplane.h"
#include "math/congruence.h"
#include "math/matrix.h"

namespace crnkit::geom {

/// A region of the arrangement: a sign pattern over its hyperplanes.
class Region {
 public:
  /// Builds the region with the given signs (each +1 or -1) over the given
  /// hyperplanes, in ambient dimension d.
  Region(int dimension, std::vector<ThresholdHyperplane> hyperplanes,
         std::vector<int> signs);

  [[nodiscard]] int dimension() const { return d_; }
  [[nodiscard]] const std::vector<ThresholdHyperplane>& hyperplanes() const {
    return hyperplanes_;
  }
  [[nodiscard]] const std::vector<int>& signs() const { return signs_; }

  /// Integer-point membership (exact; integer points are never on a
  /// boundary by the half-integer shift).
  [[nodiscard]] bool contains(const std::vector<math::Int>& x) const;

  /// Real/rational membership, using the shifted boundaries.
  [[nodiscard]] bool contains_real(const math::RatVec& x) const;

  /// The inequalities defining the region over R^d (for FM queries):
  /// s_i (t_i . x - (h_i - 1/2)) >= 0 and x_j >= 0.
  [[nodiscard]] std::vector<LinearConstraint> region_constraints() const;

  /// The inequalities defining the recession cone over R^d:
  /// s_i (t_i . y) >= 0 and y_j >= 0 (homogenized region constraints).
  [[nodiscard]] std::vector<LinearConstraint> cone_constraints() const;

  /// Rows a (from the cone description) with a . y = 0 for every y in the
  /// recession cone — the implicit equalities.
  [[nodiscard]] std::vector<math::RatVec> cone_implicit_equalities() const;

  /// dim recc(R): d minus the rank of the implicit equalities.
  [[nodiscard]] int cone_dimension() const;

  /// Determined region: dim recc(R) == d (Section 7.3).
  [[nodiscard]] bool is_determined() const;

  /// Eventual region (Definition 7.10): contains integer points >= any n;
  /// equivalently the recession cone contains a strictly positive vector.
  [[nodiscard]] bool is_eventual() const;

  /// A strictly positive integer recession direction, if one exists.
  [[nodiscard]] std::optional<std::vector<math::Int>>
  positive_recession_direction() const;

  /// An integer direction in the interior of the recession cone (every cone
  /// constraint strict). Exists iff the region is determined.
  [[nodiscard]] std::optional<std::vector<math::Int>> interior_direction()
      const;

  /// An integer direction in the relative interior of the recession cone
  /// (every non-implicit constraint strict). Exists iff the cone is nonzero.
  [[nodiscard]] std::optional<std::vector<math::Int>>
  relative_interior_direction() const;

  /// Basis of the determined subspace W = span(recc(R)) (Section 7.4).
  [[nodiscard]] std::vector<math::RatVec> determined_subspace_basis() const;

  /// Starting from integer point base (which must lie in the region), walks
  /// along `direction` until the L-infinity ball of radius `margin` around
  /// the point lies inside the region. Requires the direction to make all
  /// non-tight constraints grow; throws if no progress is possible.
  [[nodiscard]] std::vector<math::Int> deep_point(
      const std::vector<math::Int>& base,
      const std::vector<math::Int>& direction, math::Int margin) const;

  /// An integer point of the region in congruence class `a` (mod p), at
  /// L-infinity margin >= p inside the region. Requires a determined region,
  /// a base point in the region, and an interior direction.
  [[nodiscard]] std::vector<math::Int> representative_in_class(
      const math::CongruenceClass& a, const std::vector<math::Int>& base)
      const;

  /// Canonical key for hashing/region identity: the sign pattern.
  [[nodiscard]] std::string key() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Region& a, const Region& b) {
    return a.signs_ == b.signs_;
  }

 private:
  int d_;
  std::vector<ThresholdHyperplane> hyperplanes_;
  std::vector<int> signs_;
};

/// True iff recc(inner) is a subset of recc(outer), i.e. `outer` is a
/// neighbor of `inner` in the sense of Definition 7.11.
[[nodiscard]] bool cone_subset(const Region& inner, const Region& outer);

/// The neighbor of under-determined region U in direction z in W-perp
/// (Lemma 7.18): flips the neighbor-separating signs that disagree with z.
[[nodiscard]] Region neighbor_in_direction(const Region& u,
                                           const math::RatVec& z);

/// Indices of the neighbor-separating hyperplanes of U: those with normals
/// orthogonal to the determined subspace W (Lemma 7.17 guarantees at least
/// one exists for under-determined eventual regions).
[[nodiscard]] std::vector<std::size_t> neighbor_separating_indices(
    const Region& u);

}  // namespace crnkit::geom

#endif  // CRNKIT_GEOM_REGION_H_
