#include "geom/region.h"

#include <sstream>

#include "math/check.h"

namespace crnkit::geom {

using math::Int;
using math::Matrix;
using math::Rational;
using math::RatVec;

Region::Region(int dimension, std::vector<ThresholdHyperplane> hyperplanes,
               std::vector<int> signs)
    : d_(dimension),
      hyperplanes_(std::move(hyperplanes)),
      signs_(std::move(signs)) {
  require(d_ >= 1, "Region: dimension must be >= 1");
  require(hyperplanes_.size() == signs_.size(),
          "Region: one sign per hyperplane required");
  for (const auto& hp : hyperplanes_) {
    require(static_cast<int>(hp.normal.size()) == d_,
            "Region: hyperplane dimension mismatch");
  }
  for (const int s : signs_) {
    require(s == +1 || s == -1, "Region: signs must be +1 or -1");
  }
}

bool Region::contains(const std::vector<Int>& x) const {
  if (static_cast<int>(x.size()) != d_) return false;
  for (const Int v : x) {
    if (v < 0) return false;
  }
  for (std::size_t i = 0; i < hyperplanes_.size(); ++i) {
    if (hyperplanes_[i].sign_of(x) != signs_[i]) return false;
  }
  return true;
}

bool Region::contains_real(const RatVec& x) const {
  if (static_cast<int>(x.size()) != d_) return false;
  for (const auto& c : region_constraints()) {
    if (!satisfies(c, x)) return false;
  }
  return true;
}

std::vector<LinearConstraint> Region::region_constraints() const {
  std::vector<LinearConstraint> out;
  out.reserve(hyperplanes_.size() + static_cast<std::size_t>(d_));
  for (std::size_t i = 0; i < hyperplanes_.size(); ++i) {
    RatVec coeffs(static_cast<std::size_t>(d_));
    const Rational s(signs_[i]);
    for (int j = 0; j < d_; ++j) {
      coeffs[static_cast<std::size_t>(j)] =
          s * Rational(hyperplanes_[i].normal[static_cast<std::size_t>(j)]);
    }
    out.push_back(ge(std::move(coeffs), s * hyperplanes_[i].boundary_rhs()));
  }
  for (int j = 0; j < d_; ++j) {
    RatVec coeffs(static_cast<std::size_t>(d_));
    coeffs[static_cast<std::size_t>(j)] = Rational(1);
    out.push_back(ge(std::move(coeffs), Rational(0)));
  }
  return out;
}

std::vector<LinearConstraint> Region::cone_constraints() const {
  std::vector<LinearConstraint> out = region_constraints();
  for (auto& c : out) c.rhs = Rational(0);
  return out;
}

std::vector<RatVec> Region::cone_implicit_equalities() const {
  const auto cone = cone_constraints();
  std::vector<RatVec> implicit;
  for (std::size_t i = 0; i < cone.size(); ++i) {
    // Row a is an implicit equality iff {cone, a . y > 0} is infeasible.
    std::vector<LinearConstraint> query = cone;
    query.push_back(gt(cone[i].coeffs, Rational(0)));
    if (!feasible(query, d_)) implicit.push_back(cone[i].coeffs);
  }
  return implicit;
}

int Region::cone_dimension() const {
  const auto implicit = cone_implicit_equalities();
  if (implicit.empty()) return d_;
  return d_ - static_cast<int>(math::rank(Matrix::from_rows(implicit)));
}

bool Region::is_determined() const { return cone_dimension() == d_; }

bool Region::is_eventual() const {
  return positive_recession_direction().has_value();
}

std::optional<std::vector<Int>> Region::positive_recession_direction() const {
  std::vector<LinearConstraint> query = cone_constraints();
  for (int j = 0; j < d_; ++j) {
    RatVec coeffs(static_cast<std::size_t>(d_));
    coeffs[static_cast<std::size_t>(j)] = Rational(1);
    query.push_back(gt(std::move(coeffs), Rational(0)));
  }
  const auto witness = find_solution(query, d_);
  if (!witness) return std::nullopt;
  return math::clear_denominators(*witness);
}

std::optional<std::vector<Int>> Region::interior_direction() const {
  std::vector<LinearConstraint> query = cone_constraints();
  for (auto& c : query) c.rel = Rel::kGt;
  const auto witness = find_solution(query, d_);
  if (!witness) return std::nullopt;
  return math::clear_denominators(*witness);
}

std::optional<std::vector<Int>> Region::relative_interior_direction() const {
  const auto implicit = cone_implicit_equalities();
  std::vector<LinearConstraint> query;
  for (const auto& c : cone_constraints()) {
    // Keep implicit equalities as equalities; make the rest strict.
    bool is_implicit = false;
    for (const auto& row : implicit) {
      if (row == c.coeffs) {
        is_implicit = true;
        break;
      }
    }
    query.push_back(is_implicit ? eq(c.coeffs, Rational(0))
                                : gt(c.coeffs, Rational(0)));
  }
  const auto witness = find_solution(query, d_);
  if (!witness) return std::nullopt;
  return math::clear_denominators(*witness);
}

std::vector<RatVec> Region::determined_subspace_basis() const {
  const auto implicit = cone_implicit_equalities();
  if (implicit.empty()) {
    // Full-dimensional: W = R^d.
    std::vector<RatVec> basis;
    for (int j = 0; j < d_; ++j) {
      RatVec e(static_cast<std::size_t>(d_));
      e[static_cast<std::size_t>(j)] = Rational(1);
      basis.push_back(std::move(e));
    }
    return basis;
  }
  return math::nullspace(Matrix::from_rows(implicit));
}

std::vector<Int> Region::deep_point(const std::vector<Int>& base,
                                    const std::vector<Int>& direction,
                                    Int margin) const {
  require(contains(base), "Region::deep_point: base point not in region");
  require(static_cast<int>(direction.size()) == d_,
          "Region::deep_point: direction dimension mismatch");
  require(margin >= 0, "Region::deep_point: negative margin");

  auto deep_enough = [&](const std::vector<Int>& x) {
    for (int j = 0; j < d_; ++j) {
      if (Rational(x[static_cast<std::size_t>(j)]) < Rational(margin)) {
        return false;
      }
    }
    for (std::size_t i = 0; i < hyperplanes_.size(); ++i) {
      const auto& hp = hyperplanes_[i];
      Int tx = 0;
      for (int j = 0; j < d_; ++j) {
        tx = math::checked_add(
            tx, math::checked_mul(hp.normal[static_cast<std::size_t>(j)],
                                  x[static_cast<std::size_t>(j)]));
      }
      // Need s_i (t_i . x - (h_i - 1/2)) >= margin * ||t_i||_1, so that any
      // point within L-inf distance `margin` stays on the same side.
      const Rational slack =
          Rational(signs_[i]) * (Rational(tx) - hp.boundary_rhs());
      if (slack < Rational(math::checked_mul(margin, hp.normal_l1()))) {
        return false;
      }
    }
    return true;
  };

  std::vector<Int> x = base;
  Int step = 1;
  constexpr int kMaxDoublings = 48;
  for (int iter = 0; iter < kMaxDoublings; ++iter) {
    if (deep_enough(x)) return x;
    for (int j = 0; j < d_; ++j) {
      x[static_cast<std::size_t>(j)] = math::checked_add(
          x[static_cast<std::size_t>(j)],
          math::checked_mul(step, direction[static_cast<std::size_t>(j)]));
    }
    ensure(contains(x),
           "Region::deep_point: direction left the region (not a recession "
           "direction?)");
    step = math::checked_mul(step, 2);
  }
  throw std::runtime_error(
      "Region::deep_point: failed to reach requested margin");
}

std::vector<Int> Region::representative_in_class(
    const math::CongruenceClass& a, const std::vector<Int>& base) const {
  const Int p = a.period();
  const auto dir = interior_direction();
  require(dir.has_value(),
          "Region::representative_in_class: region is not determined");
  const std::vector<Int> center = deep_point(base, *dir, p);
  // Adjust componentwise into the congruence class; the adjustment is at most
  // p-1 in L-infinity, within the margin.
  std::vector<Int> out(center.size());
  const auto& rep = a.representative();
  for (std::size_t j = 0; j < center.size(); ++j) {
    const Int delta = math::floor_mod(rep[j] - center[j], p);
    out[j] = math::checked_add(center[j], delta);
  }
  ensure(contains(out),
         "Region::representative_in_class: adjusted point left the region");
  ensure(a.contains(out),
         "Region::representative_in_class: wrong congruence class");
  return out;
}

std::string Region::key() const {
  std::string s;
  s.reserve(signs_.size());
  for (const int sign : signs_) s += (sign > 0 ? '+' : '-');
  return s;
}

std::string Region::to_string() const {
  std::ostringstream os;
  os << "Region[" << key() << "]";
  return os.str();
}

bool cone_subset(const Region& inner, const Region& outer) {
  require(inner.dimension() == outer.dimension(),
          "cone_subset: dimension mismatch");
  const auto inner_cone = inner.cone_constraints();
  for (const auto& c : outer.cone_constraints()) {
    // c must be valid on recc(inner): {inner cone, c.coeffs . y < 0} empty.
    std::vector<LinearConstraint> query = inner_cone;
    RatVec neg(c.coeffs.size());
    for (std::size_t i = 0; i < c.coeffs.size(); ++i) neg[i] = -c.coeffs[i];
    query.push_back(gt(std::move(neg), Rational(0)));
    if (feasible(query, inner.dimension())) return false;
  }
  return true;
}

std::vector<std::size_t> neighbor_separating_indices(const Region& u) {
  const auto w_basis = u.determined_subspace_basis();
  std::vector<std::size_t> out;
  const auto& hps = u.hyperplanes();
  for (std::size_t i = 0; i < hps.size(); ++i) {
    bool orthogonal = true;
    const RatVec t = math::to_rational(hps[i].normal);
    for (const auto& w : w_basis) {
      if (!math::dot(t, w).is_zero()) {
        orthogonal = false;
        break;
      }
    }
    if (orthogonal) out.push_back(i);
  }
  return out;
}

Region neighbor_in_direction(const Region& u, const RatVec& z) {
  require(static_cast<int>(z.size()) == u.dimension(),
          "neighbor_in_direction: dimension mismatch");
  const auto separating = neighbor_separating_indices(u);
  std::vector<int> signs = u.signs();
  for (const std::size_t i : separating) {
    const RatVec t = math::to_rational(u.hyperplanes()[i].normal);
    const Rational tz = math::dot(t, z);
    if (tz.is_zero()) continue;
    const int dir_sign = tz.is_positive() ? +1 : -1;
    if (dir_sign == -signs[i]) signs[i] = -signs[i];
  }
  return Region(u.dimension(), u.hyperplanes(), std::move(signs));
}

}  // namespace crnkit::geom
