#include "geom/strips.h"

#include <map>
#include <sstream>

#include "geom/arrangement.h"
#include "math/check.h"
#include "math/matrix.h"

namespace crnkit::geom {

using math::Int;
using math::RatVec;

namespace {

std::string key_string(const RatVec& key) {
  std::ostringstream os;
  for (const auto& q : key) os << q << "|";
  return os.str();
}

}  // namespace

std::vector<Strip> decompose_strips(const Region& u, Int grid_max) {
  const auto w_basis = u.determined_subspace_basis();
  std::map<std::string, Strip> by_key;
  for_each_grid_point(
      u.dimension(), grid_max, [&](const std::vector<Int>& x) {
        if (!u.contains(x)) return;
        const RatVec key =
            math::orthogonal_component(math::to_rational(x), w_basis);
        const std::string ks = key_string(key);
        auto it = by_key.find(ks);
        if (it == by_key.end()) {
          by_key.emplace(ks, Strip{key, {x}});
        } else {
          it->second.points.push_back(x);
        }
      });
  std::vector<Strip> out;
  out.reserve(by_key.size());
  for (auto& [ks, strip] : by_key) out.push_back(std::move(strip));
  return out;
}

bool same_strip(const Region& u, const std::vector<Int>& x,
                const std::vector<Int>& y) {
  require(x.size() == y.size(), "same_strip: size mismatch");
  const auto w_basis = u.determined_subspace_basis();
  RatVec diff(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    diff[i] = math::Rational(x[i] - y[i]);
  }
  return math::in_span(diff, w_basis);
}

}  // namespace crnkit::geom
