#include "verify/composability.h"

#include <sstream>

#include "crn/checks.h"
#include "math/check.h"
#include "math/rational.h"
#include "verify/stable.h"

namespace crnkit::verify {

crn::Crn strip_output_consumers(const crn::Crn& input) {
  const crn::SpeciesId y = input.output_or_throw();
  crn::Crn out(input.name() + "+stripped");
  for (const std::string& s : input.species_table().names()) {
    out.add_species(s);
  }
  for (const crn::Reaction& r : input.reactions()) {
    if (r.reactant_count(y) > 0) continue;
    out.add_reaction(r);
  }
  std::vector<std::string> inputs;
  for (const crn::SpeciesId id : input.inputs()) {
    inputs.push_back(input.species_name(id));
  }
  if (!inputs.empty()) out.set_input_species(inputs);
  out.set_output_species(input.species_name(y));
  if (input.leader()) {
    out.set_leader_species(input.species_name(*input.leader()));
  }
  crn::require_output_oblivious(out);
  return out;
}

std::string ComposabilityReport::summary() const {
  std::ostringstream os;
  if (already_oblivious) {
    os << "already output-oblivious (trivially composable)";
    return os.str();
  }
  os << reactions_removed << " output-consuming reaction(s) removed; "
     << "stripped CRN " << (stripped_computes_f ? "still computes f" : "no "
                            "longer computes f")
     << " -> " << (composable() ? "composable" : "NOT composable")
     << " by concatenation (Lemma 2.3)";
  if (!failure.empty()) os << "; first failure at " << failure;
  return os.str();
}

ComposabilityReport check_composability(const crn::Crn& crn,
                                        const fn::DiscreteFunction& f,
                                        math::Int grid_max) {
  require(crn.input_arity() == f.dimension(),
          "check_composability: arity mismatch");
  ComposabilityReport report;
  report.already_oblivious = crn::is_output_oblivious(crn);

  const crn::Crn stripped = strip_output_consumers(crn);
  report.reactions_removed = static_cast<int>(crn.reactions().size() -
                                              stripped.reactions().size());
  const auto sweep = check_stable_computation_on_grid(stripped, f, grid_max);
  report.stripped_computes_f = sweep.all_ok;
  if (!sweep.failures.empty()) {
    report.failure = math::to_string(math::to_rational(sweep.failures[0]));
  }
  return report;
}

}  // namespace crnkit::verify
