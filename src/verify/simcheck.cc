#include "verify/simcheck.h"

#include <sstream>

#include "geom/arrangement.h"
#include "math/check.h"

namespace crnkit::verify {

SimCheckResult::Verdict SimCheckResult::verdict() const {
  if (mismatches > 0) return Verdict::kFail;
  if (inconclusive_points > 0) return Verdict::kInconclusive;
  return Verdict::kPass;
}

std::string SimCheckResult::verdict_name() const {
  switch (verdict()) {
    case Verdict::kPass: return "pass";
    case Verdict::kFail: return "fail";
    case Verdict::kInconclusive: return "inconclusive";
  }
  return "inconclusive";
}

std::string SimCheckResult::summary() const {
  std::ostringstream os;
  os << (verdict() == Verdict::kPass
             ? "OK"
             : verdict() == Verdict::kFail ? "FAIL" : "INCONCLUSIVE")
     << " trials=" << trials << " silent=" << silent_trials
     << " non_silent=" << non_silent_trials
     << " mismatches=" << mismatches;
  if (inconclusive_points > 0) {
    os << " inconclusive_points=" << inconclusive_points
       << " (no trial reached silence; raise max_steps)";
  }
  return os.str();
}

namespace {

/// Checks one input point through an already-compiled ensemble runner, so
/// grid/point-list sweeps compile the network exactly once.
SimCheckResult check_point_with(const crn::Crn& crn,
                                const sim::EnsembleRunner& runner,
                                const fn::DiscreteFunction& f,
                                const fn::Point& x,
                                const SimCheckOptions& options) {
  SimCheckResult result;
  const math::Int expected = f(x);

  sim::EnsembleOptions ensemble;
  ensemble.trajectories = options.trials_per_point;
  ensemble.threads = options.threads;
  ensemble.seed = options.seed;
  ensemble.method = sim::EnsembleMethod::kSilentRun;
  ensemble.max_steps = options.max_steps;
  const sim::EnsembleResult batch = runner.run_for_input(x, ensemble);

  for (const sim::Trajectory& run : batch.trajectories) {
    ++result.trials;
    if (!run.silent) {
      // Exhausted max_steps: no evidence either way, tracked separately so
      // callers never read timeouts as agreement.
      ++result.non_silent_trials;
      continue;
    }
    ++result.silent_trials;
    const math::Int got = crn.output_count(run.final_config);
    if (got != expected) {
      ++result.mismatches;
      result.ok = false;
      result.failures.emplace_back(x, got);
    }
  }
  // No silent trial at all: the point is inconclusive, not failed — but
  // `ok` stays conservative so callers never mistake a timeout for a
  // verified point.
  if (result.silent_trials == 0) {
    result.ok = false;
    ++result.inconclusive_points;
  }
  return result;
}

void merge(SimCheckResult& into, const SimCheckResult& part) {
  into.ok = into.ok && part.ok;
  into.trials += part.trials;
  into.silent_trials += part.silent_trials;
  into.non_silent_trials += part.non_silent_trials;
  into.mismatches += part.mismatches;
  into.inconclusive_points += part.inconclusive_points;
  into.failures.insert(into.failures.end(), part.failures.begin(),
                       part.failures.end());
}

}  // namespace

SimCheckResult sim_check_point(const crn::Crn& crn,
                               const fn::DiscreteFunction& f,
                               const fn::Point& x,
                               const SimCheckOptions& options) {
  require(crn.input_arity() == f.dimension(),
          "sim_check_point: arity mismatch");
  const sim::EnsembleRunner runner(crn);
  return check_point_with(crn, runner, f, x, options);
}

SimCheckResult sim_check_grid(const crn::Crn& crn,
                              const fn::DiscreteFunction& f,
                              math::Int grid_max,
                              const SimCheckOptions& options) {
  require(crn.input_arity() == f.dimension(),
          "sim_check_grid: arity mismatch");
  const sim::EnsembleRunner runner(crn);
  SimCheckResult result;
  geom::for_each_grid_point(f.dimension(), grid_max,
                            [&](const std::vector<math::Int>& x) {
                              merge(result,
                                    check_point_with(crn, runner, f, x, options));
                            });
  return result;
}

SimCheckResult sim_check_points(const crn::Crn& crn,
                                const fn::DiscreteFunction& f,
                                const std::vector<fn::Point>& points,
                                const SimCheckOptions& options) {
  require(crn.input_arity() == f.dimension(),
          "sim_check_points: arity mismatch");
  const sim::EnsembleRunner runner(crn);
  SimCheckResult result;
  for (const fn::Point& x : points) {
    merge(result, check_point_with(crn, runner, f, x, options));
  }
  return result;
}

}  // namespace crnkit::verify
