#include "verify/simcheck.h"

#include <sstream>

#include "geom/arrangement.h"
#include "math/check.h"

namespace crnkit::verify {

std::string SimCheckResult::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << " trials=" << trials
     << " silent=" << silent_trials << " mismatches=" << mismatches;
  return os.str();
}

SimCheckResult sim_check_point(const crn::Crn& crn,
                               const fn::DiscreteFunction& f,
                               const fn::Point& x,
                               const SimCheckOptions& options) {
  require(crn.input_arity() == f.dimension(),
          "sim_check_point: arity mismatch");
  SimCheckResult result;
  const math::Int expected = f(x);
  for (int trial = 0; trial < options.trials_per_point; ++trial) {
    sim::Rng rng(options.seed + 0x9e37 * static_cast<std::uint64_t>(trial) +
                 31 * static_cast<std::uint64_t>(result.trials));
    const auto run =
        sim::run_until_silent(crn, crn.initial_configuration(x), rng,
                              sim::SilentRunOptions{options.max_steps});
    ++result.trials;
    if (!run.silent) continue;  // inconclusive trial
    ++result.silent_trials;
    const math::Int got = crn.output_count(run.final_config);
    if (got != expected) {
      ++result.mismatches;
      result.ok = false;
      result.failures.emplace_back(x, got);
    }
  }
  // No silent trial at all is inconclusive; report it as failure so callers
  // never mistake a timeout for a verified point.
  if (result.silent_trials == 0) {
    result.ok = false;
    result.failures.emplace_back(x, -1);
  }
  return result;
}

namespace {

void merge(SimCheckResult& into, const SimCheckResult& part) {
  into.ok = into.ok && part.ok;
  into.trials += part.trials;
  into.silent_trials += part.silent_trials;
  into.mismatches += part.mismatches;
  into.failures.insert(into.failures.end(), part.failures.begin(),
                       part.failures.end());
}

}  // namespace

SimCheckResult sim_check_grid(const crn::Crn& crn,
                              const fn::DiscreteFunction& f,
                              math::Int grid_max,
                              const SimCheckOptions& options) {
  SimCheckResult result;
  geom::for_each_grid_point(f.dimension(), grid_max,
                            [&](const std::vector<math::Int>& x) {
                              merge(result,
                                    sim_check_point(crn, f, x, options));
                            });
  return result;
}

SimCheckResult sim_check_points(const crn::Crn& crn,
                                const fn::DiscreteFunction& f,
                                const std::vector<fn::Point>& points,
                                const SimCheckOptions& options) {
  SimCheckResult result;
  for (const fn::Point& x : points) {
    merge(result, sim_check_point(crn, f, x, options));
  }
  return result;
}

}  // namespace crnkit::verify
