#include "verify/config_store.h"

#include <algorithm>
#include <cstring>
#include <limits>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "math/check.h"
#include "verify/spill.h"

namespace crnkit::verify {

namespace {
constexpr unsigned kInitialSlotBits = 6;
constexpr std::size_t kInitialSlots = std::size_t{1}
                                      << kInitialSlotBits;  // per shard

/// Asks the kernel to back a large buffer with transparent huge pages:
/// the arena and the big hash tables are faulted in once and probed
/// randomly, so 2 MiB pages cut both the fault count and TLB pressure.
void advise_huge(void* data, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::size_t kHuge = 2u << 20;
  if (bytes < 2 * kHuge) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t aligned = (addr + kHuge - 1) & ~(kHuge - 1);
  const std::size_t usable = bytes - static_cast<std::size_t>(aligned - addr);
  (void)madvise(reinterpret_cast<void*>(aligned), usable & ~(kHuge - 1),
                MADV_HUGEPAGE);
#else
  (void)data;
  (void)bytes;
#endif
}

}  // namespace

ConfigStore::ConfigStore(std::size_t width)
    : width_(width), shards_(kShards) {
  zseed_.resize(width_);
  for (std::size_t s = 0; s < width_; ++s) {
    zseed_[s] = splitmix64(0x9b1a5d9c0e7f3a21ULL + s);
  }
  for (Shard& shard : shards_) {
    shard.slots.assign(kInitialSlots, 0);
    shard.mask = kInitialSlots - 1;
    shard.shift = 64 - kShardBits - kInitialSlotBits;
  }
}

std::uint64_t ConfigStore::hash(const math::Int* c) const {
  std::uint64_t h = 0;
  for (std::size_t s = 0; s < width_; ++s) h ^= elem_hash(s, c[s]);
  return h;
}

namespace {

/// Word-at-a-time equality over Count ranges — the segments between delta
/// positions are short, so an inlined compare beats a memcmp call.
inline bool counts_equal(const ConfigStore::Count* a,
                         const ConfigStore::Count* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    std::uint64_t wa;
    std::uint64_t wb;
    std::memcpy(&wa, a + i, sizeof(wa));
    std::memcpy(&wb, b + i, sizeof(wb));
    if (wa != wb) return false;
  }
  return i == n || a[i] == b[i];
}

}  // namespace

bool ConfigStore::equal_delta(const Count* row, const Count* base,
                              const std::uint32_t* ds, const math::Int* dv,
                              std::size_t nd) const {
  // The delta list is sorted by species: between delta positions the row
  // must equal the base verbatim; at each delta position it must equal
  // base + delta.
  std::size_t prev = 0;
  for (std::size_t k = 0; k < nd; ++k) {
    const std::size_t s = ds[k];
    if (!counts_equal(row + prev, base + prev, s - prev)) return false;
    if (row[s] != static_cast<std::int64_t>(base[s]) + dv[k]) return false;
    prev = s + 1;
  }
  return counts_equal(row + prev, base + prev, width_ - prev);
}

void ConfigStore::materialize(Shard& shard, const Count* base,
                              const std::uint32_t* ds, const math::Int* dv,
                              std::size_t nd) {
  const std::size_t at = shard.staged.size();
  shard.staged.resize(at + width_);
  Count* out = shard.staged.data() + at;
  std::memcpy(out, base, width_ * sizeof(Count));
  for (std::size_t k = 0; k < nd; ++k) {
    const std::int64_t value =
        static_cast<std::int64_t>(out[ds[k]]) + dv[k];
    require(value >= 0 && value <= std::numeric_limits<Count>::max(),
            "ConfigStore: species count outside [0, 2^31)");
    out[ds[k]] = static_cast<Count>(value);
  }
}

void ConfigStore::reserve(std::size_t n_configs) {
  pool_.reserve(n_configs * width_);
  id_hash_.reserve(n_configs);
  advise_huge(pool_.data(), pool_.capacity() * sizeof(Count));
  advise_huge(id_hash_.data(), id_hash_.capacity() * sizeof(std::uint64_t));
}

void ConfigStore::reserve_slots(std::size_t expected_configs) {
  require(size_ == 0 && staged_count() == 0,
          "ConfigStore::reserve_slots: store not empty");
  const std::size_t per_shard = expected_configs / kShards + 1;
  std::size_t slots = kInitialSlots;
  unsigned bits = kInitialSlotBits;
  // Match grow()'s trigger exactly: the table must hold per_shard entries
  // strictly below the 5/8 load threshold.
  while ((per_shard + 1) * 8 >= slots * 5) {
    slots <<= 1;
    ++bits;
  }
  if (slots == kInitialSlots) return;
  for (Shard& shard : shards_) {
    shard.slots = std::vector<std::uint64_t>();
    shard.slots.reserve(slots);
    advise_huge(shard.slots.data(), slots * sizeof(std::uint64_t));
    shard.slots.assign(slots, 0);
    shard.mask = slots - 1;
    shard.shift = 64 - kShardBits - bits;
  }
}

void ConfigStore::grow(Shard& shard) {
  const std::size_t cap = shard.mask + 1;
  std::vector<std::uint64_t> old(std::move(shard.slots));
  // Advise before first touch: huge pages must be requested before the
  // zero-fill faults the region in.
  shard.slots = std::vector<std::uint64_t>();
  shard.slots.reserve(cap * 2);
  advise_huge(shard.slots.data(), cap * 2 * sizeof(std::uint64_t));
  shard.slots.assign(cap * 2, 0);
  shard.mask = cap * 2 - 1;
  --shard.shift;
  for (const std::uint64_t word : old) {
    if (word == 0) continue;
    // Recover the full hash (slots only keep the tag bits).
    const std::uint64_t enc = word & 0xffffffffULL;
    const std::uint64_t h =
        (enc & kPendingBit)
            ? shard.staged_hash[static_cast<std::size_t>(enc & ~kPendingBit)]
            : id_hash_[static_cast<std::size_t>(enc - 1)];
    std::size_t idx = (h >> shard.shift) & shard.mask;
    while (shard.slots[idx] != 0) idx = (idx + 1) & shard.mask;
    shard.slots[idx] = word;
    if (enc & kPendingBit) {
      shard.staged_slot[static_cast<std::size_t>(enc & ~kPendingBit)] =
          static_cast<std::uint32_t>(idx);
    }
  }
}

void ConfigStore::insert_slot(Shard& shard, std::uint64_t h,
                              std::uint64_t enc) {
  std::size_t idx = (h >> shard.shift) & shard.mask;
  while (shard.slots[idx] != 0) idx = (idx + 1) & shard.mask;
  shard.slots[idx] = pack(h, enc);
  ++shard.used;
}

ConfigStore::StageResult ConfigStore::stage_delta(std::uint64_t h,
                                                  const Count* base,
                                                  const std::uint32_t* ds,
                                                  const math::Int* dv,
                                                  std::size_t nd) {
  const int s = shard_of(h);
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  if ((shard.used + 1) * 8 >= (shard.mask + 1) * 5) grow(shard);

  std::size_t idx = (h >> shard.shift) & shard.mask;
  while (true) {
    const std::uint64_t word = shard.slots[idx];
    if (word == 0) break;
    if (tag_matches(word, h)) {
      const std::uint64_t enc = word & 0xffffffffULL;
      if (enc & kPendingBit) {
        const std::size_t local = static_cast<std::size_t>(enc & ~kPendingBit);
        if (equal_delta(shard.staged.data() + local * width_, base, ds, dv,
                        nd)) {
          return {-static_cast<std::int64_t>((local << kShardBits) |
                                             static_cast<std::size_t>(s)) -
                      2,
                  false};
        }
      } else {
        const auto id = static_cast<std::int32_t>(enc - 1);
        // An evicted row must be faulted back before the compare: a
        // DONTNEED'd page reads as zeros, and matching a candidate
        // against zeros instead of the real row would be unsound.
        if (spill_ != nullptr) {
          spill_->ensure_row(static_cast<std::size_t>(id));
        }
        if (equal_delta(view(id), base, ds, dv, nd)) {
          return {static_cast<std::int64_t>(id), false};
        }
      }
    }
    idx = (idx + 1) & shard.mask;
  }

  const std::size_t local = shard.staged_hash.size();
  materialize(shard, base, ds, dv, nd);
  shard.staged_hash.push_back(h);
  shard.staged_slot.push_back(static_cast<std::uint32_t>(idx));
  shard.slots[idx] = pack(h, kPendingBit | local);
  ++shard.used;
  return {-static_cast<std::int64_t>((local << kShardBits) |
                                     static_cast<std::size_t>(s)) -
              2,
          true};
}

std::int64_t ConfigStore::find_delta(std::uint64_t h, const Count* base,
                                     const std::uint32_t* ds,
                                     const math::Int* dv,
                                     std::size_t nd) const {
  const Shard& shard = shards_[static_cast<std::size_t>(shard_of(h))];
  std::size_t idx = (h >> shard.shift) & shard.mask;
  while (true) {
    const std::uint64_t word = shard.slots[idx];
    if (word == 0) return kDroppedHandle;
    if (tag_matches(word, h)) {
      const std::uint64_t enc = word & 0xffffffffULL;
      if (!(enc & kPendingBit)) {
        const auto id = static_cast<std::int32_t>(enc - 1);
        if (spill_ != nullptr) {
          spill_->ensure_row(static_cast<std::size_t>(id));
        }
        if (equal_delta(view(id), base, ds, dv, nd)) {
          return static_cast<std::int64_t>(id);
        }
      }
    }
    idx = (idx + 1) & shard.mask;
  }
}

ConfigStore::StageResult ConfigStore::stage(std::uint64_t h,
                                            const math::Int* c) {
  // Full-configuration staging (the root): route through stage_delta with
  // an empty delta over a narrowed copy of `c`.
  std::vector<Count> narrow(width_);
  for (std::size_t s = 0; s < width_; ++s) {
    require(c[s] >= 0 && c[s] <= std::numeric_limits<Count>::max(),
            "ConfigStore: species count outside [0, 2^31)");
    narrow[s] = static_cast<Count>(c[s]);
  }
  return stage_delta(h, narrow.data(), nullptr, nullptr, 0);
}

std::size_t ConfigStore::staged_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.staged_hash.size();
  return total;
}

std::size_t ConfigStore::commit(std::size_t max_new) {
  // Assign consecutive ids in (shard, stage-order) order.
  std::size_t budget = max_new;
  std::size_t total = 0;
  std::int32_t next = static_cast<std::int32_t>(size_);
  bool any_rejects = false;
  for (Shard& shard : shards_) {
    const std::size_t staged = shard.staged_hash.size();
    shard.base = next;
    shard.accepted = staged < budget ? staged : budget;
    budget -= shard.accepted;
    total += shard.accepted;
    next += static_cast<std::int32_t>(shard.accepted);
    if (shard.accepted < staged) any_rejects = true;
  }

  // Appending via insert() keeps vector growth geometric and skips the
  // zero-initialization a resize()-then-memcpy would pay on every level.
  for (Shard& shard : shards_) {
    if (shard.accepted > 0) {
      pool_.insert(pool_.end(), shard.staged.begin(),
                   shard.staged.begin() +
                       static_cast<std::ptrdiff_t>(shard.accepted * width_));
      id_hash_.insert(id_hash_.end(), shard.staged_hash.begin(),
                      shard.staged_hash.begin() +
                          static_cast<std::ptrdiff_t>(shard.accepted));
    }
    if (shard.accepted == shard.staged_hash.size()) {
      // No rejects: point the pending slots at their final ids.
      for (std::size_t local = 0; local < shard.accepted; ++local) {
        const std::uint64_t enc = static_cast<std::uint64_t>(
                                      shard.base + static_cast<std::int32_t>(
                                                       local)) +
                                  1;
        std::uint64_t& word = shard.slots[shard.staged_slot[local]];
        word = (word >> 32 << 32) | enc;
      }
    }
  }
  size_ += total;

  if (any_rejects) {
    // Open addressing cannot delete in place: rebuild the affected shards
    // from the committed pool (at most once per exploration — after the
    // budget fills, callers switch to find_delta()).
    for (Shard& shard : shards_) {
      if (shard.accepted == shard.staged_hash.size()) continue;
      std::fill(shard.slots.begin(), shard.slots.end(), 0);
      shard.used = 0;
    }
    for (std::size_t id = 0; id < size_; ++id) {
      const std::uint64_t h = id_hash_[id];
      Shard& shard = shards_[static_cast<std::size_t>(shard_of(h))];
      if (shard.accepted == shard.staged_hash.size()) continue;
      if ((shard.used + 1) * 8 >= (shard.mask + 1) * 5) grow(shard);
      insert_slot(shard, h, id + 1);
    }
  }
  return total;
}

std::int32_t ConfigStore::resolve(std::int64_t handle) const {
  if (handle >= 0) return static_cast<std::int32_t>(handle);
  if (handle == kDroppedHandle) return -1;
  const std::uint64_t enc = static_cast<std::uint64_t>(-handle - 2);
  const Shard& shard = shards_[enc & (kShards - 1)];
  const std::size_t local = enc >> kShardBits;
  if (local >= shard.accepted) return -1;
  return shard.base + static_cast<std::int32_t>(local);
}

void ConfigStore::finish_level() {
  for (Shard& shard : shards_) {
    shard.staged.clear();
    shard.staged_hash.clear();
    shard.staged_slot.clear();
    shard.accepted = 0;
  }
}

void ConfigStore::restore(std::vector<Count>&& pool,
                          std::vector<std::uint64_t>&& id_hash) {
  require(size_ == 0 && staged_count() == 0,
          "ConfigStore::restore: store not empty");
  require(pool.size() == id_hash.size() * width_,
          "ConfigStore::restore: arena/hash size mismatch");
  pool_ = std::move(pool);
  id_hash_ = std::move(id_hash);
  size_ = id_hash_.size();
  advise_huge(pool_.data(), pool_.capacity() * sizeof(Count));
  for (std::size_t id = 0; id < size_; ++id) {
    const std::uint64_t h = id_hash_[id];
    Shard& shard = shards_[static_cast<std::size_t>(shard_of(h))];
    if ((shard.used + 1) * 8 >= (shard.mask + 1) * 5) grow(shard);
    insert_slot(shard, h, id + 1);
  }
}

void ConfigStore::fault_row_for_read(std::int32_t id) const {
  spill_->ensure_row(static_cast<std::size_t>(id));
  if (spill_->io_error()) {
    throw SpillError("spill: failed to fault configuration " +
                     std::to_string(id) + " back from its segment");
  }
}

void ConfigStore::collect_column(std::size_t species,
                                 std::vector<Count>& out) const {
  out.resize(size_);
  if (spill_ != nullptr) {
    spill_->collect_column(species, out.data(), size_);
    return;
  }
  const Count* p = pool_.data() + species;
  for (std::size_t id = 0; id < size_; ++id, p += width_) out[id] = *p;
}

std::size_t ConfigStore::bytes() const {
  // Sizes, not capacities, for the arena: reserve() may map far more
  // address space than the exploration touches.
  std::size_t total = pool_.size() * sizeof(Count) +
                      id_hash_.size() * sizeof(std::uint64_t);
  for (const Shard& shard : shards_) {
    total += shard.slots.capacity() * sizeof(std::uint64_t);
    total += shard.staged.capacity() * sizeof(Count);
    total += shard.staged_hash.capacity() * sizeof(std::uint64_t);
    total += shard.staged_slot.capacity() * sizeof(std::uint32_t);
  }
  return total;
}

}  // namespace crnkit::verify
