// ConfigStore: the arena-backed configuration interner behind the exact
// verifier.
//
// Every explored configuration lives in one contiguous pool of 32-bit
// counts — node id i occupies pool[i * width, (i+1) * width) — so the
// explorer never heap-allocates per configuration, neighbouring nodes
// share cache lines, and a membership compare moves half the bytes a
// dense math::Int layout would (counts are checked against the 2^31
// range when configurations are created; exact exploration of graphs
// whose counts exceed that is far beyond any feasible node budget).
//
// Membership is an open-addressing (linear probe) hash set sharded by
// the top bits of a Zobrist-style hash: each species/value pair
// contributes splitmix64(seed[species] ^ value), XOR-combined, so
// applying a reaction updates the hash incrementally in O(deltas)
// rather than rehashing the whole configuration. A slot is one packed
// 64-bit word (32-bit hash tag + 32-bit encoded id) — a probe touches a
// single cache line, and full-configuration compares gate every hit, so
// tag collisions cost a compare, never correctness. prefetch()/
// prefetch_row() let explorers hide the table's and the arena's DRAM
// latency behind candidate generation.
//
// Candidates are described as (base row, reaction delta) pairs —
// stage_delta()/find_delta() compare stored rows against base+delta on
// the fly and only materialize a configuration when it is genuinely new.
//
// Interning is level-synchronous to keep the parallel explorer
// deterministic: during a BFS level, shard owners stage candidates
// (concurrently — a shard is only ever touched by its owner), then a
// single commit() assigns consecutive node ids in (shard, stage-order)
// order and copies accepted configurations into the pool. A node budget
// is enforced at commit time; shards whose staged entries were rejected
// are rebuilt so the table never contains configurations the graph does
// not.
#ifndef CRNKIT_VERIFY_CONFIG_STORE_H_
#define CRNKIT_VERIFY_CONFIG_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crn/reaction.h"

namespace crnkit::verify {

class SpillPool;

/// splitmix64 finalizer: the mixing function for hashes and shard choice.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class ConfigStore {
 public:
  /// Arena element: molecular counts, range-checked on creation.
  using Count = std::int32_t;

  static constexpr int kShardBits = 6;
  static constexpr int kShards = 1 << kShardBits;
  /// stage()/find() handle for a configuration dropped by the budget.
  static constexpr std::int64_t kDroppedHandle = -1;

  explicit ConfigStore(std::size_t width);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Node id -> its counts inside the arena (width() values).
  [[nodiscard]] const Count* view(std::int32_t id) const {
    return pool_.data() + static_cast<std::size_t>(id) * width_;
  }
  /// Materializes a configuration (for results and error messages; hot
  /// paths use view()). Under an attached spill pool this faults the
  /// row's page back in first and throws SpillError when the segment
  /// cannot be read.
  [[nodiscard]] crn::Config config(std::int32_t id) const {
    if (spill_ != nullptr) fault_row_for_read(id);
    const Count* p = view(id);
    return crn::Config(p, p + width_);
  }
  /// The stored hash of a committed configuration (so explorers derive
  /// successor hashes incrementally without rehashing the node).
  [[nodiscard]] std::uint64_t id_hash(std::int32_t id) const {
    return id_hash_[static_cast<std::size_t>(id)];
  }

  /// Zobrist hash of a full configuration. Per-species-and-value
  /// contributions XOR together, so callers can update incrementally with
  /// elem_hash when a reaction changes a few counts.
  [[nodiscard]] std::uint64_t hash(const math::Int* c) const;
  [[nodiscard]] std::uint64_t elem_hash(std::size_t species,
                                        math::Int value) const {
    return splitmix64(zseed_[species] ^ static_cast<std::uint64_t>(value));
  }
  [[nodiscard]] static int shard_of(std::uint64_t h) {
    return static_cast<int>(h >> (64 - kShardBits));
  }

  /// Pulls the slot a probe for `h` would start at into cache.
  void prefetch(std::uint64_t h) const {
#if defined(__GNUC__) || defined(__clang__)
    const Shard& shard = shards_[static_cast<std::size_t>(shard_of(h))];
    __builtin_prefetch(shard.slots.data() + ((h >> shard.shift) & shard.mask));
#else
    (void)h;
#endif
  }

  /// Warming hint for a later stage/find of the same hash: walks the
  /// (already prefetched) probe chain and prefetches the configuration
  /// row a hash-tag match would be compared against. Purely advisory —
  /// the real probe re-walks the now-cached chain — but it overlaps the
  /// compare's DRAM read with the caller's other candidates, which is
  /// most of an interning's latency.
  void prefetch_row(std::uint64_t h) const;

  // --- level protocol ---
  //
  // Within one BFS level, stage_delta()/stage() may be called
  // concurrently as long as each shard (shard_of(h)) is only touched by
  // one thread. commit(), resolve() after commit, and finish_level() are
  // serial.

  struct StageResult {
    /// >= 0: id of an already-committed identical configuration.
    /// < -1: opaque pending handle — pass to resolve() after commit().
    std::int64_t handle = kDroppedHandle;
    /// True iff this call created the pending entry (the caller staging a
    /// new configuration first "wins" it — the deterministic BFS parent).
    bool created = false;
  };

  /// Interns the configuration `base + delta` (with precomputed hash
  /// `h`), where `base` is an arena row and (ds, dv, nd) a reaction's
  /// sorted net-delta list: an existing id, an existing pending entry
  /// from this level, or a fresh pending entry. The configuration is
  /// only materialized when new.
  StageResult stage_delta(std::uint64_t h, const Count* base,
                          const std::uint32_t* ds, const math::Int* dv,
                          std::size_t nd);

  /// Lookup-only variant (used once the node budget is exhausted):
  /// a committed id, or kDroppedHandle.
  [[nodiscard]] std::int64_t find_delta(std::uint64_t h, const Count* base,
                                        const std::uint32_t* ds,
                                        const math::Int* dv,
                                        std::size_t nd) const;

  /// Interns a full configuration (the exploration root).
  StageResult stage(std::uint64_t h, const math::Int* c);

  /// Total configurations staged this level.
  [[nodiscard]] std::size_t staged_count() const;

  /// Commits up to `max_new` staged configurations, in (shard, stage
  /// order) order, assigning them consecutive ids starting at size().
  /// Returns the number accepted. Shards with rejected entries are
  /// rebuilt from the committed pool so rejected configurations vanish.
  std::size_t commit(std::size_t max_new);

  /// Maps a stage/find handle to a final node id after commit();
  /// -1 if the configuration was rejected by the budget.
  [[nodiscard]] std::int32_t resolve(std::int64_t handle) const;

  /// Final id of the level's `local`-th staged entry in `shard` (stage
  /// order); -1 if it was rejected. Valid between commit() and
  /// finish_level().
  [[nodiscard]] std::int32_t committed_id(int shard,
                                          std::size_t local) const {
    const Shard& sh = shards_[static_cast<std::size_t>(shard)];
    if (local >= sh.accepted) return -1;
    return sh.base + static_cast<std::int32_t>(local);
  }

  /// Clears the level's staging buffers (after edges are built).
  void finish_level();

  /// Capacity hint (in configurations): avoids arena reallocation copies
  /// during exploration, and requests huge-page backing for the arena.
  /// Reserved address space is untouched until used.
  void reserve(std::size_t n_configs);

  /// Pre-sizes every shard's hash table for `expected_configs` total
  /// entries at the 5/8 max load factor grow() maintains, so a guided
  /// exploration whose static bound is accurate never pays a mid-level
  /// rehash (or its transient old+new table). Only valid on an empty
  /// store; ids and graphs are unaffected (ids are assigned by stage
  /// order, never by slot position).
  void reserve_slots(std::size_t expected_configs);

  /// Memory footprint in bytes: arena and per-node hashes by *used* size
  /// (reserve() may map far more untouched address space), hash tables
  /// and staging buffers by capacity.
  [[nodiscard]] std::size_t bytes() const;

  // --- checkpointing ---

  /// The committed arena / per-node hashes, id order (what a checkpoint
  /// persists; zseed_ is deterministic from the width and never stored).
  [[nodiscard]] const std::vector<Count>& pool() const { return pool_; }
  [[nodiscard]] const std::vector<std::uint64_t>& id_hashes() const {
    return id_hash_;
  }

  /// Adopts a checkpointed arena into a freshly-constructed store and
  /// rebuilds the shard hash tables from it. Only valid while empty;
  /// pool must hold exactly width() counts per id_hash entry.
  void restore(std::vector<Count>&& pool,
               std::vector<std::uint64_t>&& id_hash);

  // --- out-of-core mode ---

  /// Attaches (or detaches, with nullptr) a spill pool. While attached,
  /// every compare against a committed row faults its page back in
  /// first, so evicted arena pages are transparent to interning. The
  /// pool must be constructed over this store *after* reserve() mapped
  /// the exploration's full arena.
  void attach_spill(SpillPool* spill) { spill_ = spill; }
  [[nodiscard]] SpillPool* spill() const { return spill_; }

  /// Gathers column `species` over every committed row into `out`
  /// (resized to size()). Streams evicted pages from their segments
  /// without faulting them back — the verdict passes read whole columns
  /// and must not re-materialize a spilled arena. Serial; throws
  /// SpillError on a segment read failure.
  void collect_column(std::size_t species, std::vector<Count>& out) const;

 private:
  friend class SpillPool;
  // A slot packs (hash tag << 32 | encoded id) into one word; 0 is
  // empty. Encoded id: committed node i -> i + 1; pending staged local
  // l -> kPendingBit | l. Full hashes are recoverable from id_hash_ /
  // staged_hash, so growth rehashes without storing them per slot.
  static constexpr std::uint64_t kPendingBit = 0x80000000ULL;

  struct Shard {
    std::vector<std::uint64_t> slots;
    std::size_t mask = 0;
    /// Probe index = (h >> shift) & mask: the hash bits directly below
    /// the shard bits, so callers that bucket candidates by those bits
    /// probe a contiguous (cache-resident) stripe of the table.
    unsigned shift = 0;
    std::size_t used = 0;

    // Level staging: configurations waiting for commit().
    std::vector<Count> staged;                 // width values each
    std::vector<std::uint64_t> staged_hash;
    std::vector<std::uint32_t> staged_slot;    // slot holding each entry

    // Set by commit().
    std::int32_t base = 0;
    std::size_t accepted = 0;
  };

  // The tag is the LOW hash half: the shard uses the top 6 bits and the
  // probe index the bits directly below them, so the low bits stay
  // independent of where the slot sits.
  [[nodiscard]] static std::uint64_t pack(std::uint64_t h,
                                          std::uint64_t enc) {
    return (h << 32) | enc;
  }
  [[nodiscard]] static bool tag_matches(std::uint64_t word,
                                        std::uint64_t h) {
    return (word >> 32) == (h & 0xffffffffULL);
  }

  void grow(Shard& shard);
  void insert_slot(Shard& shard, std::uint64_t h, std::uint64_t enc);
  /// Slow path of config() under spill: ensure_row + io_error check
  /// (out of line so the header needs only a SpillPool forward decl).
  void fault_row_for_read(std::int32_t id) const;
  /// row == base + delta, element-wise over the full width.
  [[nodiscard]] bool equal_delta(const Count* row, const Count* base,
                                 const std::uint32_t* ds,
                                 const math::Int* dv, std::size_t nd) const;
  /// Appends base + delta to `shard`'s staging buffer (range-checked).
  void materialize(Shard& shard, const Count* base, const std::uint32_t* ds,
                   const math::Int* dv, std::size_t nd);

  std::size_t width_ = 0;
  std::size_t size_ = 0;
  std::vector<Count> pool_;
  std::vector<std::uint64_t> id_hash_;  // per-node hash, id order
  std::vector<std::uint64_t> zseed_;    // per-species Zobrist seeds
  std::vector<Shard> shards_;
  SpillPool* spill_ = nullptr;  ///< non-null only in out-of-core mode
};

inline void ConfigStore::prefetch_row(std::uint64_t h) const {
#if defined(__GNUC__) || defined(__clang__)
  const Shard& shard = shards_[static_cast<std::size_t>(shard_of(h))];
  std::size_t idx = (h >> shard.shift) & shard.mask;
  while (true) {
    const std::uint64_t word = shard.slots[idx];
    if (word == 0) return;
    if (tag_matches(word, h)) {
      const std::uint64_t enc = word & 0xffffffffULL;
      const Count* row =
          (enc & kPendingBit)
              ? shard.staged.data() +
                    static_cast<std::size_t>(enc & ~kPendingBit) * width_
              : view(static_cast<std::int32_t>(enc - 1));
      const char* p = reinterpret_cast<const char*>(row);
      __builtin_prefetch(p);
      __builtin_prefetch(p + 64);
      __builtin_prefetch(p + 128);
      return;
    }
    idx = (idx + 1) & shard.mask;
  }
#else
  (void)h;
#endif
}

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_CONFIG_STORE_H_
