// Durable restart points for exact exploration.
//
// A checkpoint is taken at a BFS level boundary — the one moment the
// explorer's entire state is a handful of flat arrays: the ConfigStore
// arena + per-node hashes, the CSR edges built so far, the BFS tree, and
// the [level_begin, level_end) frontier cursors. Because exploration is
// deterministic at every thread count, resuming from those arrays and
// running the remaining levels yields a *bit-identical* graph (node ids,
// edges, parents, verdict) to the uninterrupted run — the property the
// resume ctest asserts on chain/compose scenarios.
//
// File format (version 1, little-endian, written atomically via
// util::FaultedFileWriter with the `checkpoint.save` fault sites):
//
//   magic "CRNKCKP1" | u64 header fields | arrays | trailing checksum
//
// The checksum is a splitmix64 chain over every payload byte; load()
// recomputes it and rejects torn or bit-flipped files, and rejects
// checkpoints whose CRN canonical hash, initial-configuration hash,
// width, or node budget disagree with the resuming run (a checkpoint is
// only valid for the exact exploration that wrote it).
#ifndef CRNKIT_VERIFY_CHECKPOINT_H_
#define CRNKIT_VERIFY_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crn/network.h"
#include "verify/config_store.h"

namespace crnkit::verify {

/// Fingerprint of the *concrete* network (species ids included): the
/// arena indexes configurations by concrete species id, so a checkpoint
/// is only valid for a bit-identical network — a renaming-invariant
/// canonical hash would wrongly accept reordered species.
[[nodiscard]] std::uint64_t concrete_crn_fingerprint(const crn::Crn& crn);

/// The explorer state snapshotted at a level boundary. save() borrows
/// the arrays from the live exploration; load() materializes owned
/// vectors the explorer then adopts (ConfigStore::restore + moves).
struct ExploreCheckpoint {
  // Identity — all four must match the resuming run exactly.
  std::uint64_t crn_hash = 0;      ///< crn::canonical_hash of the network
  std::uint64_t initial_hash = 0;  ///< Zobrist hash of the root config
  std::uint64_t width = 0;
  std::uint64_t max_configs = 0;

  // Frontier cursors: the next level to expand is [level_begin, level_end).
  std::uint64_t level_begin = 0;
  std::uint64_t level_end = 0;
  std::uint64_t levels = 0;         ///< ExploreStats.levels so far
  std::uint64_t frontier_peak = 0;  ///< ExploreStats.frontier_peak so far
  std::uint8_t complete = 1;

  std::vector<ConfigStore::Count> pool;   ///< node arena, width per node
  std::vector<std::uint64_t> id_hash;     ///< per-node Zobrist hashes
  std::vector<std::uint64_t> succ_off;    ///< CSR offsets, level_begin+1
  std::vector<std::int32_t> succ;         ///< CSR successor ids
  std::vector<std::int32_t> parent;       ///< BFS parents, one per node
  std::vector<std::int32_t> parent_reaction;
};

/// Borrowed view of live explorer state for save_checkpoint — a
/// chain/compose-24 arena runs to hundreds of MB, so snapshots must not
/// copy it.
struct ExploreCheckpointView {
  std::uint64_t crn_hash = 0;
  std::uint64_t initial_hash = 0;
  std::uint64_t width = 0;
  std::uint64_t max_configs = 0;
  std::uint64_t level_begin = 0;
  std::uint64_t level_end = 0;
  std::uint64_t levels = 0;
  std::uint64_t frontier_peak = 0;
  std::uint8_t complete = 1;
  const std::vector<ConfigStore::Count>* pool = nullptr;
  const std::vector<std::uint64_t>* id_hash = nullptr;
  const std::vector<std::uint64_t>* succ_off = nullptr;
  const std::vector<std::int32_t>* succ = nullptr;
  const std::vector<std::int32_t>* parent = nullptr;
  const std::vector<std::int32_t>* parent_reaction = nullptr;
  /// Out-of-core mode: when set, save_checkpoint() streams the arena in
  /// row chunks through this reader instead of reading `pool` directly
  /// (which then only provides the element count — its bytes may be
  /// evicted). Must fill `dst` with `n_rows * width` counts starting at
  /// `first_row`; may throw (e.g. SpillError), which propagates out of
  /// save_checkpoint(). The on-disk byte format is unchanged.
  std::function<void(std::size_t first_row, std::size_t n_rows,
                     ConfigStore::Count* dst)>
      read_pool_rows;
};

/// Writes the checkpoint atomically (temp file + fsync + rename); on any
/// failure the previous checkpoint file is untouched. Fault sites:
/// checkpoint.save.crash / .short_write / .crash_before_rename.
[[nodiscard]] bool save_checkpoint(const std::string& path,
                                   const ExploreCheckpointView& ckpt,
                                   std::string* error = nullptr);

/// Loads and validates a checkpoint file: magic, version, checksum, and
/// internal array-size consistency. Identity fields are the caller's to
/// check against the resuming run.
[[nodiscard]] bool load_checkpoint(const std::string& path,
                                   ExploreCheckpoint* out,
                                   std::string* error = nullptr);

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_CHECKPOINT_H_
