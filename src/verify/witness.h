// Impossibility machinery: Lemma 4.1 contradiction sequences and the
// Theorem 5.4 "negative characterization".
//
// Lemma 4.1: if there is an increasing sequence (a_1, a_2, ...) such that
// for all i < j some Delta_ij has
//     f(a_i + Delta_ij) - f(a_i) > f(a_j + Delta_ij) - f(a_j),
// then f is not obliviously-computable. The paper instantiates it with
// *linear families* a_i = i*u, Delta_ij = j*v (max: u=(1,0), v=(0,1); the
// Equation (2) counterexample: the same family). This module verifies such
// families on bounded prefixes and searches small direction pairs (u, v)
// automatically — the executable shadow of the paper's impossibility proofs.
#ifndef CRNKIT_VERIFY_WITNESS_H_
#define CRNKIT_VERIFY_WITNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "fn/function.h"

namespace crnkit::verify {

/// A verified linear contradiction family for Lemma 4.1.
struct Lemma41Witness {
  fn::Point u;  ///< a_i = i * u
  fn::Point v;  ///< Delta_ij = j * v
  int prefix_checked = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Checks the linear family (a_i = i*u, Delta_ij = j*v) on all pairs
/// 1 <= i < j <= prefix: every pair must satisfy the strict Lemma 4.1
/// inequality. Returns true iff all pairs do.
[[nodiscard]] bool check_linear_family(const fn::DiscreteFunction& f,
                                       const fn::Point& u, const fn::Point& v,
                                       int prefix);

/// Searches direction pairs (u, v) with entries in [0, max_entry] (u != 0,
/// v != 0) for a family passing check_linear_family. Returns the first
/// witness found, or nullopt — the bounded analogue of Theorem 5.4's
/// "has no sequence meeting the conditions of Lemma 4.1".
[[nodiscard]] std::optional<Lemma41Witness> find_lemma41_witness(
    const fn::DiscreteFunction& f, math::Int max_entry = 2, int prefix = 8);

/// A single difference reversal f(a + delta) - f(a) > f(b + delta) - f(b)
/// with a <= b. Strictly weaker than Lemma 4.1 (which needs a reversal for
/// *every* pair of an infinite increasing sequence): even min(x1,x2) has
/// single reversals. Useful as an exploratory probe, not as a witness.
struct DifferenceReversal {
  fn::Point a;
  fn::Point b;
  fn::Point delta;

  [[nodiscard]] std::string to_string() const;
};

/// Finds any single difference reversal within the grid.
[[nodiscard]] std::optional<DifferenceReversal> find_difference_reversal(
    const fn::DiscreteFunction& f, math::Int grid_max);

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_WITNESS_H_
