// The executable side of Lemma 2.3: a CRN that composes correctly with any
// downstream consumer must still compute its function after every reaction
// consuming its output is deleted — i.e. it is "essentially output-
// oblivious". This module performs that strip-and-recheck experiment.
//
// For the Fig 1 max CRN, stripping K + Y -> 0 leaves a CRN computing
// x1 + x2, not max — certifying (per Lemma 2.3) that max's CRN is NOT
// composable by concatenation.
#ifndef CRNKIT_VERIFY_COMPOSABILITY_H_
#define CRNKIT_VERIFY_COMPOSABILITY_H_

#include <string>

#include "crn/network.h"
#include "fn/function.h"

namespace crnkit::verify {

/// The CRN with every reaction using the output species as a reactant
/// removed (the C'_f of Lemma 2.3's proof). Always output-oblivious.
[[nodiscard]] crn::Crn strip_output_consumers(const crn::Crn& crn);

struct ComposabilityReport {
  bool already_oblivious = false;
  int reactions_removed = 0;
  /// Does the stripped CRN still stably compute f on the grid?
  bool stripped_computes_f = true;
  /// First input where the stripped CRN fails, if any.
  std::string failure;

  /// Lemma 2.3 verdict: composable-by-concatenation iff the stripped CRN
  /// still computes f.
  [[nodiscard]] bool composable() const { return stripped_computes_f; }
  [[nodiscard]] std::string summary() const;
};

/// Runs the strip-and-recheck experiment against reference function f on
/// [0, grid_max]^d (exhaustive stable-computation checks).
[[nodiscard]] ComposabilityReport check_composability(
    const crn::Crn& crn, const fn::DiscreteFunction& f, math::Int grid_max);

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_COMPOSABILITY_H_
