// Randomized stable-computation checking for CRNs whose reachable space is
// too large to enumerate (the Theorem 5.2 compositions). Runs many random
// silent runs per input; every silent configuration is stable, so a silent
// run ending with the wrong output count *disproves* stable computation,
// while agreement over many trials (with different seeds) gives strong
// evidence. The exhaustive checker in stable.h remains the ground truth on
// small inputs; tests cross-validate the two on overlapping domains.
#ifndef CRNKIT_VERIFY_SIMCHECK_H_
#define CRNKIT_VERIFY_SIMCHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fn/function.h"
#include "sim/ensemble.h"

namespace crnkit::verify {

struct SimCheckResult {
  /// True iff every silent trial matched AND every point produced at least
  /// one silent trial. `ok` is the "safe to trust" bit; consult verdict()
  /// to distinguish a disproof from exhausted step budgets.
  bool ok = true;
  int trials = 0;
  int silent_trials = 0;  ///< trials that actually reached silence
  /// Trials that exhausted max_steps without reaching silence. These carry
  /// no agreement evidence in either direction and never count toward it.
  int non_silent_trials = 0;
  int mismatches = 0;
  /// Points where no trial at all went silent: zero evidence, not failure.
  int inconclusive_points = 0;
  std::vector<std::pair<fn::Point, math::Int>> failures;  ///< (x, got)

  enum class Verdict { kPass, kFail, kInconclusive };
  /// kFail on any silent-trial mismatch (a genuine disproof: every silent
  /// configuration is stable); kInconclusive when some point produced no
  /// silent trial (raise max_steps); kPass otherwise.
  [[nodiscard]] Verdict verdict() const;
  /// "pass" | "fail" | "inconclusive" for CLI/JSON surfaces.
  [[nodiscard]] std::string verdict_name() const;

  [[nodiscard]] std::string summary() const;
};

struct SimCheckOptions {
  int trials_per_point = 5;
  std::uint64_t max_steps = 5'000'000;
  std::uint64_t seed = 1;
  /// Worker threads for the trial batch; 0 means all hardware threads.
  /// Results are bit-identical for a fixed seed regardless of this value.
  int threads = 0;
};

/// Randomized check of `crn` against f on a single input x.
[[nodiscard]] SimCheckResult sim_check_point(const crn::Crn& crn,
                                             const fn::DiscreteFunction& f,
                                             const fn::Point& x,
                                             const SimCheckOptions& options =
                                                 {});

/// Randomized check over the grid [0, grid_max]^d.
[[nodiscard]] SimCheckResult sim_check_grid(const crn::Crn& crn,
                                            const fn::DiscreteFunction& f,
                                            math::Int grid_max,
                                            const SimCheckOptions& options =
                                                {});

/// Randomized check on an explicit list of inputs (e.g. sparse large inputs
/// beyond any affordable dense grid).
[[nodiscard]] SimCheckResult sim_check_points(
    const crn::Crn& crn, const fn::DiscreteFunction& f,
    const std::vector<fn::Point>& points, const SimCheckOptions& options = {});

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_SIMCHECK_H_
