// Exact reachability graphs (Section 2.2's reachability relation ->*).
//
// BFS over configurations from an initial configuration, hashing each
// configuration once; edges record which reaction produced them, so witness
// reaction sequences can be reconstructed. Exploration is bounded by a
// configurable node budget; `complete` reports whether the whole reachable
// set was enumerated (all stable-computation *proofs* require complete
// graphs; incomplete graphs still yield counterexample witnesses).
#ifndef CRNKIT_VERIFY_REACHABILITY_H_
#define CRNKIT_VERIFY_REACHABILITY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crn/network.h"

namespace crnkit::verify {

struct ReachabilityGraph {
  std::vector<crn::Config> configs;        ///< node id -> configuration
  std::vector<std::vector<int>> succ;      ///< node id -> successor node ids
  std::vector<int> parent;                 ///< BFS tree parent (-1 for root)
  std::vector<int> parent_reaction;        ///< reaction used to reach node
  bool complete = true;                    ///< false iff node budget was hit

  [[nodiscard]] std::size_t size() const { return configs.size(); }
};

struct ExploreOptions {
  std::size_t max_configs = 250'000;
};

/// Enumerates configurations reachable from `initial`.
[[nodiscard]] ReachabilityGraph explore(const crn::Crn& crn,
                                        const crn::Config& initial,
                                        const ExploreOptions& options = {});

/// The reaction sequence along the BFS tree from the root to `node`
/// (indices into crn.reactions()).
[[nodiscard]] std::vector<int> path_from_root(const ReachabilityGraph& graph,
                                              int node);

/// First node (in BFS order) whose output count exceeds `bound`, if any.
[[nodiscard]] std::optional<int> find_output_exceeding(
    const crn::Crn& crn, const ReachabilityGraph& graph, math::Int bound);

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_REACHABILITY_H_
