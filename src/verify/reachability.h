// Exact reachability graphs (Section 2.2's reachability relation ->*).
//
// Level-synchronous BFS over configurations from an initial configuration,
// on a compiled, cache-friendly representation: configurations live in a
// flat arena (verify::ConfigStore — no per-node heap allocation),
// successor generation runs through the sim::CompiledNetwork CSR delta
// kernels with incremental Zobrist hashing, and edges land in a
// deduplicated CSR adjacency (succ_off/succ) that feeds the SCC passes of
// stable.h directly.
//
// Exploration is deterministic at every thread count: within a level,
// discovered configurations are numbered by (shard of their hash, order
// of first discovery in (source node, reaction) order), and a hash shard
// is only ever advanced by one thread at a time, in frontier-slice order —
// so node ids, parents, and edges are bit-identical whether explored with
// 1 thread or 64 (the reproducibility contract sim::EnsembleRunner
// established for trajectories, extended to proofs).
//
// Parallel levels run on the persistent util::TaskPool (work-stealing
// deques, parked workers) instead of spawning threads per level, and the
// generate -> intern hand-off is pipelined: as each frontier slice
// finishes generating, its per-shard candidate buckets flow to whichever
// worker owns the shard's intern cursor, with only the id-assigning
// commit left as a per-level barrier.
//
// Exploration is bounded by a configurable node budget; `complete`
// reports whether the whole reachable set was enumerated (all
// stable-computation *proofs* require complete graphs; incomplete graphs
// still yield counterexample witnesses, and parents stay valid so
// path_from_root works on every retained node).
#ifndef CRNKIT_VERIFY_REACHABILITY_H_
#define CRNKIT_VERIFY_REACHABILITY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crn/network.h"
#include "sim/compiled_network.h"
#include "util/deadline.h"
#include "verify/config_store.h"
#include "verify/spill.h"

namespace crnkit::verify {

/// Perf counters of one exploration (surfaced by `crnc verify --stats`
/// and BENCH_verification.json).
struct ExploreStats {
  double wall_seconds = 0.0;
  std::size_t frontier_peak = 0;  ///< largest BFS level, in nodes
  std::size_t levels = 0;         ///< BFS depth explored
  std::size_t arena_bytes = 0;    ///< ConfigStore arena + hash tables
  int threads = 1;  ///< resolved worker count (small levels still run serial)
  // util::TaskPool utilization during this exploration. tasks and steals
  // are attributed exactly to this exploration's own jobs through a
  // TaskPool::CounterScope on the submitting thread — concurrent
  // explorations on the shared pool no longer bleed into each other
  // (asserted by parallel_explore_test). parks stay a process-global
  // delta: workers park between jobs, when no exploration owns them, so
  // the CLI treats that one as informational.
  std::uint64_t pool_tasks = 0;   ///< chunks of this exploration's jobs
  std::uint64_t pool_steals = 0;  ///< steals within this exploration's jobs
  std::uint64_t pool_parks = 0;   ///< worker condvar parks (global delta)
  /// Out-of-core mode: true iff at least one arena page was evicted to a
  /// spill segment. The verdict is still exact — spilling changes where
  /// bytes live, never which configurations exist.
  bool spilled = false;
  std::uint64_t spill_segments_written = 0;
  std::uint64_t spill_segments_read = 0;
  std::uint64_t spill_bytes_written = 0;
  std::uint64_t spill_bytes_read = 0;
};

struct ReachabilityGraph {
  ConfigStore store;                       ///< node id -> configuration
  std::vector<std::uint64_t> succ_off;     ///< CSR offsets, size()+1 entries
  std::vector<std::int32_t> succ;          ///< deduplicated successor ids
  std::vector<std::int32_t> parent;        ///< BFS tree parent (-1 for root)
  std::vector<std::int32_t> parent_reaction;  ///< reaction reaching node
  bool complete = true;   ///< false iff node budget was hit or cancelled
  /// True iff exploration stopped at a level boundary because its cancel
  /// token expired (deadline or explicit cancel); implies !complete
  /// unless the graph happened to be fully enumerated already.
  bool cancelled = false;
  ExploreStats stats;
  /// Out-of-core mode: owns the spill pool so evicted arena pages stay
  /// readable (store.config(), collect_column) through the verdict
  /// passes that run after exploration. Null in in-RAM mode. Only the
  /// explorer itself may call shed() on it — after the graph is moved,
  /// the pool's back-reference to the store is stale for eviction (row
  /// reads go through the stable arena base pointer and stay valid).
  std::unique_ptr<SpillPool> spill;

  explicit ReachabilityGraph(std::size_t width) : store(width) {}

  [[nodiscard]] std::size_t size() const { return store.size(); }
  [[nodiscard]] std::size_t edge_count() const { return succ.size(); }

  /// Node id -> counts in the arena (store.width() values, 32-bit).
  [[nodiscard]] const ConfigStore::Count* view(int node) const {
    return store.view(static_cast<std::int32_t>(node));
  }
  /// Materialized copy (results and error messages; hot paths use view).
  [[nodiscard]] crn::Config config(int node) const {
    return store.config(static_cast<std::int32_t>(node));
  }
  /// Successor node ids, deduplicated, in first-discovery order.
  [[nodiscard]] sim::Span<std::int32_t> successors(int node) const {
    return {succ.data() + succ_off[static_cast<std::size_t>(node)],
            succ.data() + succ_off[static_cast<std::size_t>(node) + 1]};
  }
};

struct ExploreOptions {
  std::size_t max_configs = 2'000'000;
  /// Worker threads; 0 means std::thread::hardware_concurrency(). The
  /// resulting graph is identical for every value.
  int threads = 1;
  /// Cooperative cancellation, polled once per BFS level; an expired
  /// token stops exploration at the next level boundary with
  /// graph.cancelled set (and a final checkpoint saved, when enabled).
  const util::CancelToken* cancel = nullptr;
  /// When non-empty, the explorer snapshots its state to this file at
  /// level boundaries (atomically — a crash never corrupts a previous
  /// checkpoint) every `checkpoint_every_secs`; 0 means every level.
  std::string checkpoint_path;
  double checkpoint_every_secs = 30.0;
  /// Resume from `checkpoint_path` when it holds a valid checkpoint of
  /// this exact exploration (network, root, width, budget); otherwise
  /// explore from scratch. Determinism makes the resumed graph
  /// bit-identical to an uninterrupted run.
  bool resume = false;
  /// Static-analysis guidance (lint::InvariantGuide): per-species
  /// reachable-count bounds derived from conservation laws at the root
  /// (-1 = unbounded), borrowed for the duration of the call. Candidates
  /// violating a bound are rejected before interning. The bounds are
  /// invariants of exact exploration, so a correct guide never changes
  /// the resulting graph — guided and unguided runs are bit-identical.
  const std::vector<math::Int>* species_bounds = nullptr;
  /// Static upper bound on the reachable-set size
  /// (lint::InvariantGuide::reachable_bound); <= 0 means unknown. Used
  /// together with max_configs to right-size the arena reservation and
  /// pre-size the hash shards (skipping their growth rehashes).
  math::Int expected_configs = -1;
  /// Out-of-core mode: when `spill_dir` is non-empty and
  /// memory_budget_bytes > 0, frozen arena pages are evicted to
  /// checksummed segment files in `spill_dir` whenever resident bytes
  /// exceed the budget, and faulted back on demand. The verdict stays
  /// exact and the graph bit-identical to an in-RAM run; disk failures
  /// raise SpillError (typed, retriable) instead of truncating.
  std::string spill_dir;
  std::size_t memory_budget_bytes = 0;
  /// Eviction page size override (tests force tiny pages to spill small
  /// graphs); 0 = the 4 MiB default.
  std::size_t spill_page_bytes = 0;
};

/// Enumerates configurations reachable from `initial`.
[[nodiscard]] ReachabilityGraph explore(const crn::Crn& crn,
                                        const crn::Config& initial,
                                        const ExploreOptions& options = {});

/// The reaction sequence along the BFS tree from the root to `node`
/// (indices into crn.reactions()).
[[nodiscard]] std::vector<int> path_from_root(const ReachabilityGraph& graph,
                                              int node);

/// First node (in id order) whose output count exceeds `bound`, if any.
[[nodiscard]] std::optional<int> find_output_exceeding(
    const crn::Crn& crn, const ReachabilityGraph& graph, math::Int bound);

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_REACHABILITY_H_
