#include "verify/reachability.h"

#include <algorithm>
#include <deque>

#include "math/check.h"

namespace crnkit::verify {

namespace {

struct ConfigHash {
  std::size_t operator()(const crn::Config& c) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const math::Int v : c) {
      h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

}  // namespace

ReachabilityGraph explore(const crn::Crn& crn, const crn::Config& initial,
                          const ExploreOptions& options) {
  ReachabilityGraph graph;
  std::unordered_map<crn::Config, int, ConfigHash> ids;
  ids.reserve(options.max_configs * 2);

  auto intern = [&](const crn::Config& c) -> int {
    const auto it = ids.find(c);
    if (it != ids.end()) return it->second;
    const int id = static_cast<int>(graph.configs.size());
    ids.emplace(c, id);
    graph.configs.push_back(c);
    graph.succ.emplace_back();
    graph.parent.push_back(-1);
    graph.parent_reaction.push_back(-1);
    return id;
  };

  std::deque<int> frontier;
  frontier.push_back(intern(initial));
  std::size_t processed = 0;
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    ++processed;
    const crn::Config current = graph.configs[static_cast<std::size_t>(node)];
    for (std::size_t j = 0; j < crn.reactions().size(); ++j) {
      const crn::Reaction& r = crn.reactions()[j];
      if (!r.applicable(current)) continue;
      crn::Config next = current;
      r.apply_in_place(next);
      const bool known = ids.find(next) != ids.end();
      if (!known && graph.configs.size() >= options.max_configs) {
        graph.complete = false;
        continue;  // record no new nodes, but keep existing edges coming
      }
      const int next_id = intern(next);
      graph.succ[static_cast<std::size_t>(node)].push_back(next_id);
      if (!known) {
        graph.parent[static_cast<std::size_t>(next_id)] = node;
        graph.parent_reaction[static_cast<std::size_t>(next_id)] =
            static_cast<int>(j);
        frontier.push_back(next_id);
      }
    }
  }
  return graph;
}

std::vector<int> path_from_root(const ReachabilityGraph& graph, int node) {
  require(node >= 0 && static_cast<std::size_t>(node) < graph.size(),
          "path_from_root: bad node");
  std::vector<int> reactions;
  int current = node;
  while (graph.parent[static_cast<std::size_t>(current)] != -1) {
    reactions.push_back(graph.parent_reaction[static_cast<std::size_t>(
        current)]);
    current = graph.parent[static_cast<std::size_t>(current)];
  }
  std::reverse(reactions.begin(), reactions.end());
  return reactions;
}

std::optional<int> find_output_exceeding(const crn::Crn& crn,
                                         const ReachabilityGraph& graph,
                                         math::Int bound) {
  const auto y = static_cast<std::size_t>(crn.output_or_throw());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (graph.configs[i][y] > bound) return static_cast<int>(i);
  }
  return std::nullopt;
}

}  // namespace crnkit::verify
