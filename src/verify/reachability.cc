#include "verify/reachability.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "math/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/task_pool.h"
#include "verify/checkpoint.h"

namespace crnkit::verify {

namespace {

/// Always-on exploration metrics. Bumped at most once per BFS level (never
/// per config), so the whole set stays inside the <2% bench budget.
struct ExploreMetrics {
  obs::Counter& explorations;
  obs::Counter& configs;
  obs::Counter& edges;
  obs::Counter& levels;
  obs::Histogram& seconds;

  static ExploreMetrics& get() {
    static ExploreMetrics m{
        obs::Registry::instance().counter("crnkit_verify_explorations_total",
                                          "reachability explorations run"),
        obs::Registry::instance().counter(
            "crnkit_verify_configs_total",
            "configurations interned across all explorations"),
        obs::Registry::instance().counter(
            "crnkit_verify_edges_total",
            "deduplicated reachability edges recorded"),
        obs::Registry::instance().counter("crnkit_verify_levels_total",
                                          "BFS levels expanded"),
        obs::Registry::instance().histogram(
            "crnkit_verify_explore_seconds",
            "wall seconds per reachability exploration",
            obs::latency_buckets_seconds()),
    };
    return m;
  }
};

constexpr int kShards = ConfigStore::kShards;
/// Levels smaller than this are expanded on the calling thread: the graph
/// is identical either way, and scheduling pool tasks only pays off once
/// a level carries real work.
constexpr std::size_t kMinParallelFrontier = 256;
/// Smallest frontier slice worth a task of its own; levels are cut into
/// up to kSlicesPerThread slices per worker above this, so the
/// work-stealing deques have slack to balance uneven successor counts.
constexpr std::size_t kMinSliceNodes = 128;
constexpr std::size_t kSlicesPerThread = 4;
/// Probe-prefetch lookahead in the interning loops.
constexpr std::size_t kPrefetchAhead = 8;

/// A successor candidate awaiting id resolution: the source node, the
/// producing reaction, the successor's hash, and the ConfigStore handle
/// from stage()/find(). Candidate configurations are *not* stored — they
/// are rebuilt from (src, reaction) against the arena when needed, which
/// keeps the per-level footprint at 24 bytes per candidate.
struct Candidate {
  std::int32_t src;
  std::int32_t reaction;
  std::uint64_t hash;
  std::int64_t handle;
};

/// Per-slice state: the candidate list generated from a contiguous
/// frontier slice, per-shard candidate index lists for the interning
/// phase, and the local CSR piece built in the edge phase. Slices are the
/// task-pool chunks; their concatenation in slice order is exactly
/// (node, reaction) order, which is what keeps the graph bit-identical at
/// every thread count.
struct SliceBuf {
  std::vector<Candidate> cands;
  std::array<std::vector<std::uint32_t>, kShards> by_shard;
  std::int32_t lo = 0;  ///< frontier slice [lo, hi)
  std::int32_t hi = 0;
  std::vector<std::int32_t> succ;       ///< local edges
  std::vector<std::uint32_t> succ_end;  ///< per-node end offset into succ
  bool saw_dropped = false;
};

/// Per-shard interning state for the pipelined generate->intern flow.
/// A shard is only ever advanced by the thread holding its mutex, and
/// always in slice order — so the staging order within a shard is the
/// global (node, reaction) order filtered to the shard, independent of
/// which worker interns which bucket when.
struct ShardFlow {
  std::mutex mu;
  std::uint32_t next_slice = 0;
  /// (src, reaction) per created entry, stage order.
  std::vector<std::pair<std::int32_t, std::int32_t>> parents;
};

}  // namespace

ReachabilityGraph explore(const crn::Crn& crn, const crn::Config& initial,
                          const ExploreOptions& options) {
  require(initial.size() == crn.species_count(),
          "explore: initial configuration width mismatch");
  require(options.max_configs <= (std::size_t{1} << 31) - 2,
          "explore: max_configs exceeds the 2^31 node id space");
  const auto t0 = std::chrono::steady_clock::now();
  util::TaskPool& pool = util::TaskPool::instance();
  // tasks/steals come from the scope (attributed to this exploration's
  // own jobs); parks stay a global delta — see the ExploreStats comment.
  const std::uint64_t parks_before = pool.counters().parks;
  util::TaskPool::CounterScope pool_scope;
  ExploreMetrics& metrics = ExploreMetrics::get();
  obs::Span explore_span("verify.explore");

  const sim::CompiledNetwork net(crn);
  const std::size_t width = crn.species_count();
  const std::size_t n_reactions = net.reaction_count();
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  threads = std::min(threads, kShards);

  ReachabilityGraph graph(width);
  graph.stats.threads = threads;
  ConfigStore& store = graph.store;
  // Arena sizing: the invariant guide's reachable-set bound caps the
  // reservation below the node budget when the CRN's conservation laws
  // prove the space is smaller; with a guide present the hash shards are
  // also pre-sized to their final capacity, so the exploration never
  // pays a growth rehash. Out-of-core mode must reserve the full node
  // budget up front: eviction relies on the arena never reallocating
  // (address space is cheap — untouched reservation costs nothing).
  const bool use_spill =
      !options.spill_dir.empty() && options.memory_budget_bytes > 0;
  std::size_t reserve_configs =
      use_spill ? options.max_configs
                : std::min<std::size_t>(options.max_configs, 4'000'000);
  if (options.expected_configs > 0 &&
      static_cast<std::size_t>(options.expected_configs) < reserve_configs) {
    reserve_configs = static_cast<std::size_t>(options.expected_configs);
  }
  store.reserve(reserve_configs);
  if (options.expected_configs > 0) store.reserve_slots(reserve_configs);
  const math::Int* bounds = nullptr;
  if (options.species_bounds != nullptr) {
    require(options.species_bounds->size() == width,
            "explore: species_bounds width mismatch");
    bounds = options.species_bounds->data();
  }

  // Per-node applicability bitmasks, maintained through the compiled
  // reaction dependency graph: a node differs from its BFS parent only in
  // the parent reaction's deltas, so only dependents(parent_reaction) can
  // change applicability — O(deg) per node instead of O(R), and successor
  // generation walks set bits instead of scanning every reaction.
  const bool use_masks = n_reactions > 0 && n_reactions <= 64;
  std::vector<std::uint64_t> app_mask;
  const auto full_mask = [&](const auto* config) {
    std::uint64_t m = 0;
    for (std::size_t j = 0; j < n_reactions; ++j) {
      if (net.applicable(j, config)) m |= std::uint64_t{1} << j;
    }
    return m;
  };

  // Rebuilds the applicability mask of one restored node from its
  // parent's (same incremental rule as the in-level mask pass; parents
  // always have smaller ids, so id order is a valid evaluation order).
  const auto mask_from_parent = [&](std::size_t id) {
    const auto p = static_cast<std::size_t>(graph.parent[id]);
    const auto r = static_cast<std::size_t>(graph.parent_reaction[id]);
    const ConfigStore::Count* row = store.view(static_cast<std::int32_t>(id));
    std::uint64_t m = app_mask[p];
    for (const std::uint32_t j : net.dependents(r)) {
      const std::uint64_t bit = std::uint64_t{1} << j;
      if (net.applicable(j, row)) {
        m |= bit;
      } else {
        m &= ~bit;
      }
    }
    app_mask[id] = m;
  };

  const std::uint64_t root_hash = store.hash(initial.data());
  const std::uint64_t crn_fp = options.checkpoint_path.empty()
                                   ? 0
                                   : concrete_crn_fingerprint(crn);
  std::int32_t level_begin = 0;
  std::int32_t level_end = 1;
  bool resumed = false;
  if (options.resume && !options.checkpoint_path.empty()) {
    ExploreCheckpoint ckpt;
    if (load_checkpoint(options.checkpoint_path, &ckpt) &&
        ckpt.crn_hash == crn_fp && ckpt.initial_hash == root_hash &&
        ckpt.width == width && ckpt.max_configs == options.max_configs) {
      store.restore(std::move(ckpt.pool), std::move(ckpt.id_hash));
      graph.succ_off = std::move(ckpt.succ_off);
      graph.succ = std::move(ckpt.succ);
      graph.parent = std::move(ckpt.parent);
      graph.parent_reaction = std::move(ckpt.parent_reaction);
      graph.complete = ckpt.complete != 0;
      graph.stats.levels = ckpt.levels;
      graph.stats.frontier_peak = ckpt.frontier_peak;
      level_begin = static_cast<std::int32_t>(ckpt.level_begin);
      level_end = static_cast<std::int32_t>(ckpt.level_end);
      resumed = true;
      if (use_masks) {
        app_mask.resize(store.size());
        app_mask[0] = full_mask(store.view(0));
        for (std::size_t id = 1; id < store.size(); ++id) {
          mask_from_parent(id);
        }
      }
    }
  }

  // Intern the root (id 0; stored even under a zero budget, like the
  // original explorer).
  if (!resumed) {
    (void)store.stage(root_hash, initial.data());
    const std::size_t got = store.commit(1);
    ensure(got == 1, "explore: root interning failed");
    store.finish_level();
    graph.parent.push_back(-1);
    graph.parent_reaction.push_back(-1);
    graph.succ_off.push_back(0);
    if (use_masks) app_mask.push_back(full_mask(initial.data()));
  }

  if (use_spill) {
    // restore() above may have adopted the checkpoint's own (smaller)
    // arena vector; re-reserve the full bound first so the pool's base
    // pointer stays stable for the whole exploration.
    store.reserve(reserve_configs);
    SpillPool::Options spill_options;
    spill_options.dir = options.spill_dir;
    spill_options.budget_bytes = options.memory_budget_bytes;
    if (options.spill_page_bytes > 0) {
      spill_options.page_bytes = options.spill_page_bytes;
    }
    graph.spill =
        std::make_unique<SpillPool>(store, reserve_configs, spill_options);
    store.attach_spill(graph.spill.get());
  }

  // Generates all successor candidates of node u into `out`: hashes are
  // derived incrementally from the node's stored hash across each
  // reaction's deltas. With masks, only the applicable bits are visited;
  // the fallback (R > 64) checks every reaction against the arena row.
  const auto emit_candidate = [&](std::int32_t u,
                                  const ConfigStore::Count* row,
                                  std::uint64_t h0, std::size_t j,
                                  std::vector<Candidate>& out) {
    const auto ds = net.delta_species(j);
    const auto dv = net.delta_values(j);
    std::uint64_t h = h0;
    for (std::size_t k = 0; k < ds.size(); ++k) {
      const std::size_t s = ds[k];
      const auto value = static_cast<math::Int>(row[s]);
      // Invariant-guided rejection: a successor that would push a species
      // past its conservation-law bound cannot be reachable, so it is
      // dropped before hashing completes or the store is probed. On exact
      // exploration the bounds hold on every successor of a reachable
      // config, so this never fires — which is what keeps guided runs
      // bit-identical — but it is what makes truncated or speculative
      // exploration modes safe to guide.
      if (bounds != nullptr && bounds[s] >= 0 && value + dv[k] > bounds[s]) {
        return;
      }
      h ^= store.elem_hash(s, value);
      h ^= store.elem_hash(s, value + dv[k]);
    }
    out.push_back({u, static_cast<std::int32_t>(j), h,
                   ConfigStore::kDroppedHandle});
  };
  const auto generate_node = [&](std::int32_t u,
                                 std::vector<Candidate>& out) {
    const ConfigStore::Count* row = store.view(u);
    const std::uint64_t h0 = store.id_hash(u);
    if (use_masks) {
      std::uint64_t m = app_mask[static_cast<std::size_t>(u)];
      while (m != 0) {
        const auto j =
            static_cast<std::size_t>(__builtin_ctzll(m));
        m &= m - 1;
        emit_candidate(u, row, h0, j, out);
      }
      return;
    }
    for (std::size_t j = 0; j < n_reactions; ++j) {
      if (!net.applicable(j, row)) continue;
      emit_candidate(u, row, h0, j, out);
    }
  };

  // Interns candidate `cand`: the configuration is described as (source
  // row, reaction delta) and only materialized by the store when it turns
  // out to be new. Records (src, reaction) when it creates the entry.
  const auto intern_candidate =
      [&](Candidate& cand, bool budget_full,
          std::vector<std::pair<std::int32_t, std::int32_t>>& parents) {
        const auto j = static_cast<std::size_t>(cand.reaction);
        const auto ds = net.delta_species(j);
        const auto dv = net.delta_values(j);
        const ConfigStore::Count* base = store.view(cand.src);
        if (budget_full) {
          cand.handle = store.find_delta(cand.hash, base, ds.begin(),
                                         dv.begin(), ds.size());
        } else {
          const auto staged = store.stage_delta(cand.hash, base, ds.begin(),
                                                dv.begin(), ds.size());
          cand.handle = staged.handle;
          if (staged.created) parents.push_back({cand.src, cand.reaction});
        }
      };

  // Reused across levels. gen_done[k] publishes slice k's candidate
  // buckets to the shard drains; flows carry the per-shard intern cursors.
  std::vector<SliceBuf> bufs;
  std::array<ShardFlow, kShards> flows;
  const std::size_t max_slices =
      static_cast<std::size_t>(threads) * kSlicesPerThread;
  std::vector<std::atomic<std::uint8_t>> gen_done(
      std::max<std::size_t>(max_slices, 1));

  // Snapshots the current level boundary; all explorer state is in flat
  // arrays here, and determinism makes a resume from this file converge
  // to the bit-identical graph.
  const auto save_ckpt = [&]() {
    ExploreCheckpointView view;
    view.crn_hash = crn_fp;
    view.initial_hash = root_hash;
    view.width = width;
    view.max_configs = options.max_configs;
    view.level_begin = static_cast<std::uint64_t>(level_begin);
    view.level_end = static_cast<std::uint64_t>(level_end);
    view.levels = graph.stats.levels;
    view.frontier_peak = graph.stats.frontier_peak;
    view.complete = graph.complete ? 1 : 0;
    view.pool = &store.pool();
    view.id_hash = &store.id_hashes();
    view.succ_off = &graph.succ_off;
    view.succ = &graph.succ;
    view.parent = &graph.parent;
    view.parent_reaction = &graph.parent_reaction;
    if (graph.spill) {
      // Evicted pages read as poison in the arena vector; stream the
      // true bytes (resident memcpy, spilled pages from their segments)
      // so the checkpoint file is byte-identical to an in-RAM save.
      view.read_pool_rows = [&graph](std::size_t first_row,
                                     std::size_t n_rows,
                                     ConfigStore::Count* dst) {
        graph.spill->read_rows(first_row, n_rows, dst);
      };
    }
    obs::Span ckpt_span("verify.checkpoint");
    (void)save_checkpoint(options.checkpoint_path, view);
  };

  auto last_ckpt = std::chrono::steady_clock::now();
  while (level_begin < level_end) {
    if (options.cancel != nullptr && options.cancel->expired()) {
      // Stop at the level boundary: save a resume point first (the CSR
      // offsets still mark exactly the expanded prefix), then pad the
      // offsets so unexpanded nodes read as successor-free — the graph
      // stays structurally valid, just incomplete. The checkpoint keeps
      // the pre-cancel completeness: stopping early is recoverable on
      // resume, only budget truncation is not.
      graph.cancelled = true;
      if (!options.checkpoint_path.empty()) save_ckpt();
      graph.complete = false;
      while (graph.succ_off.size() < store.size() + 1) {
        graph.succ_off.push_back(graph.succ.size());
      }
      break;
    }
    const std::size_t level_nodes =
        static_cast<std::size_t>(level_end - level_begin);
    graph.stats.frontier_peak =
        std::max(graph.stats.frontier_peak, level_nodes);
    ++graph.stats.levels;
    metrics.levels.inc();
    obs::Span level_span("verify.level");
    level_span.arg("level",
                   static_cast<std::int64_t>(graph.stats.levels - 1));
    level_span.arg("frontier", static_cast<std::int64_t>(level_nodes));
    const bool budget_full = store.size() >= options.max_configs;
    // Slice count for this level. The graph is identical for any value:
    // candidate order is (node, reaction) regardless of slicing, and
    // per-shard staging order is that order filtered to the shard.
    const bool parallel =
        threads > 1 && level_nodes >= kMinParallelFrontier;
    const std::size_t n_slices =
        parallel ? std::min<std::size_t>(
                       max_slices,
                       std::max<std::size_t>(1, level_nodes / kMinSliceNodes))
                 : 1;
    if (bufs.size() < n_slices) bufs.resize(n_slices);
    const std::size_t chunk =
        (level_nodes + n_slices - 1) / n_slices;
    for (ShardFlow& flow : flows) {
      flow.next_slice = 0;
      flow.parents.clear();
    }
    for (std::size_t k = 0; k < n_slices; ++k) {
      gen_done[k].store(0, std::memory_order_relaxed);
    }

    // Interns every not-yet-drained bucket of shard s whose slice has
    // finished generating. try_lock keeps generators moving when another
    // worker already owns the shard; the final sweep below (all slices
    // done) picks up whatever the opportunistic passes left behind. A
    // staggered prefetch pipeline hides the table's and the arena's DRAM
    // latency behind real interning work.
    const auto drain_shard = [&](int s, bool blocking) {
      ShardFlow& flow = flows[static_cast<std::size_t>(s)];
      std::unique_lock<std::mutex> lk(flow.mu, std::defer_lock);
      if (blocking) {
        lk.lock();
      } else if (!lk.try_lock()) {
        return;
      }
      std::uint32_t k = flow.next_slice;
      while (k < n_slices &&
             gen_done[k].load(std::memory_order_acquire) != 0) {
        SliceBuf& buf = bufs[k];
        const auto& list = buf.by_shard[static_cast<std::size_t>(s)];
        for (std::size_t i = 0; i < list.size(); ++i) {
#if defined(__GNUC__) || defined(__clang__)
          // Four-distance pipeline: candidate struct, its probe slot,
          // its source row, and the row it will be compared against
          // each get a full DRAM round-trip of lead time.
          if (i + 2 * kPrefetchAhead < list.size()) {
            __builtin_prefetch(&buf.cands[list[i + 2 * kPrefetchAhead]]);
          }
          if (i + kPrefetchAhead < list.size()) {
            store.prefetch(buf.cands[list[i + kPrefetchAhead]].hash);
          }
          if (i + kPrefetchAhead / 2 + 2 < list.size()) {
            __builtin_prefetch(store.view(
                buf.cands[list[i + kPrefetchAhead / 2 + 2]].src));
          }
          if (i + kPrefetchAhead / 2 < list.size()) {
            store.prefetch_row(
                buf.cands[list[i + kPrefetchAhead / 2]].hash);
          }
#endif
          intern_candidate(buf.cands[list[i]], budget_full, flow.parents);
        }
        ++k;
      }
      flow.next_slice = k;
    };

    // Generate: slices take contiguous frontier ranges, so the
    // concatenation of their buffers is exactly (node, reaction) order.
    // As soon as a slice's buckets are published, the generating worker
    // pipelines into interning whatever shards are free — candidates flow
    // to shard owners per chunk, not at a level barrier.
    const auto generate_slice = [&](std::size_t k) {
      SliceBuf& buf = bufs[k];
      buf.cands.clear();
      for (auto& v : buf.by_shard) v.clear();
      buf.lo = level_begin +
               static_cast<std::int32_t>(k * chunk);
      buf.hi = std::min<std::int32_t>(
          level_end, buf.lo + static_cast<std::int32_t>(chunk));
      buf.lo = std::min(buf.lo, buf.hi);
      for (std::int32_t u = buf.lo; u < buf.hi; ++u) {
        generate_node(u, buf.cands);
      }
      for (std::uint32_t i = 0;
           i < static_cast<std::uint32_t>(buf.cands.size()); ++i) {
        buf.by_shard[static_cast<std::size_t>(
                         ConfigStore::shard_of(buf.cands[i].hash))]
            .push_back(i);
      }
      gen_done[k].store(1, std::memory_order_release);
      for (int s = 0; s < kShards; ++s) drain_shard(s, /*blocking=*/false);
    };

    {
      obs::Span generate_span("verify.generate");
      if (!parallel) {
        generate_slice(0);
        // generate_slice already drained every shard (single thread, no
        // contention), but keep the sweep for the empty-bucket cursors.
        for (int s = 0; s < kShards; ++s) drain_shard(s, /*blocking=*/true);
      } else {
        pool.parallel_for(n_slices, 1, generate_slice, threads);
        // Finish the pipeline: every slice is generated now, so a blocking
        // sweep (sharded across tasks, one owner per shard) interns every
        // bucket the opportunistic drains skipped over.
        pool.parallel_for(
            kShards, 8, [&](std::size_t s) {
              drain_shard(static_cast<int>(s), /*blocking=*/true);
            },
            threads);
      }
    }

    // Number the level: ids are consecutive in (shard, stage-order)
    // order, capped by the node budget.
    const std::size_t before = store.size();
    const std::size_t remaining =
        options.max_configs > before ? options.max_configs - before : 0;
    std::size_t accepted = 0;
    {
      obs::Span commit_span("verify.commit");
      accepted = store.commit(remaining);
      for (int s = 0; s < kShards; ++s) {
        const auto& parents = flows[static_cast<std::size_t>(s)].parents;
        for (std::size_t local = 0; local < parents.size(); ++local) {
          if (store.committed_id(s, local) < 0) break;  // rejects: a suffix
          graph.parent.push_back(parents[local].first);
          graph.parent_reaction.push_back(parents[local].second);
        }
      }
      commit_span.arg("accepted", static_cast<std::int64_t>(accepted));
    }
    ensure(graph.parent.size() == store.size(),
           "explore: parent/id bookkeeping diverged");
    metrics.configs.inc(accepted);
    if (use_masks) {
      obs::Span mask_span("verify.mask");
      // A new node's applicability differs from its parent's only on the
      // dependents of the reaction that produced it. Parents always sit in
      // an earlier level, so the new rows are independent of each other
      // and safe to compute in parallel.
      app_mask.resize(store.size());
      const auto mask_node = [&](std::size_t id_off) {
        mask_from_parent(before + id_off);
      };
      if (parallel && accepted >= kMinParallelFrontier) {
        pool.parallel_for(accepted, 4096, mask_node, threads);
      } else {
        for (std::size_t i = 0; i < accepted; ++i) mask_node(i);
      }
    }

    // Edges: each slice resolves its own candidates in (node, reaction)
    // order into a local CSR piece, deduplicating successors per node; a
    // candidate dropped by the budget leaves the graph incomplete. The
    // pieces are stitched in slice order, preserving id order.
    const auto edge_slice = [&](std::size_t k) {
      SliceBuf& buf = bufs[k];
      buf.succ.clear();
      buf.succ_end.clear();
      buf.saw_dropped = false;
      std::size_t next_cand = 0;
      for (std::int32_t u = buf.lo; u < buf.hi; ++u) {
        const std::size_t node_start = buf.succ.size();
        while (next_cand < buf.cands.size() &&
               buf.cands[next_cand].src == u) {
          const std::int32_t id =
              store.resolve(buf.cands[next_cand].handle);
          ++next_cand;
          if (id < 0) {
            buf.saw_dropped = true;
            continue;
          }
          bool seen = false;
          for (std::size_t i = node_start; i < buf.succ.size(); ++i) {
            if (buf.succ[i] == id) {
              seen = true;
              break;
            }
          }
          if (!seen) buf.succ.push_back(id);
        }
        buf.succ_end.push_back(static_cast<std::uint32_t>(buf.succ.size()));
      }
    };
    {
      obs::Span edges_span("verify.edges");
      const std::size_t edges_before = graph.succ.size();
      if (!parallel) {
        edge_slice(0);
      } else {
        pool.parallel_for(n_slices, 1, edge_slice, threads);
      }
      for (std::size_t k = 0; k < n_slices; ++k) {
        const SliceBuf& buf = bufs[k];
        const std::uint64_t base = graph.succ.size();
        graph.succ.insert(graph.succ.end(), buf.succ.begin(), buf.succ.end());
        for (const std::uint32_t end : buf.succ_end) {
          graph.succ_off.push_back(base + end);
        }
        if (buf.saw_dropped) graph.complete = false;
      }
      const std::size_t level_edges = graph.succ.size() - edges_before;
      edges_span.arg("edges", static_cast<std::int64_t>(level_edges));
      metrics.edges.inc(level_edges);
    }

    store.finish_level();
    level_begin = static_cast<std::int32_t>(before);
    level_end = static_cast<std::int32_t>(before + accepted);

    if (graph.spill) {
      // A fault-back that failed on a worker thread left garbage in some
      // compare; everything staged since is suspect, so the whole
      // exploration is discarded here, at the barrier — a typed,
      // retriable failure, never a truncated or wrong graph.
      if (graph.spill->io_error()) {
        throw SpillError(
            "spill: segment read failed during exploration; "
            "proof discarded (retriable)");
      }
      // Shed toward the budget: everything below the new frontier is
      // frozen (BFS successors land at distance +-1 of their source, so
      // rows >= level_begin are the only ones still written or read as
      // generation sources; older rows are only touched via rare
      // hash-tag collisions, which ensure_row faults back on demand).
      const std::size_t aux_bytes =
          graph.succ.capacity() * sizeof(std::int32_t) +
          graph.succ_off.capacity() * sizeof(std::uint64_t) +
          graph.parent.capacity() * sizeof(std::int32_t) +
          graph.parent_reaction.capacity() * sizeof(std::int32_t) +
          app_mask.capacity() * sizeof(std::uint64_t);
      const std::size_t resident =
          store.bytes() + aux_bytes - graph.spill->evicted_bytes();
      if (resident > options.memory_budget_bytes) {
        graph.spill->shed(resident - options.memory_budget_bytes,
                          static_cast<std::size_t>(level_begin),
                          store.size());
      }
    }

    if (!options.checkpoint_path.empty() && level_begin < level_end) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_ckpt).count() >=
          options.checkpoint_every_secs) {
        save_ckpt();
        last_ckpt = now;
      }
    }
  }

  ensure(graph.succ_off.size() == store.size() + 1,
         "explore: CSR offsets diverged from node count");
  if (graph.spill) {
    if (graph.spill->io_error()) {
      throw SpillError(
          "spill: segment read failed during exploration; "
          "proof discarded (retriable)");
    }
    const SpillPool::Stats spill_stats = graph.spill->stats();
    graph.stats.spilled = graph.spill->spilled();
    graph.stats.spill_segments_written = spill_stats.segments_written;
    graph.stats.spill_segments_read = spill_stats.segments_read;
    graph.stats.spill_bytes_written = spill_stats.bytes_written;
    graph.stats.spill_bytes_read = spill_stats.bytes_read;
  }
  graph.stats.arena_bytes = store.bytes();
  const util::TaskPool::Counters scoped = pool_scope.collected();
  graph.stats.pool_tasks = scoped.tasks;
  graph.stats.pool_steals = scoped.steals;
  graph.stats.pool_parks = pool.counters().parks - parks_before;
  graph.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  metrics.explorations.inc();
  metrics.seconds.observe(graph.stats.wall_seconds);
  explore_span.arg("configs", static_cast<std::int64_t>(graph.size()));
  explore_span.arg("edges", static_cast<std::int64_t>(graph.edge_count()));
  explore_span.arg("levels", static_cast<std::int64_t>(graph.stats.levels));
  return graph;
}

std::vector<int> path_from_root(const ReachabilityGraph& graph, int node) {
  require(node >= 0 && static_cast<std::size_t>(node) < graph.size(),
          "path_from_root: bad node");
  std::vector<int> reactions;
  int current = node;
  while (graph.parent[static_cast<std::size_t>(current)] != -1) {
    reactions.push_back(
        graph.parent_reaction[static_cast<std::size_t>(current)]);
    current = graph.parent[static_cast<std::size_t>(current)];
  }
  std::reverse(reactions.begin(), reactions.end());
  return reactions;
}

std::optional<int> find_output_exceeding(const crn::Crn& crn,
                                         const ReachabilityGraph& graph,
                                         math::Int bound) {
  const auto y = static_cast<std::size_t>(crn.output_or_throw());
  // Gather the output column once: in-RAM this is a strided sweep of the
  // arena; under spill it streams evicted pages from their segments
  // without re-materializing the arena.
  std::vector<ConfigStore::Count> column;
  graph.store.collect_column(y, column);
  for (std::size_t i = 0; i < column.size(); ++i) {
    if (column[i] > bound) return static_cast<int>(i);
  }
  return std::nullopt;
}

}  // namespace crnkit::verify
