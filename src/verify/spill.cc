#include "verify/spill.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "math/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/posix_io.h"

namespace crnkit::verify {

namespace {

constexpr char kMagic[8] = {'C', 'R', 'N', 'K', 'S', 'P', 'L', '1'};
constexpr std::uint64_t kSchema = 1;

/// Same rolling checksum discipline as the checkpoint format: one
/// splitmix64 round per 8-byte chunk, chained (distinct seed so a
/// segment can never masquerade as a checkpoint).
class Checksum {
 public:
  void feed(const void* data, std::size_t len) {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const std::size_t take =
          len < sizeof(buf_) - fill_ ? len : sizeof(buf_) - fill_;
      std::memcpy(buf_ + fill_, p, take);
      fill_ += take;
      p += take;
      len -= take;
      if (fill_ == sizeof(buf_)) flush_chunk();
    }
  }

  [[nodiscard]] std::uint64_t finish() {
    if (fill_ > 0) {
      std::memset(buf_ + fill_, 0, sizeof(buf_) - fill_);
      flush_chunk();
    }
    return state_;
  }

 private:
  void flush_chunk() {
    std::uint64_t chunk;
    std::memcpy(&chunk, buf_, sizeof(chunk));
    state_ = splitmix64(state_ ^ chunk);
    fill_ = 0;
  }

  std::uint64_t state_ = 0x73706c6c73656731ULL;
  char buf_[8];
  std::size_t fill_ = 0;
};

struct SpillMetrics {
  obs::Counter& segments_written = obs::Registry::instance().counter(
      "crnkit_spill_segments_written_total",
      "Arena pages written to spill segment files");
  obs::Counter& segments_read = obs::Registry::instance().counter(
      "crnkit_spill_segments_read_total",
      "Spill segments faulted back or streamed from disk");
  obs::Counter& bytes_written = obs::Registry::instance().counter(
      "crnkit_spill_bytes_written_total",
      "Arena payload bytes written to spill segments");
  obs::Counter& bytes_read = obs::Registry::instance().counter(
      "crnkit_spill_bytes_read_total",
      "Arena payload bytes read back from spill segments");
  obs::Histogram& fault_seconds = obs::Registry::instance().histogram(
      "crnkit_spill_fault_seconds",
      "Latency of faulting one evicted page back from its segment",
      obs::latency_buckets_seconds());

  static SpillMetrics& get() {
    static SpillMetrics m;
    return m;
  }
};

/// Releases the physical memory behind [data, data + len): DONTNEED on
/// the OS pages fully inside the range (edges shared with neighbouring
/// allocations stay resident — correctness never depends on the memory
/// actually being released, only the budget accounting does).
void release_range(void* data, std::size_t len) {
#if defined(__linux__)
  const long page = ::sysconf(_SC_PAGESIZE);
  const auto ps = static_cast<std::uintptr_t>(page > 0 ? page : 4096);
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (addr + ps - 1) & ~(ps - 1);
  const std::uintptr_t hi = (addr + len) & ~(ps - 1);
  if (hi > lo) {
    (void)madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_DONTNEED);
  }
#else
  (void)data;
  (void)len;
#endif
}

std::uint64_t next_run_tag() {
  static std::atomic<std::uint64_t> seq{0};
  return seq.fetch_add(1, std::memory_order_relaxed);
}

bool read_exact(std::FILE* f, void* data, std::size_t len, Checksum* sum) {
  if (len > 0 && std::fread(data, 1, len, f) != len) return false;
  if (sum != nullptr) sum->feed(data, len);
  return true;
}

}  // namespace

SpillPool::SpillPool(ConfigStore& store, std::size_t max_configs,
                     const Options& options)
    : store_(store), options_(options), width_(store.width()) {
  require(!options_.dir.empty(), "SpillPool: empty spill directory");
  ::mkdir(options_.dir.c_str(), 0755);  // best effort; open errors surface

  const std::size_t row_bytes = width_ * sizeof(ConfigStore::Count);
  std::size_t rows = 1;
  rows_log2_ = 0;
  while (rows * row_bytes * 2 <= options_.page_bytes) {
    rows <<= 1;
    ++rows_log2_;
  }
  n_pages_ = (max_configs + rows - 1) / rows + 1;
  states_ = std::make_unique<std::atomic<int>[]>(n_pages_);
  for (std::size_t p = 0; p < n_pages_; ++p) {
    states_[p].store(kResident, std::memory_order_relaxed);
  }
  has_segment_.assign(n_pages_, false);
  run_tag_ = (static_cast<std::uint64_t>(::getpid()) << 20) | next_run_tag();

  require(store_.pool_.capacity() >= max_configs * width_,
          "SpillPool: arena not fully reserved");
  base_ = store_.pool_.data();
}

SpillPool::~SpillPool() {
  for (std::size_t p = 0; p < n_pages_; ++p) {
    if (has_segment_[p]) ::unlink(segment_path(p).c_str());
  }
}

ConfigStore::Count* SpillPool::page_data(std::size_t page) {
  return base_ + page * rows_per_page() * width_;
}

std::string SpillPool::segment_path(std::size_t page) const {
  return options_.dir + "/spill-" + std::to_string(run_tag_) + "-p" +
         std::to_string(page) + ".seg";
}

void SpillPool::write_segment(std::size_t page) {
  const std::string path = segment_path(page);
  util::FaultedFileWriter writer(path, "spill.write");
  Checksum sum;
  const auto put = [&](const void* data, std::size_t len) {
    sum.feed(data, len);
    return writer.write(data, len);
  };
  const auto put_u64 = [&](std::uint64_t v) { return put(&v, sizeof(v)); };

  const std::uint64_t payload = page_arena_bytes();
  bool ok = writer.write(kMagic, sizeof(kMagic));  // magic is not summed
  ok = ok && put_u64(kSchema) && put_u64(page) && put_u64(payload);
  ok = ok && put(page_data(page), payload);
  if (ok) {
    const std::uint64_t checksum = sum.finish();
    ok = writer.write(&checksum, sizeof(checksum));
  }
  if (!ok || !writer.commit()) {
    throw SpillError("spill: segment write failed for " + path +
                     " (disk full or I/O error)");
  }
  auto& m = SpillMetrics::get();
  m.segments_written.inc();
  m.bytes_written.inc(payload);
  stats_segments_written_.fetch_add(1, std::memory_order_relaxed);
  stats_bytes_written_.fetch_add(payload, std::memory_order_relaxed);
}

bool SpillPool::read_segment(std::size_t page, ConfigStore::Count* dst,
                             std::string* error) {
  const std::string path = segment_path(page);
  if (util::FaultInjector::instance().armed() &&
      util::FaultInjector::instance().fires("spill.read")) {
    if (error != nullptr) *error = "spill: injected read fault for " + path;
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "spill: cannot open segment " + path;
    return false;
  }
  Checksum sum;
  char magic[8];
  std::uint64_t header[3] = {};
  bool ok = read_exact(f, magic, sizeof(magic), nullptr) &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  ok = ok && read_exact(f, header, sizeof(header), &sum);
  ok = ok && header[0] == kSchema && header[1] == page &&
       header[2] == page_arena_bytes();
  ok = ok && read_exact(f, dst, page_arena_bytes(), &sum);
  std::uint64_t stored = 0;
  ok = ok && read_exact(f, &stored, sizeof(stored), nullptr);
  std::fclose(f);
  if (!ok || sum.finish() != stored) {
    if (error != nullptr) {
      *error = "spill: segment " + path + " is truncated or corrupt";
    }
    return false;
  }
  auto& m = SpillMetrics::get();
  m.segments_read.inc();
  m.bytes_read.inc(page_arena_bytes());
  stats_segments_read_.fetch_add(1, std::memory_order_relaxed);
  stats_bytes_read_.fetch_add(page_arena_bytes(), std::memory_order_relaxed);
  return true;
}

void SpillPool::fault_in(std::size_t page) {
  obs::Span span("verify.spill.fault");
  span.arg("page", static_cast<std::int64_t>(page));
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (states_[page].load(std::memory_order_relaxed) != kEvicted) return;
  std::string error;
  if (!read_segment(page, page_data(page), &error)) {
    // Worker threads cannot throw; poison the flag and let the level
    // barrier discard the exploration with a typed SpillError.
    io_error_.store(true, std::memory_order_release);
    return;
  }
  evicted_pages_.fetch_sub(1, std::memory_order_relaxed);
  // Release-store pairs with ensure_row's acquire load: a reader that
  // sees kClean sees the freshly-read page bytes.
  states_[page].store(kClean, std::memory_order_release);
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  SpillMetrics::get().fault_seconds.observe(dt.count());
}

void SpillPool::shed(std::size_t release_bytes, std::size_t keep_from_row,
                     std::size_t committed_rows) {
  if (release_bytes == 0) return;
  require(store_.pool_.data() == base_,
          "SpillPool: arena reallocated under an active spill pool");
  obs::Span span("verify.spill.shed");
  const std::size_t rows = rows_per_page();
  const std::size_t frozen_rows =
      keep_from_row < committed_rows ? keep_from_row : committed_rows;
  std::size_t released = 0;
  std::size_t evicted = 0;
  for (std::size_t page = 0; page < n_pages_ && released < release_bytes;
       ++page) {
    if ((page + 1) * rows > frozen_rows) break;  // page not fully frozen
    const int state = states_[page].load(std::memory_order_relaxed);
    if (state == kEvicted) continue;
    if (state == kResident) write_segment(page);
    // Deterministic poison before release: any read that skips
    // ensure_row() sees garbage instead of silently-stale bytes, so the
    // bit-identity tests catch missed fault-in sites.
    std::memset(page_data(page), 0xA5, page_arena_bytes());
    release_range(page_data(page), page_arena_bytes());
    {
      std::lock_guard<std::mutex> lock(mu_);
      has_segment_[page] = true;
      states_[page].store(kEvicted, std::memory_order_release);
    }
    evicted_pages_.fetch_add(1, std::memory_order_relaxed);
    released += page_arena_bytes();
    ++evicted;
  }
  span.arg("pages", static_cast<std::int64_t>(evicted));
  span.arg("bytes", static_cast<std::int64_t>(released));
}

void SpillPool::read_rows(std::size_t first_row, std::size_t n_rows,
                          ConfigStore::Count* dst) {
  const std::size_t rows = rows_per_page();
  std::vector<ConfigStore::Count> scratch;
  std::size_t row = first_row;
  while (row < first_row + n_rows) {
    const std::size_t page = row >> rows_log2_;
    const std::size_t page_end = (page + 1) * rows;
    const std::size_t end =
        page_end < first_row + n_rows ? page_end : first_row + n_rows;
    const std::size_t count = end - row;
    if (states_[page].load(std::memory_order_acquire) != kEvicted) {
      std::memcpy(dst, base_ + row * width_,
                  count * width_ * sizeof(ConfigStore::Count));
    } else {
      if (scratch.empty()) scratch.resize(rows * width_);
      std::string error;
      if (!read_segment(page, scratch.data(), &error)) throw SpillError(error);
      std::memcpy(dst, scratch.data() + (row - page * rows) * width_,
                  count * width_ * sizeof(ConfigStore::Count));
    }
    dst += count * width_;
    row = end;
  }
}

void SpillPool::collect_column(std::size_t species, ConfigStore::Count* out,
                               std::size_t n_rows) {
  const std::size_t rows = rows_per_page();
  std::vector<ConfigStore::Count> scratch;
  for (std::size_t page = 0; page * rows < n_rows; ++page) {
    const std::size_t begin = page * rows;
    const std::size_t end = begin + rows < n_rows ? begin + rows : n_rows;
    const ConfigStore::Count* src;
    if (states_[page].load(std::memory_order_acquire) != kEvicted) {
      src = base_ + begin * width_;
    } else {
      if (scratch.empty()) scratch.resize(rows * width_);
      std::string error;
      if (!read_segment(page, scratch.data(), &error)) throw SpillError(error);
      src = scratch.data();
    }
    for (std::size_t row = begin; row < end; ++row) {
      out[row] = src[(row - begin) * width_ + species];
    }
  }
}

SpillPool::Stats SpillPool::stats() const {
  Stats s;
  s.segments_written = stats_segments_written_.load(std::memory_order_relaxed);
  s.segments_read = stats_segments_read_.load(std::memory_order_relaxed);
  s.bytes_written = stats_bytes_written_.load(std::memory_order_relaxed);
  s.bytes_read = stats_bytes_read_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace crnkit::verify
