#include "verify/witness.h"

#include <sstream>

#include "geom/arrangement.h"
#include "math/check.h"

namespace crnkit::verify {

using fn::Point;
using math::Int;

namespace {

Point scaled(const Point& u, Int c) {
  Point out(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    out[i] = math::checked_mul(u[i], c);
  }
  return out;
}

Point added(const Point& a, const Point& b) {
  Point out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = math::checked_add(a[i], b[i]);
  }
  return out;
}

bool is_zero_point(const Point& p) {
  for (const Int v : p) {
    if (v != 0) return false;
  }
  return true;
}

}  // namespace

std::string Lemma41Witness::to_string() const {
  std::ostringstream os;
  os << "a_i = i*" << math::to_string(math::to_rational(u))
     << ", Delta_ij = j*" << math::to_string(math::to_rational(v))
     << " (verified for all 1<=i<j<=" << prefix_checked << ")";
  return os.str();
}

bool check_linear_family(const fn::DiscreteFunction& f, const Point& u,
                         const Point& v, int prefix) {
  require(static_cast<int>(u.size()) == f.dimension() &&
              static_cast<int>(v.size()) == f.dimension(),
          "check_linear_family: dimension mismatch");
  require(prefix >= 2, "check_linear_family: prefix must be >= 2");
  for (int i = 1; i < prefix; ++i) {
    const Point ai = scaled(u, i);
    for (int j = i + 1; j <= prefix; ++j) {
      const Point aj = scaled(u, j);
      const Point delta = scaled(v, j);
      const Int lhs = f(added(ai, delta)) - f(ai);
      const Int rhs = f(added(aj, delta)) - f(aj);
      if (!(lhs > rhs)) return false;
    }
  }
  return true;
}

std::optional<Lemma41Witness> find_lemma41_witness(
    const fn::DiscreteFunction& f, Int max_entry, int prefix) {
  std::optional<Lemma41Witness> found;
  geom::for_each_grid_point(
      f.dimension(), max_entry, [&](const std::vector<Int>& u) {
        if (found || is_zero_point(u)) return;
        geom::for_each_grid_point(
            f.dimension(), max_entry, [&](const std::vector<Int>& v) {
              if (found || is_zero_point(v)) return;
              if (check_linear_family(f, u, v, prefix)) {
                found = Lemma41Witness{u, v, prefix};
              }
            });
      });
  return found;
}

std::string DifferenceReversal::to_string() const {
  std::ostringstream os;
  os << "f(a+d)-f(a) > f(b+d)-f(b) with a="
     << math::to_string(math::to_rational(a))
     << " b=" << math::to_string(math::to_rational(b))
     << " d=" << math::to_string(math::to_rational(delta));
  return os.str();
}

std::optional<DifferenceReversal> find_difference_reversal(
    const fn::DiscreteFunction& f, Int grid_max) {
  std::optional<DifferenceReversal> found;
  geom::for_each_grid_point(
      f.dimension(), grid_max, [&](const std::vector<Int>& a) {
        if (found) return;
        geom::for_each_grid_point(
            f.dimension(), grid_max, [&](const std::vector<Int>& b) {
              if (found) return;
              for (std::size_t i = 0; i < a.size(); ++i) {
                if (a[i] > b[i]) return;  // need a <= b
              }
              geom::for_each_grid_point(
                  f.dimension(), grid_max,
                  [&](const std::vector<Int>& delta) {
                    if (found || is_zero_point(delta)) return;
                    const Int lhs = f(added(a, delta)) - f(a);
                    const Int rhs = f(added(b, delta)) - f(b);
                    if (lhs > rhs) {
                      found = DifferenceReversal{a, b, delta};
                    }
                  });
            });
      });
  return found;
}

}  // namespace crnkit::verify
