#include "verify/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "util/posix_io.h"

namespace crnkit::verify {

namespace {

constexpr char kMagic[8] = {'C', 'R', 'N', 'K', 'C', 'K', 'P', '1'};

/// Rolling checksum over the payload: one splitmix64 round per 8-byte
/// chunk (zero-padded tail), chained through the running state.
class Checksum {
 public:
  void feed(const void* data, std::size_t len) {
    const char* p = static_cast<const char*>(data);
    // Carry partial chunks across feed() calls so the checksum depends
    // only on the byte stream, not on write granularity.
    while (len > 0) {
      const std::size_t take =
          len < sizeof(buf_) - fill_ ? len : sizeof(buf_) - fill_;
      std::memcpy(buf_ + fill_, p, take);
      fill_ += take;
      p += take;
      len -= take;
      if (fill_ == sizeof(buf_)) flush_chunk();
    }
  }

  [[nodiscard]] std::uint64_t finish() {
    if (fill_ > 0) {
      std::memset(buf_ + fill_, 0, sizeof(buf_) - fill_);
      flush_chunk();
    }
    return state_;
  }

 private:
  void flush_chunk() {
    std::uint64_t chunk;
    std::memcpy(&chunk, buf_, sizeof(chunk));
    state_ = splitmix64(state_ ^ chunk);
    fill_ = 0;
  }

  std::uint64_t state_ = 0x6b63686b70743176ULL;
  char buf_[8];
  std::size_t fill_ = 0;
};

void fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

bool read_exact(std::FILE* f, void* data, std::size_t len, Checksum* sum) {
  if (len > 0 && std::fread(data, 1, len, f) != len) return false;
  if (sum != nullptr) sum->feed(data, len);
  return true;
}

}  // namespace

std::uint64_t concrete_crn_fingerprint(const crn::Crn& crn) {
  std::uint64_t h = splitmix64(crn.species_count());
  const auto feed = [&h](std::uint64_t v) { h = splitmix64(h ^ v); };
  for (const crn::Reaction& r : crn.reactions()) {
    for (const crn::Term& t : r.reactants()) {
      feed(static_cast<std::uint64_t>(t.species) * 2 + 1);
      feed(static_cast<std::uint64_t>(t.count));
    }
    feed(0x9e3779b97f4a7c15ULL);  // reactants | products separator
    for (const crn::Term& t : r.products()) {
      feed(static_cast<std::uint64_t>(t.species) * 2 + 1);
      feed(static_cast<std::uint64_t>(t.count));
    }
    feed(0xc2b2ae3d27d4eb4fULL);  // reaction separator
  }
  return h;
}

bool save_checkpoint(const std::string& path,
                     const ExploreCheckpointView& ckpt, std::string* error) {
  util::FaultedFileWriter writer(path, "checkpoint.save");
  Checksum sum;
  const auto put = [&](const void* data, std::size_t len) {
    sum.feed(data, len);
    return writer.write(data, len);
  };
  const auto put_u64 = [&](std::uint64_t v) { return put(&v, sizeof(v)); };

  bool ok = writer.write(kMagic, sizeof(kMagic));  // magic is not summed
  ok = ok && put_u64(ckpt.crn_hash) && put_u64(ckpt.initial_hash) &&
       put_u64(ckpt.width) && put_u64(ckpt.max_configs) &&
       put_u64(ckpt.level_begin) && put_u64(ckpt.level_end) &&
       put_u64(ckpt.levels) && put_u64(ckpt.frontier_peak) &&
       put_u64(ckpt.complete);
  ok = ok && put_u64(ckpt.pool->size()) && put_u64(ckpt.id_hash->size()) &&
       put_u64(ckpt.succ_off->size()) && put_u64(ckpt.succ->size()) &&
       put_u64(ckpt.parent->size()) && put_u64(ckpt.parent_reaction->size());
  if (ckpt.read_pool_rows && ckpt.width > 0) {
    // Stream the arena in bounded chunks: under out-of-core exploration
    // parts of `pool` live in spill segments, and the reader reassembles
    // the true bytes without faulting the whole arena back in.
    const std::size_t n_rows = ckpt.pool->size() / ckpt.width;
    std::size_t chunk_rows = (std::size_t{4} << 20) /
                             (ckpt.width * sizeof(ConfigStore::Count));
    if (chunk_rows == 0) chunk_rows = 1;
    std::vector<ConfigStore::Count> scratch(chunk_rows * ckpt.width);
    for (std::size_t row = 0; ok && row < n_rows; row += chunk_rows) {
      const std::size_t take =
          row + chunk_rows < n_rows ? chunk_rows : n_rows - row;
      ckpt.read_pool_rows(row, take, scratch.data());
      ok = put(scratch.data(),
               take * ckpt.width * sizeof(ConfigStore::Count));
    }
  } else {
    ok = ok && put(ckpt.pool->data(),
                   ckpt.pool->size() * sizeof(ConfigStore::Count));
  }
  ok = ok && put(ckpt.id_hash->data(),
                 ckpt.id_hash->size() * sizeof(std::uint64_t));
  ok = ok && put(ckpt.succ_off->data(),
                 ckpt.succ_off->size() * sizeof(std::uint64_t));
  ok = ok && put(ckpt.succ->data(), ckpt.succ->size() * sizeof(std::int32_t));
  ok = ok &&
       put(ckpt.parent->data(), ckpt.parent->size() * sizeof(std::int32_t));
  ok = ok && put(ckpt.parent_reaction->data(),
                 ckpt.parent_reaction->size() * sizeof(std::int32_t));
  if (ok) {
    const std::uint64_t checksum = sum.finish();
    ok = writer.write(&checksum, sizeof(checksum));
  }
  if (!ok || !writer.commit()) {
    fail(error, "checkpoint: write failed for " + path);
    return false;
  }
  return true;
}

bool load_checkpoint(const std::string& path, ExploreCheckpoint* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail(error, "checkpoint: cannot open " + path);
    return false;
  }
  Checksum sum;
  char magic[8];
  bool ok = read_exact(f, magic, sizeof(magic), nullptr) &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  std::uint64_t header[9] = {};
  std::uint64_t sizes[6] = {};
  ok = ok && read_exact(f, header, sizeof(header), &sum);
  ok = ok && read_exact(f, sizes, sizeof(sizes), &sum);
  // Sanity-bound the array sizes before allocating: a corrupt length
  // field must not turn into a 2^60-element resize.
  constexpr std::uint64_t kMaxElems = std::uint64_t{1} << 36;
  for (const std::uint64_t n : sizes) ok = ok && n <= kMaxElems;
  if (ok) {
    out->crn_hash = header[0];
    out->initial_hash = header[1];
    out->width = header[2];
    out->max_configs = header[3];
    out->level_begin = header[4];
    out->level_end = header[5];
    out->levels = header[6];
    out->frontier_peak = header[7];
    out->complete = static_cast<std::uint8_t>(header[8]);
    out->pool.resize(sizes[0]);
    out->id_hash.resize(sizes[1]);
    out->succ_off.resize(sizes[2]);
    out->succ.resize(sizes[3]);
    out->parent.resize(sizes[4]);
    out->parent_reaction.resize(sizes[5]);
    ok = read_exact(f, out->pool.data(),
                    out->pool.size() * sizeof(ConfigStore::Count), &sum) &&
         read_exact(f, out->id_hash.data(),
                    out->id_hash.size() * sizeof(std::uint64_t), &sum) &&
         read_exact(f, out->succ_off.data(),
                    out->succ_off.size() * sizeof(std::uint64_t), &sum) &&
         read_exact(f, out->succ.data(),
                    out->succ.size() * sizeof(std::int32_t), &sum) &&
         read_exact(f, out->parent.data(),
                    out->parent.size() * sizeof(std::int32_t), &sum) &&
         read_exact(f, out->parent_reaction.data(),
                    out->parent_reaction.size() * sizeof(std::int32_t), &sum);
  }
  std::uint64_t stored_checksum = 0;
  ok = ok && read_exact(f, &stored_checksum, sizeof(stored_checksum), nullptr);
  std::fclose(f);
  if (!ok || sum.finish() != stored_checksum) {
    fail(error, "checkpoint: " + path + " is truncated or corrupt");
    return false;
  }

  // Internal consistency: every per-node array must agree on the node
  // count, and the cursors must describe a frontier inside it.
  const std::uint64_t n = out->id_hash.size();
  if (out->pool.size() != n * out->width || out->parent.size() != n ||
      out->parent_reaction.size() != n ||
      out->succ_off.size() != out->level_begin + 1 ||
      out->level_begin > out->level_end || out->level_end > n ||
      (out->succ_off.empty() ? !out->succ.empty()
                             : out->succ_off.back() != out->succ.size())) {
    fail(error, "checkpoint: " + path + " has inconsistent array sizes");
    return false;
  }
  return true;
}

}  // namespace crnkit::verify
