#include "verify/stable.h"

#include <sstream>

#include "geom/arrangement.h"
#include "lint/guide.h"
#include "math/check.h"
#include "obs/trace.h"

namespace crnkit::verify {

namespace {

/// Iterative Tarjan SCC over the reachability graph's CSR adjacency.
/// Returns component id per node; components are numbered in reverse
/// topological order (every edge goes from a component to one with a
/// smaller or equal id... Tarjan numbers sinks first).
std::vector<int> tarjan_scc(const ReachabilityGraph& graph,
                            int& component_count) {
  const int n = static_cast<int>(graph.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> component(static_cast<std::size_t>(n), -1);
  std::vector<int> stack;
  int next_index = 0;
  component_count = 0;

  struct Frame {
    int node;
    std::size_t child;
  };
  std::vector<Frame> call_stack;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    call_stack.push_back({root, 0});
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int v = frame.node;
      if (frame.child == 0) {
        index[static_cast<std::size_t>(v)] = next_index;
        lowlink[static_cast<std::size_t>(v)] = next_index;
        ++next_index;
        stack.push_back(v);
        on_stack[static_cast<std::size_t>(v)] = true;
      }
      bool descended = false;
      const auto children = graph.successors(v);
      while (frame.child < children.size()) {
        const int w = children[frame.child];
        ++frame.child;
        if (index[static_cast<std::size_t>(w)] == -1) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) continue;
      // All children done.
      if (lowlink[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          component[static_cast<std::size_t>(w)] = component_count;
          if (w == v) break;
        }
        ++component_count;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const int parent = call_stack.back().node;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)],
                     lowlink[static_cast<std::size_t>(v)]);
      }
    }
  }
  return component;
}

}  // namespace

std::string StableCheckResult::summary(const crn::Crn& crn) const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << " expected=" << expected
     << " configs=" << num_configs << (complete ? "" : " (INCOMPLETE)");
  if (counterexample) {
    os << " counterexample=" << crn.config_to_string(*counterexample);
  }
  if (overproduction) {
    os << " overproduction=" << crn.config_to_string(*overproduction);
  }
  return os.str();
}

StableCheckResult check_stable_computation(const crn::Crn& crn,
                                           const fn::Point& x,
                                           math::Int expected,
                                           const StableCheckOptions& options) {
  StableCheckResult result;
  result.expected = expected;
  obs::Span check_span("verify.stable_check");

  const crn::Config initial = crn.initial_configuration(x);
  ExploreOptions explore_options;
  explore_options.max_configs = options.max_configs;
  explore_options.threads = options.threads;
  explore_options.cancel = options.cancel;
  explore_options.checkpoint_path = options.checkpoint_path;
  explore_options.checkpoint_every_secs = options.checkpoint_every_secs;
  explore_options.resume = options.resume;
  explore_options.spill_dir = options.spill_dir;
  explore_options.memory_budget_bytes = options.memory_budget_bytes;
  explore_options.spill_page_bytes = options.spill_page_bytes;
  lint::InvariantGuide guide;
  if (options.invariants != nullptr && !options.invariants->empty()) {
    guide = lint::make_guide(*options.invariants, initial);
    explore_options.species_bounds = &guide.bounds;
    explore_options.expected_configs = guide.reachable_bound;
  }
  const ReachabilityGraph graph = explore(crn, initial, explore_options);
  result.complete = graph.complete;
  result.cancelled = graph.cancelled;
  result.num_configs = graph.size();
  result.num_edges = graph.edge_count();
  result.explore_stats = graph.stats;

  const auto y = static_cast<std::size_t>(crn.output_or_throw());

  // Overproduction is meaningful on its own (even from incomplete graphs).
  if (const auto over = find_output_exceeding(crn, graph, expected)) {
    result.overproduction = graph.config(*over);
  }

  int component_count = 0;
  std::vector<int> component;
  {
    obs::Span scc_span("verify.scc");
    component = tarjan_scc(graph, component_count);
    scc_span.arg("nodes", static_cast<std::int64_t>(graph.size()));
    scc_span.arg("components", component_count);
  }

  // Tarjan numbers components in reverse topological order: every edge goes
  // from a higher-or-equal component id to a lower-or-equal... concretely,
  // for edge u -> v in different components, component[v] < component[u].
  // So processing components in increasing id order visits successors first.
  std::vector<math::Int> reach_min(static_cast<std::size_t>(component_count));
  std::vector<math::Int> reach_max(static_cast<std::size_t>(component_count));
  std::vector<bool> initialized(static_cast<std::size_t>(component_count),
                                false);
  std::vector<bool> good(static_cast<std::size_t>(component_count), false);

  // Gather member output ranges over a single streamed copy of the
  // output column: under out-of-core exploration per-node view() reads
  // would fault evicted pages back one witness at a time; collect_column
  // streams each spilled segment exactly once instead.
  std::vector<ConfigStore::Count> out_column;
  graph.store.collect_column(y, out_column);
  for (std::size_t node = 0; node < graph.size(); ++node) {
    const auto c = static_cast<std::size_t>(component[node]);
    const math::Int out = out_column[node];
    if (!initialized[c]) {
      reach_min[c] = out;
      reach_max[c] = out;
      initialized[c] = true;
    } else {
      reach_min[c] = std::min(reach_min[c], out);
      reach_max[c] = std::max(reach_max[c], out);
    }
  }
  // Fold in successors (components in increasing id = reverse topological).
  // Edges can go to any component with smaller id; iterate nodes and relax.
  // Two passes are unnecessary: since successor components have smaller ids
  // and are processed first, we relax while walking components in order.
  std::vector<std::vector<int>> comp_succ(
      static_cast<std::size_t>(component_count));
  for (std::size_t node = 0; node < graph.size(); ++node) {
    for (const std::int32_t next : graph.successors(static_cast<int>(node))) {
      const int cu = component[node];
      const int cv = component[static_cast<std::size_t>(next)];
      if (cu != cv) comp_succ[static_cast<std::size_t>(cu)].push_back(cv);
    }
  }
  for (int c = 0; c < component_count; ++c) {
    for (const int next : comp_succ[static_cast<std::size_t>(c)]) {
      ensure(next < c, "check_stable_computation: SCC order violated");
      reach_min[static_cast<std::size_t>(c)] =
          std::min(reach_min[static_cast<std::size_t>(c)],
                   reach_min[static_cast<std::size_t>(next)]);
      reach_max[static_cast<std::size_t>(c)] =
          std::max(reach_max[static_cast<std::size_t>(c)],
                   reach_max[static_cast<std::size_t>(next)]);
    }
    const bool stable_here =
        reach_min[static_cast<std::size_t>(c)] ==
        reach_max[static_cast<std::size_t>(c)];
    good[static_cast<std::size_t>(c)] =
        (stable_here && reach_min[static_cast<std::size_t>(c)] == expected);
    if (!good[static_cast<std::size_t>(c)]) {
      for (const int next : comp_succ[static_cast<std::size_t>(c)]) {
        if (good[static_cast<std::size_t>(next)]) {
          good[static_cast<std::size_t>(c)] = true;
          break;
        }
      }
    }
  }

  result.ok = true;
  for (std::size_t node = 0; node < graph.size(); ++node) {
    if (!good[static_cast<std::size_t>(component[node])]) {
      result.ok = false;
      result.counterexample = graph.config(static_cast<int>(node));
      result.counterexample_path =
          path_from_root(graph, static_cast<int>(node));
      break;
    }
  }
  // An incomplete exploration cannot prove success.
  if (!graph.complete && result.ok) {
    result.ok = false;
    result.counterexample.reset();
    result.counterexample_path.clear();
  }
  check_span.arg("ok", result.ok ? 1 : 0);
  return result;
}

GridCheckResult check_stable_computation_on_grid(
    const crn::Crn& crn, const fn::DiscreteFunction& f, math::Int grid_max,
    const StableCheckOptions& options) {
  require(crn.input_arity() == f.dimension(),
          "check_stable_computation_on_grid: arity mismatch");
  GridCheckResult result;
  geom::for_each_grid_point(
      f.dimension(), grid_max, [&](const std::vector<math::Int>& x) {
        ++result.points_checked;
        const auto check = check_stable_computation(crn, x, f(x), options);
        if (!check.ok) {
          result.all_ok = false;
          result.failures.push_back(x);
        }
      });
  return result;
}

}  // namespace crnkit::verify
