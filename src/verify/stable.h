// Exact decision of stable computation (Section 2.2) on a single input:
// "C stably computes f on x" iff from every configuration reachable from
// I_x, some stable configuration O with O(Y) = f(x) remains reachable.
//
// Implemented on the exact reachability graph: SCC condensation, then two
// DAG passes — (1) the min/max output count reachable from each SCC decides
// stability (an SCC is stable iff that range is a single value), and (2)
// backward propagation of "a correct stable SCC is reachable". The CRN
// stably computes f(x) iff every explored SCC can reach a correct stable
// SCC. This is a *proof* when exploration is complete.
#ifndef CRNKIT_VERIFY_STABLE_H_
#define CRNKIT_VERIFY_STABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "fn/function.h"
#include "lint/diagnostics.h"
#include "verify/reachability.h"

namespace crnkit::verify {

struct StableCheckResult {
  bool ok = false;        ///< stably computes the expected value
  bool complete = true;   ///< exploration enumerated all reachable configs
  /// Exploration stopped early because the cancel token expired
  /// (deadline or explicit cancel); implies !complete and withholds the
  /// verdict the same way a budget truncation does.
  bool cancelled = false;
  math::Int expected = 0;
  std::size_t num_configs = 0;
  std::size_t num_edges = 0;   ///< deduplicated reachability edges
  ExploreStats explore_stats;  ///< perf counters of the exploration
  /// A reachable configuration from which no correct stable configuration
  /// is reachable (present iff !ok).
  std::optional<crn::Config> counterexample;
  /// Reaction indices along the BFS tree from I_x to `counterexample` — a
  /// replayable witness: applying them in order from the initial
  /// configuration reproduces the counterexample. Empty when ok (or when
  /// an incomplete exploration withheld the verdict without a witness).
  std::vector<int> counterexample_path;
  /// A reachable configuration whose output exceeds the expected value
  /// (the signature failure mode of non-output-oblivious behavior).
  std::optional<crn::Config> overproduction;

  [[nodiscard]] std::string summary(const crn::Crn& crn) const;
};

struct StableCheckOptions {
  std::size_t max_configs = 2'000'000;
  /// Exploration worker threads; 0 means hardware concurrency. The graph
  /// and verdict are identical for every value.
  int threads = 1;
  /// Optional cooperative cancellation, polled per BFS level (see
  /// ExploreOptions::cancel).
  const util::CancelToken* cancel = nullptr;
  /// Checkpoint/resume pass-through to the explorer (CLI-only paths —
  /// never populated from daemon requests).
  std::string checkpoint_path;
  double checkpoint_every_secs = 30.0;
  bool resume = false;
  /// Conservation laws from the static analyzer (lint), borrowed for the
  /// duration of the call. When present, per-species count bounds are
  /// derived at each point's I_x and fed to the explorer (see
  /// ExploreOptions::species_bounds / expected_configs). Verdicts and
  /// graphs are bit-identical with and without a (correct) guide.
  const std::vector<lint::ConservationLaw>* invariants = nullptr;
  /// Out-of-core pass-through (see ExploreOptions::spill_dir): spill
  /// frozen arena pages to this directory instead of truncating when
  /// resident bytes exceed memory_budget_bytes. Verdicts stay exact.
  std::string spill_dir;
  std::size_t memory_budget_bytes = 0;
  std::size_t spill_page_bytes = 0;  ///< test override; 0 = default
};

/// Decides whether `crn` stably computes `expected` on input x.
[[nodiscard]] StableCheckResult check_stable_computation(
    const crn::Crn& crn, const fn::Point& x, math::Int expected,
    const StableCheckOptions& options = {});

/// Sweep over the full grid [0, grid_max]^d against a reference function.
struct GridCheckResult {
  bool all_ok = true;
  int points_checked = 0;
  std::vector<fn::Point> failures;
};

[[nodiscard]] GridCheckResult check_stable_computation_on_grid(
    const crn::Crn& crn, const fn::DiscreteFunction& f, math::Int grid_max,
    const StableCheckOptions& options = {});

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_STABLE_H_
