// Out-of-core arena spilling for the exact verifier.
//
// The arena (ConfigStore's flat pool of 32-bit counts) dominates an
// exploration's footprint — ~width*4 bytes per configuration against
// ~50 bytes for everything else — and a level-synchronous BFS only ever
// *writes* the arena at the tail: once a level commits, its rows are
// frozen. SpillPool exploits that: when resident bytes exceed the memory
// budget, frozen pages strictly below the live frontier are written to
// checksummed segment files (one page per file, checkpoint file
// discipline: magic + schema + length + checksum, write-to-temp + atomic
// rename via util::FaultedFileWriter) and their physical memory is
// released with madvise(MADV_DONTNEED). The arena's *address space* is
// untouched — ConfigStore::view() stays a branch-free pointer add — so
// spilling cannot perturb ids, hashes, or iteration order: spilled and
// in-RAM explorations produce bit-identical graphs by construction.
//
// Reads of evicted rows are rare during BFS (only a hash-tag collision
// compares a candidate against an old committed row, ~2^-32 per probe),
// so the hot path pays one pointer test + one atomic load per committed
// compare. ensure_row() faults the page back from its segment under a
// mutex with acquire/release publication; once a page has a segment
// file, re-evicting it is a pure madvise (the frozen bytes on disk are
// still valid).
//
// Failure model: segment writes happen at the serial level barrier and
// throw SpillError (typed, retriable — ENOSPC or a short write sheds
// the request, never corrupts a proof). Segment reads can happen on
// worker threads that must not throw; a failed read sets a sticky
// io_error flag and the exploration discards everything and raises
// SpillError at the next level barrier — garbage compares before the
// barrier can create no lasting state. Failpoints `spill.write.*`
// (via FaultedFileWriter) and `spill.read` (validation path) are driven
// by chaos_replay and crash_durability.
#ifndef CRNKIT_VERIFY_SPILL_H_
#define CRNKIT_VERIFY_SPILL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "verify/config_store.h"

namespace crnkit::verify {

/// Typed out-of-core I/O failure: disk full, short write, torn or
/// corrupt segment. Always safe to retry — the proof is discarded whole,
/// never truncated — so the service layer maps this to a retriable
/// error instead of a `degraded` verdict.
class SpillError : public std::runtime_error {
 public:
  explicit SpillError(const std::string& what) : std::runtime_error(what) {}
};

class SpillPool {
 public:
  struct Options {
    /// Directory for segment files (created if missing). Must outlive
    /// the pool; files are unlinked on destruction.
    std::string dir;
    /// Resident-byte target the exploration sheds toward.
    std::size_t budget_bytes = 0;
    /// Bytes per eviction page, rounded to a power-of-two row count.
    std::size_t page_bytes = std::size_t{4} << 20;
  };

  struct Stats {
    std::uint64_t segments_written = 0;
    std::uint64_t segments_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
  };

  /// `store` must already hold its full reservation (reserve() for the
  /// exploration's max_configs): eviction relies on the arena never
  /// reallocating, which is asserted on every shed.
  SpillPool(ConfigStore& store, std::size_t max_configs,
            const Options& options);
  ~SpillPool();
  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;

  /// Serial (level barrier only): evicts frozen pages — fully committed
  /// (`< committed_rows`) and strictly below the live frontier
  /// (`< keep_from_row`) — oldest first, until at least `release_bytes`
  /// of arena are non-resident or no page qualifies. Throws SpillError
  /// when a segment cannot be written.
  void shed(std::size_t release_bytes, std::size_t keep_from_row,
            std::size_t committed_rows);

  /// Guarantees `row`'s page is resident before a read. Hot-path inline:
  /// one shift + one relaxed-acquire load when the page is resident.
  /// Never throws — a failed fault-back sets io_error() and the caller's
  /// read returns garbage that the level barrier discards.
  void ensure_row(std::size_t row) {
    const std::size_t page = row >> rows_log2_;
    if (states_[page].load(std::memory_order_acquire) == kEvicted) {
      fault_in(page);
    }
  }

  /// Serial streaming gather of one arena column over rows
  /// [0, n_rows): resident pages are strided directly, evicted pages
  /// are read from their segments into scratch without changing
  /// residency. Throws SpillError on a read failure.
  void collect_column(std::size_t species, ConfigStore::Count* out,
                      std::size_t n_rows);

  /// Serial streaming read of raw rows [first_row, first_row + n_rows)
  /// into `dst` (n_rows * width counts) without changing residency —
  /// the checkpoint writer streams the arena through this. Throws
  /// SpillError on a read failure.
  void read_rows(std::size_t first_row, std::size_t n_rows,
                 ConfigStore::Count* dst);

  /// True once any worker-thread fault-back failed; the exploration
  /// must be discarded at the next barrier.
  [[nodiscard]] bool io_error() const {
    return io_error_.load(std::memory_order_acquire);
  }

  /// Arena bytes currently evicted (released from residency).
  [[nodiscard]] std::size_t evicted_bytes() const {
    return evicted_pages_.load(std::memory_order_relaxed) * page_arena_bytes();
  }
  [[nodiscard]] bool spilled() const {
    return stats_segments_written_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] std::size_t budget_bytes() const  {
    return options_.budget_bytes;
  }
  [[nodiscard]] Stats stats() const;

 private:
  enum State : int {
    kResident = 0,  ///< never spilled; no segment file
    kClean = 1,     ///< resident, segment file holds identical bytes
    kEvicted = 2,   ///< non-resident; reads must fault the segment back
  };

  [[nodiscard]] std::size_t rows_per_page() const {
    return std::size_t{1} << rows_log2_;
  }
  [[nodiscard]] std::size_t page_arena_bytes() const {
    return rows_per_page() * width_ * sizeof(ConfigStore::Count);
  }
  [[nodiscard]] ConfigStore::Count* page_data(std::size_t page);
  [[nodiscard]] std::string segment_path(std::size_t page) const;

  /// Writes `page`'s frozen rows to its segment file (atomic rename,
  /// "spill.write" failpoints). Throws SpillError on failure.
  void write_segment(std::size_t page);
  /// Reads and validates `page`'s segment into `dst` (page_arena_bytes).
  /// Returns false (and records the reason) on failure; never throws.
  [[nodiscard]] bool read_segment(std::size_t page, ConfigStore::Count* dst,
                                  std::string* error);
  /// Slow path of ensure_row: mutex + re-check + segment read + release
  /// publication. Sets io_error_ on failure instead of throwing.
  void fault_in(std::size_t page);

  ConfigStore& store_;
  Options options_;
  std::size_t width_ = 0;
  unsigned rows_log2_ = 0;
  std::size_t n_pages_ = 0;
  std::uint64_t run_tag_ = 0;  ///< uniquifies file names per pool instance
  ConfigStore::Count* base_ = nullptr;  ///< arena base (stability-checked)

  /// One State per page, preallocated — no growth, so workers index it
  /// without synchronization beyond the per-page acquire load.
  std::unique_ptr<std::atomic<int>[]> states_;
  std::vector<bool> has_segment_;  ///< guarded by mu_ after construction

  std::mutex mu_;  ///< serializes fault-backs (and guards has_segment_)
  std::atomic<bool> io_error_{false};
  std::atomic<std::size_t> evicted_pages_{0};
  std::atomic<std::uint64_t> stats_segments_written_{0};
  std::atomic<std::uint64_t> stats_segments_read_{0};
  std::atomic<std::uint64_t> stats_bytes_written_{0};
  std::atomic<std::uint64_t> stats_bytes_read_{0};
};

}  // namespace crnkit::verify

#endif  // CRNKIT_VERIFY_SPILL_H_
