#include "svc/workload.h"

#include <fstream>
#include <sstream>

#include "crn/io.h"

namespace crnkit::svc {

Workload load_workload(const std::string& target,
                       const scenario::Registry& registry) {
  if (registry.contains(target)) {
    return Workload{registry.build(target), true};
  }

  std::ifstream file(target);
  if (file) {
    std::ostringstream contents;
    contents << file.rdbuf();
    scenario::Scenario s;
    s.name = target;
    s.title = "loaded from file";
    try {
      s.crn = crn::from_text(contents.str());
    } catch (const std::exception& e) {
      throw std::invalid_argument(target + ": " + e.what());
    }
    // A file gives no reference function; default the sim input to zeros
    // of the right arity so `simulate` still has something to run.
    s.sim_input.assign(static_cast<std::size_t>(s.crn.input_arity()), 0);
    return Workload{std::move(s), false};
  }

  // Not a file: surface the registry's unknown-name error, which carries
  // "did you mean" suggestions.
  (void)registry.build(target);  // always throws
  throw std::invalid_argument("unknown target '" + target + "'");
}

}  // namespace crnkit::svc
