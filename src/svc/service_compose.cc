// Service::compose — the circuit composition pipeline. A target (function
// expression, `.wire` wiring file over registry modules, or a
// `circuit/random-<n>-<seed>` family name) is certified module-by-module
// with Lemma 2.3 (strip-and-recheck; non-composable modules like fig1/max
// are rejected with the failing input), compiled through crn::Circuit into
// one flat network, shrunk by the optimization passes (crn/passes.h) with
// per-pass accounting, and optionally checked against the recorded
// reference function: exact stable-computation proof on a small grid
// (through the shared proof cache), randomized simcheck beyond it.
#include <algorithm>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <tuple>
#include <utility>

#include "compile/circuit_expr.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "crn/io.h"
#include "crn/passes.h"
#include "lint/analyzer.h"
#include "math/check.h"
#include "scenario/circuits.h"
#include "scenario/scenario.h"
#include "svc/service.h"
#include "svc/workload.h"
#include "verify/composability.h"
#include "verify/simcheck.h"

namespace crnkit::svc {

namespace {

/// One module headed into the circuit, with everything certification and
/// reporting need.
struct ComposeModule {
  std::string label;
  crn::Crn crn;
  std::optional<fn::DiscreteFunction> fn;
};

/// Lemma 2.3 certification of one module. Output-oblivious modules compose
/// by Observation 2.2. A non-oblivious module with a reference function
/// runs the strip-and-recheck experiment; when the stripped CRN still
/// computes f it is substituted (it is output-oblivious and computes the
/// same function), otherwise the module is rejected with the failing
/// input. Without a reference there is nothing to recheck against: reject.
ComposeCertRecord certify_module(ComposeModule& module, math::Int cert_grid) {
  ComposeCertRecord record;
  record.module = module.label;
  // Static pre-certification: the analyzer's syntactic screen decides the
  // oblivious case (and names the offending reaction otherwise) without
  // any BFS. It must agree with the definitional check — both ask whether
  // some reaction consumes the declared output — so the cross-check stays
  // loud rather than silently trusting one side.
  const lint::CompositionScreen screen = lint::analyze(module.crn).screen;
  record.oblivious = crn::is_output_oblivious(module.crn);
  ensure(screen.oblivious == record.oblivious,
         "compose: static composability screen disagrees with "
         "is_output_oblivious on '" + module.label + "'");
  record.static_screen =
      screen.oblivious ? "clean"
                       : "consumes-output: " + screen.offending_rendering;
  if (record.oblivious) {
    record.composable = true;
    record.detail = "output-oblivious (composable, Obs. 2.2)";
    return record;
  }
  const auto consuming = crn::find_output_consuming_reaction(module.crn);
  if (!module.fn || module.crn.input_arity() < 1) {
    record.detail = "not output-oblivious (" + consuming.value_or("") +
                    ") and no reference function to run the Lemma 2.3 "
                    "strip-and-recheck against";
    return record;
  }
  const auto report =
      verify::check_composability(module.crn, *module.fn, cert_grid);
  record.reactions_stripped = report.reactions_removed;
  record.composable = report.composable();
  if (report.composable()) {
    // The stripped CRN (C'_f of Lemma 2.3) computes the same function and
    // is output-oblivious: wire it instead.
    module.crn = verify::strip_output_consumers(module.crn);
    record.detail = "not output-oblivious, but the stripped CRN still "
                    "computes f on [0," +
                    std::to_string(cert_grid) +
                    "]^d; composed with " +
                    std::to_string(report.reactions_removed) +
                    " output-consuming reaction(s) stripped (Lemma 2.3)";
  } else {
    record.detail =
        "REJECTED (Lemma 2.3): consumes its output (" +
        consuming.value_or("") + ") and the stripped CRN no longer " +
        "computes f" +
        (report.failure.empty() ? std::string()
                                : "; first failure at " + report.failure) +
        " — not composable by concatenation";
  }
  return record;
}

/// Parses the `.wire` format:
///   circuit <name>
///   arity <k>
///   module <id> <registry-scenario-or-crn-file>
///   connect <x<i> | <id>> <id>.<port>     (ports 1-based)
///   output <x<i> | <id>>                  (repeatable: sum junction)
/// '#' comments and blank lines are ignored.
struct WireFile {
  std::string name = "circuit";
  int arity = 0;
  std::vector<std::pair<std::string, std::string>> modules;  // id -> target
  std::vector<std::tuple<std::string, std::string, int>> connects;
  std::vector<std::string> outputs;
};

WireFile parse_wire_file(const std::string& path, const std::string& text) {
  WireFile out;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument(path + ": line " +
                                std::to_string(line_number) + ": " + what);
  };
  while (std::getline(stream, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;
    if (keyword == "circuit") {
      if (!(words >> out.name)) fail("circuit needs a name");
    } else if (keyword == "arity") {
      if (!(words >> out.arity) || out.arity < 1) {
        fail("arity needs a positive integer");
      }
    } else if (keyword == "module") {
      std::string id;
      std::string target;
      if (!(words >> id >> target)) fail("module needs '<id> <target>'");
      // x<digits> names external inputs in wire sources; a module with
      // that id would be unreferenceable.
      if (id.size() >= 2 && id[0] == 'x' &&
          id.find_first_not_of("0123456789", 1) == std::string::npos) {
        fail("module id '" + id + "' is reserved for external inputs");
      }
      out.modules.emplace_back(id, target);
    } else if (keyword == "connect") {
      std::string source;
      std::string sink;
      if (!(words >> source >> sink)) {
        fail("connect needs '<source> <module>.<port>'");
      }
      const auto dot = sink.rfind('.');
      if (dot == std::string::npos) fail("connect sink needs '.<port>'");
      int port = 0;
      try {
        std::size_t used = 0;
        port = std::stoi(sink.substr(dot + 1), &used);
        if (used != sink.size() - dot - 1 || port < 1) throw std::exception();
      } catch (const std::exception&) {
        fail("bad port in '" + sink + "'");
      }
      out.connects.emplace_back(source, sink.substr(0, dot), port - 1);
    } else if (keyword == "output") {
      std::string source;
      if (!(words >> source)) fail("output needs a source");
      out.outputs.push_back(source);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (out.modules.empty()) {
    throw std::invalid_argument(path + ": no modules declared");
  }
  if (out.outputs.empty()) {
    throw std::invalid_argument(path + ": no output declared");
  }
  return out;
}

bool looks_like_wire_file(const std::string& target) {
  return target.size() >= 5 &&
         target.compare(target.size() - 5, 5, ".wire") == 0;
}

}  // namespace

ComposeResponse Service::compose(const ComposeRequest& req) {
  ComposeResponse resp;
  resp.target = req.target;

  // --- resolve the target into modules + a wired circuit ---
  std::vector<ComposeModule> modules;
  std::optional<fn::DiscreteFunction> reference;
  // Deferred circuit construction: certification may substitute stripped
  // module CRNs, so the circuit is wired only after every module passed.
  std::function<crn::Crn()> build;

  if (looks_like_wire_file(req.target)) {
    std::ifstream file(req.target);
    if (!file) {
      throw std::invalid_argument("cannot read '" + req.target + "'");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    const WireFile wire = parse_wire_file(req.target, contents.str());
    resp.name = wire.name;
    resp.arity = std::max(1, wire.arity);
    std::vector<std::string> ids;
    for (const auto& [id, module_target] : wire.modules) {
      if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
        throw std::invalid_argument(req.target + ": duplicate module id '" +
                                    id + "'");
      }
      ids.push_back(id);
      const Workload loaded = load_workload(module_target);
      ComposeModule m;
      m.label = id + " (" + module_target + ")";
      m.crn = loaded.scenario.crn;
      m.fn = loaded.scenario.reference;
      modules.push_back(std::move(m));
    }
    const auto wire_of = [ids, arity = resp.arity,
                          path = req.target](const std::string& source) {
      if (source.size() >= 2 && source.size() <= 8 && source[0] == 'x') {
        bool digits = true;
        for (std::size_t i = 1; i < source.size(); ++i) {
          digits = digits && source[i] >= '0' && source[i] <= '9';
        }
        if (digits) {
          const int index = std::stoi(source.substr(1));
          require(index >= 1 && index <= arity,
                  path + ": input '" + source + "' out of range (arity " +
                      std::to_string(arity) + ")");
          return crn::Wire::external(index - 1);
        }
      }
      const auto it = std::find(ids.begin(), ids.end(), source);
      require(it != ids.end(),
              path + ": unknown wire source '" + source + "'");
      return crn::Wire::of_module(
          static_cast<int>(std::distance(ids.begin(), it)));
    };
    build = [&modules, wire, wire_of, name = resp.name,
             arity = resp.arity]() {
      crn::Circuit circuit(arity, name);
      for (const ComposeModule& m : modules) {
        (void)circuit.add_module(m.crn);
      }
      for (const auto& [source, sink, port] : wire.connects) {
        const auto it = std::find_if(
            wire.modules.begin(), wire.modules.end(),
            [&sink = sink](const auto& m) { return m.first == sink; });
        require(it != wire.modules.end(),
                "unknown module '" + sink + "' in connect");
        circuit.connect(wire_of(source),
                        static_cast<int>(
                            std::distance(wire.modules.begin(), it)),
                        port);
      }
      for (const std::string& source : wire.outputs) {
        circuit.add_output(wire_of(source));
      }
      return circuit.compile();
    };
  } else {
    // circuit/random family name, or an inline expression.
    compile::CircuitExpr expr;
    if (const auto params =
            scenario::parse_random_circuit_name(req.target)) {
      expr = compile::random_circuit_expr(params->modules, params->seed);
      resp.name = req.target;
    } else {
      expr = compile::parse_circuit_expr(req.target);
      resp.name = "compose";
    }
    resp.expression = expr.to_string();
    resp.arity = std::max(1, expr.arity());
    reference = expr.as_function(resp.name);
    compile::LoweredCircuit lowered =
        compile::lower_circuit_expr(expr, resp.name);
    for (compile::CircuitModule& m : lowered.modules) {
      modules.push_back(ComposeModule{std::move(m.label), std::move(m.crn),
                                      std::move(m.fn)});
    }
    crn::Crn compiled = std::move(lowered.crn);
    build = [compiled]() { return compiled; };
  }
  resp.modules = modules.size();

  // --- Lemma 2.3 certification, module by module ---
  resp.certified = true;
  if (!req.skip_cert) {
    for (ComposeModule& m : modules) {
      resp.certification.push_back(certify_module(m, req.cert_grid));
      resp.certified = resp.certified && resp.certification.back().composable;
      // Expression lowering only emits output-oblivious primitives (the
      // Circuit inside lower_circuit_expr already compiled them), so the
      // stripped-CRN substitution can never apply there — the deferred
      // `build` below would ignore it. Keep that assumption loud.
      ensure(resp.expression.empty() || resp.certification.back().oblivious,
             "compose: expression-lowered module '" +
                 resp.certification.back().module +
                 "' is not output-oblivious");
    }
  }

  if (!resp.certified) {
    resp.compiled = false;
    resp.ok = false;
    return resp;
  }
  resp.compiled = true;

  // --- compile and optimize ---
  const crn::Crn raw = build();
  crn::PassOptions pass_options;
  pass_options.fuse_duplicates = pass_options.dead_species =
      pass_options.collapse_chains = pass_options.renumber = !req.no_opt;
  crn::PassPipelineResult optimized = crn::optimize(raw, pass_options);
  const crn::Crn& network = optimized.crn;

  resp.species_raw = raw.species_count();
  resp.reactions_raw = raw.reactions().size();
  for (const crn::PassStats& p : optimized.passes) {
    ComposePassStat stat;
    stat.pass = p.pass;
    stat.species_before = p.species_before;
    stat.species_after = p.species_after;
    stat.reactions_before = p.reactions_before;
    stat.reactions_after = p.reactions_after;
    resp.passes.push_back(std::move(stat));
  }
  resp.species = network.species_count();
  resp.reactions = network.reactions().size();

  if (!req.out_path.empty()) {
    std::ofstream file(req.out_path);
    if (!file) {
      throw std::invalid_argument("cannot write '" + req.out_path + "'");
    }
    file << crn::to_text(network);
    resp.out = req.out_path;
  }

  bool checks_ok = true;

  // --- exact verification on the small grid ---
  if (req.do_verify) {
    require(reference.has_value(),
            "--verify needs a reference function (expression or "
            "circuit/random targets)");
    verify::StableCheckOptions options;
    if (req.max_configs > 0) options.max_configs = req.max_configs;
    options.threads = req.threads;
    ComposeVerifySummary summary;
    summary.grid = req.grid;
    const auto points = scenario::grid_points(resp.arity, req.grid);
    summary.points = points.size();
    const std::uint64_t crn_hash = crn::canonical_hash(network);
    for (const fn::Point& x : points) {
      const CheckOutcome outcome = check_point(
          network, crn_hash, x, (*reference)(x), options, req.use_cache);
      if (outcome.report.ok && outcome.report.complete) {
        ++summary.proved;
      } else if (!outcome.report.complete) {
        ++summary.inconclusive;
      } else {
        ++summary.failed;
      }
      if (req.use_cache) {
        if (outcome.report.cached) {
          ++summary.cache_hits;
        } else {
          ++summary.cache_misses;
        }
      }
    }
    checks_ok =
        checks_ok && summary.failed == 0 && summary.inconclusive == 0;
    resp.verify = std::move(summary);
  }

  // --- randomized check beyond the exact grid ---
  if (req.do_simcheck) {
    require(reference.has_value(),
            "--simcheck needs a reference function (expression or "
            "circuit/random targets)");
    verify::SimCheckOptions options;
    options.trials_per_point = req.trials;
    options.max_steps = req.max_steps;
    options.seed = req.seed;
    options.threads = req.threads;
    std::vector<fn::Point> points =
        scenario::grid_points(resp.arity, req.grid + 2);
    points.push_back(fn::Point(static_cast<std::size_t>(resp.arity), 7));
    fn::Point mixed;
    for (int i = 0; i < resp.arity; ++i) mixed.push_back(3 + 5 * (i % 2));
    points.push_back(mixed);
    const auto result =
        verify::sim_check_points(network, *reference, points, options);
    ComposeSimcheckSummary summary;
    summary.points = points.size();
    summary.trials = result.trials;
    summary.silent_trials = result.silent_trials;
    summary.non_silent_trials = result.non_silent_trials;
    summary.mismatches = result.mismatches;
    summary.inconclusive_points = result.inconclusive_points;
    summary.verdict = result.verdict_name();
    summary.summary = result.summary();
    checks_ok = checks_ok &&
                result.verdict() == verify::SimCheckResult::Verdict::kPass;
    resp.simcheck = std::move(summary);
  }

  resp.ok = checks_ok;
  return resp;
}

}  // namespace crnkit::svc
