// The content-addressed proof cache behind svc::Service and `crnc serve`.
//
// A stable-computation verdict depends only on the CRN's canonical form
// (crn::canonical_hash — invariant under species renaming and reaction
// reordering), the input point, the expected output, and — for truncated
// explorations — the node budget. The cache keys verdicts accordingly:
//
//  * A COMPLETE verdict (the whole reachable set was enumerated) is a
//    theorem about the CRN; it serves any later request whose budget could
//    have completed the same exploration (budget >= num_configs). One
//    complete entry per (crn, x, expected).
//  * An INCOMPLETE verdict ("inconclusive", budget hit) is only the
//    deterministic outcome of that exact budget; it serves requests with
//    the same budget and nothing else — in particular it is NEVER served
//    for a larger budget, which could complete and flip the verdict.
//
// Entries carry the verdict, the exploration's perf counters, and a
// replayable witness path (reaction indices I_x -> counterexample) so a
// cached FAILED verdict can still be audited without re-exploring.
// Storage is a byte-budgeted LRU; save()/load() persist the cache as a
// versioned JSON file with a content checksum, both validated on load.
#ifndef CRNKIT_SVC_PROOF_CACHE_H_
#define CRNKIT_SVC_PROOF_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fn/function.h"
#include "util/mutex.h"
#include "verify/reachability.h"

namespace crnkit::svc {

/// Identity of one verify-point proof: canonical CRN content hash plus the
/// checked point and expected output.
struct ProofKey {
  std::uint64_t crn_hash = 0;
  fn::Point x;
  math::Int expected = 0;

  [[nodiscard]] bool operator==(const ProofKey& other) const {
    return crn_hash == other.crn_hash && x == other.x &&
           expected == other.expected;
  }
};

/// A cached stable-computation verdict.
struct ProofVerdict {
  bool ok = false;
  bool complete = false;
  /// The max_configs budget the verdict was computed under. Lookup
  /// semantics: complete entries serve any budget >= num_configs;
  /// incomplete entries serve only budget == this.
  std::size_t budget = 0;
  std::size_t num_configs = 0;
  std::size_t num_edges = 0;
  verify::ExploreStats stats;  ///< counters of the original exploration
  /// Replayable reaction path I_x -> counterexample (FAILED only).
  std::vector<int> witness;
  /// Conservation-law certificates at the point's I_x ("x1 + y = 5"),
  /// stamped by the static analyzer when invariant-guided verification is
  /// on — a cached verdict carries the invariants it was computed under.
  std::vector<std::string> invariants;
};

class ProofCache {
 public:
  struct Options {
    /// LRU byte budget over the approximate entry footprints; 0 disables
    /// caching entirely (every lookup misses, inserts are dropped).
    std::size_t max_bytes = 64u << 20;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Lookups that waited behind an identical in-flight computation
    /// (see Flight) instead of exploring the same graph concurrently.
    std::uint64_t coalesced = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  ProofCache();
  explicit ProofCache(const Options& options);

  /// Single-flight claim on one (key, budget) verdict slot. Construction
  /// blocks while another thread holds the claim — i.e. is computing the
  /// same verdict — then claims it; destruction releases it and wakes
  /// waiters. Claim BEFORE the first lookup: the leader of a cold burst
  /// then records the only miss and the only exploration, and every
  /// follower claims after the leader's insert() and hits. A leader that
  /// dies without inserting (exception, deadline) simply promotes the
  /// next waiter to leader — the claim is exception-safe RAII state, not
  /// a lock around user code. Waiters bump crnkit_cache_coalesced_total.
  class Flight {
   public:
    Flight(ProofCache& cache, const ProofKey& key, std::size_t budget);
    ~Flight();
    Flight(const Flight&) = delete;
    Flight& operator=(const Flight&) = delete;

    /// This claimant found the slot already in flight and waited.
    [[nodiscard]] bool coalesced() const { return coalesced_; }

   private:
    ProofCache& cache_;
    ProofKey key_;
    std::size_t budget_;
    bool coalesced_ = false;
  };

  /// Returns the cached verdict a request with `budget` may reuse (see the
  /// file comment for the budget semantics), refreshing its LRU position.
  [[nodiscard]] std::optional<ProofVerdict> lookup(const ProofKey& key,
                                                   std::size_t budget);

  /// Inserts (or refreshes) the verdict computed for `key`. Complete
  /// verdicts replace any previous complete entry for the key; incomplete
  /// verdicts are stored per budget.
  void insert(const ProofKey& key, ProofVerdict verdict);

  [[nodiscard]] Stats stats() const;
  void clear();

  /// Serializes every entry to `path` as versioned JSON with a content
  /// checksum, written atomically (temp file + fsync + rename) — a crash
  /// at any byte offset leaves either the previous snapshot or the new
  /// one, never a torn file. After a successful snapshot the journal (if
  /// enabled) is truncated: its entries are now in the snapshot. Throws
  /// std::runtime_error when the file cannot be written.
  void save(const std::string& path) const;

  /// Arms the append-only journal: every subsequent insert() is also
  /// appended to `path` as one checksummed JSON line, flushed to disk —
  /// so verdicts computed since the last snapshot survive kill -9.
  /// Startup order: load() the snapshot, then replay_journal().
  void enable_journal(const std::string& path);

  /// Replays the journal at `path` (missing file = 0 entries): each line
  /// is validated independently and replay stops at the first torn or
  /// corrupt line, keeping the valid prefix — an interrupted append
  /// never poisons the entries before it. Returns entries replayed.
  std::size_t replay_journal(const std::string& path);

  /// Loads entries persisted by save(), validating the format marker, the
  /// schema version, and the content checksum; throws std::runtime_error
  /// on mismatch (a stale or corrupted cache file must never be trusted).
  /// Returns the number of entries loaded. Existing entries are kept;
  /// loaded entries land cold (least-recently-used side).
  std::size_t load(const std::string& path);

 private:
  /// Exact storage key: complete entries normalize the budget slot to 0
  /// ("serves any sufficient budget"); incomplete entries key their exact
  /// budget.
  struct SlotKey {
    ProofKey proof;
    std::size_t budget_slot = 0;

    [[nodiscard]] bool operator==(const SlotKey& other) const {
      return budget_slot == other.budget_slot && proof == other.proof;
    }
  };

  struct SlotKeyHash {
    std::size_t operator()(const SlotKey& key) const;
  };

  struct Entry {
    SlotKey key;
    ProofVerdict verdict;
    std::size_t bytes = 0;
  };

  [[nodiscard]] static std::size_t entry_bytes(const Entry& entry);
  /// Inserts without stats accounting (shared by insert() and load()).
  /// `front` chooses the hot (true) or cold (false) end of the LRU list.
  void insert_locked(const ProofKey& key, ProofVerdict verdict, bool front)
      CRNKIT_REQUIRES(mu_);
  void evict_locked() CRNKIT_REQUIRES(mu_);
  /// Pushes entries/bytes into the crnkit_cache_* gauges.
  void sync_gauges_locked() const CRNKIT_REQUIRES(mu_);

  // Single-flight table, under its own plain mutex: Flight construction
  // blocks on the condition variable (util::Mutex has no cv), and a
  // leader holds its claim across a whole exploration — it must never
  // hold mu_, which every lookup/insert on other keys needs.
  mutable std::mutex flights_mu_;
  std::condition_variable flights_cv_;
  /// Claimed (key, budget) slots; linear scan — in-flight explorations
  /// are few and each holds the list entry for seconds, not the mutex.
  std::vector<std::pair<ProofKey, std::size_t>> flights_;
  std::uint64_t coalesced_ = 0;

  mutable util::Mutex mu_;
  Options options_;
  /// empty = journaling disabled
  std::string journal_path_ CRNKIT_GUARDED_BY(mu_);
  /// front = most recently used
  std::list<Entry> lru_ CRNKIT_GUARDED_BY(mu_);
  std::unordered_map<SlotKey, std::list<Entry>::iterator, SlotKeyHash> index_
      CRNKIT_GUARDED_BY(mu_);
  std::size_t bytes_ CRNKIT_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ CRNKIT_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ CRNKIT_GUARDED_BY(mu_) = 0;
  std::uint64_t insertions_ CRNKIT_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ CRNKIT_GUARDED_BY(mu_) = 0;
};

}  // namespace crnkit::svc

#endif  // CRNKIT_SVC_PROOF_CACHE_H_
