// JSON wire layer of the service API: one serializer per Response type
// (used by `crnc <cmd> --json` and the daemon alike — both emit identical
// bytes), and one parser per Request type (used by the daemon). Every
// serialized top-level object starts with "schema_version": kSchemaVersion.
//
// Request parsers deliberately never read file-output fields (compile
// --out, compose --out): a remote client must not be able to make the
// daemon write files. Those fields are reachable only through the CLI.
#ifndef CRNKIT_SVC_SERIALIZE_H_
#define CRNKIT_SVC_SERIALIZE_H_

#include <string>

#include "svc/api.h"
#include "util/json_value.h"

namespace crnkit::svc {

[[nodiscard]] std::string to_json(const ListResponse& resp);
[[nodiscard]] std::string to_json(const ShowResponse& resp);
[[nodiscard]] std::string to_json(const CompileResponse& resp);
[[nodiscard]] std::string to_json(const SimulateResponse& resp);
[[nodiscard]] std::string to_json(const VerifyResponse& resp);
[[nodiscard]] std::string to_json(const BenchResponse& resp);
[[nodiscard]] std::string to_json(const ComposeResponse& resp);
[[nodiscard]] std::string to_json(const AnalyzeResponse& resp);

/// The daemon's error shape: {"schema_version":…, "error": message,
/// "ok": false}.
[[nodiscard]] std::string error_json(const std::string& message);

// Request parsers for the daemon. Each reads its known fields from the
// already-parsed JSON object (missing fields keep the struct defaults) and
// throws std::invalid_argument on type mismatches or bad values.
[[nodiscard]] ListRequest parse_list_request(const util::JsonValue& v);
[[nodiscard]] ShowRequest parse_show_request(const util::JsonValue& v);
[[nodiscard]] CompileRequest parse_compile_request(const util::JsonValue& v);
[[nodiscard]] SimulateRequest parse_simulate_request(
    const util::JsonValue& v);
[[nodiscard]] VerifyRequest parse_verify_request(const util::JsonValue& v);
[[nodiscard]] BenchRequest parse_bench_request(const util::JsonValue& v);
[[nodiscard]] ComposeRequest parse_compose_request(const util::JsonValue& v);
[[nodiscard]] AnalyzeRequest parse_analyze_request(const util::JsonValue& v);

}  // namespace crnkit::svc

#endif  // CRNKIT_SVC_SERIALIZE_H_
