// Target resolution shared by every service entry point: a target is
// either a registry scenario name ("fig1/min") or a path to a `.crn` text
// file. File workloads come back as anonymous scenarios (no reference
// function, no curated verify points) so all downstream code handles one
// type. Moved here from src/cli/ when the subcommand bodies became
// svc::Service methods — the daemon resolves targets the same way.
#ifndef CRNKIT_SVC_WORKLOAD_H_
#define CRNKIT_SVC_WORKLOAD_H_

#include <string>

#include "scenario/registry.h"

namespace crnkit::svc {

struct Workload {
  scenario::Scenario scenario;
  bool from_registry = false;
};

/// Resolves `target` against the registry first, then the filesystem.
/// Throws std::invalid_argument (with suggestions) when it is neither.
[[nodiscard]] Workload load_workload(const std::string& target,
                                     const scenario::Registry& registry =
                                         scenario::Registry::builtin());

}  // namespace crnkit::svc

#endif  // CRNKIT_SVC_WORKLOAD_H_
