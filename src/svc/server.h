// svc::Server — the `crnc serve` daemon core. Listens on a TCP socket and
// answers service requests, auto-detecting the protocol per connection:
//
//  * line-JSON (default): each request is one JSON object on one line,
//    {"op": "verify", "target": "fig1/min", ...}; the response is one line
//    of the same versioned JSON the CLI's --json emits. Ops: list, show,
//    compile, simulate, verify, bench, compose, ping, cache_stats, and
//    batch ({"op":"batch","requests":[...]} — sub-requests are scheduled
//    onto the shared util::TaskPool and answered in order).
//  * HTTP/1.1: POST /v1/<op> with the same JSON object (minus "op") as the
//    body; GET /healthz for liveness (build identity, uptime, cache size)
//    and GET /metrics for the Prometheus text exposition of the process
//    obs::Registry. One response per request, Connection: close.
//
// Connections are handled thread-per-connection; requests of concurrent
// connections run concurrently against one shared svc::Service, so they
// share its content-addressed proof cache. stop() shuts the listener and
// every open connection down and joins all threads — safe to call while
// requests are in flight (in-flight dispatches finish, then the
// connection closes).
#ifndef CRNKIT_SVC_SERVER_H_
#define CRNKIT_SVC_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.h"
#include "util/mutex.h"

namespace crnkit::svc {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; the bound port is port() after start()
    int backlog = 64;
    /// Per-request access log sink (one line per request: op, protocol,
    /// status, latency, cache outcome). Writes are mutex-guarded; the
    /// stream must outlive the server. nullptr disables logging.
    std::ostream* access_log = nullptr;
    /// Admission control: a connection accepted while this many are
    /// already active is answered with one typed retriable "overloaded"
    /// response (HTTP 503 + Retry-After, or the line-JSON equivalent
    /// with retry_after_ms) and closed. 0 = unlimited.
    int max_connections = 0;
    /// A request arriving while this many dispatches are in flight is
    /// shed the same way; /healthz, /metrics, and ping always answer so
    /// operators can see an overloaded server. 0 = unlimited.
    int max_inflight = 0;
    /// Retry hint carried in every shed response.
    int retry_after_ms = 250;
    /// stop() drains: it waits up to this long for in-flight dispatches
    /// to finish before force-closing their connections. 0 = immediate.
    int drain_grace_ms = 2000;
  };

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;  ///< requests answered with an error response
    std::uint64_t shed = 0;    ///< connections/requests refused as overloaded
  };

  /// The service must outlive the server.
  explicit Server(Service& service);
  Server(Service& service, const Options& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Stops accepting, shuts down open connections, joins every thread.
  /// Idempotent.
  void stop();

  /// The bound port (resolved for ephemeral binds). Valid after start().
  [[nodiscard]] int port() const { return port_; }

  [[nodiscard]] Stats stats() const;

  /// Executes one line-JSON request against `service` and returns the
  /// response line (no trailing newline). Never throws: malformed input
  /// and failed requests come back as the error JSON shape. Exposed for
  /// in-process callers (tests, serve_replay's loopback mode). `op_out`,
  /// when given, receives the dispatched op name ("?" when the request
  /// could not be parsed far enough to know) — the label the server's
  /// per-op metrics and access log key by.
  static std::string dispatch_line(Service& service,
                                   const std::string& line,
                                   std::uint64_t* errors = nullptr,
                                   std::string* op_out = nullptr);

 private:
  struct Connection {
    std::atomic<int> fd{-1};
    std::atomic<bool> done{false};
    bool shed = false;  ///< over max_connections: answer overloaded, close
    std::thread thread;
  };

  void accept_loop();
  void handle_connection(Connection& conn);
  void serve_line_protocol(int fd, std::string carry);
  void serve_http(int fd, std::string carry);
  /// Joins finished connection threads (called opportunistically).
  void reap_locked() CRNKIT_REQUIRES(conns_mu_);
  /// Records one dispatched request into the obs registry and, when
  /// options_.access_log is set, appends the access-log line. `cache`
  /// is "hit", "miss", or "-" (op does not touch the proof cache).
  void finish_request(const char* proto, const std::string& op, int status,
                      double seconds, const char* cache);
  /// Classifies the proof-cache outcome from a response body ("cached"
  /// member of verify payloads); "-" when the op reports none.
  [[nodiscard]] static const char* cache_outcome(const std::string& response);

  Service& service_;
  Options options_;
  std::atomic<bool> running_{false};
  /// Atomic: stop() closes and resets the fd from the caller's thread to
  /// wake the accept loop, which reads it concurrently in ::accept().
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::chrono::steady_clock::time_point start_time_{};

  util::Mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_ CRNKIT_GUARDED_BY(conns_mu_);

  util::Mutex log_mu_;  ///< serializes access-log lines

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<int> active_conns_{0};  ///< handler threads not yet done
  std::atomic<int> inflight_{0};      ///< dispatches currently running
};

}  // namespace crnkit::svc

#endif  // CRNKIT_SVC_SERVER_H_
