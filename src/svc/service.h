// svc::Service — the one entry point behind every way of driving crnkit:
// the `crnc` subcommands, the `crnc serve` daemon, and the tests all
// execute the same typed (Request, Response) API (svc/api.h). The service
// owns the content-addressed proof cache: verify requests (and compose
// --verify grids) key each point's verdict by the canonical CRN hash, so
// repeated traffic over the same networks — under any species naming or
// reaction ordering — is answered without re-exploring.
//
// Thread safety: all methods are safe to call concurrently; the proof
// cache is internally locked and everything else is per-call state.
#ifndef CRNKIT_SVC_SERVICE_H_
#define CRNKIT_SVC_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "crn/network.h"
#include "svc/api.h"
#include "svc/proof_cache.h"
#include "verify/stable.h"

namespace crnkit::svc {

class Service {
 public:
  struct Options {
    ProofCache::Options cache;
    /// Deadline applied to verify/simulate requests that do not carry
    /// their own deadline_ms; 0 means none. Expired work returns typed
    /// `deadline_exceeded` results instead of hanging the caller.
    std::int64_t default_deadline_ms = 0;
    /// Soft memory budget for a single exploration, in bytes; 0 means
    /// unlimited. Requests whose max_configs would exceed it are clamped
    /// to a sound truncated verdict (marked `degraded`) instead of
    /// letting one request OOM the process — unless `spill_dir` offers
    /// the exact out-of-core rung of the ladder below.
    std::size_t memory_budget_bytes = 0;
    /// Graceful-degradation ladder: with a spill directory configured,
    /// a request that would be clamped keeps its full budget and the
    /// explorer spills cold arena pages to checksummed segment files
    /// here instead (verdict exact, marked `spilled`). Empty = no spill
    /// rung; over-budget requests degrade as before. Disk failure while
    /// spilling surfaces as a typed retriable `spill_io` error, never a
    /// wrong or truncated verdict.
    std::string spill_dir;
  };

  Service();
  explicit Service(const Options& options);

  [[nodiscard]] ListResponse list(const ListRequest& req) const;
  [[nodiscard]] ShowResponse show(const ShowRequest& req) const;
  [[nodiscard]] CompileResponse compile(const CompileRequest& req) const;
  [[nodiscard]] SimulateResponse simulate(const SimulateRequest& req) const;
  [[nodiscard]] VerifyResponse verify(const VerifyRequest& req);
  [[nodiscard]] BenchResponse bench(const BenchRequest& req) const;
  [[nodiscard]] ComposeResponse compose(const ComposeRequest& req);
  [[nodiscard]] AnalyzeResponse analyze(const AnalyzeRequest& req) const;

  [[nodiscard]] ProofCache& proof_cache() { return cache_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// max_configs after the memory budget: an estimate of bytes/config
  /// caps the budget so one exploration cannot OOM the daemon. The
  /// estimate is the arena row plus a per-config overhead covering every
  /// aux array the explorer allocates per node (hash, CSR offsets +
  /// edges, BFS parents, table slots, frontier candidate) — floored at a
  /// static constant and raised to the bytes-per-config actuals observed
  /// from completed explorations in this process. Returns the input when
  /// no budget is set; sets *degraded when it clamps.
  [[nodiscard]] std::size_t clamp_to_memory_budget(std::size_t max_configs,
                                                   std::size_t width,
                                                   bool* degraded) const;

  /// The non-arena overhead (bytes per config) clamp_to_memory_budget
  /// currently assumes: the static floor or the observed maximum,
  /// whichever is larger. Exposed for the clamp regression tests.
  [[nodiscard]] std::size_t clamp_overhead_per_config() const;

 private:
  struct CheckOutcome {
    VerifyPointReport report;
    bool fresh = false;          ///< computed now (not a cache hit)
    verify::ExploreStats stats;  ///< of the (possibly original) exploration
  };

  /// Checks one verify point, consulting the proof cache first when
  /// `use_cache`. `crn_hash` must be crn::canonical_hash(crn).
  /// Deadline-cancelled results report status `deadline_exceeded` and
  /// are never inserted into the cache (how far an expired exploration
  /// got is wall-clock-dependent, not content-addressed).
  [[nodiscard]] CheckOutcome check_point(
      const crn::Crn& crn, std::uint64_t crn_hash, const fn::Point& x,
      math::Int expected, const verify::StableCheckOptions& options,
      bool use_cache);

  Options options_;
  ProofCache cache_;
  /// Highest non-arena bytes-per-config observed across completed
  /// explorations (id_hash + CSR + parents + slots + candidate, with the
  /// CSR term derived from the actual edge density). Feeds the clamp so
  /// the estimate tracks real workloads instead of trusting the static
  /// floor on edge-dense networks.
  std::atomic<std::size_t> observed_overhead_per_config_{0};
};

}  // namespace crnkit::svc

#endif  // CRNKIT_SVC_SERVICE_H_
