#include "svc/server.h"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "svc/serialize.h"
#include "util/fault_injector.h"
#include "util/json_value.h"
#include "util/json_writer.h"
#include "util/posix_io.h"
#include "util/task_pool.h"
#include "util/version.h"
#include "verify/spill.h"

namespace crnkit::svc {

namespace {

/// Unlabeled server-wide series, resolved once. Per-op series (request
/// counts, latency histograms) are looked up per request instead — one
/// registry probe is noise next to the JSON parse, let alone a verify.
struct ServerMetrics {
  obs::Counter& connections;
  obs::Counter& errors;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
  obs::Gauge& inflight;
  obs::Gauge& active_connections;
  obs::Counter& shed_connections;
  obs::Counter& shed_requests;

  static ServerMetrics& get() {
    auto& reg = obs::Registry::instance();
    static ServerMetrics m{
        reg.counter("crnkit_server_connections_total",
                    "client connections accepted"),
        reg.counter("crnkit_server_errors_total",
                    "requests answered with an error response"),
        reg.counter("crnkit_server_bytes_read_total",
                    "bytes received from clients"),
        reg.counter("crnkit_server_bytes_written_total",
                    "bytes sent to clients"),
        reg.gauge("crnkit_server_inflight_requests",
                  "requests currently being dispatched"),
        reg.gauge("crnkit_server_active_connections",
                  "connections with a live handler thread"),
        reg.counter("crnkit_server_shed_total",
                    "work refused as overloaded, by admission gate",
                    {{"gate", "connections"}}),
        reg.counter("crnkit_server_shed_total",
                    "work refused as overloaded, by admission gate",
                    {{"gate", "inflight"}}),
    };
    return m;
  }
};

bool send_all(int fd, const std::string& data) {
  auto& fi = util::FaultInjector::instance();
  if (fi.armed() && fi.fires("server.write.reset")) {
    errno = ECONNRESET;
    return false;
  }
  const bool ok = util::send_all(fd, data.data(), data.size());
  ServerMetrics::get().bytes_written.inc(data.size());
  return ok;
}

/// recv via the EINTR-retrying wrapper, with the server.read.reset
/// failpoint simulating a peer reset mid-read.
long recv_some(int fd, void* buf, std::size_t len) {
  auto& fi = util::FaultInjector::instance();
  if (fi.armed() && fi.fires("server.read.reset")) {
    errno = ECONNRESET;
    return -1;
  }
  return util::read_some(fd, buf, len);
}

/// The typed retriable shed payload of the line protocol; HTTP carries
/// the same body under a 503 + Retry-After.
std::string overloaded_json(int retry_after_ms) {
  util::JsonWriter w;
  w.begin_object()
      .kv("schema_version", kSchemaVersion)
      .kv("error", "overloaded")
      .kv("retriable", true)
      .kv("retry_after_ms", static_cast<std::int64_t>(retry_after_ms))
      .kv("ok", false)
      .end_object();
  return w.str();
}

/// The typed retriable payload for a spill I/O failure mid-verify
/// (ENOSPC, short write, torn segment): the exploration was discarded at
/// a barrier — no partial or corrupt verdict exists — and the request is
/// safe to retry once the disk recovers. Same shape as overloaded_json
/// so clients back off on one `retriable` field for both.
std::string spill_io_json(const std::string& detail) {
  util::JsonWriter w;
  w.begin_object()
      .kv("schema_version", kSchemaVersion)
      .kv("error", "spill_io")
      .kv("detail", detail)
      .kv("retriable", true)
      .kv("retry_after_ms", std::int64_t{1000})
      .kv("ok", false)
      .end_object();
  return w.str();
}

/// A complete HTTP 503 with a Retry-After hint (rounded up to whole
/// seconds, minimum 1 — the header has no millisecond form).
std::string http_overloaded_response(const std::string& body,
                                     int retry_after_ms) {
  const int retry_after_s =
      retry_after_ms <= 0 ? 1 : (retry_after_ms + 999) / 1000;
  return "HTTP/1.1 503 Service Unavailable\r\n"
         "Content-Type: application/json\r\n"
         "Retry-After: " +
         std::to_string(retry_after_s) +
         "\r\nContent-Length: " + std::to_string(body.size() + 1) +
         "\r\nConnection: close\r\n\r\n" + body + "\n";
}

/// The server.dispatch.delay failpoint: stalls a dispatch by its arg in
/// milliseconds (default 10) to surface tail-latency behaviour.
void maybe_delay_dispatch() {
  auto& fi = util::FaultInjector::instance();
  if (fi.armed() && fi.fires("server.dispatch.delay")) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(fi.arg("server.dispatch.delay", 10)));
  }
}

/// Dispatches one parsed request object (already stripped of transport
/// framing) by op name.
std::string dispatch_op(Service& service, const std::string& op,
                        const util::JsonValue& v) {
  if (op == "list") return to_json(service.list(parse_list_request(v)));
  if (op == "show") return to_json(service.show(parse_show_request(v)));
  if (op == "compile") {
    return to_json(service.compile(parse_compile_request(v)));
  }
  if (op == "simulate") {
    return to_json(service.simulate(parse_simulate_request(v)));
  }
  if (op == "verify") {
    return to_json(service.verify(parse_verify_request(v)));
  }
  if (op == "bench") return to_json(service.bench(parse_bench_request(v)));
  if (op == "compose") {
    return to_json(service.compose(parse_compose_request(v)));
  }
  if (op == "analyze") {
    return to_json(service.analyze(parse_analyze_request(v)));
  }
  if (op == "ping") {
    util::JsonWriter w;
    w.begin_object()
        .kv("schema_version", kSchemaVersion)
        .kv("pong", true)
        .kv("ok", true)
        .end_object();
    return w.str();
  }
  if (op == "metrics") {
    // {"format": "prometheus"} wraps the text exposition in JSON (the
    // shape serve_replay --metrics-out consumes over the line protocol);
    // the default returns the registry as structured JSON.
    if (v.get_string("format", "") == "prometheus") {
      util::JsonWriter w;
      w.begin_object()
          .kv("schema_version", kSchemaVersion)
          .kv("prometheus", obs::Registry::instance().render_prometheus())
          .kv("ok", true)
          .end_object();
      return w.str();
    }
    util::JsonWriter w;
    w.begin_object().kv("schema_version", kSchemaVersion).key("metrics");
    obs::Registry::instance().write_json(w);
    w.kv("ok", true).end_object();
    return w.str();
  }
  if (op == "cache_stats") {
    const ProofCache::Stats stats = service.proof_cache().stats();
    util::JsonWriter w;
    w.begin_object()
        .kv("schema_version", kSchemaVersion)
        .key("cache")
        .begin_object()
        .kv("hits", stats.hits)
        .kv("misses", stats.misses)
        .kv("insertions", stats.insertions)
        .kv("evictions", stats.evictions)
        .kv("entries", stats.entries)
        .kv("bytes", stats.bytes)
        .end_object()
        .kv("ok", true)
        .end_object();
    return w.str();
  }
  throw std::invalid_argument("unknown op '" + op + "'");
}

}  // namespace

std::string Server::dispatch_line(Service& service, const std::string& line,
                                  std::uint64_t* errors,
                                  std::string* op_out) {
  if (op_out != nullptr) *op_out = "?";
  try {
    const util::JsonValue v = util::JsonValue::parse(line);
    const std::string op = v.get("op").as_string();
    if (op_out != nullptr) *op_out = op;
    if (op == "batch") {
      // Sub-requests are scheduled onto the shared work-stealing pool;
      // results come back in request order. Nested batches are rejected
      // (one scheduling layer is enough).
      const util::JsonValue& reqs = v.get("requests");
      std::vector<std::string> results(reqs.size());
      util::TaskPool::instance().parallel_for(
          reqs.size(), 1, [&](std::size_t i) {
            try {
              const std::string sub_op = reqs.at(i).get("op").as_string();
              if (sub_op == "batch") {
                throw std::invalid_argument("nested batch is not allowed");
              }
              results[i] = dispatch_op(service, sub_op, reqs.at(i));
            } catch (const verify::SpillError& e) {
              // Typed retriable shed, not a protocol error: the verify
              // was discarded whole when its spill I/O failed.
              results[i] = spill_io_json(e.what());
            } catch (const std::exception& e) {
              if (errors != nullptr) ++*errors;
              results[i] = error_json(e.what());
            }
          });
      util::JsonWriter w;
      w.begin_object()
          .kv("schema_version", kSchemaVersion)
          .key("results")
          .begin_array();
      for (const std::string& r : results) w.raw_member(r);
      w.end_array().kv("ok", true).end_object();
      return w.str();
    }
    return dispatch_op(service, op, v);
  } catch (const verify::SpillError& e) {
    // Before the generic handler: a spill I/O failure is a typed
    // retriable shed (like overloaded), not a malformed request.
    return spill_io_json(e.what());
  } catch (const std::exception& e) {
    if (errors != nullptr) ++*errors;
    return error_json(e.what());
  }
}

Server::Server(Service& service) : Server(service, Options{}) {}

Server::Server(Service& service, const Options& options)
    : service_(service), options_(options) {}

Server::~Server() { stop(); }

void Server::start() {
  // A client closing mid-response must surface as a send error, not kill
  // the process. util::send_all also passes MSG_NOSIGNAL, but that does
  // not cover every write path on every platform.
  std::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: bad host '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " + options_.host +
                             ":" + std::to_string(options_.port) + ": " +
                             what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      if (errno == EINTR) continue;
      break;
    }
    auto& fi = util::FaultInjector::instance();
    if (fi.armed() && fi.fires("server.accept")) {
      // Simulated accept-path failure: the client sees a reset; the
      // server must keep accepting.
      ::close(fd);
      continue;
    }
    ++connections_;
    ServerMetrics::get().connections.inc();
    const bool shed = options_.max_connections > 0 &&
                      active_conns_.load() >= options_.max_connections;
    active_conns_.fetch_add(1);
    ServerMetrics::get().active_connections.add(1);
    util::MutexLock lock(conns_mu_);
    reap_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd.store(fd);
    conn->shed = shed;
    Connection& ref = *conn;
    conns_.push_back(std::move(conn));
    ref.thread = std::thread([this, &ref] { handle_connection(ref); });
  }
}

void Server::reap_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load() && (*it)->thread.joinable()) {
      (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::handle_connection(Connection& conn) {
  const int fd = conn.fd.load();
  // Peek enough of the first bytes to tell HTTP from line-JSON.
  char buf[4096];
  std::string carry;
  const long first = recv_some(fd, buf, sizeof(buf));
  if (first > 0) {
    ServerMetrics::get().bytes_read.inc(static_cast<std::uint64_t>(first));
    carry.assign(buf, static_cast<std::size_t>(first));
    const bool http = carry.rfind("POST ", 0) == 0 ||
                      carry.rfind("GET ", 0) == 0 ||
                      carry.rfind("HEAD ", 0) == 0 ||
                      carry.rfind("PUT ", 0) == 0;
    if (conn.shed) {
      // Over max_connections: one typed retriable refusal, then close —
      // the client backs off instead of hanging on an unread socket.
      ++shed_;
      ServerMetrics::get().shed_connections.inc();
      const std::string body = overloaded_json(options_.retry_after_ms);
      if (http) {
        (void)send_all(fd,
                       http_overloaded_response(body, options_.retry_after_ms));
      } else {
        (void)send_all(fd, body + "\n");
      }
    } else if (http) {
      serve_http(fd, std::move(carry));
    } else {
      serve_line_protocol(fd, std::move(carry));
    }
  }
  const int owned = conn.fd.exchange(-1);
  if (owned >= 0) ::close(owned);
  conn.done.store(true);
  active_conns_.fetch_sub(1);
  ServerMetrics::get().active_connections.sub(1);
}

void Server::serve_line_protocol(int fd, std::string carry) {
  std::string buffer = std::move(carry);
  char buf[65536];
  while (true) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      ++requests_;
      // ping stays cheap and always answers — it is how clients probe an
      // overloaded server; everything else respects the inflight gate.
      const bool is_ping =
          line.find("\"op\": \"ping\"") != std::string::npos ||
          line.find("\"op\":\"ping\"") != std::string::npos;
      if (!is_ping && options_.max_inflight > 0 &&
          inflight_.load() >= options_.max_inflight) {
        ++shed_;
        ServerMetrics::get().shed_requests.inc();
        finish_request("line", "overloaded", 503, 0.0, "-");
        if (!send_all(fd, overloaded_json(options_.retry_after_ms) + "\n")) {
          return;
        }
        continue;
      }
      inflight_.fetch_add(1);
      ServerMetrics::get().inflight.add(1);
      maybe_delay_dispatch();
      const auto rt0 = std::chrono::steady_clock::now();
      std::uint64_t errs = 0;
      std::string op;
      const std::string response =
          dispatch_line(service_, line, &errs, &op);
      errors_ += errs;
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        rt0)
              .count();
      ServerMetrics::get().inflight.sub(1);
      inflight_.fetch_sub(1);
      finish_request("line", op, errs > 0 ? 400 : 200, seconds,
                     options_.access_log != nullptr ? cache_outcome(response)
                                                    : "-");
      if (!send_all(fd, response + "\n")) return;
    }
    if (!running_.load()) return;
    const long n = recv_some(fd, buf, sizeof(buf));
    if (n <= 0) return;
    ServerMetrics::get().bytes_read.inc(static_cast<std::uint64_t>(n));
    buffer.append(buf, static_cast<std::size_t>(n));
  }
}

void Server::serve_http(int fd, std::string carry) {
  std::string buffer = std::move(carry);
  char buf[65536];
  // Read until the header/body split, then until content-length is met.
  const auto read_more = [&]() -> bool {
    const long n = recv_some(fd, buf, sizeof(buf));
    if (n <= 0) return false;
    ServerMetrics::get().bytes_read.inc(static_cast<std::uint64_t>(n));
    buffer.append(buf, static_cast<std::size_t>(n));
    return true;
  };
  std::size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > (1u << 20) || !read_more()) return;
  }
  const std::string head = buffer.substr(0, header_end);
  std::string body = buffer.substr(header_end + 4);

  const std::size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? "" : request_line.substr(0, sp1);
  const std::string path = sp2 == std::string::npos
                               ? ""
                               : request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  std::size_t content_length = 0;
  {
    // Case-insensitive Content-Length scan over the header block.
    std::string lower = head;
    for (char& c : lower) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    const std::size_t at = lower.find("content-length:");
    if (at != std::string::npos) {
      content_length = static_cast<std::size_t>(
          std::strtoull(head.c_str() + at + 15, nullptr, 10));
    }
  }
  while (body.size() < content_length) {
    if (!read_more()) return;
    body = buffer.substr(header_end + 4);
  }
  body.resize(content_length);

  int status = 200;
  std::string payload;
  std::string content_type = "application/json";
  std::string op = "?";
  ServerMetrics::get().inflight.add(1);
  const auto rt0 = std::chrono::steady_clock::now();
  if (method == "GET" && path == "/healthz") {
    op = "healthz";
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
            .count();
    util::JsonWriter w;
    w.begin_object()
        .kv("schema_version", kSchemaVersion)
        .kv("version", kVersion)
        .kv("git", kGitDescribe)
        .kv_fixed("uptime_seconds", uptime, 3)
        .kv("cache_entries", service_.proof_cache().stats().entries)
        .kv("ok", true)
        .end_object();
    payload = w.str();
    ++requests_;
  } else if (method == "GET" && path == "/metrics") {
    op = "metrics";
    payload = obs::Registry::instance().render_prometheus();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    ++requests_;
  } else if (method == "POST" && path.rfind("/v1/", 0) == 0) {
    op = path.substr(4);
    ++requests_;
    if (options_.max_inflight > 0 &&
        inflight_.load() >= options_.max_inflight) {
      ++shed_;
      ServerMetrics::get().shed_requests.inc();
      status = 503;
      payload = overloaded_json(options_.retry_after_ms);
    } else {
      if (body.empty()) body = "{}";
      // Re-frame as a line request: {"op": <op>, ...body members}.
      // Splicing keeps one dispatch path for both protocols.
      std::string framed = "{\"op\": \"" + util::json_escape(op) + "\"";
      if (body.size() >= 2 && body.front() == '{') {
        const std::size_t open = body.find('{');
        const std::size_t close = body.rfind('}');
        if (close != std::string::npos && close > open) {
          const std::string inner = body.substr(open + 1, close - open - 1);
          const bool blank =
              inner.find_first_not_of(" \t\r\n") == std::string::npos;
          if (!blank) framed += ", " + inner;
        }
      }
      framed += "}";
      inflight_.fetch_add(1);
      maybe_delay_dispatch();
      std::uint64_t errs = 0;
      payload = dispatch_line(service_, framed, &errs, &op);
      inflight_.fetch_sub(1);
      errors_ += errs;
      if (errs > 0) status = 400;
    }
  } else {
    status = 404;
    payload = error_json("no route for " + method + " " + path);
    ++errors_;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - rt0)
          .count();
  ServerMetrics::get().inflight.sub(1);
  finish_request("http", op, status, seconds,
                 options_.access_log != nullptr ? cache_outcome(payload)
                                                : "-");

  if (status == 503) {
    (void)send_all(fd,
                   http_overloaded_response(payload, options_.retry_after_ms));
    return;
  }
  const std::string reason = status == 200   ? "OK"
                             : status == 400 ? "Bad Request"
                                             : "Not Found";
  std::string response = "HTTP/1.1 " + std::to_string(status) + " " +
                         reason + "\r\nContent-Type: " + content_type +
                         "\r\n"
                         "Content-Length: " +
                         std::to_string(payload.size() + 1) +
                         "\r\nConnection: close\r\n\r\n" + payload + "\n";
  (void)send_all(fd, response);
}

void Server::finish_request(const char* proto, const std::string& op,
                            int status, double seconds, const char* cache) {
  auto& reg = obs::Registry::instance();
  reg.counter("crnkit_server_requests_total",
              "requests dispatched, by op and protocol",
              {{"op", op}, {"proto", proto}})
      .inc();
  reg.histogram("crnkit_server_request_seconds",
                "request dispatch latency by op",
                obs::latency_buckets_seconds(), {{"op", op}})
      .observe(seconds);
  if (status >= 400) ServerMetrics::get().errors.inc();
  if (options_.access_log != nullptr) {
    util::MutexLock lock(log_mu_);
    *options_.access_log << "op=" << op << " proto=" << proto
                         << " status=" << status << " lat_us="
                         << static_cast<long long>(seconds * 1e6)
                         << " cache=" << cache << '\n';
    options_.access_log->flush();
  }
}

const char* Server::cache_outcome(const std::string& response) {
  // The verify payload carries a per-request "cached" member; anything
  // else does not touch the proof cache.
  if (response.find("\"cached\": true") != std::string::npos) return "hit";
  if (response.find("\"cached\": false") != std::string::npos) return "miss";
  return "-";
}

void Server::stop() {
  const bool was_running = running_.exchange(false);
  // exchange: exactly one caller closes the fd even under concurrent
  // stop()s, and the accept loop never sees a closed-but-unreset value.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain: give in-flight dispatches (and their response writes) up to
  // the grace period before force-closing their sockets — a SIGTERM'd
  // server finishes what it started, but a stuck request cannot hold
  // shutdown hostage.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_grace_ms);
  while (inflight_.load() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  util::MutexLock lock(conns_mu_);
  for (auto& conn : conns_) {
    const int fd = conn->fd.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
  (void)was_running;
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections = connections_.load();
  s.requests = requests_.load();
  s.errors = errors_.load();
  s.shed = shed_.load();
  return s;
}

}  // namespace crnkit::svc
