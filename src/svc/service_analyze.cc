// Service::analyze — the static CRN analyzer behind `crnc analyze` and the
// daemon's `analyze` op. Runs lint::analyze over one workload (or every
// registry scenario with `all`) and, when an input point is available,
// derives the invariant guide there: per-species bounds, the reachable-set
// bound, and the "x1 + y = 5" certificates that verification stamps into
// proof-cache entries. Error-severity findings in scenarios not tagged
// unverifiable fail the response — the static gate the analyze smoke test
// enforces over the whole registry.
#include <utility>

#include "lint/analyzer.h"
#include "lint/guide.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "svc/service.h"
#include "svc/workload.h"

namespace crnkit::svc {

namespace {

/// Analyzes one scenario and derives the invariant guide at `point` (the
/// request's --input or the scenario's default simulation input) when the
/// point matches the CRN's arity.
AnalyzeScenarioReport analyze_scenario(const scenario::Scenario& s,
                                       bool from_registry,
                                       const fn::Point& point) {
  AnalyzeScenarioReport out;
  out.scenario = s.name;
  out.from_registry = from_registry;
  out.unverifiable = s.unverifiable();
  out.report = lint::analyze(s.crn);
  if (!point.empty() &&
      point.size() == static_cast<std::size_t>(s.crn.input_arity())) {
    const crn::Config initial = s.crn.initial_configuration(point);
    const lint::InvariantGuide guide =
        lint::make_guide(out.report.laws, initial);
    out.input = scenario::point_to_string(point);
    out.bounds = guide.bounds;
    out.reachable_bound = guide.reachable_bound;
    out.certificates = lint::certificates(guide, initial);
  }
  return out;
}

}  // namespace

AnalyzeResponse Service::analyze(const AnalyzeRequest& req) const {
  AnalyzeResponse resp;
  if (req.all) {
    // --all ignores --input: scenarios have different arities, so each is
    // analyzed at its own default simulation input.
    for (const scenario::Scenario& s :
         scenario::Registry::builtin().build_all()) {
      resp.reports.push_back(
          analyze_scenario(s, /*from_registry=*/true, s.sim_input));
    }
  } else {
    const Workload workload = load_workload(req.target);
    const fn::Point point = req.input
                                ? scenario::point_from_string(*req.input)
                                : workload.scenario.sim_input;
    resp.reports.push_back(
        analyze_scenario(workload.scenario, workload.from_registry, point));
  }
  for (const AnalyzeScenarioReport& r : resp.reports) {
    resp.warnings +=
        static_cast<int>(r.report.count(lint::Severity::kWarn));
    // The unverifiable tag documents a known-broken network (e.g. a
    // composed module that consumes its output): its errors are the
    // expected finding, not a regression.
    if (!r.unverifiable) {
      resp.errors += static_cast<int>(r.report.count(lint::Severity::kError));
    }
  }
  resp.ok = resp.errors == 0;
  return resp;
}

}  // namespace crnkit::svc
