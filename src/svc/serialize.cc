#include "svc/serialize.h"

#include <cstdint>

#include "util/json_writer.h"

namespace crnkit::svc {

namespace {

util::JsonWriter versioned() {
  util::JsonWriter w;
  w.begin_object().kv("schema_version", kSchemaVersion);
  return w;
}

void write_summary_members(util::JsonWriter& w,
                           const ScenarioSummary& s) {
  w.kv("name", s.name)
      .kv("title", s.title)
      .kv("paper_ref", s.paper_ref)
      .key("tags")
      .begin_array();
  for (const std::string& t : s.tags) w.value(t);
  w.end_array()
      .kv("species", s.species)
      .kv("reactions", s.reactions)
      .kv("arity", s.arity)
      .kv("leader", s.leader)
      .kv("output_oblivious", s.output_oblivious);
}

}  // namespace

std::string to_json(const ListResponse& resp) {
  util::JsonWriter w = versioned();
  w.key("scenarios").begin_array();
  for (const ScenarioSummary& s : resp.scenarios) {
    w.begin_object();
    write_summary_members(w, s);
    w.kv("verify_points", s.verify_points).kv("sim_input", s.sim_input);
    if (!s.unverifiable_reason.empty()) {
      w.kv("unverifiable_reason", s.unverifiable_reason);
    }
    w.end_object();
  }
  w.end_array().kv("count", resp.scenarios.size()).end_object();
  return w.str();
}

std::string to_json(const ShowResponse& resp) {
  const ScenarioSummary& s = resp.summary;
  util::JsonWriter w = versioned();
  w.kv("name", s.name)
      .kv("title", s.title)
      .kv("paper_ref", s.paper_ref)
      .kv("from_registry", resp.from_registry)
      .key("tags")
      .begin_array();
  for (const std::string& t : s.tags) w.value(t);
  w.end_array()
      .kv("species", s.species)
      .kv("reactions", s.reactions)
      .kv("arity", s.arity)
      .kv("leader", s.leader)
      .kv("output_oblivious", s.output_oblivious)
      .kv("output_monotonic", resp.output_monotonic)
      .kv("max_reaction_order",
          static_cast<std::int64_t>(resp.max_reaction_order))
      .kv("reference", resp.reference);
  if (!s.unverifiable_reason.empty()) {
    w.kv("unverifiable_reason", s.unverifiable_reason);
  }
  w.key("verify_points").begin_array();
  for (const ShowVerifyPoint& point : resp.verify_points) {
    w.begin_object().kv("x", point.x);
    if (point.has_expected) {
      w.kv("expected", static_cast<std::int64_t>(point.expected));
    }
    w.end_object();
  }
  w.end_array()
      .kv("sim_input", s.sim_input)
      .kv("crn_text", resp.crn_text)
      .end_object();
  return w.str();
}

std::string to_json(const CompileResponse& resp) {
  util::JsonWriter w = versioned();
  w.kv("name", resp.name)
      .kv("species", resp.species)
      .kv("reactions", resp.reactions)
      .kv("bimolecular", resp.bimolecular)
      .kv("out", resp.out)
      .kv("crn_text", resp.crn_text)
      .end_object();
  return w.str();
}

std::string to_json(const SimulateResponse& resp) {
  util::JsonWriter w = versioned();
  w.kv("scenario", resp.scenario)
      .kv("input", resp.input)
      .kv("method", resp.method)
      .kv("trajectories", static_cast<std::int64_t>(resp.trajectories))
      .kv("threads", resp.threads)
      .kv("seed", resp.seed)
      .kv("silent", resp.silent)
      .kv("total_events", resp.total_events)
      .kv_fixed("wall_seconds", resp.wall_seconds, 6)
      .kv_fixed("events_per_sec", resp.events_per_sec, 1)
      .kv("output_consistent", resp.output_consistent)
      .kv("compared", resp.compared)
      .kv("output", static_cast<std::int64_t>(resp.output));
  if (resp.has_expected) {
    w.kv("expected", static_cast<std::int64_t>(resp.expected));
  }
  if (resp.deadline_exceeded) {
    w.kv("deadline_exceeded", true).kv("cancelled", resp.cancelled);
  }
  w.kv("ok", resp.ok).end_object();
  return w.str();
}

std::string to_json(const VerifyResponse& resp) {
  util::JsonWriter w = versioned();
  if (resp.skipped) {
    w.kv("scenario", resp.scenario)
        .kv("skipped", true)
        .kv("reason", resp.reason)
        .kv("ok", resp.ok)
        .end_object();
    return w.str();
  }
  w.kv("scenario", resp.scenario)
      .kv("max_configs", resp.max_configs)
      .kv("conservation_laws", resp.conservation_laws)
      .key("points")
      .begin_array();
  for (const VerifyPointReport& p : resp.points) {
    w.begin_object()
        .kv("x", p.x)
        .kv("expected", static_cast<std::int64_t>(p.expected))
        .kv("ok", p.ok)
        .kv("complete", p.complete)
        .kv("configs", p.configs)
        .kv("status", p.status)
        .kv("cached", p.cached);
    // Out-of-core annotation: absent on in-RAM points, so the JSON of
    // budget-free runs is byte-identical to before the spill rung.
    if (p.spilled) w.kv("spilled", true);
    if (!p.witness.empty()) {
      w.key("witness").begin_array();
      for (const int r : p.witness) w.value(r);
      w.end_array();
    }
    if (!p.invariants.empty()) {
      w.key("invariants").begin_array();
      for (const std::string& cert : p.invariants) w.value(cert);
      w.end_array();
    }
    if (resp.want_stats) {
      w.kv("edges", p.edges)
          .kv_fixed("wall_seconds", p.wall_seconds, 6)
          .kv_fixed("configs_per_sec",
                    p.wall_seconds > 0.0
                        ? static_cast<double>(p.configs) / p.wall_seconds
                        : 0.0,
                    1)
          .kv("frontier_peak", p.frontier_peak)
          .kv("arena_bytes", p.arena_bytes);
      if (p.spilled) {
        w.kv("spill_bytes_written", p.spill_bytes_written)
            .kv("spill_bytes_read", p.spill_bytes_read);
      }
    }
    w.end_object();
  }
  w.end_array()
      .kv("proved", resp.proved)
      .kv("failed", resp.failed)
      .kv("inconclusive", resp.inconclusive)
      .kv("deadline_exceeded", resp.deadline_exceeded)
      .kv("degraded", resp.degraded)
      .kv("spilled", resp.spilled)
      .kv("max_configs_explored", resp.max_configs_explored)
      .kv("cache_hits", resp.cache_hits)
      .kv("cache_misses", resp.cache_misses);
  if (resp.want_stats) {
    const double total_rate =
        resp.total_seconds > 0.0
            ? static_cast<double>(resp.total_configs) / resp.total_seconds
            : 0.0;
    w.key("stats")
        .begin_object()
        .kv("threads", resp.threads_resolved)
        .kv("configs", resp.total_configs)
        .kv("edges", resp.total_edges)
        .kv_fixed("wall_seconds", resp.total_seconds, 6)
        .kv_fixed("configs_per_sec", total_rate, 1)
        .kv("frontier_peak", resp.frontier_peak)
        .kv("arena_bytes", resp.arena_bytes_peak)
        .kv("spill_bytes_written", resp.spill_bytes_written)
        .kv("spill_bytes_read", resp.spill_bytes_read)
        .key("pool")
        .begin_object()
        .kv("tasks", resp.pool_tasks)
        .kv("steals", resp.pool_steals)
        .kv("parks", resp.pool_parks)
        .kv_fixed("park_ratio",
                  resp.pool_tasks > 0
                      ? static_cast<double>(resp.pool_parks) /
                            static_cast<double>(resp.pool_tasks)
                      : 0.0,
                  3)
        .end_object()
        .end_object();
  }
  w.kv("ok", resp.ok).end_object();
  return w.str();
}

std::string to_json(const BenchResponse& resp) {
  util::JsonWriter w = versioned();
  w.kv("name", resp.name)
      .kv("input", resp.input)
      .kv("method", resp.method)
      .kv("trajectories", resp.trajectories)
      .kv("species", resp.species)
      .kv("reactions", resp.reactions)
      .kv_fixed("events_per_sec", resp.events_per_sec, 1)
      .kv_fixed("wall_seconds", resp.wall_seconds, 6)
      .kv("events", resp.events)
      .end_object();
  return w.str();
}

std::string to_json(const ComposeResponse& resp) {
  util::JsonWriter w = versioned();
  w.kv("target", resp.target)
      .kv("name", resp.name)
      .kv("arity", resp.arity)
      .kv("modules", resp.modules);
  if (!resp.expression.empty()) w.kv("expression", resp.expression);
  w.key("certification").begin_array();
  for (const ComposeCertRecord& c : resp.certification) {
    w.begin_object()
        .kv("module", c.module)
        .kv("oblivious", c.oblivious)
        .kv("composable", c.composable)
        .kv("reactions_stripped", c.reactions_stripped)
        .kv("detail", c.detail);
    if (!c.static_screen.empty()) w.kv("static_screen", c.static_screen);
    w.end_object();
  }
  w.end_array().kv("certified", resp.certified);
  if (!resp.compiled) {
    w.kv("ok", false).end_object();
    return w.str();
  }
  w.kv("species_raw", resp.species_raw)
      .kv("reactions_raw", resp.reactions_raw)
      .key("passes")
      .begin_array();
  for (const ComposePassStat& p : resp.passes) {
    w.begin_object()
        .kv("pass", p.pass)
        .kv("species_before", p.species_before)
        .kv("species_after", p.species_after)
        .kv("reactions_before", p.reactions_before)
        .kv("reactions_after", p.reactions_after)
        .end_object();
  }
  w.end_array()
      .kv("species", resp.species)
      .kv("reactions", resp.reactions);
  if (resp.verify) {
    w.key("verify")
        .begin_object()
        .kv("grid", static_cast<std::int64_t>(resp.verify->grid))
        .kv("points", resp.verify->points)
        .kv("proved", resp.verify->proved)
        .kv("failed", resp.verify->failed)
        .kv("inconclusive", resp.verify->inconclusive)
        .kv("cache_hits", resp.verify->cache_hits)
        .kv("cache_misses", resp.verify->cache_misses)
        .end_object();
  }
  if (resp.simcheck) {
    w.key("simcheck")
        .begin_object()
        .kv("points", resp.simcheck->points)
        .kv("trials", resp.simcheck->trials)
        .kv("silent_trials", resp.simcheck->silent_trials)
        .kv("non_silent_trials", resp.simcheck->non_silent_trials)
        .kv("mismatches", resp.simcheck->mismatches)
        .kv("inconclusive_points", resp.simcheck->inconclusive_points)
        .kv("verdict", resp.simcheck->verdict)
        .end_object();
  }
  w.kv("ok", resp.ok).end_object();
  return w.str();
}

std::string to_json(const AnalyzeResponse& resp) {
  util::JsonWriter w = versioned();
  w.key("reports").begin_array();
  for (const AnalyzeScenarioReport& r : resp.reports) {
    const lint::AnalysisReport& a = r.report;
    w.begin_object()
        .kv("scenario", r.scenario)
        .kv("from_registry", r.from_registry)
        .kv("unverifiable", r.unverifiable)
        .kv("species", a.species)
        .kv("reactions", a.reactions)
        .key("conservation_laws")
        .begin_array();
    for (const lint::ConservationLaw& law : a.laws) {
      w.begin_object()
          .kv("law", law.rendering)
          .kv("semiflow", law.semiflow)
          .key("weights")
          .begin_array();
      for (const math::Int weight : law.weights) {
        w.value(static_cast<std::int64_t>(weight));
      }
      w.end_array().end_object();
    }
    w.end_array().key("composability").begin_object();
    w.kv("output_declared", a.screen.output_declared)
        .kv("oblivious", a.screen.oblivious);
    if (a.screen.offending_reaction >= 0) {
      w.kv("offending_reaction",
           static_cast<std::int64_t>(a.screen.offending_reaction))
          .kv("offending", a.screen.offending_rendering);
    }
    w.end_object().key("diagnostics").begin_array();
    for (const lint::Diagnostic& d : a.diagnostics) {
      w.begin_object()
          .kv("severity", lint::severity_name(d.severity))
          .kv("code", d.code)
          .kv("message", d.message);
      if (d.reaction >= 0) {
        w.kv("reaction", static_cast<std::int64_t>(d.reaction));
      }
      if (!d.species.empty()) w.kv("species", d.species);
      w.end_object();
    }
    w.end_array()
        .kv("errors", a.count(lint::Severity::kError))
        .kv("warnings", a.count(lint::Severity::kWarn))
        .kv("infos", a.count(lint::Severity::kInfo));
    if (!r.input.empty()) {
      w.kv("input", r.input).key("bounds").begin_array();
      for (const math::Int b : r.bounds) {
        w.value(static_cast<std::int64_t>(b));
      }
      w.end_array().kv("reachable_bound",
                       static_cast<std::int64_t>(r.reachable_bound));
      w.key("certificates").begin_array();
      for (const std::string& cert : r.certificates) w.value(cert);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array()
      .kv("errors", resp.errors)
      .kv("warnings", resp.warnings)
      .kv("ok", resp.ok)
      .end_object();
  return w.str();
}

std::string error_json(const std::string& message) {
  util::JsonWriter w = versioned();
  w.kv("error", message).kv("ok", false).end_object();
  return w.str();
}

namespace {

std::optional<std::string> opt_string(const util::JsonValue& v,
                                      const std::string& key) {
  const util::JsonValue* member = v.find(key);
  if (member == nullptr || member->is_null()) return std::nullopt;
  return member->as_string();
}

}  // namespace

ListRequest parse_list_request(const util::JsonValue& v) {
  ListRequest req;
  req.tag = opt_string(v, "tag");
  return req;
}

ShowRequest parse_show_request(const util::JsonValue& v) {
  ShowRequest req;
  req.target = v.get("target").as_string();
  return req;
}

CompileRequest parse_compile_request(const util::JsonValue& v) {
  CompileRequest req;
  req.target = v.get("target").as_string();
  req.bimolecular = v.get_bool("bimolecular", false);
  return req;
}

SimulateRequest parse_simulate_request(const util::JsonValue& v) {
  SimulateRequest req;
  req.target = v.get("target").as_string();
  req.input = opt_string(v, "input");
  req.trajectories =
      static_cast<int>(v.get_int("trajectories", req.trajectories));
  req.seed = static_cast<std::uint64_t>(
      v.get_int("seed", static_cast<std::int64_t>(req.seed)));
  req.threads = static_cast<int>(v.get_int("threads", req.threads));
  if (v.has("max_steps")) {
    req.max_steps = static_cast<std::uint64_t>(v.get("max_steps").as_int());
  }
  if (v.has("max_events")) {
    req.max_events =
        static_cast<std::uint64_t>(v.get("max_events").as_int());
  }
  req.method = v.get_string("method", req.method);
  req.deadline_ms = v.get_int("deadline_ms", 0);
  return req;
}

VerifyRequest parse_verify_request(const util::JsonValue& v) {
  VerifyRequest req;
  req.target = v.get("target").as_string();
  req.grid = opt_string(v, "grid");
  req.input = opt_string(v, "input");
  req.expect = opt_string(v, "expect");
  req.max_configs = static_cast<std::size_t>(v.get_int("max_configs", 0));
  req.threads = static_cast<int>(v.get_int("threads", req.threads));
  req.force = v.get_bool("force", false);
  req.stats = v.get_bool("stats", false);
  req.use_cache = v.get_bool("use_cache", true);
  req.use_invariants = v.get_bool("use_invariants", true);
  req.deadline_ms = v.get_int("deadline_ms", 0);
  // checkpoint_path / checkpoint_every_secs / resume are deliberately
  // not parsed: file paths never cross the wire (see header note).
  return req;
}

BenchRequest parse_bench_request(const util::JsonValue& v) {
  BenchRequest req;
  req.target = v.get("target").as_string();
  req.input = opt_string(v, "input");
  req.trajectories =
      static_cast<int>(v.get_int("trajectories", req.trajectories));
  req.events = static_cast<std::uint64_t>(
      v.get_int("events", static_cast<std::int64_t>(req.events)));
  req.seed = static_cast<std::uint64_t>(
      v.get_int("seed", static_cast<std::int64_t>(req.seed)));
  req.threads = static_cast<int>(v.get_int("threads", req.threads));
  req.method = v.get_string("method", req.method);
  return req;
}

ComposeRequest parse_compose_request(const util::JsonValue& v) {
  ComposeRequest req;
  req.target = v.get("target").as_string();
  req.no_opt = v.get_bool("no_opt", false);
  req.skip_cert = v.get_bool("skip_cert", false);
  req.do_verify = v.get_bool("verify", false);
  req.do_simcheck = v.get_bool("simcheck", false);
  req.cert_grid = v.get_int("cert_grid", static_cast<std::int64_t>(2));
  req.grid = v.get_int("grid", static_cast<std::int64_t>(1));
  req.max_configs = static_cast<std::size_t>(v.get_int("max_configs", 0));
  req.trials = static_cast<int>(v.get_int("trials", req.trials));
  req.max_steps = static_cast<std::uint64_t>(
      v.get_int("max_steps", static_cast<std::int64_t>(req.max_steps)));
  req.seed = static_cast<std::uint64_t>(
      v.get_int("seed", static_cast<std::int64_t>(req.seed)));
  req.threads = static_cast<int>(v.get_int("threads", req.threads));
  req.use_cache = v.get_bool("use_cache", true);
  return req;
}

AnalyzeRequest parse_analyze_request(const util::JsonValue& v) {
  AnalyzeRequest req;
  req.all = v.get_bool("all", false);
  if (!req.all) req.target = v.get("target").as_string();
  req.input = opt_string(v, "input");
  return req;
}

}  // namespace crnkit::svc
