// The typed request/response API of the crnkit service layer. Every entry
// point the `crnc` subcommands used to hand-roll — list, show, compile,
// compose, simulate, verify, bench — is a (Request, Response) struct pair
// here, executed by svc::Service. The CLI, the `crnc serve` daemon, and
// tests all drive this one API; JSON serialization of the responses (and
// parsing of daemon requests) lives in svc/serialize.h, stamped with
// kSchemaVersion on every top-level object.
#ifndef CRNKIT_SVC_API_H_
#define CRNKIT_SVC_API_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lint/diagnostics.h"
#include "math/numtheory.h"

namespace crnkit::svc {

/// Version of the JSON wire schema. Emitted as "schema_version" in every
/// top-level JSON object the service (CLI --json and daemon) produces;
/// bumped on any incompatible field change.
inline constexpr std::int64_t kSchemaVersion = 1;

// ---------------------------------------------------------------- list --

struct ListRequest {
  /// Keep only scenarios carrying this tag when set.
  std::optional<std::string> tag;
};

struct ScenarioSummary {
  std::string name;
  std::string title;
  std::string paper_ref;
  std::vector<std::string> tags;
  std::size_t species = 0;
  std::size_t reactions = 0;
  int arity = 0;
  bool leader = false;
  bool output_oblivious = false;
  std::size_t verify_points = 0;
  std::string sim_input;
  std::string unverifiable_reason;  ///< empty unless tagged unverifiable
};

struct ListResponse {
  std::vector<ScenarioSummary> scenarios;
};

// ---------------------------------------------------------------- show --

struct ShowRequest {
  std::string target;  ///< registry scenario name or .crn file path
};

struct ShowVerifyPoint {
  std::string x;  ///< "3,4" form
  bool has_expected = false;
  math::Int expected = 0;
};

struct ShowResponse {
  ScenarioSummary summary;
  bool from_registry = false;
  bool output_monotonic = false;
  int max_reaction_order = 0;
  std::string reference;  ///< reference function name, "" for file workloads
  std::vector<ShowVerifyPoint> verify_points;
  std::string crn_text;
};

// ------------------------------------------------------------- compile --

struct CompileRequest {
  std::string target;
  bool bimolecular = false;
  std::string out_path;  ///< write the .crn text here when nonempty
};

struct CompileResponse {
  std::string name;
  std::size_t species = 0;
  std::size_t reactions = 0;
  bool bimolecular = false;
  std::string out;  ///< path written, "" when none
  std::string crn_text;
};

// ------------------------------------------------------------ simulate --

struct SimulateRequest {
  std::string target;
  std::optional<std::string> input;  ///< "3,4"; default: scenario sim input
  int trajectories = 16;
  std::uint64_t seed = 1;
  int threads = 0;  ///< 0 = hardware concurrency
  std::optional<std::uint64_t> max_steps;
  std::optional<std::uint64_t> max_events;
  std::string method = "direct";  ///< silent|direct|next-reaction|population
  /// Wall-clock budget for the whole batch, in milliseconds; 0 means the
  /// server default (or none). On expiry, remaining trajectories are
  /// skipped and the response is marked deadline_exceeded.
  std::int64_t deadline_ms = 0;
};

struct SimulateResponse {
  std::string scenario;
  std::string input;
  std::string method;
  std::size_t trajectories = 0;
  int threads = 0;
  std::uint64_t seed = 0;
  int silent = 0;
  std::uint64_t total_events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  bool output_consistent = false;
  bool compared = false;  ///< some trajectory settled; output was checked
  math::Int output = 0;
  bool has_expected = false;
  math::Int expected = 0;
  bool all_silent = false;
  std::string summary;  ///< EnsembleResult::summary() human line
  int cancelled = 0;  ///< trajectories skipped by the deadline
  bool deadline_exceeded = false;
  bool ok = false;
};

// -------------------------------------------------------------- verify --

struct VerifyRequest {
  std::string target;
  std::optional<std::string> grid;    ///< sweep [0,N]^d instead of points
  std::optional<std::string> input;   ///< single point "3,4"
  std::optional<std::string> expect;  ///< expected output for --input
  std::size_t max_configs = 0;  ///< 0 = scenario hint or checker default
  int threads = 1;
  bool force = false;  ///< verify even when tagged unverifiable
  bool stats = false;  ///< collect exploration perf counters
  bool use_cache = true;
  /// Feed statically extracted conservation laws to the explorer
  /// (per-species bounds + arena/hash presizing). Verdicts and graphs are
  /// bit-identical either way; this is the perf/escape hatch.
  bool use_invariants = true;
  /// Wall-clock budget for the whole request, in milliseconds; 0 means
  /// the server default (or none). Expired points return the typed
  /// `deadline_exceeded` inconclusive status instead of hanging, and
  /// their (nondeterministic) partial verdicts are never cached.
  std::int64_t deadline_ms = 0;
  // Checkpoint/resume (CLI-only: serialize.cc deliberately never parses
  // these — a remote client must not make the daemon touch files).
  std::string checkpoint_path;
  double checkpoint_every_secs = 30.0;
  bool resume = false;
};

struct VerifyPointReport {
  std::string x;
  math::Int expected = 0;
  bool ok = false;
  bool complete = false;
  std::size_t configs = 0;
  std::size_t edges = 0;
  std::string status;  ///< proved | FAILED | inconclusive | deadline_exceeded
  bool cached = false;  ///< served from the proof cache
  /// The exploration spilled cold arena pages to disk to stay inside the
  /// memory budget — the verdict is still exact (out-of-core, not
  /// truncated). Cached verdicts carry the flag of the original run.
  bool spilled = false;
  double wall_seconds = 0.0;
  std::size_t frontier_peak = 0;
  std::size_t arena_bytes = 0;
  std::uint64_t spill_bytes_written = 0;
  std::uint64_t spill_bytes_read = 0;
  /// Replayable reaction path I_x -> counterexample (FAILED points only).
  std::vector<int> witness;
  /// Conservation-law certificates at this point's I_x ("x1 + y = 5"),
  /// stamped by the static analyzer; cached verdicts carry the
  /// certificates they were computed under.
  std::vector<std::string> invariants;
};

struct VerifyResponse {
  std::string scenario;
  bool skipped = false;  ///< unverifiable scenario without force
  std::string reason;    ///< skip reason
  std::size_t max_configs = 0;
  /// Conservation laws extracted for the CRN (0 when use_invariants was
  /// off or the network admits none).
  std::size_t conservation_laws = 0;
  std::vector<VerifyPointReport> points;
  int proved = 0;
  int failed = 0;
  int inconclusive = 0;  ///< includes deadline_exceeded points
  int deadline_exceeded = 0;  ///< points cut short by the deadline
  /// The memory budget clamped max_configs below the requested value:
  /// over-budget points report sound truncated (inconclusive) verdicts
  /// instead of risking the process. Never set together with `spilled` —
  /// a configured spill directory converts would-be degradation into an
  /// exact out-of-core exploration instead.
  bool degraded = false;
  /// Some point's exploration ran out-of-core (see
  /// VerifyPointReport::spilled); the verdicts are exact.
  bool spilled = false;
  std::size_t max_configs_explored = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  // --- aggregates surfaced under stats ---
  std::size_t total_configs = 0;
  std::size_t total_edges = 0;
  double total_seconds = 0.0;  ///< fresh computations only (hits are free)
  std::size_t frontier_peak = 0;
  std::size_t arena_bytes_peak = 0;
  std::uint64_t spill_bytes_written = 0;
  std::uint64_t spill_bytes_read = 0;
  std::uint64_t pool_tasks = 0;
  std::uint64_t pool_steals = 0;
  std::uint64_t pool_parks = 0;
  int threads_resolved = 1;
  bool want_stats = false;
  bool ok = false;
};

// --------------------------------------------------------------- bench --

struct BenchRequest {
  std::string target;
  std::optional<std::string> input;
  int trajectories = 8;
  std::uint64_t events = 400'000;
  std::uint64_t seed = 12345;
  int threads = 0;
  std::string method = "direct";
};

struct BenchResponse {
  std::string name;
  std::string input;
  std::string method;
  int trajectories = 0;
  std::size_t species = 0;
  std::size_t reactions = 0;
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
};

// ------------------------------------------------------------- compose --

struct ComposeRequest {
  std::string target;  ///< expression | .wire file | circuit/random-N-S
  bool no_opt = false;
  bool skip_cert = false;
  bool do_verify = false;
  bool do_simcheck = false;
  std::string out_path;
  math::Int cert_grid = 2;
  math::Int grid = 1;
  std::size_t max_configs = 0;
  int trials = 5;
  std::uint64_t max_steps = 5'000'000;
  std::uint64_t seed = 1;
  int threads = 1;
  bool use_cache = true;
};

struct ComposeCertRecord {
  std::string module;
  bool oblivious = false;
  bool composable = false;
  int reactions_stripped = 0;
  std::string detail;
  /// The static analyzer's pre-certification screen: "clean" when no
  /// reaction consumes the module's output, otherwise
  /// "consumes-output: <reaction>" naming the offending reaction — the
  /// syntactic half of Lemma 2.3, decided before any BFS.
  std::string static_screen;
};

struct ComposePassStat {
  std::string pass;
  std::size_t species_before = 0;
  std::size_t species_after = 0;
  std::size_t reactions_before = 0;
  std::size_t reactions_after = 0;

  [[nodiscard]] bool changed() const {
    return species_before != species_after ||
           reactions_before != reactions_after;
  }
};

struct ComposeVerifySummary {
  math::Int grid = 1;
  std::size_t points = 0;
  int proved = 0;
  int failed = 0;
  int inconclusive = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

struct ComposeSimcheckSummary {
  std::size_t points = 0;
  int trials = 0;
  int silent_trials = 0;
  int non_silent_trials = 0;
  int mismatches = 0;
  int inconclusive_points = 0;
  std::string verdict;  ///< pass | fail | inconclusive
  std::string summary;  ///< human line
};

struct ComposeResponse {
  std::string target;
  std::string name;
  std::string expression;  ///< rendered expression, "" for wire files
  int arity = 1;
  std::size_t modules = 0;
  std::vector<ComposeCertRecord> certification;
  bool certified = false;
  /// False when certification refused the composition (nothing compiled).
  bool compiled = false;
  std::size_t species_raw = 0;
  std::size_t reactions_raw = 0;
  std::vector<ComposePassStat> passes;
  std::size_t species = 0;
  std::size_t reactions = 0;
  std::string out;  ///< path written, "" when none
  std::optional<ComposeVerifySummary> verify;
  std::optional<ComposeSimcheckSummary> simcheck;
  bool ok = false;
};

// ------------------------------------------------------------- analyze --

struct AnalyzeRequest {
  std::string target;  ///< scenario name or .crn file; ignored with `all`
  bool all = false;    ///< analyze every registry scenario
  /// Derive invariant bounds/certificates at this input point instead of
  /// the scenario's default simulation input.
  std::optional<std::string> input;
};

/// The static analyzer's findings for one CRN, plus the invariant guide
/// derived at a representative input point (when one is available).
struct AnalyzeScenarioReport {
  std::string scenario;
  bool from_registry = false;
  /// Tagged unverifiable in the registry: error-severity findings here are
  /// expected (the tag documents the breakage) and do not fail the run.
  bool unverifiable = false;
  lint::AnalysisReport report;
  std::string input;  ///< point the guide was derived at, "" when none
  std::vector<math::Int> bounds;  ///< per-species bound, -1 = unbounded
  math::Int reachable_bound = -1;  ///< product bound on reachable configs
  std::vector<std::string> certificates;  ///< "x1 + y = 5" lines
};

struct AnalyzeResponse {
  std::vector<AnalyzeScenarioReport> reports;
  /// Error-severity findings in scenarios NOT tagged unverifiable — the
  /// count that makes `crnc analyze --all` exit non-zero.
  int errors = 0;
  int warnings = 0;
  bool ok = false;  ///< errors == 0
};

}  // namespace crnkit::svc

#endif  // CRNKIT_SVC_API_H_
