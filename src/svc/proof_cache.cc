#include "svc/proof_cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "util/hash.h"
#include "util/json_value.h"
#include "util/json_writer.h"
#include "util/posix_io.h"

namespace crnkit::svc {

namespace {

/// Process-wide cache series (all ProofCache instances pool into them;
/// the serve daemon owns exactly one). Counters are bumped under the
/// cache mutex, from the same increments that feed stats() — so a scrape
/// can never disagree with the authoritative totals, only trail them.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& insertions;
  obs::Counter& evictions;
  obs::Counter& coalesced;
  obs::Gauge& entries;
  obs::Gauge& bytes;

  static CacheMetrics& get() {
    auto& reg = obs::Registry::instance();
    static CacheMetrics m{
        reg.counter("crnkit_cache_hits_total", "proof cache lookup hits"),
        reg.counter("crnkit_cache_misses_total", "proof cache lookup misses"),
        reg.counter("crnkit_cache_insertions_total",
                    "proof cache verdicts inserted"),
        reg.counter("crnkit_cache_evictions_total",
                    "proof cache entries evicted by the byte budget"),
        reg.counter("crnkit_cache_coalesced_total",
                    "lookups that waited behind an identical in-flight "
                    "verify instead of exploring concurrently"),
        reg.gauge("crnkit_cache_entries", "proof cache entries resident"),
        reg.gauge("crnkit_cache_bytes", "proof cache resident bytes"),
    };
    return m;
  }
};

constexpr const char* kFormat = "crnkit-proof-cache";
// v2: entries carry invariant certificates (checksum content changed).
constexpr std::int64_t kCacheSchemaVersion = 2;

std::string to_hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex(const std::string& text) {
  if (text.empty() || text.size() > 16) {
    throw std::runtime_error("proof cache: bad hex field '" + text + "'");
  }
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw std::runtime_error("proof cache: bad hex field '" + text + "'");
    }
  }
  return v;
}

/// Checksum over the verdict-critical content of the persisted entries, in
/// file order. Perf counters are informational and excluded.
std::uint64_t entries_checksum(
    const std::vector<std::pair<ProofKey, ProofVerdict>>& entries) {
  using util::hash_chain;
  std::uint64_t h = 0x70726f6f66ULL;  // "proof"
  for (const auto& [key, verdict] : entries) {
    h = hash_chain(h, key.crn_hash);
    h = hash_chain(h, key.x.size());
    for (const math::Int v : key.x) {
      h = hash_chain(h, static_cast<std::uint64_t>(v));
    }
    h = hash_chain(h, static_cast<std::uint64_t>(key.expected));
    h = hash_chain(h, verdict.budget);
    h = hash_chain(h, verdict.complete ? 1 : 0);
    h = hash_chain(h, verdict.ok ? 1 : 0);
    h = hash_chain(h, verdict.num_configs);
    h = hash_chain(h, verdict.num_edges);
    h = hash_chain(h, verdict.witness.size());
    for (const int r : verdict.witness) {
      h = hash_chain(h, static_cast<std::uint64_t>(r));
    }
    h = hash_chain(h, verdict.invariants.size());
    for (const std::string& cert : verdict.invariants) {
      h = hash_chain(h, cert.size());
      for (const char c : cert) {
        h = hash_chain(h, static_cast<std::uint64_t>(
                              static_cast<unsigned char>(c)));
      }
    }
  }
  return h;
}

/// Writes one entry's verdict-critical + informational fields as a JSON
/// object (shared by the snapshot writer and the journal appender).
void write_entry(util::JsonWriter& w, const ProofKey& key,
                 const ProofVerdict& verdict) {
  w.begin_object().kv("crn_hash", to_hex(key.crn_hash)).key("x")
      .begin_array();
  for (const math::Int v : key.x) w.value(static_cast<std::int64_t>(v));
  w.end_array()
      .kv("expected", static_cast<std::int64_t>(key.expected))
      .kv("budget", verdict.budget)
      .kv("complete", verdict.complete)
      .kv("ok", verdict.ok)
      .kv("configs", verdict.num_configs)
      .kv("edges", verdict.num_edges)
      .kv_fixed("wall_seconds", verdict.stats.wall_seconds, 6)
      .kv("frontier_peak", verdict.stats.frontier_peak)
      .kv("levels", verdict.stats.levels)
      .kv("arena_bytes", verdict.stats.arena_bytes)
      .key("witness")
      .begin_array();
  for (const int r : verdict.witness) w.value(r);
  w.end_array().key("invariants").begin_array();
  for (const std::string& cert : verdict.invariants) w.value(cert);
  w.end_array().end_object();
}

/// Inverse of write_entry; throws on any missing or malformed field.
std::pair<ProofKey, ProofVerdict> parse_entry(const util::JsonValue& e) {
  ProofKey key;
  key.crn_hash = parse_hex(e.get("crn_hash").as_string());
  for (const util::JsonValue& v : e.get("x").items()) {
    key.x.push_back(v.as_int());
  }
  key.expected = e.get("expected").as_int();
  ProofVerdict verdict;
  verdict.budget = static_cast<std::size_t>(e.get("budget").as_int());
  verdict.complete = e.get("complete").as_bool();
  verdict.ok = e.get("ok").as_bool();
  verdict.num_configs = static_cast<std::size_t>(e.get("configs").as_int());
  verdict.num_edges = static_cast<std::size_t>(e.get("edges").as_int());
  verdict.stats.wall_seconds =
      e.has("wall_seconds") ? e.get("wall_seconds").as_double() : 0.0;
  verdict.stats.frontier_peak =
      static_cast<std::size_t>(e.get_int("frontier_peak", 0));
  verdict.stats.levels = static_cast<std::size_t>(e.get_int("levels", 0));
  verdict.stats.arena_bytes =
      static_cast<std::size_t>(e.get_int("arena_bytes", 0));
  for (const util::JsonValue& r : e.get("witness").items()) {
    verdict.witness.push_back(static_cast<int>(r.as_int()));
  }
  if (e.has("invariants")) {
    for (const util::JsonValue& cert : e.get("invariants").items()) {
      verdict.invariants.push_back(cert.as_string());
    }
  }
  return {std::move(key), std::move(verdict)};
}

/// One journal record: the entry plus its own checksum, on a single
/// line — so a torn append invalidates only itself and replay can keep
/// the valid prefix.
std::string journal_line(const ProofKey& key, const ProofVerdict& verdict) {
  std::vector<std::pair<ProofKey, ProofVerdict>> one;
  one.emplace_back(key, verdict);
  util::JsonWriter w;
  w.begin_object().key("entry");
  write_entry(w, key, verdict);
  w.kv("checksum", to_hex(entries_checksum(one))).end_object();
  return w.str() + "\n";
}

}  // namespace

std::size_t ProofCache::SlotKeyHash::operator()(const SlotKey& key) const {
  using util::hash_chain;
  std::uint64_t h = hash_chain(key.proof.crn_hash, key.budget_slot);
  for (const math::Int v : key.proof.x) {
    h = hash_chain(h, static_cast<std::uint64_t>(v));
  }
  h = hash_chain(h, static_cast<std::uint64_t>(key.proof.expected));
  return static_cast<std::size_t>(h);
}

ProofCache::ProofCache() : ProofCache(Options{}) {}

ProofCache::ProofCache(const Options& options) : options_(options) {}

ProofCache::Flight::Flight(ProofCache& cache, const ProofKey& key,
                           std::size_t budget)
    : cache_(cache), key_(key), budget_(budget) {
  std::unique_lock<std::mutex> lock(cache_.flights_mu_);
  const auto in_flight = [this] {
    for (const auto& [k, b] : cache_.flights_) {
      if (b == budget_ && k == key_) return true;
    }
    return false;
  };
  if (in_flight()) {
    coalesced_ = true;
    ++cache_.coalesced_;
    CacheMetrics::get().coalesced.inc();
    cache_.flights_cv_.wait(lock, [&] { return !in_flight(); });
  }
  cache_.flights_.emplace_back(key_, budget_);
}

ProofCache::Flight::~Flight() {
  {
    std::unique_lock<std::mutex> lock(cache_.flights_mu_);
    for (auto it = cache_.flights_.begin(); it != cache_.flights_.end();
         ++it) {
      if (it->second == budget_ && it->first == key_) {
        cache_.flights_.erase(it);
        break;
      }
    }
  }
  cache_.flights_cv_.notify_all();
}

std::size_t ProofCache::entry_bytes(const Entry& entry) {
  std::size_t bytes = sizeof(Entry) +
                      entry.key.proof.x.size() * sizeof(math::Int) +
                      entry.verdict.witness.size() * sizeof(int) + 64;
  for (const std::string& cert : entry.verdict.invariants) {
    bytes += sizeof(std::string) + cert.size();
  }
  return bytes;
}

std::optional<ProofVerdict> ProofCache::lookup(const ProofKey& key,
                                               std::size_t budget) {
  util::MutexLock lock(mu_);
  // A complete verdict serves any budget that could have completed the
  // same exploration.
  const auto complete_it = index_.find(SlotKey{key, 0});
  if (complete_it != index_.end() &&
      budget >= complete_it->second->verdict.num_configs) {
    lru_.splice(lru_.begin(), lru_, complete_it->second);
    ++hits_;
    CacheMetrics::get().hits.inc();
    return complete_it->second->verdict;
  }
  // A truncated verdict serves exactly its own budget — never a larger
  // one, which could complete the exploration and flip the verdict.
  const auto exact_it = index_.find(SlotKey{key, budget});
  if (exact_it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, exact_it->second);
    ++hits_;
    CacheMetrics::get().hits.inc();
    return exact_it->second->verdict;
  }
  ++misses_;
  CacheMetrics::get().misses.inc();
  return std::nullopt;
}

void ProofCache::insert(const ProofKey& key, ProofVerdict verdict) {
  util::MutexLock lock(mu_);
  if (options_.max_bytes == 0) return;
  ++insertions_;
  CacheMetrics::get().insertions.inc();
  if (!journal_path_.empty()) {
    // Durability is best-effort on the serving path: a failed append
    // must not fail the request — the next snapshot still captures the
    // entry, and replay tolerates the resulting gap.
    (void)util::append_file(journal_path_, journal_line(key, verdict),
                            "cache.journal");
  }
  insert_locked(key, std::move(verdict), /*front=*/true);
  evict_locked();
  sync_gauges_locked();
}

void ProofCache::insert_locked(const ProofKey& key, ProofVerdict verdict,
                               bool front) {
  SlotKey slot{key, verdict.complete ? 0 : verdict.budget};
  const auto it = index_.find(slot);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    it->second->verdict = std::move(verdict);
    it->second->bytes = entry_bytes(*it->second);
    bytes_ += it->second->bytes;
    if (front) lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Entry entry;
  entry.key = slot;
  entry.verdict = std::move(verdict);
  entry.bytes = entry_bytes(entry);
  bytes_ += entry.bytes;
  const auto position =
      front ? lru_.insert(lru_.begin(), std::move(entry))
            : lru_.insert(lru_.end(), std::move(entry));
  index_.emplace(position->key, position);
}

void ProofCache::evict_locked() {
  while (bytes_ > options_.max_bytes && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    CacheMetrics::get().evictions.inc();
  }
}

void ProofCache::sync_gauges_locked() const {
  CacheMetrics::get().entries.set(static_cast<std::int64_t>(lru_.size()));
  CacheMetrics::get().bytes.set(static_cast<std::int64_t>(bytes_));
}

ProofCache::Stats ProofCache::stats() const {
  Stats s;
  {
    std::unique_lock<std::mutex> lock(flights_mu_);
    s.coalesced = coalesced_;
  }
  util::MutexLock lock(mu_);
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void ProofCache::clear() {
  util::MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  sync_gauges_locked();
}

void ProofCache::save(const std::string& path) const {
  std::vector<std::pair<ProofKey, ProofVerdict>> entries;
  {
    util::MutexLock lock(mu_);
    entries.reserve(lru_.size());
    for (const Entry& e : lru_) entries.emplace_back(e.key.proof, e.verdict);
  }
  util::JsonWriter w;
  w.begin_object()
      .kv("format", kFormat)
      .kv("schema_version", kCacheSchemaVersion)
      .kv("entries_count", entries.size())
      .key("entries")
      .begin_array();
  for (const auto& [key, verdict] : entries) {
    write_entry(w, key, verdict);
  }
  w.end_array().kv("checksum", to_hex(entries_checksum(entries)))
      .end_object();

  if (!util::atomic_write_file(path, w.str() + "\n", "cache.save")) {
    throw std::runtime_error("proof cache: cannot write '" + path + "'");
  }
  // The snapshot now holds everything the journal recorded; truncate it
  // so replay after the next crash starts from this snapshot. Crashing
  // between the rename above and this truncation merely re-replays
  // entries already in the snapshot — insert is idempotent.
  std::string journal;
  {
    util::MutexLock lock(mu_);
    journal = journal_path_;
  }
  if (!journal.empty()) {
    (void)util::atomic_write_file(journal, "", "cache.journal");
  }
}

void ProofCache::enable_journal(const std::string& path) {
  util::MutexLock lock(mu_);
  journal_path_ = path;
}

std::size_t ProofCache::replay_journal(const std::string& path) {
  std::ifstream file(path);
  if (!file) return 0;  // no journal yet — nothing to replay

  std::vector<std::pair<ProofKey, ProofVerdict>> entries;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    std::pair<ProofKey, ProofVerdict> entry;
    try {
      const util::JsonValue record = util::JsonValue::parse(line);
      entry = parse_entry(record.get("entry"));
      std::vector<std::pair<ProofKey, ProofVerdict>> one;
      one.emplace_back(entry.first, entry.second);
      if (parse_hex(record.get("checksum").as_string()) !=
          entries_checksum(one)) {
        break;
      }
    } catch (const std::exception&) {
      // Torn or corrupt record (kill -9 mid-append): keep the valid
      // prefix, discard this line and everything after it.
      break;
    }
    entries.push_back(std::move(entry));
  }

  util::MutexLock lock(mu_);
  if (options_.max_bytes == 0) return 0;
  for (auto& [key, verdict] : entries) {
    insert_locked(key, std::move(verdict), /*front=*/false);
  }
  evict_locked();
  sync_gauges_locked();
  return entries.size();
}

std::size_t ProofCache::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("proof cache: cannot read '" + path + "'");
  }
  std::ostringstream contents;
  contents << file.rdbuf();

  util::JsonValue root;
  try {
    root = util::JsonValue::parse(contents.str());
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("proof cache: '" + path + "' is not valid JSON (" +
                             e.what() + ")");
  }
  if (root.get_string("format", "") != kFormat) {
    throw std::runtime_error("proof cache: '" + path +
                             "' has the wrong format marker");
  }
  if (root.get_int("schema_version", -1) != kCacheSchemaVersion) {
    throw std::runtime_error(
        "proof cache: '" + path + "' has schema_version " +
        std::to_string(root.get_int("schema_version", -1)) + ", expected " +
        std::to_string(kCacheSchemaVersion));
  }

  std::vector<std::pair<ProofKey, ProofVerdict>> entries;
  for (const util::JsonValue& e : root.get("entries").items()) {
    entries.push_back(parse_entry(e));
  }

  const std::uint64_t expected_sum =
      parse_hex(root.get("checksum").as_string());
  const std::uint64_t actual_sum = entries_checksum(entries);
  if (expected_sum != actual_sum) {
    throw std::runtime_error("proof cache: '" + path +
                             "' failed checksum validation (file " +
                             to_hex(expected_sum) + ", content " +
                             to_hex(actual_sum) + ")");
  }

  util::MutexLock lock(mu_);
  if (options_.max_bytes == 0) return 0;
  for (auto& [key, verdict] : entries) {
    insert_locked(key, std::move(verdict), /*front=*/false);
  }
  evict_locked();
  sync_gauges_locked();
  return entries.size();
}

}  // namespace crnkit::svc
