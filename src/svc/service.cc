#include "svc/service.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <utility>

#include "crn/bimolecular.h"
#include "crn/checks.h"
#include "crn/io.h"
#include "crn/passes.h"
#include "lint/analyzer.h"
#include "lint/guide.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "sim/ensemble.h"
#include "svc/workload.h"

namespace crnkit::svc {

namespace {

/// Maps a method name (silent | direct | next-reaction | population) to
/// the ensemble method; throws std::invalid_argument otherwise. Simulate
/// and bench accept the same spellings.
sim::EnsembleMethod parse_method(const std::string& name) {
  if (name == "silent") return sim::EnsembleMethod::kSilentRun;
  if (name == "direct") return sim::EnsembleMethod::kDirect;
  if (name == "next-reaction") return sim::EnsembleMethod::kNextReaction;
  if (name == "population") return sim::EnsembleMethod::kPopulation;
  throw std::invalid_argument(
      "unknown method '" + name +
      "' (expected silent, direct, next-reaction, or population)");
}

ScenarioSummary summarize(const scenario::Scenario& s) {
  ScenarioSummary out;
  out.name = s.name;
  out.title = s.title;
  out.paper_ref = s.paper_ref;
  out.tags = s.tags;
  out.species = s.crn.species_count();
  out.reactions = s.crn.reactions().size();
  out.arity = s.crn.input_arity();
  out.leader = s.crn.leader().has_value();
  out.output_oblivious = crn::is_output_oblivious(s.crn);
  out.verify_points = s.verify_points.size();
  out.sim_input = scenario::point_to_string(s.sim_input);
  out.unverifiable_reason = s.unverifiable_reason;
  return out;
}

}  // namespace

Service::Service() : Service(Options{}) {}

Service::Service(const Options& options)
    : options_(options), cache_(options.cache) {}

namespace {

/// Static floor for the non-arena bytes the explorer holds per config:
/// id_hash (8) + ~2 packed hash slots at the 5/8 load factor (16) +
/// succ_off (8) + CSR successors at a typical edge density (~6 edges at
/// 4 B) + parent + parent_reaction (8) + applicability mask (8) + one
/// in-flight frontier candidate (24). The old estimate (8 + 16 + 24)
/// ignored the CSR and BFS-tree arrays entirely and overshot the budget
/// by ~2x on every composed scenario.
constexpr std::size_t kClampOverheadFloor = 100;

}  // namespace

std::size_t Service::clamp_overhead_per_config() const {
  return std::max(kClampOverheadFloor,
                  observed_overhead_per_config_.load(
                      std::memory_order_relaxed));
}

std::size_t Service::clamp_to_memory_budget(std::size_t max_configs,
                                            std::size_t width,
                                            bool* degraded) const {
  if (options_.memory_budget_bytes == 0) return max_configs;
  // Deliberately conservative: the clamp must undershoot, never
  // overshoot, the real footprint — so the overhead term is the static
  // floor raised to the actuals this process has already seen.
  const std::size_t per_config =
      width * sizeof(std::int32_t) + clamp_overhead_per_config();
  const std::size_t budget_configs =
      options_.memory_budget_bytes / std::max<std::size_t>(1, per_config);
  if (budget_configs < max_configs) {
    if (degraded != nullptr) *degraded = true;
    return std::max<std::size_t>(1, budget_configs);
  }
  return max_configs;
}

ListResponse Service::list(const ListRequest& req) const {
  std::vector<scenario::Scenario> scenarios =
      scenario::Registry::builtin().build_all();
  if (req.tag) {
    scenarios.erase(std::remove_if(scenarios.begin(), scenarios.end(),
                                   [&](const scenario::Scenario& s) {
                                     return !s.has_tag(*req.tag);
                                   }),
                    scenarios.end());
  }
  ListResponse resp;
  resp.scenarios.reserve(scenarios.size());
  for (const scenario::Scenario& s : scenarios) {
    resp.scenarios.push_back(summarize(s));
  }
  return resp;
}

ShowResponse Service::show(const ShowRequest& req) const {
  const Workload workload = load_workload(req.target);
  const scenario::Scenario& s = workload.scenario;
  const std::vector<math::Int> expected = s.expected_outputs();

  ShowResponse resp;
  resp.summary = summarize(s);
  resp.from_registry = workload.from_registry;
  resp.output_monotonic = crn::is_output_monotonic(s.crn);
  resp.max_reaction_order = crn::max_reaction_order(s.crn);
  resp.reference = s.reference ? s.reference->name() : "";
  for (std::size_t i = 0; i < s.verify_points.size(); ++i) {
    ShowVerifyPoint point;
    point.x = scenario::point_to_string(s.verify_points[i]);
    if (s.reference) {
      point.has_expected = true;
      point.expected = expected[i];
    }
    resp.verify_points.push_back(std::move(point));
  }
  resp.crn_text = crn::to_text(s.crn);
  return resp;
}

CompileResponse Service::compile(const CompileRequest& req) const {
  Workload workload = load_workload(req.target);
  crn::Crn network = std::move(workload.scenario.crn);
  if (req.bimolecular) network = crn::to_bimolecular(network);
  const std::string text = crn::to_text(network);

  if (!req.out_path.empty()) {
    std::ofstream file(req.out_path);
    if (!file) {
      throw std::invalid_argument("cannot write '" + req.out_path + "'");
    }
    file << text;
  }

  CompileResponse resp;
  resp.name = network.name();
  resp.species = network.species_count();
  resp.reactions = network.reactions().size();
  resp.bimolecular = req.bimolecular;
  resp.out = req.out_path;
  resp.crn_text = text;
  return resp;
}

SimulateResponse Service::simulate(const SimulateRequest& req) const {
  const Workload workload = load_workload(req.target);
  const scenario::Scenario& s = workload.scenario;
  const fn::Point x =
      req.input ? scenario::point_from_string(*req.input) : s.sim_input;

  sim::EnsembleOptions options;
  options.trajectories = req.trajectories;
  options.seed = req.seed;
  options.threads = req.threads;
  if (req.max_steps) options.max_steps = *req.max_steps;
  if (req.max_events) options.max_events = *req.max_events;
  options.method = parse_method(req.method);
  const std::int64_t deadline_ms =
      req.deadline_ms > 0 ? req.deadline_ms : options_.default_deadline_ms;
  const util::CancelToken token(deadline_ms);
  options.cancel = &token;

  const sim::EnsembleRunner runner(s.crn);
  const sim::EnsembleResult result = runner.run_for_input(x, options);

  SimulateResponse resp;
  resp.scenario = s.name;
  resp.input = scenario::point_to_string(x);
  resp.method = req.method;
  resp.trajectories = result.trajectories.size();
  resp.threads = options.threads;
  resp.seed = options.seed;
  resp.silent = result.silent_count;
  resp.total_events = result.total_events;
  resp.wall_seconds = result.wall_seconds;
  resp.events_per_sec = result.events_per_second();
  resp.output_consistent = result.output_consistent;
  resp.all_silent =
      result.silent_count == static_cast<int>(result.trajectories.size());
  // Only silent trajectories have settled: with none, output_consistent is
  // vacuously true and no comparison against the reference happened.
  resp.compared = result.silent_count > 0;
  resp.output = result.output;
  resp.summary = result.summary();
  resp.cancelled = result.cancelled_count;
  resp.deadline_exceeded = result.cancelled_count > 0;

  bool ok = result.output_consistent && !resp.deadline_exceeded;
  resp.has_expected = s.reference.has_value();
  if (resp.has_expected) {
    resp.expected = (*s.reference)(x);
    // A consistent silent output that disagrees with the reference is a
    // genuine failure.
    if (resp.compared && result.output_consistent &&
        result.output != resp.expected) {
      ok = false;
    }
  }
  resp.ok = ok;
  return resp;
}

BenchResponse Service::bench(const BenchRequest& req) const {
  sim::EnsembleOptions options;
  options.trajectories = req.trajectories;
  options.seed = req.seed;
  options.threads = req.threads;
  options.method = parse_method(req.method);
  // Split the budget across trajectories so the batch measures the same
  // amount of work regardless of the batch size.
  const std::uint64_t per_trajectory = std::max<std::uint64_t>(
      1, req.events / static_cast<std::uint64_t>(
                          std::max(1, req.trajectories)));
  options.max_events = per_trajectory;
  options.max_steps = per_trajectory;
  options.max_interactions = per_trajectory;

  const Workload workload = load_workload(req.target);
  const scenario::Scenario& s = workload.scenario;
  const fn::Point x =
      req.input ? scenario::point_from_string(*req.input) : s.sim_input;

  const sim::EnsembleRunner runner(s.crn);
  const sim::EnsembleResult result = runner.run_for_input(x, options);

  BenchResponse resp;
  resp.name = s.name;
  resp.input = scenario::point_to_string(x);
  resp.method = req.method;
  resp.trajectories = req.trajectories;
  resp.species = s.crn.species_count();
  resp.reactions = s.crn.reactions().size();
  resp.events_per_sec = result.events_per_second();
  resp.wall_seconds = result.wall_seconds;
  resp.events = result.total_events;
  return resp;
}

Service::CheckOutcome Service::check_point(
    const crn::Crn& crn, std::uint64_t crn_hash, const fn::Point& x,
    math::Int expected, const verify::StableCheckOptions& options,
    bool use_cache) {
  const ProofKey key{crn_hash, x, expected};
  CheckOutcome out;
  out.report.x = scenario::point_to_string(x);
  out.report.expected = expected;

  // Single-flight: claim the (key, budget) slot BEFORE the first lookup,
  // so a burst of identical cold requests runs exactly one exploration —
  // the leader misses, explores, and inserts while the followers wait on
  // the claim, then hit the verdict it cached. Held to end of scope; a
  // leader that exits without inserting promotes the next waiter.
  std::optional<ProofCache::Flight> flight;
  if (use_cache) flight.emplace(cache_, key, options.max_configs);

  if (use_cache) {
    if (auto hit = cache_.lookup(key, options.max_configs)) {
      out.report.ok = hit->ok;
      out.report.complete = hit->complete;
      out.report.configs = hit->num_configs;
      out.report.edges = hit->num_edges;
      out.report.cached = true;
      out.report.wall_seconds = hit->stats.wall_seconds;
      out.report.frontier_peak = hit->stats.frontier_peak;
      out.report.arena_bytes = hit->stats.arena_bytes;
      out.report.spilled = hit->stats.spilled;
      out.report.spill_bytes_written = hit->stats.spill_bytes_written;
      out.report.spill_bytes_read = hit->stats.spill_bytes_read;
      out.report.witness = std::move(hit->witness);
      out.report.invariants = std::move(hit->invariants);
      out.stats = hit->stats;
    }
  }
  if (!out.report.cached) {
    // Certificates of the conservation laws at this point's I_x; stamped
    // into the report and the cached verdict so a later hit still carries
    // the invariants its exploration ran under.
    if (options.invariants != nullptr && !options.invariants->empty()) {
      const crn::Config initial = crn.initial_configuration(x);
      out.report.invariants = lint::certificates(
          lint::make_guide(*options.invariants, initial), initial);
    }
    const verify::StableCheckResult result =
        verify::check_stable_computation(crn, x, expected, options);
    out.report.ok = result.ok;
    out.report.complete = result.complete;
    out.report.configs = result.num_configs;
    out.report.edges = result.num_edges;
    out.report.wall_seconds = result.explore_stats.wall_seconds;
    out.report.frontier_peak = result.explore_stats.frontier_peak;
    out.report.arena_bytes = result.explore_stats.arena_bytes;
    out.report.spilled = result.explore_stats.spilled;
    out.report.spill_bytes_written = result.explore_stats.spill_bytes_written;
    out.report.spill_bytes_read = result.explore_stats.spill_bytes_read;
    out.report.witness = result.counterexample_path;
    out.stats = result.explore_stats;
    out.fresh = true;
    if (result.num_configs > 0) {
      // Bytes-per-config actuals for the memory-budget clamp: every
      // non-arena array the explorer held for this graph, with the CSR
      // term from the real edge density instead of a guess.
      const std::size_t actual =
          8 + 16 + 8 + 8 + 8 + 24 +
          (4 * result.num_edges) / result.num_configs;
      std::size_t seen =
          observed_overhead_per_config_.load(std::memory_order_relaxed);
      while (actual > seen &&
             !observed_overhead_per_config_.compare_exchange_weak(
                 seen, actual, std::memory_order_relaxed)) {
      }
    }
    if (result.cancelled) {
      // Where the deadline cut the exploration off is wall-clock luck,
      // not content — never cache it, and surface the typed status.
      out.report.status = "deadline_exceeded";
      return out;
    }
    if (use_cache) {
      ProofVerdict verdict;
      verdict.ok = result.ok;
      verdict.complete = result.complete;
      verdict.budget = options.max_configs;
      verdict.num_configs = result.num_configs;
      verdict.num_edges = result.num_edges;
      verdict.stats = result.explore_stats;
      verdict.witness = result.counterexample_path;
      verdict.invariants = out.report.invariants;
      cache_.insert(key, std::move(verdict));
    }
  }
  const bool proof = out.report.ok && out.report.complete;
  out.report.status = proof                ? "proved"
                      : out.report.complete ? "FAILED"
                                            : "inconclusive";
  return out;
}

VerifyResponse Service::verify(const VerifyRequest& req) {
  const Workload workload = load_workload(req.target);
  const scenario::Scenario& s = workload.scenario;

  VerifyResponse resp;
  resp.scenario = s.name;
  resp.want_stats = req.stats;

  if (s.unverifiable() && !req.force) {
    resp.skipped = true;
    resp.reason = s.unverifiable_reason;
    resp.ok = true;
    return resp;
  }

  // Resolve the points to check and their expected outputs.
  std::vector<fn::Point> points;
  std::vector<math::Int> expected;
  if (req.input) {
    points.push_back(scenario::point_from_string(*req.input));
    if (req.expect) {
      expected.push_back(scenario::point_from_string(*req.expect).front());
    } else if (s.reference) {
      expected.push_back((*s.reference)(points.front()));
    } else {
      throw std::invalid_argument(
          "file workloads have no reference function; pass --expect V");
    }
  } else {
    if (!s.reference) {
      throw std::invalid_argument(
          "file workloads have no reference function; pass --input and "
          "--expect");
    }
    if (req.grid) {
      const math::Int m = scenario::point_from_string(*req.grid).front();
      points = scenario::grid_points(s.crn.input_arity(), m);
    } else {
      points = s.verify_points;
    }
    for (const fn::Point& x : points) expected.push_back((*s.reference)(x));
  }
  if (points.empty()) {
    throw std::invalid_argument("no verify points for '" + s.name + "'");
  }

  verify::StableCheckOptions options;
  if (req.max_configs > 0) {
    options.max_configs = req.max_configs;
  } else if (s.verify_max_configs > 0) {
    options.max_configs = s.verify_max_configs;
  }
  options.threads = req.threads;
  bool would_degrade = false;
  const std::size_t clamped = clamp_to_memory_budget(
      options.max_configs, s.crn.species_count(), &would_degrade);
  if (would_degrade && !options_.spill_dir.empty()) {
    // Graceful-degradation ladder, exact rung: instead of truncating to
    // the clamp, keep the requested budget and have the explorer spill
    // cold arena pages into checksummed segment files — same graph, same
    // verdict, annotated `spilled`. Truncation (`degraded`) remains the
    // last rung when no spill directory is configured.
    options.spill_dir = options_.spill_dir;
    options.memory_budget_bytes = options_.memory_budget_bytes;
  } else {
    options.max_configs = clamped;
    resp.degraded = would_degrade;
  }
  if (points.size() == 1) {
    // One checkpoint file describes one exploration; multi-point
    // requests would overwrite it per point, so gate it to single-point
    // runs (the `crnc verify --input` shape the CLI flags produce).
    options.checkpoint_path = req.checkpoint_path;
    options.checkpoint_every_secs = req.checkpoint_every_secs;
    options.resume = req.resume;
  }
  resp.max_configs = options.max_configs;
  resp.threads_resolved = options.threads;

  // One token covers the whole request: points checked after expiry
  // return deadline_exceeded immediately instead of each getting a
  // fresh budget.
  const std::int64_t deadline_ms =
      req.deadline_ms > 0 ? req.deadline_ms : options_.default_deadline_ms;
  const util::CancelToken token(deadline_ms);
  options.cancel = &token;

  // Conservation laws are a property of the CRN: extract once, then each
  // point derives its own bounds from them at I_x inside the checker.
  std::vector<lint::ConservationLaw> laws;
  if (req.use_invariants) {
    laws = lint::extract_conservation_laws(s.crn);
    if (!laws.empty()) options.invariants = &laws;
  }
  resp.conservation_laws = laws.size();

  const std::uint64_t crn_hash = crn::canonical_hash(s.crn);
  for (std::size_t i = 0; i < points.size(); ++i) {
    CheckOutcome outcome = check_point(s.crn, crn_hash, points[i],
                                       expected[i], options, req.use_cache);
    const VerifyPointReport& report = outcome.report;
    if (report.status == "deadline_exceeded") {
      ++resp.deadline_exceeded;
      ++resp.inconclusive;
    } else if (report.ok && report.complete) {
      ++resp.proved;
    } else if (!report.complete) {
      ++resp.inconclusive;
    } else {
      ++resp.failed;
    }
    resp.max_configs_explored =
        std::max(resp.max_configs_explored, report.configs);
    resp.total_configs += report.configs;
    resp.total_edges += report.edges;
    resp.frontier_peak = std::max(resp.frontier_peak, report.frontier_peak);
    resp.arena_bytes_peak =
        std::max(resp.arena_bytes_peak, report.arena_bytes);
    if (report.spilled) resp.spilled = true;
    resp.spill_bytes_written += report.spill_bytes_written;
    resp.spill_bytes_read += report.spill_bytes_read;
    if (outcome.fresh) {
      // Cache hits are free: wall time and pool counters aggregate over
      // the explorations this request actually ran.
      resp.total_seconds += outcome.stats.wall_seconds;
      resp.pool_tasks += outcome.stats.pool_tasks;
      resp.pool_steals += outcome.stats.pool_steals;
      resp.pool_parks += outcome.stats.pool_parks;
      resp.threads_resolved = outcome.stats.threads;
      ++resp.cache_misses;
    } else {
      ++resp.cache_hits;
    }
    resp.points.push_back(std::move(outcome.report));
  }
  if (!req.use_cache) {
    resp.cache_hits = 0;
    resp.cache_misses = 0;
  }
  resp.ok = resp.failed == 0 && resp.inconclusive == 0;
  return resp;
}

}  // namespace crnkit::svc
