// The `circuit/random-<modules>-<seed>` scenario family: deterministic
// random feed-forward circuit DAGs built from the compose pipeline
// (compile/circuit_expr.h), lowered through crn::Circuit, optimized with
// the pass framework, and recorded with the expression's own evaluator as
// the reference function. The name is the parameterization, so any
// (modules, seed) pair is addressable from `crnc` without pre-registering
// it — the workload generator every scaling PR can lean on.
#ifndef CRNKIT_SCENARIO_CIRCUITS_H_
#define CRNKIT_SCENARIO_CIRCUITS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "scenario/scenario.h"

namespace crnkit::scenario {

struct RandomCircuitParams {
  int modules = 0;
  std::uint64_t seed = 0;
};

/// Renders "circuit/random-<modules>-<seed>".
[[nodiscard]] std::string random_circuit_name(const RandomCircuitParams& p);

/// Parses "circuit/random-<modules>-<seed>"; nullopt when `name` is not a
/// canonical family member (wrong shape, leading zeros, or modules outside
/// [1, 512]) — never throws, so Registry::contains stays a plain bool.
[[nodiscard]] std::optional<RandomCircuitParams> parse_random_circuit_name(
    const std::string& name);

/// Builds the fully-instantiated scenario: compiled, optimized, with
/// reference function, verify points on the {0,1}^d grid, and a
/// throughput-sized sim input.
[[nodiscard]] Scenario build_random_circuit_scenario(
    const RandomCircuitParams& p);

}  // namespace crnkit::scenario

#endif  // CRNKIT_SCENARIO_CIRCUITS_H_
