#include "scenario/scenario.h"

#include <algorithm>
#include <sstream>

#include "math/check.h"

namespace crnkit::scenario {

bool Scenario::has_tag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

std::vector<math::Int> Scenario::expected_outputs() const {
  std::vector<math::Int> out;
  if (!reference) return out;
  out.reserve(verify_points.size());
  for (const fn::Point& x : verify_points) out.push_back((*reference)(x));
  return out;
}

std::string point_to_string(const fn::Point& x) {
  std::ostringstream os;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i > 0) os << ',';
    os << x[i];
  }
  return os.str();
}

fn::Point point_from_string(const std::string& text) {
  fn::Point out;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    try {
      std::size_t used = 0;
      const long long v = std::stoll(part, &used);
      require(used == part.size() && v >= 0,
              "point_from_string: bad component '" + part + "'");
      out.push_back(v);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("point_from_string: bad component '" +
                                  part + "' in '" + text + "'");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("point_from_string: component out of "
                                  "range in '" + text + "'");
    }
  }
  require(!out.empty(), "point_from_string: empty input '" + text + "'");
  return out;
}

std::vector<fn::Point> grid_points(int d, math::Int m) {
  require(d >= 1 && m >= 0, "grid_points: need d >= 1 and m >= 0");
  std::vector<fn::Point> out;
  fn::Point x(static_cast<std::size_t>(d), 0);
  while (true) {
    out.push_back(x);
    int i = d - 1;
    while (i >= 0 && x[static_cast<std::size_t>(i)] == m) {
      x[static_cast<std::size_t>(i)] = 0;
      --i;
    }
    if (i < 0) return out;
    ++x[static_cast<std::size_t>(i)];
  }
}

}  // namespace crnkit::scenario
