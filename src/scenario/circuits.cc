#include "scenario/circuits.h"

#include <algorithm>

#include "compile/circuit_expr.h"
#include "crn/passes.h"
#include "math/check.h"
#include "scenario/registry.h"

namespace crnkit::scenario {

namespace {

constexpr const char* kPrefix = "circuit/random-";

/// Parses a decimal run of `text` starting at `pos`; nullopt when empty,
/// non-numeric, or out of range.
std::optional<std::uint64_t> parse_u64(const std::string& text,
                                       std::size_t begin, std::size_t end) {
  if (begin >= end) return std::nullopt;
  std::uint64_t value = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    if (value > (UINT64_MAX - 9) / 10) return std::nullopt;  // overflow
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

std::string random_circuit_name(const RandomCircuitParams& p) {
  return kPrefix + std::to_string(p.modules) + "-" + std::to_string(p.seed);
}

std::optional<RandomCircuitParams> parse_random_circuit_name(
    const std::string& name) {
  if (name.rfind(kPrefix, 0) != 0) return std::nullopt;
  const std::size_t body = std::string(kPrefix).size();
  const std::size_t dash = name.find('-', body);
  if (dash == std::string::npos) return std::nullopt;
  const auto modules = parse_u64(name, body, dash);
  const auto seed = parse_u64(name, dash + 1, name.size());
  // Out-of-range module counts are simply not members of the family, so
  // Registry::contains keeps its bool contract and build() falls through
  // to the usual unknown-scenario error.
  if (!modules || !seed || *modules < 1 || *modules > 512) {
    return std::nullopt;
  }
  RandomCircuitParams p;
  p.modules = static_cast<int>(*modules);
  p.seed = *seed;
  // Only the canonical rendering names a scenario: "random-07-1" must not
  // build a scenario that calls itself "random-7-1".
  if (random_circuit_name(p) != name) return std::nullopt;
  return p;
}

Scenario build_random_circuit_scenario(const RandomCircuitParams& p) {
  const std::string name = random_circuit_name(p);
  const compile::CircuitExpr expr =
      compile::random_circuit_expr(p.modules, p.seed);
  compile::LoweredCircuit lowered = compile::lower_circuit_expr(expr, name);
  crn::PassPipelineResult optimized = crn::optimize(lowered.crn);

  Scenario s;
  s.name = name;
  std::string rendered = expr.to_string();
  if (rendered.size() > 72) rendered = rendered.substr(0, 69) + "...";
  s.title = "random " + std::to_string(p.modules) +
            "-module circuit DAG (seed " + std::to_string(p.seed) +
            "): f = " + rendered;
  s.paper_ref = "Lemma 6.2 / Obs. 2.2";
  s.tags = {"circuit", "composed", "oblivious",
            optimized.crn.leader() ? "leader" : "leaderless"};
  s.crn = std::move(optimized.crn);
  s.reference = expr.as_function(name);
  // {0,1}^d is provable exactly with the default budget at every size the
  // family registers; larger inputs are simcheck / simulate territory.
  s.verify_points = grid_points(std::max(1, expr.arity()), 1);
  s.sim_input.assign(static_cast<std::size_t>(std::max(1, expr.arity())),
                     10);
  return s;
}

void register_circuit_scenarios(Registry& registry) {
  // Representative instances for the catalog (and the test sweeps)...
  for (const RandomCircuitParams p :
       {RandomCircuitParams{12, 1}, RandomCircuitParams{16, 2},
        RandomCircuitParams{20, 3}}) {
    registry.add(random_circuit_name(p),
                 [p] { return build_random_circuit_scenario(p); });
  }
  // ...and the open-ended family: any circuit/random-<n>-<seed>.
  registry.add_family(
      [](const std::string& name) -> std::optional<Registry::Factory> {
        const auto p = parse_random_circuit_name(name);
        if (!p) return std::nullopt;
        return Registry::Factory(
            [params = *p] { return build_random_circuit_scenario(params); });
      });
}

}  // namespace crnkit::scenario
