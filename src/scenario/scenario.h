// A scenario is a named, fully-instantiated CRN workload: the network, the
// reference function it is supposed to stably compute, the input points the
// exact verifier should sweep, and a default large input for simulation and
// benchmarking. Scenarios are the currency between the registry (a catalog
// of the paper's constructions), the `crnc` CLI, the benches, and the
// examples — anything that used to hand-roll a Crn + inputs pulls a
// scenario instead.
#ifndef CRNKIT_SCENARIO_SCENARIO_H_
#define CRNKIT_SCENARIO_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "crn/network.h"
#include "fn/function.h"

namespace crnkit::scenario {

struct Scenario {
  /// Registry key, e.g. "fig1/min", "thm52/fig7", "chain/compose-256".
  std::string name;
  /// One-line human description.
  std::string title;
  /// Where in the paper the workload comes from, e.g. "Fig. 1".
  std::string paper_ref;
  /// Free-form labels: "oblivious", "leader", "leaderless", "composed",
  /// "predicate", "protocol", "large", "unverifiable".
  std::vector<std::string> tags;

  crn::Crn crn;

  /// The function the CRN should stably compute; absent for workloads
  /// loaded from bare `.crn` files.
  std::optional<fn::DiscreteFunction> reference;

  /// Inputs for the exact stable-computation check. Kept small enough that
  /// the reachable space fits the checker's default budget (scenarios
  /// tagged "large" restrict these aggressively).
  std::vector<fn::Point> verify_points;

  /// Recommended exploration budget for the exact checker; 0 means the
  /// checker's default. Composed circuits with combinatorial reachable
  /// spaces raise this so their tiny verify grids still complete.
  std::size_t verify_max_configs = 0;

  /// Default input for `crnc simulate` / `crnc bench` — sized for
  /// throughput, not for exact checking.
  fn::Point sim_input;

  /// Set when tagged "unverifiable": why `crnc verify` is expected to fail
  /// or is not affordable for this scenario.
  std::string unverifiable_reason;

  [[nodiscard]] bool has_tag(const std::string& tag) const;
  /// True iff tagged "unverifiable".
  [[nodiscard]] bool unverifiable() const { return has_tag("unverifiable"); }

  /// Expected output per verify point (empty when no reference).
  [[nodiscard]] std::vector<math::Int> expected_outputs() const;
};

/// Renders a point as "3,4" (the CLI's `--input` syntax).
[[nodiscard]] std::string point_to_string(const fn::Point& x);

/// Parses "3,4" into a point; throws std::invalid_argument on bad syntax
/// or negative components.
[[nodiscard]] fn::Point point_from_string(const std::string& text);

/// All points of [0, m]^d in lexicographic order — the grid sweeps used
/// by scenario verify points and `crnc verify --grid`.
[[nodiscard]] std::vector<fn::Point> grid_points(int d, math::Int m);

}  // namespace crnkit::scenario

#endif  // CRNKIT_SCENARIO_SCENARIO_H_
