// The built-in scenario catalog: the paper's Figure 1/2 examples, the
// Theorem 3.1 / 5.2 / 9.2 compilations, Lemma 6.1 quilt-affine modules,
// monotone predicates, Observation 2.2 composition chains, and the
// population-protocol (bimolecular) view. Each factory builds the CRN with
// the repo's own compilers, attaches the reference function, and picks
// verify points small enough for the exact checker's budget.
#include <algorithm>

#include "compile/leaderless.h"
#include "compile/oned.h"
#include "compile/predicate.h"
#include "compile/primitives.h"
#include "compile/quilt.h"
#include "compile/theorem52.h"
#include "crn/bimolecular.h"
#include "crn/compose.h"
#include "fn/examples.h"
#include "scenario/registry.h"

namespace crnkit::scenario {

namespace {

using math::Int;

std::vector<fn::Point> line_points(Int m) { return grid_points(1, m); }

/// `stages` concatenated identity modules (Observation 2.2), the deep
/// feed-forward chain the compiled engine's dependency graph exists for.
crn::Crn identity_chain(int stages) {
  crn::Crn chain = compile::identity_crn();
  for (int stage = 1; stage < stages; ++stage) {
    chain = crn::concatenate(chain, compile::identity_crn(),
                             "chain" + std::to_string(stage + 1));
  }
  chain.set_name("identity-chain-" + std::to_string(stages));
  return chain;
}

fn::DiscreteFunction identity_fn() {
  return fn::DiscreteFunction(
      1, [](const fn::Point& x) { return x[0]; }, "x");
}

fn::DiscreteFunction div3_fn() {
  return fn::DiscreteFunction(
      1, [](const fn::Point& x) { return x[0] / 3; }, "floor(x/3)");
}

Scenario make(std::string name, std::string title, std::string paper_ref,
              std::vector<std::string> tags, crn::Crn crn,
              fn::DiscreteFunction reference,
              std::vector<fn::Point> verify_points, fn::Point sim_input) {
  Scenario s;
  s.name = std::move(name);
  s.title = std::move(title);
  s.paper_ref = std::move(paper_ref);
  s.tags = std::move(tags);
  s.crn = std::move(crn);
  s.reference = std::move(reference);
  s.verify_points = std::move(verify_points);
  s.sim_input = std::move(sim_input);
  return s;
}

}  // namespace

void register_builtin_scenarios(Registry& registry) {
  registry.add("fig1/twice", [] {
    return make("fig1/twice", "f(x) = 2x via the single reaction X -> 2Y",
                "Fig. 1", {"oblivious", "leaderless"}, compile::scale_crn(2),
                fn::examples::twice(), line_points(6), {200000});
  });

  registry.add("fig1/min", [] {
    return make("fig1/min", "f(x1,x2) = min(x1,x2) via X1 + X2 -> Y",
                "Fig. 1", {"oblivious", "leaderless"}, compile::min_crn(2),
                fn::examples::min2(), grid_points(2, 4), {200000, 200000});
  });

  registry.add("fig1/max", [] {
    return make("fig1/max",
                "f(x1,x2) = max(x1,x2); stably computed but NOT "
                "output-oblivious (consumes Y)",
                "Fig. 1 / Section 4", {"not-oblivious", "leaderless"},
                compile::fig1_max_crn(), fn::examples::max2(),
                grid_points(2, 4), {100000, 100000});
  });

  registry.add("fig1/2max-broken", [] {
    Scenario s = make(
        "fig1/2max-broken",
        "the paper's broken composition: max (not output-oblivious) "
        "concatenated with 2x does NOT stably compute 2*max",
        // The *composed* network is syntactically output-oblivious (the
        // final Y is never consumed); the breakage lives in the upstream
        // max module, which is why obliviousness must hold module-wise.
        "Fig. 1 / Obs. 2.2", {"composed", "oblivious", "unverifiable"},
        crn::concatenate(compile::fig1_max_crn(), compile::scale_crn(2),
                         "2max"),
        fn::DiscreteFunction(
            2, [](const fn::Point& x) { return 2 * std::max(x[0], x[1]); },
            "2*max"),
        grid_points(2, 3), {50000, 50000});
    s.unverifiable_reason =
        "intentional negative demo: the upstream max CRN consumes its "
        "output, so downstream doubling over-counts; verify is expected to "
        "find counterexamples (run with --force)";
    return s;
  });

  registry.add("fig2/min1-leader", [] {
    return make("fig2/min1-leader",
                "f(x) = min(1,x) via L + X -> Y (output-oblivious, needs a "
                "leader)",
                "Fig. 2", {"oblivious", "leader"},
                compile::fig2_min1_leader(), fn::examples::min_const1(),
                line_points(6), {200000});
  });

  registry.add("fig2/min1-leaderless", [] {
    return make("fig2/min1-leaderless",
                "f(x) = min(1,x) via X -> Y; 2Y -> Y (leaderless, not "
                "output-oblivious)",
                "Fig. 2", {"not-oblivious", "leaderless"},
                compile::fig2_min1_leaderless(), fn::examples::min_const1(),
                line_points(6), {200000});
  });

  registry.add("fn/floor-3x2", [] {
    return make("fn/floor-3x2",
                "f(x) = floor(3x/2) compiled with the Theorem 3.1 "
                "leader-state chain",
                "Fig. 3a / Thm. 3.1", {"oblivious", "leader", "compiled"},
                compile::compile_oned(fn::examples::floor_3x_over_2()),
                fn::examples::floor_3x_over_2(), line_points(8), {100000});
  });

  registry.add("fn/quilt-affine", [] {
    return make("fn/quilt-affine",
                "the exact quilt-affine form of floor(3x/2) compiled with "
                "the Lemma 6.1 congruence-class walker",
                "Fig. 3a / Lemma 6.1", {"oblivious", "leader", "compiled"},
                compile::compile_quilt_affine(fn::examples::fig3a_quilt()),
                fn::examples::fig3a_quilt().as_function(), line_points(8),
                {100000});
  });

  registry.add("fn/quilt-bumpy", [] {
    return make("fn/quilt-bumpy",
                "the 2D 'bumpy quilt' (1,2).x + B(x mod 3) compiled with "
                "Lemma 6.1",
                "Fig. 3b / Lemma 6.1", {"oblivious", "leader", "compiled"},
                compile::compile_quilt_affine(fn::examples::fig3b_quilt()),
                fn::examples::fig3b_quilt().as_function(), grid_points(2, 3),
                {50000, 50000});
  });

  registry.add("fn/div3", [] {
    return make("fn/div3",
                "f(x) = floor(x/3) compiled with Theorem 3.1 (leader)",
                "Thm. 3.1", {"oblivious", "leader", "compiled"},
                compile::compile_oned(div3_fn()), div3_fn(), line_points(12),
                {300000});
  });

  registry.add("fn/div3-leaderless", [] {
    return make("fn/div3-leaderless",
                "f(x) = floor(x/3) compiled with the Theorem 9.2 "
                "leaderless merge construction",
                "Thm. 9.2", {"oblivious", "leaderless", "compiled"},
                compile::compile_leaderless_oned(div3_fn()), div3_fn(),
                line_points(12), {300000});
  });

  registry.add("thm52/fig7", [] {
    const compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                                      fn::examples::fig7_extensions(), {}};
    Scenario s = make("thm52/fig7",
                      "the Section 7.1 three-region function compiled with "
                      "the full Theorem 5.2 feed-forward circuit",
                      "Fig. 7 / Thm. 5.2",
                      {"oblivious", "leader", "compiled", "composed"},
                      compile::compile_theorem52(spec), fn::examples::fig7(),
                      grid_points(2, 1), {3000, 4000});
    // The composed circuit's reachable space grows combinatorially —
    // ~18.5k configs at (2,2), ~320k at (3,3), ~995k at (4,3) — well
    // inside the arena explorer's 2M default budget, so all are proved
    // exactly; anything larger is covered stochastically
    // (`crnc simulate`).
    s.verify_points.push_back({2, 2});
    s.verify_points.push_back({3, 3});
    s.verify_points.push_back({4, 3});
    return s;
  });

  registry.add("pred/threshold", [] {
    const auto formula = compile::MonotoneFormula::atom({2, 1}, 5);
    return make("pred/threshold",
                "indicator of [2 x1 + x2 >= 5] as an output-oblivious "
                "predicate module",
                "Fig. 2 / Section 2", {"oblivious", "leader", "predicate"},
                compile::compile_monotone_predicate(formula),
                formula.indicator(), grid_points(2, 4), {50000, 50000});
  });

  registry.add("pred/and-or", [] {
    const auto formula = (compile::MonotoneFormula::atom({1, 0}, 2) &&
                          compile::MonotoneFormula::atom({0, 1}, 1)) ||
                         compile::MonotoneFormula::atom({1, 1}, 5);
    return make("pred/and-or",
                "monotone combination ([x1>=2] AND [x2>=1]) OR [x1+x2>=5] "
                "as one oblivious module",
                "Section 2 (monotone predicates)",
                {"oblivious", "leader", "predicate", "composed"},
                compile::compile_monotone_predicate(formula),
                formula.indicator(), grid_points(2, 4), {50000, 50000});
  });

  registry.add("protocol/majority", [] {
    const auto x1 = compile::MonotoneFormula::atom({1, 0, 0}, 1);
    const auto x2 = compile::MonotoneFormula::atom({0, 1, 0}, 1);
    const auto x3 = compile::MonotoneFormula::atom({0, 0, 1}, 1);
    const auto maj = (x1 && x2) || (x1 && x3) || (x2 && x3);
    return make("protocol/majority",
                "three-input monotone majority gate, bimolecular form "
                "(runs under the population-protocol pair scheduler)",
                "Section 1 / footnote 5",
                {"oblivious", "leader", "predicate", "protocol"},
                crn::to_bimolecular(compile::compile_monotone_predicate(maj)),
                maj.indicator(), grid_points(3, 2), {1000, 1000, 1000});
  });

  registry.add("protocol/floor-3x2", [] {
    return make("protocol/floor-3x2",
                "floor(3x/2) in bimolecular form: the population-protocol "
                "view of the Theorem 3.1 chain",
                "Section 1 / footnote 5", {"oblivious", "leader", "protocol"},
                crn::to_bimolecular(
                    compile::compile_oned(fn::examples::floor_3x_over_2())),
                fn::examples::floor_3x_over_2(), line_points(6), {2000});
  });

  registry.add("chain/compose-4", [] {
    return make("chain/compose-4",
                "4 concatenated oblivious identity modules (Obs. 2.2)",
                "Obs. 2.2", {"oblivious", "leaderless", "composed"},
                identity_chain(4), identity_fn(), line_points(5), {100000});
  });

  registry.add("chain/compose-18", [] {
    return make("chain/compose-18",
                "18 concatenated oblivious identity modules at x=8 — a "
                "C(26,18) = 1,562,275-configuration exact proof, the "
                "million-node regime of the arena-backed explorer",
                "Obs. 2.2", {"oblivious", "leaderless", "composed", "large"},
                identity_chain(18), identity_fn(), {{1}, {8}}, {100000});
  });

  registry.add("chain/compose-24", [] {
    Scenario s =
        make("chain/compose-24",
             "24 concatenated oblivious identity modules at x=7 — a "
             "C(31,24) = 2,629,575-configuration exact proof, the "
             "frontier workload of the work-stealing parallel explorer",
             "Obs. 2.2", {"oblivious", "leaderless", "composed", "large"},
             identity_chain(24), identity_fn(), {{1}, {7}}, {100000});
    // The reachable set at x=7 overruns the checker's 2M default budget;
    // 3M covers it with slack and stays ~300 MiB of arena + edges.
    s.verify_max_configs = 3'000'000;
    return s;
  });

  registry.add("chain/compose-26", [] {
    Scenario s =
        make("chain/compose-26",
             "26 concatenated oblivious identity modules at x=7 — a "
             "C(33,26) = 4,272,048-configuration exact proof, the "
             "out-of-core acceptance workload: its arena overruns "
             "laptop-scale memory budgets and must spill, not degrade",
             "Obs. 2.2", {"oblivious", "leaderless", "composed", "large"},
             identity_chain(26), identity_fn(), {{1}, {7}}, {100000});
    // 4.27M reachable configs at x=7: raise the checker budget past the
    // 2M default so the proof can complete (in RAM or spilled).
    s.verify_max_configs = 4'500'000;
    return s;
  });

  registry.add("chain/compose-256", [] {
    return make("chain/compose-256",
                "256 concatenated oblivious identity modules — the deep-"
                "composition regime of the dependency-graph engine",
                "Obs. 2.2", {"oblivious", "leaderless", "composed", "large"},
                identity_chain(256), identity_fn(),
                // (x+256 choose 256) reachable configs: keep x <= 2.
                line_points(2), {2000});
  });

  // circuit/random-<modules>-<seed>: the composition pipeline's randomized
  // DAG family (representative instances + open-ended family resolver).
  register_circuit_scenarios(registry);
}

}  // namespace crnkit::scenario
