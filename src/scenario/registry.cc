#include "scenario/registry.h"

#include <algorithm>

#include "math/check.h"

namespace crnkit::scenario {

namespace {

/// Edit distance for "did you mean" suggestions on unknown names.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t prev = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = prev;
    }
  }
  return row[b.size()];
}

}  // namespace

Registry& Registry::builtin() {
  static Registry* instance = [] {
    auto* r = new Registry();
    register_builtin_scenarios(*r);
    return r;
  }();
  return *instance;
}

void Registry::add(const std::string& name, Factory factory) {
  require(static_cast<bool>(factory), "Registry::add: empty factory");
  require(!name.empty(), "Registry::add: empty name");
  const bool inserted = factories_.emplace(name, std::move(factory)).second;
  require(inserted, "Registry::add: duplicate scenario '" + name + "'");
}

void Registry::add_family(FamilyResolver resolver) {
  require(static_cast<bool>(resolver), "Registry::add_family: empty resolver");
  families_.push_back(std::move(resolver));
}

std::optional<Registry::Factory> Registry::resolve_family(
    const std::string& name) const {
  for (const FamilyResolver& family : families_) {
    if (auto factory = family(name)) return factory;
  }
  return std::nullopt;
}

bool Registry::contains(const std::string& name) const {
  return factories_.count(name) > 0 || resolve_family(name).has_value();
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

Scenario Registry::build(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    if (const auto factory = resolve_family(name)) {
      Scenario scenario = (*factory)();
      require(scenario.name == name,
              "Registry::build: family factory for '" + name +
                  "' produced '" + scenario.name + "'");
      return scenario;
    }
    std::string message = "unknown scenario '" + name + "'";
    std::string best;
    std::size_t best_distance = name.size();  // only suggest close matches
    for (const auto& [candidate, factory] : factories_) {
      const std::size_t d = edit_distance(name, candidate);
      if (d < best_distance || (d == best_distance && best.empty())) {
        best_distance = d;
        best = candidate;
      }
    }
    if (!best.empty() && best_distance <= best.size() / 2) {
      message += "; did you mean '" + best + "'?";
    }
    message += " (see `crnc list`)";
    throw std::invalid_argument(message);
  }
  Scenario scenario = it->second();
  require(scenario.name == name,
          "Registry::build: factory for '" + name + "' produced '" +
              scenario.name + "'");
  return scenario;
}

std::vector<Scenario> Registry::build_all() const {
  std::vector<Scenario> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(build(name));
  return out;
}

}  // namespace crnkit::scenario
