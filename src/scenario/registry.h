// The scenario registry: a catalog mapping names like "fig1/min" or
// "chain/compose-256" to factories that build the fully-instantiated
// workload on demand (compilers run at build() time, so listing names is
// cheap and scenarios are always constructed fresh).
//
// Registry::builtin() returns the process-wide catalog preloaded with the
// paper's workloads (see builtin.cc); tests construct empty registries of
// their own. Adding a scenario is one add() call — future subsystems
// (servers, sharding drivers, alternative backends) register theirs the
// same way and inherit `crnc` support for free.
#ifndef CRNKIT_SCENARIO_REGISTRY_H_
#define CRNKIT_SCENARIO_REGISTRY_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace crnkit::scenario {

class Registry {
 public:
  using Factory = std::function<Scenario()>;

  /// The process-wide catalog with all built-in scenarios registered.
  static Registry& builtin();

  /// A parameterized scenario family: given a name, returns a factory when
  /// the name belongs to the family (e.g. "circuit/random-<n>-<seed>"),
  /// nullopt otherwise. Families make open-ended workload spaces —
  /// any (n, seed) — addressable without registering each instance.
  using FamilyResolver =
      std::function<std::optional<Factory>(const std::string&)>;

  /// Registers a factory under `name`; throws std::invalid_argument on a
  /// duplicate name. The factory must produce a Scenario whose `name`
  /// matches (checked at build time).
  void add(const std::string& name, Factory factory);

  /// Registers a family resolver, consulted by contains()/build() after
  /// the exact-name catalog. names() lists only exact-name scenarios, so
  /// families should also add() a few representative instances.
  void add_family(FamilyResolver resolver);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return factories_.size(); }

  /// Sorted scenario names.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Builds the named scenario. Throws std::invalid_argument for unknown
  /// names, with close matches suggested in the message.
  [[nodiscard]] Scenario build(const std::string& name) const;

  /// Builds every scenario, in name order.
  [[nodiscard]] std::vector<Scenario> build_all() const;

 private:
  [[nodiscard]] std::optional<Factory> resolve_family(
      const std::string& name) const;

  std::map<std::string, Factory> factories_;
  std::vector<FamilyResolver> families_;
};

/// Registers the paper's built-in scenario catalog (idempotent only on a
/// fresh registry; Registry::builtin() is the usual entry point).
void register_builtin_scenarios(Registry& registry);

/// Registers the `circuit/random-<modules>-<seed>` family (circuits.cc):
/// representative instances plus the open-ended family resolver. Called by
/// register_builtin_scenarios.
void register_circuit_scenarios(Registry& registry);

}  // namespace crnkit::scenario

#endif  // CRNKIT_SCENARIO_REGISTRY_H_
