// util::Mutex / util::MutexLock — std::mutex and std::lock_guard with
// clang thread-safety capability annotations attached. libstdc++'s
// std::mutex is unannotated, so GUARDED_BY fields guarded by it are
// invisible to -Wthread-safety; this zero-overhead wrapper is what makes
// the analysis see acquisitions. Classes that publish a locking contract
// (svc::ProofCache, svc::Server, obs::Registry) use these instead of the
// std types.
#ifndef CRNKIT_UTIL_MUTEX_H_
#define CRNKIT_UTIL_MUTEX_H_

#include <mutex>

#include "util/thread_annotations.h"

namespace crnkit::util {

class CRNKIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CRNKIT_ACQUIRE() { mu_.lock(); }
  void unlock() CRNKIT_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII scope holding a Mutex — std::lock_guard, visible to the analysis.
class CRNKIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CRNKIT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CRNKIT_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_MUTEX_H_
