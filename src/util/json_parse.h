// Minimal recursive-descent JSON *syntax* checker (objects, arrays,
// strings, numbers, booleans, null) — no DOM, no numbers parsed. Shared by
// the CLI/JSON-writer tests and the `json_check` tool the bench smoke
// tests use to assert every BENCH_*.json artifact parses cleanly (a NaN or
// Infinity token from a zero-event record would fail here).
#ifndef CRNKIT_UTIL_JSON_PARSE_H_
#define CRNKIT_UTIL_JSON_PARSE_H_

#include <cctype>
#include <string>

namespace crnkit::util {

class JsonSyntaxChecker {
 public:
  explicit JsonSyntaxChecker(const std::string& text) : text_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_JSON_PARSE_H_
