#include "util/json_value.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace crnkit::util {

namespace {

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw std::invalid_argument(std::string("JSON value is ") +
                              names[static_cast<int>(got)] + ", expected " +
                              wanted);
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': literal("true"); return bool_value(true);
      case 'f': literal("false"); return bool_value(false);
      case 'n': literal("null"); return JsonValue{};
      default: return number();
    }
  }

  void literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) {
      fail(std::string("expected '") + word + "'");
    }
    pos_ += len;
  }

  static JsonValue bool_value(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object_.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.array_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    v.string_ = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two separate 3-byte sequences; the writer never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = pos_ > start && text_[pos_ - 1] != '-';
    if (!integral) fail("malformed number");
    if (peek() == '.') {
      integral = false;
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) fail("malformed number (no fraction digits)");
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      const std::size_t exp = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) fail("malformed number (no exponent digits)");
    }
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        v.int_ = parsed;
        v.int_exact_ = true;
      }
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  if (int_exact_) return int_;
  return static_cast<std::int64_t>(number_);
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& list = items();
  if (index >= list.size()) {
    throw std::invalid_argument("JSON array index " + std::to_string(index) +
                                " out of range (size " +
                                std::to_string(list.size()) + ")");
  }
  return list[index];
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) found = &value;
  }
  return found;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw std::invalid_argument("JSON object has no member '" + key + "'");
  }
  return *found;
}

std::int64_t JsonValue::get_int(const std::string& key,
                                std::int64_t fallback) const {
  const JsonValue* found = find(key);
  return (found == nullptr || found->is_null()) ? fallback : found->as_int();
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* found = find(key);
  return (found == nullptr || found->is_null()) ? fallback : found->as_bool();
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* found = find(key);
  return (found == nullptr || found->is_null()) ? fallback
                                                : found->as_string();
}

}  // namespace crnkit::util
