// Clang thread-safety analysis attributes (-Wthread-safety), compiled to
// nothing elsewhere. Applied through util::Mutex/MutexLock (mutex.h) and
// the GUARDED_BY/REQUIRES macros here, they turn locking conventions that
// used to live in comments ("guards registration", "called under mu_")
// into compiler-checked contracts: a clang CI build fails on any access to
// a guarded field without its mutex held.
#ifndef CRNKIT_UTIL_THREAD_ANNOTATIONS_H_
#define CRNKIT_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CRNKIT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CRNKIT_THREAD_ANNOTATION(x)
#endif

/// Declares a type that models a lockable capability (util::Mutex).
#define CRNKIT_CAPABILITY(x) CRNKIT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime holds a capability (MutexLock).
#define CRNKIT_SCOPED_CAPABILITY CRNKIT_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written with `x` held.
#define CRNKIT_GUARDED_BY(x) CRNKIT_THREAD_ANNOTATION(guarded_by(x))

/// Function requires the listed capabilities held on entry (the *_locked
/// helper convention).
#define CRNKIT_REQUIRES(...) \
  CRNKIT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities.
#define CRNKIT_ACQUIRE(...) \
  CRNKIT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CRNKIT_RELEASE(...) \
  CRNKIT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be entered with the listed capabilities held
/// (self-deadlock guard for methods that take the lock themselves).
#define CRNKIT_EXCLUDES(...) \
  CRNKIT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot follow.
#define CRNKIT_NO_THREAD_SAFETY_ANALYSIS \
  CRNKIT_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // CRNKIT_UTIL_THREAD_ANNOTATIONS_H_
