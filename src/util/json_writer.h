// Minimal streaming JSON emission, shared by the bench tables and the
// `crnc` CLI. The writer tracks nesting and comma placement so callers
// only name keys and values; strings are escaped completely (quotes,
// backslashes, and all control characters, the latter as \u00XX — the
// bench helpers' original escaper missed those).
//
// Usage:
//   JsonWriter w;
//   w.begin_object().kv("name", crn.name()).key("tags").begin_array();
//   for (const auto& t : tags) w.value(t);
//   w.end_array().end_object();
//   out << w.str();
#ifndef CRNKIT_UTIL_JSON_WRITER_H_
#define CRNKIT_UTIL_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace crnkit::util {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Names the next member of the enclosing object.
  JsonWriter& key(const std::string& name) {
    separate();
    os_ << '"' << json_escape(name) << "\": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    separate();
    os_ << '"' << json_escape(v) << '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T v) {
    separate();
    os_ << v;
    return *this;
  }
  /// Doubles default to shortest-ish %.10g; use value_fixed for tables
  /// whose diffs should be stable at a known precision. JSON has no NaN or
  /// Infinity tokens, so non-finite values (zero-event bench records,
  /// zero-silent-trial simcheck rates) are emitted as null.
  JsonWriter& value(double v) {
    if (!std::isfinite(v)) return null();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    separate();
    os_ << buf;
    return *this;
  }
  JsonWriter& value_fixed(double v, int precision) {
    if (!std::isfinite(v)) return null();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    separate();
    os_ << buf;
    return *this;
  }
  JsonWriter& null() {
    separate();
    os_ << "null";
    return *this;
  }

  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    return key(name).value(v);
  }
  JsonWriter& kv_fixed(const std::string& name, double v, int precision) {
    return key(name).value_fixed(v, precision);
  }

  /// Escape hatch: splices an already-serialized fragment (e.g. a
  /// `"key": value` member prepared by a caller) as the next element.
  JsonWriter& raw_member(const std::string& fragment) {
    separate();
    os_ << fragment;
    return *this;
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  JsonWriter& open(char bracket) {
    separate();
    os_ << bracket;
    needs_comma_.push_back(false);
    return *this;
  }
  JsonWriter& close(char bracket) {
    if (!needs_comma_.empty()) needs_comma_.pop_back();
    os_ << bracket;
    return *this;
  }
  /// Emits the comma before a new element when needed, and marks the
  /// enclosing scope as populated. A value directly after key() never
  /// takes a comma.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) os_ << ", ";
      needs_comma_.back() = true;
    }
  }

  std::ostringstream os_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_JSON_WRITER_H_
