#include "util/task_pool.h"

#include <algorithm>
#include <exception>
#include <limits>

namespace crnkit::util {

namespace {
/// Hard cap on persistent workers — far above any sane request, so a
/// runaway thread count can't take the process down.
constexpr int kMaxWorkers = 256;

thread_local bool t_in_pool_task = false;
}  // namespace

namespace {
thread_local TaskPool::CounterScope* t_counter_scope = nullptr;
}  // namespace

TaskPool::CounterScope::CounterScope() : previous_(t_counter_scope) {
  t_counter_scope = this;
}

TaskPool::CounterScope::~CounterScope() { t_counter_scope = previous_; }

/// Fixed-capacity Chase-Lev deque over chunk ids. Filled once by the
/// submitter before the job is published (never pushed afterwards), so
/// only the take/steal races of the classic algorithm remain: the owner
/// pops from the bottom, thieves CAS the top.
struct TaskPool::Deque {
  std::vector<std::size_t> buf;
  std::size_t mask = 0;
  alignas(64) std::atomic<std::int64_t> top{0};
  alignas(64) std::atomic<std::int64_t> bottom{0};

  /// Prefill with `chunks` dealt to this deque, highest first, so the
  /// owner's bottom-end pops yield *increasing* chunk ids (pipelined
  /// consumers see their slices in order) while thieves strip the highest
  /// remaining chunk from the top.
  void fill(std::size_t first_chunk, std::size_t stride, std::size_t count) {
    std::size_t cap = 1;
    while (cap < count) cap <<= 1;
    buf.assign(cap, 0);
    mask = cap - 1;
    for (std::size_t i = 0; i < count; ++i) {
      buf[i] = first_chunk + (count - 1 - i) * stride;
    }
    top.store(0, std::memory_order_relaxed);
    bottom.store(static_cast<std::int64_t>(count),
                 std::memory_order_relaxed);
  }

  /// Owner-side pop (bottom end). False when empty.
  bool take(std::size_t& out) {
    const std::int64_t b = bottom.load(std::memory_order_relaxed) - 1;
    bottom.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top.load(std::memory_order_relaxed);
    if (t <= b) {
      out = buf[static_cast<std::size_t>(b) & mask];
      if (t == b) {
        // Last element: race the thieves for it.
        const bool won = top.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    bottom.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Thief-side steal (top end): 1 = got one, 0 = empty, -1 = lost a race
  /// (caller may retry).
  int steal(std::size_t& out) {
    std::int64_t t = top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom.load(std::memory_order_acquire);
    if (t >= b) return 0;
    out = buf[static_cast<std::size_t>(t) & mask];
    if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
      return -1;
    }
    return 1;
  }
};

/// One parallel_for in flight. Heap-held behind shared_ptr: a worker that
/// wakes late keeps the job (and its deques) alive past the caller's
/// return, finds nothing to do, and leaves without touching freed memory.
struct TaskPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t n_chunks = 0;
  int slots = 1;  ///< participant cap == deque count
  std::vector<Deque> deques;

  std::atomic<int> tickets{0};
  std::atomic<int> active{0};
  std::atomic<std::size_t> completed{0};
  // Job-scoped activity: every chunk is counted here exactly once, no
  // matter which thread ran it — the attribution source for the
  // submitter's CounterScope.
  std::atomic<std::uint64_t> job_tasks{0};
  std::atomic<std::uint64_t> job_steals{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  std::mutex error_mu;
  std::size_t first_error_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_error;
};

struct TaskPool::Worker {
  std::thread thread;
  alignas(64) std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> parks{0};
};

TaskPool& TaskPool::instance() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool(int workers) {
  if (workers > 0) ensure_workers(workers + 1);
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  std::lock_guard<std::mutex> lk(workers_mu_);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

bool TaskPool::in_pool_task() { return t_in_pool_task; }

void TaskPool::ensure_workers(int logical_threads) {
  const int want = std::min(logical_threads - 1, kMaxWorkers);
  if (want <= worker_count()) return;
  std::lock_guard<std::mutex> lk(workers_mu_);
  while (static_cast<int>(workers_.size()) < want) {
    workers_.push_back(std::make_unique<Worker>());
    Worker& w = *workers_.back();
    w.thread = std::thread([this, &w] { worker_main(w); });
    n_workers_.store(static_cast<int>(workers_.size()),
                     std::memory_order_release);
  }
}

void TaskPool::worker_main(Worker& self) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(wake_mu_);
  for (;;) {
    while (!shutdown_ && epoch_ == seen) {
      self.parks.fetch_add(1, std::memory_order_relaxed);
      parked_now_.fetch_add(1, std::memory_order_relaxed);
      wake_cv_.wait(lk);
      parked_now_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (shutdown_) return;
    seen = epoch_;
    std::shared_ptr<Job> job = current_;
    lk.unlock();
    if (job) {
      t_in_pool_task = true;
      work_on(*job, self.tasks, self.steals);
      t_in_pool_task = false;
    }
    lk.lock();
  }
}

void TaskPool::run_chunk(Job& job, std::size_t chunk) {
  const std::size_t begin = chunk * job.grain;
  const std::size_t end = std::min(job.n, begin + job.grain);
  try {
    for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lk(job.error_mu);
    if (chunk < job.first_error_chunk) {
      job.first_error_chunk = chunk;
      job.first_error = std::current_exception();
    }
  }
  job.completed.fetch_add(1, std::memory_order_acq_rel);
}

void TaskPool::work_on(Job& job, std::atomic<std::uint64_t>& tasks,
                       std::atomic<std::uint64_t>& steals) {
  const int ticket = job.tickets.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= job.slots) return;  // participant cap reached
  job.active.fetch_add(1, std::memory_order_acq_rel);

  std::size_t chunk;
  Deque& own = job.deques[static_cast<std::size_t>(ticket)];
  while (own.take(chunk)) {
    run_chunk(job, chunk);
    tasks.fetch_add(1, std::memory_order_relaxed);
    job.job_tasks.fetch_add(1, std::memory_order_relaxed);
  }
  // Own deque drained: strip the other deques until every chunk is
  // claimed. A lost CAS race (-1) means the victim still has work, so the
  // scan stays hot until a pass sees nothing but empties.
  for (;;) {
    bool got = false;
    bool contended = false;
    for (int d = 1; d < job.slots && !got; ++d) {
      Deque& victim =
          job.deques[static_cast<std::size_t>((ticket + d) % job.slots)];
      const int r = victim.steal(chunk);
      if (r == 1) {
        steals.fetch_add(1, std::memory_order_relaxed);
        run_chunk(job, chunk);
        tasks.fetch_add(1, std::memory_order_relaxed);
        job.job_tasks.fetch_add(1, std::memory_order_relaxed);
        job.job_steals.fetch_add(1, std::memory_order_relaxed);
        got = true;
      } else if (r == -1) {
        contended = true;
      }
    }
    if (!got && !contended) break;
  }

  if (job.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(job.done_mu);
    job.done_cv.notify_all();
  }
}

void TaskPool::parallel_for(std::size_t n, std::size_t grain,
                            const std::function<void(std::size_t)>& fn,
                            int max_threads) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t n_chunks = (n + grain - 1) / grain;
  int logical = max_threads;
  if (logical <= 0) {
    logical =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }

  const auto run_inline = [&] {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    caller_tasks_.fetch_add(n_chunks, std::memory_order_relaxed);
    if (t_counter_scope != nullptr) {
      t_counter_scope->collected_.tasks += n_chunks;
    }
  };
  if (logical <= 1 || n_chunks <= 1 || t_in_pool_task) {
    run_inline();
    return;
  }
  ensure_workers(logical);
  const int slots = static_cast<int>(std::min<std::size_t>(
      n_chunks,
      static_cast<std::size_t>(std::min(logical, worker_count() + 1))));
  if (slots <= 1) {
    run_inline();
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->grain = grain;
  job->n_chunks = n_chunks;
  job->slots = slots;
  job->deques = std::vector<Deque>(static_cast<std::size_t>(slots));
  for (int d = 0; d < slots; ++d) {
    // Deque d owns chunks d, d + slots, d + 2*slots, ... — the
    // deterministic round-robin deal.
    const std::size_t count =
        (n_chunks - static_cast<std::size_t>(d) +
         static_cast<std::size_t>(slots) - 1) /
        static_cast<std::size_t>(slots);
    job->deques[static_cast<std::size_t>(d)].fill(
        static_cast<std::size_t>(d), static_cast<std::size_t>(slots), count);
  }

  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    current_ = job;
    ++epoch_;
  }
  wake_cv_.notify_all();
  jobs_.fetch_add(1, std::memory_order_relaxed);

  // The caller is a participant like any worker — including the
  // in-pool-task flag, so a nested parallel_for issued from one of the
  // caller's own chunks runs inline instead of re-entering the job lock
  // this frame already holds. (work_on has no throwing path: run_chunk
  // catches everything into the job's error slot.)
  t_in_pool_task = true;
  work_on(*job, caller_tasks_, caller_steals_);
  t_in_pool_task = false;

  {
    std::unique_lock<std::mutex> lk(job->done_mu);
    job->done_cv.wait(lk, [&] {
      return job->completed.load(std::memory_order_acquire) ==
                 job->n_chunks &&
             job->active.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    current_.reset();
  }
  if (t_counter_scope != nullptr) {
    // Exact per-job attribution for the submitting thread: every chunk of
    // this job, wherever it ran, plus the steals it caused.
    ++t_counter_scope->collected_.jobs;
    t_counter_scope->collected_.tasks +=
        job->job_tasks.load(std::memory_order_relaxed);
    t_counter_scope->collected_.steals +=
        job->job_steals.load(std::memory_order_relaxed);
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

TaskPool::Counters TaskPool::counters() const {
  Counters total;
  total.jobs = jobs_.load(std::memory_order_relaxed);
  total.tasks = caller_tasks_.load(std::memory_order_relaxed);
  total.steals = caller_steals_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(workers_mu_);
  for (const auto& w : workers_) {
    total.tasks += w->tasks.load(std::memory_order_relaxed);
    total.steals += w->steals.load(std::memory_order_relaxed);
    total.parks += w->parks.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace crnkit::util
