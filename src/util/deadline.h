// Cooperative cancellation for long computations: a CancelToken combines
// an explicit cancel flag with an optional wall-clock deadline, and the
// holders of long loops (the reachability explorer per BFS level, the
// ensemble runner per trajectory) poll expired() at natural safepoints
// and wind down instead of being torn mid-state.
//
// Expiry is *advisory*: nothing throws, nothing is interrupted. A
// computation that observes expiry stops at its next safepoint, marks its
// result incomplete/cancelled, and returns whatever sound partial answer
// it has — the typed `deadline_exceeded` verdicts of svc::Service are
// built from exactly that contract.
//
// Tokens are cheap to copy around by pointer and safe to poll from many
// threads at once; cancel() may race with expired() freely.
#ifndef CRNKIT_UTIL_DEADLINE_H_
#define CRNKIT_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace crnkit::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never expires on its own (cancel() still works).
  CancelToken() = default;

  /// A token expiring `deadline_ms` milliseconds from now; 0 means no
  /// deadline (identical to the default constructor). Tokens are pinned
  /// in place (the atomic flag is not copyable); share by pointer.
  explicit CancelToken(std::int64_t deadline_ms) {
    if (deadline_ms > 0) {
      deadline_ = Clock::now() + std::chrono::milliseconds(deadline_ms);
      has_deadline_ = true;
    }
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; every subsequent expired() returns true.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled or past the deadline. One relaxed load plus (when
  /// a deadline is armed) one clock read — cheap enough for per-level and
  /// per-trajectory polling, too hot for per-config loops.
  [[nodiscard]] bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  [[nodiscard]] bool has_deadline() const { return has_deadline_; }

  /// Milliseconds until expiry: 0 when already expired, a large sentinel
  /// (no practical bound) when no deadline is armed.
  [[nodiscard]] std::int64_t remaining_ms() const {
    if (cancelled_.load(std::memory_order_relaxed)) return 0;
    if (!has_deadline_) return kNoDeadlineMs;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  static constexpr std::int64_t kNoDeadlineMs = INT64_C(1) << 62;

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_DEADLINE_H_
