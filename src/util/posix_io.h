// EINTR-safe POSIX I/O helpers plus atomic file replacement.
//
// The server and the persistence layers (proof cache, checkpoints) all
// talk to raw file descriptors; these wrappers centralize the retry
// loops, the SIGPIPE suppression, and the temp-file+fsync+rename dance
// so "kill -9 at any byte offset" can never leave a half-written file
// where a consistent one used to be.
//
// Failpoints (see util::FaultInjector): writers pass their cumulative
// byte offset through the `fault_site` of atomic_write_file(), so
// `SITE.crash=at:N` aborts the process mid-write and `SITE.short_write`
// truncates one write — both before the rename, which is the whole
// point: the destination path is only ever touched by a rename of a
// fully-written, fsync'd temp file.
#ifndef CRNKIT_UTIL_POSIX_IO_H_
#define CRNKIT_UTIL_POSIX_IO_H_

#include <cstddef>
#include <string>

namespace crnkit::util {

/// write(2) the whole buffer to `fd`, retrying on EINTR and partial
/// writes. Returns false on any hard error (errno preserved).
[[nodiscard]] bool write_all(int fd, const void* data, std::size_t len);

/// send(2) the whole buffer (MSG_NOSIGNAL where available), retrying on
/// EINTR and partial sends. Returns false on any hard error.
[[nodiscard]] bool send_all(int fd, const void* data, std::size_t len);

/// recv(2) up to `len` bytes, retrying on EINTR only. Returns the byte
/// count, 0 on orderly shutdown, or -1 on a hard error.
[[nodiscard]] long read_some(int fd, void* data, std::size_t len);

/// Replaces `path` atomically: writes `data` to `path.tmp.<pid>`,
/// fsyncs, renames over `path`, and fsyncs the directory. On any
/// failure the temp file is unlinked and `path` is untouched. When
/// `fault_site` is non-null, `<fault_site>.crash` (offset-triggered)
/// kills the process mid-write, and `<fault_site>.short_write` drops
/// the tail of one write before failing — for crash-durability tests.
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     const std::string& data,
                                     const char* fault_site = nullptr);

/// Appends `data` to `path` with O_APPEND and flushes it to disk
/// (open/write_all/fsync/close — one shot, so concurrent appenders
/// interleave at record granularity). Same fault sites as
/// atomic_write_file. Returns false on any failure.
[[nodiscard]] bool append_file(const std::string& path,
                               const std::string& data,
                               const char* fault_site = nullptr);

/// Streaming variant of atomic_write_file for payloads too large to
/// buffer (checkpoint arenas): opens `path.tmp.<pid>`, accepts any
/// number of write() calls, then commit() fsyncs and renames over
/// `path`. Destruction without commit() unlinks the temp file, so a
/// failed save never touches the destination. The same
/// `<fault_site>.crash` / `<fault_site>.short_write` /
/// `<fault_site>.crash_before_rename` failpoints apply, with `at:N`
/// offsets counted over the whole stream.
class FaultedFileWriter {
 public:
  FaultedFileWriter(const std::string& path, const char* fault_site);
  ~FaultedFileWriter();
  FaultedFileWriter(const FaultedFileWriter&) = delete;
  FaultedFileWriter& operator=(const FaultedFileWriter&) = delete;

  /// False when the temp file failed to open or a write failed.
  [[nodiscard]] bool ok() const { return fd_ >= 0 && !failed_; }
  [[nodiscard]] bool write(const void* data, std::size_t len);
  /// fsync + rename onto the destination; true on success.
  [[nodiscard]] bool commit();

 private:
  std::string path_;
  std::string tmp_;
  const char* fault_site_ = nullptr;
  int fd_ = -1;
  bool failed_ = false;
  bool committed_ = false;
  unsigned long long offset_ = 0;
};

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_POSIX_IO_H_
