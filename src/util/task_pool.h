// TaskPool: the process-wide persistent worker pool behind the parallel
// verifier and the ensemble runner.
//
// Before this pool existed, verify/reachability.cc spawned and joined a
// fresh std::thread team *per BFS level* (two full barriers per level) and
// sim::EnsembleRunner did the same per run() call — so simcheck and
// `crnc compose` certification, which issue hundreds of small batches,
// paid thread-creation latency on every verify point and the measured
// arena-mt speedup pinned at 1.0x. This pool spawns workers once, parks
// them on a condition variable between jobs, and hands work out through
// per-participant work-stealing deques (Chase-Lev take/steal), so a job
// submission is a counter bump and a wakeup, not N clone() calls.
//
// parallel_for(n, grain, fn) runs fn(i) for every i in [0, n). Work is cut
// into chunks of `grain` consecutive indices; chunk c covers
// [c*grain, min(n, (c+1)*grain)). Chunks are dealt round-robin across the
// participant deques in increasing chunk order *before* execution starts —
// the deterministic staging order the explorer's (shard, stage-order)
// numbering contract builds on: which OS thread runs a chunk is scheduling
// noise, but chunk c's identity (and therefore everything a consumer keys
// by chunk or index) is fixed by arithmetic alone. Each participant pops
// its own deque from the bottom (its chunks in increasing order — the
// order pipelined consumers want) while thieves steal from the top.
//
// Guarantees:
//  * fn(i) is invoked exactly once for every i in [0, n), across the
//    calling thread and up to max_threads-1 pool workers.
//  * The call blocks until every invocation has finished.
//  * If invocations throw, the exception of the lowest-numbered failing
//    chunk is rethrown on the calling thread (the error the serial loop
//    would have hit first).
//  * Nested calls (from inside a task) and max_threads <= 1 run inline on
//    the calling thread — no deadlock, same results.
//
// Jobs are serialized: a second concurrent parallel_for blocks until the
// first finishes (consumers are coarse-grained; nesting runs inline).
// Counters (jobs, tasks, steals, parks) are process-lifetime monotonic;
// callers snapshot before/after a region to report utilization (surfaced
// by `crnc verify --stats`).
#ifndef CRNKIT_UTIL_TASK_POOL_H_
#define CRNKIT_UTIL_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace crnkit::util {

class TaskPool {
 public:
  /// Monotonic process-lifetime activity counters (snapshot-diff to meter
  /// a region, or scrape directly — the /metrics pool collector does).
  struct Counters {
    std::uint64_t jobs = 0;    ///< parallel_for calls that engaged workers
    std::uint64_t tasks = 0;   ///< chunks executed (pool jobs + inline)
    std::uint64_t steals = 0;  ///< chunks taken from another deque
    std::uint64_t parks = 0;   ///< worker blocks on the wake condvar
  };

  /// RAII per-job counter scope: while alive on a thread, every
  /// parallel_for *submitted by that thread* adds its own job/task/steal
  /// totals here — exact attribution even when other threads run
  /// concurrent jobs on the shared pool (the global counters() deltas
  /// bleed across submitters; these never do). Parks are not attributed:
  /// a worker parks between jobs, when no submitter owns it. Scopes nest
  /// (inner scopes shadow; totals still reach the outer scope on exit is
  /// NOT provided — each scope sees only jobs submitted while it was the
  /// innermost). Not copyable; keep on the stack of the submitting
  /// thread.
  class CounterScope {
   public:
    CounterScope();
    ~CounterScope();
    CounterScope(const CounterScope&) = delete;
    CounterScope& operator=(const CounterScope&) = delete;

    /// Totals of the jobs this scope's thread submitted so far.
    [[nodiscard]] Counters collected() const { return collected_; }

   private:
    friend class TaskPool;
    Counters collected_;
    CounterScope* previous_ = nullptr;
  };

  /// The shared pool. Workers are spawned lazily (first parallel job) and
  /// live until process exit.
  static TaskPool& instance();

  /// `workers` pool threads (0 = lazy: grown on demand up to
  /// hardware_concurrency() - 1). Mostly for tests; production code uses
  /// instance().
  explicit TaskPool(int workers = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Current persistent worker-thread count (callers add one more).
  [[nodiscard]] int worker_count() const {
    return n_workers_.load(std::memory_order_acquire);
  }

  /// Grows the pool so that `logical_threads` participants (including the
  /// caller) can run concurrently. Monotonic; never shrinks.
  void ensure_workers(int logical_threads);

  /// Runs fn(i) for every i in [0, n) in chunks of `grain`, on the calling
  /// thread plus up to max_threads-1 pool workers (max_threads 0 means
  /// hardware concurrency). See the file comment for the full contract.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn,
                    int max_threads = 0);

  [[nodiscard]] Counters counters() const;

  /// Workers currently blocked on the wake condvar (live value for the
  /// crnkit_pool_parked_workers gauge).
  [[nodiscard]] int parked_workers() const {
    return parked_now_.load(std::memory_order_relaxed);
  }

  /// True while the current thread is executing a pool task (nested
  /// parallel_for calls run inline).
  [[nodiscard]] static bool in_pool_task();

 private:
  struct Deque;
  struct Job;
  struct Worker;

  void worker_main(Worker& self);
  /// Participate in `job`: claim a deque ticket, drain own deque, then
  /// steal until the job has no unclaimed chunks.
  static void work_on(Job& job, std::atomic<std::uint64_t>& tasks,
                      std::atomic<std::uint64_t>& steals);
  static void run_chunk(Job& job, std::size_t chunk);

  mutable std::mutex workers_mu_;  ///< guards workers_ growth
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<int> n_workers_{0};

  std::mutex job_mu_;  ///< serializes job submissions

  // Parked workers wait on wake_cv_ for an epoch bump; current_ holds the
  // in-flight job (shared_ptr so a late-waking worker can never touch a
  // freed job).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::shared_ptr<Job> current_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;

  // Caller-side counter shares (workers keep their own, summed lazily).
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> caller_tasks_{0};
  std::atomic<std::uint64_t> caller_steals_{0};
  std::atomic<int> parked_now_{0};
};

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_TASK_POOL_H_
