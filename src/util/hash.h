// Shared 64-bit mixing primitives: the splitmix64 finalizer (the same
// function verify::ConfigStore uses for Zobrist seeds and shard choice)
// and a chain combiner for content hashes — crn::canonical_hash and the
// proof-cache keys/persistence checksums build on these. Header-only so
// layers below verify/ can hash without a dependency inversion.
#ifndef CRNKIT_UTIL_HASH_H_
#define CRNKIT_UTIL_HASH_H_

#include <cstdint>

namespace crnkit::util {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive chain step: folds `v` into the running hash `h`.
[[nodiscard]] inline std::uint64_t hash_chain(std::uint64_t h,
                                              std::uint64_t v) {
  return splitmix64(h ^ splitmix64(v));
}

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_HASH_H_
