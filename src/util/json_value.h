// A small JSON document model with a recursive-descent parser — the DOM
// counterpart of the syntax-only checker in util/json_parse.h. The service
// layer parses line-JSON requests with it, the proof cache loads its
// persisted form through it, and tests round-trip every CLI/server JSON
// output through it (parse -> field access), so writer and parser stay in
// agreement about what the versioned schema emits.
//
// Numbers are kept both ways: as the int64 value when the token is an
// exact integer in range, and as the double value always. Object member
// order is preserved (round-trip friendly); duplicate keys keep the last
// value, like every lenient JSON reader.
#ifndef CRNKIT_UTIL_JSON_VALUE_H_
#define CRNKIT_UTIL_JSON_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace crnkit::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON value spanning the whole input; throws
  /// std::invalid_argument with a byte offset on malformed text.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  JsonValue() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::invalid_argument on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  // --- arrays ---
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] std::size_t size() const { return items().size(); }
  [[nodiscard]] const JsonValue& at(std::size_t index) const;

  // --- objects ---
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;
  /// Member lookup (last duplicate wins); nullptr when absent.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const {
    return find(key) != nullptr;
  }
  /// find() that throws std::invalid_argument naming the missing key.
  [[nodiscard]] const JsonValue& get(const std::string& key) const;

  // --- convenience readers with defaults (absent or null -> fallback) ---
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  bool int_exact_ = false;  ///< int_ holds the token's exact integer value
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_JSON_VALUE_H_
