// The one crnkit version string, shared by `crnc --version`, the serve
// daemon's /healthz body, and anything else that identifies the build.
// CRNKIT_GIT_DESCRIBE is stamped by CMake (`git describe --always
// --dirty` at configure time) and falls back to "unknown" for builds
// outside a git checkout.
#ifndef CRNKIT_UTIL_VERSION_H_
#define CRNKIT_UTIL_VERSION_H_

namespace crnkit {

inline constexpr const char* kVersion = "0.7.0";

inline constexpr const char* kGitDescribe =
#ifdef CRNKIT_GIT_DESCRIBE
    CRNKIT_GIT_DESCRIBE;
#else
    "unknown";
#endif

}  // namespace crnkit

#endif  // CRNKIT_UTIL_VERSION_H_
