#include "util/posix_io.h"

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/fault_injector.h"

namespace crnkit::util {

namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

/// Applies the write-path failpoints for one chunk: `<site>.crash`
/// SIGKILLs the process once the cumulative offset crosses the trigger
/// (the reproducible "kill -9 at byte N"); `<site>.short_write` reports
/// how many bytes to actually write before failing (arg=N bytes of the
/// chunk, default 0). Returns the (possibly shortened) chunk length, or
/// -1 when the write should fail outright after the short write.
long apply_write_faults(const char* site, std::uint64_t offset,
                        std::size_t len, bool* fail_after) {
  *fail_after = false;
  if (site == nullptr || !FaultInjector::instance().armed()) {
    return static_cast<long>(len);
  }
  auto& inj = FaultInjector::instance();
  const std::string crash_site = std::string(site) + ".crash";
  if (inj.fires_at(crash_site.c_str(), offset + len)) {
    // Simulate kill -9 mid-write: no destructors, no atexit, no flush.
    std::raise(SIGKILL);
    _exit(137);  // unreachable unless SIGKILL is somehow blocked
  }
  const std::string short_site = std::string(site) + ".short_write";
  if (inj.fires_at(short_site.c_str(), offset + len)) {
    *fail_after = true;
    const std::int64_t keep = inj.arg(short_site.c_str(), 0);
    if (keep <= 0) return 0;
    return keep < static_cast<std::int64_t>(len) ? static_cast<long>(keep)
                                                 : static_cast<long>(len);
  }
  return static_cast<long>(len);
}

/// write_all against `fd` with the fault sites applied per chunk,
/// tracking the cumulative offset for `at:` triggers.
bool write_all_faulted(int fd, const char* data, std::size_t len,
                       const char* fault_site, std::uint64_t* offset) {
  while (len > 0) {
    bool fail_after = false;
    // Feed faults in bounded chunks so an at:N trigger lands inside the
    // right chunk instead of after one giant write.
    const std::size_t chunk = len < 4096 ? len : 4096;
    const long want = apply_write_faults(fault_site, *offset, chunk,
                                         &fail_after);
    if (want > 0 && !write_all(fd, data, static_cast<std::size_t>(want))) {
      return false;
    }
    if (fail_after) {
      errno = EIO;
      return false;
    }
    data += chunk;
    len -= chunk;
    *offset += chunk;
  }
  return true;
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

long read_some(int fd, void* data, std::size_t len) {
  while (true) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

bool atomic_write_file(const std::string& path, const std::string& data,
                       const char* fault_site) {
  FaultedFileWriter writer(path, fault_site);
  if (!writer.write(data.data(), data.size())) return false;
  return writer.commit();
}

FaultedFileWriter::FaultedFileWriter(const std::string& path,
                                     const char* fault_site)
    : path_(path),
      tmp_(path + ".tmp." + std::to_string(static_cast<long>(::getpid()))),
      fault_site_(fault_site) {
  fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

FaultedFileWriter::~FaultedFileWriter() {
  if (fd_ >= 0) ::close(fd_);
  if (!committed_) ::unlink(tmp_.c_str());
}

bool FaultedFileWriter::write(const void* data, std::size_t len) {
  if (!ok()) return false;
  std::uint64_t offset = offset_;
  const bool wrote = write_all_faulted(
      fd_, static_cast<const char*>(data), len, fault_site_, &offset);
  offset_ = offset;
  if (!wrote) failed_ = true;
  return wrote;
}

bool FaultedFileWriter::commit() {
  if (!ok()) return false;
  bool good = ::fsync(fd_) == 0;
  ::close(fd_);
  fd_ = -1;
  if (good && fault_site_ != nullptr && FaultInjector::instance().armed()) {
    // A crash between the full temp write and the rename: the temp file
    // is complete but the destination still holds the old contents.
    const std::string site = std::string(fault_site_) + ".crash_before_rename";
    if (FaultInjector::instance().fires(site.c_str())) {
      std::raise(SIGKILL);
      _exit(137);
    }
  }
  if (good) good = ::rename(tmp_.c_str(), path_.c_str()) == 0;
  if (!good) {
    ::unlink(tmp_.c_str());
    failed_ = true;
    return false;
  }
  committed_ = true;
  fsync_parent_dir(path_);
  return true;
}

bool append_file(const std::string& path, const std::string& data,
                 const char* fault_site) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  // For `at:` triggers an appender's offset is its position in the file,
  // not in this record — crash tests can target any absolute byte.
  std::uint64_t offset = 0;
  const off_t at = ::lseek(fd, 0, SEEK_END);
  if (at > 0) offset = static_cast<std::uint64_t>(at);
  bool ok = write_all_faulted(fd, data.data(), data.size(), fault_site,
                              &offset);
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace crnkit::util
