#include "util/fault_injector.h"

#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.h"
#include "verify/config_store.h"  // splitmix64

namespace crnkit::util {

namespace {

/// One fired-fault counter per site, looked up on the (cold) fire path.
void count_fire(const std::string& site) {
  obs::Registry::instance()
      .counter("crnkit_faults_injected_total",
               "faults fired by armed failpoints, by site",
               {{"site", site}})
      .inc();
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("CRNKIT_FAULTS")) {
      inj->configure(env);
    }
    return inj;
  }();
  return *injector;
}

void FaultInjector::configure(const std::string& spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    begin = end + 1;
    if (item.find_first_not_of(" \t") == std::string::npos) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("faults: expected site=trigger, got '" +
                                  item + "'");
    }
    const std::string site = item.substr(0, eq);
    std::string trigger = item.substr(eq + 1);

    Point point;
    // Peel a trailing ":arg=N" first; the rest is the trigger proper.
    const std::size_t arg_at = trigger.find(":arg=");
    if (arg_at != std::string::npos) {
      point.has_arg = true;
      point.arg = std::strtoll(trigger.c_str() + arg_at + 5, nullptr, 10);
      trigger.resize(arg_at);
    }

    const auto number_after = [&](std::size_t prefix_len) -> std::uint64_t {
      if (trigger.size() <= prefix_len) {
        throw std::invalid_argument("faults: trigger '" + trigger +
                                    "' for '" + site + "' needs a value");
      }
      return std::strtoull(trigger.c_str() + prefix_len, nullptr, 10);
    };
    if (trigger == "always") {
      point.trigger = Trigger::kAlways;
    } else if (trigger.rfind("once:", 0) == 0) {
      point.trigger = Trigger::kOnce;
      point.n = number_after(5);
    } else if (trigger.rfind("every:", 0) == 0) {
      point.trigger = Trigger::kEvery;
      point.n = number_after(6);
      if (point.n == 0) {
        throw std::invalid_argument("faults: every:0 for '" + site + "'");
      }
    } else if (trigger.rfind("prob:", 0) == 0) {
      point.trigger = Trigger::kProb;
      char* after = nullptr;
      point.p = std::strtod(trigger.c_str() + 5, &after);
      if (point.p < 0.0 || point.p > 1.0) {
        throw std::invalid_argument("faults: prob out of [0,1] for '" +
                                    site + "'");
      }
      point.rng = 0x9e3779b97f4a7c15ULL;  // default seed
      if (after != nullptr && *after == ':') {
        point.rng = std::strtoull(after + 1, nullptr, 10);
      }
    } else if (trigger.rfind("at:", 0) == 0) {
      point.trigger = Trigger::kAt;
      point.n = number_after(3);
    } else {
      throw std::invalid_argument("faults: unknown trigger '" + trigger +
                                  "' for '" + site + "'");
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (points_.emplace(site, point).second) {
      armed_count_.fetch_add(1, std::memory_order_relaxed);
    } else {
      points_[site] = point;
    }
  }
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::evaluate_locked(Point& point, bool offset_reached) {
  ++point.hits;
  bool fire = false;
  switch (point.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kOnce:
      fire = point.hits == point.n;
      break;
    case Trigger::kEvery:
      fire = point.hits % point.n == 0;
      break;
    case Trigger::kProb: {
      point.rng = verify::splitmix64(point.rng);
      fire = static_cast<double>(point.rng >> 11) * 0x1.0p-53 < point.p;
      break;
    }
    case Trigger::kAt:
      fire = offset_reached;
      break;
  }
  if (fire) ++point.fired;
  return fire;
}

bool FaultInjector::fires(const char* site) {
  if (!armed()) return false;
  std::string fired_site;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(site);
    if (it == points_.end()) return false;
    // An `at:` trigger never fires through the offset-less entry point.
    if (!evaluate_locked(it->second, /*offset_reached=*/false)) return false;
    fired_site = it->first;
  }
  count_fire(fired_site);
  return true;
}

bool FaultInjector::fires_at(const char* site, std::uint64_t offset) {
  if (!armed()) return false;
  std::string fired_site;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(site);
    if (it == points_.end()) return false;
    Point& point = it->second;
    const bool reached =
        point.trigger == Trigger::kAt && point.fired == 0 && offset >= point.n;
    if (!evaluate_locked(point, reached)) return false;
    fired_site = it->first;
  }
  count_fire(fired_site);
  return true;
}

std::int64_t FaultInjector::arg(const char* site,
                                std::int64_t fallback) const {
  if (!armed()) return fallback;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(site);
  if (it == points_.end() || !it->second.has_arg) return fallback;
  return it->second.arg;
}

std::vector<FaultInjector::SiteStats> FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteStats> out;
  out.reserve(points_.size());
  for (const auto& [site, point] : points_) {
    out.push_back({site, point.hits, point.fired});
  }
  return out;
}

}  // namespace crnkit::util
