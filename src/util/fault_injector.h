// util::FaultInjector — armed failpoints for exercising failure paths on
// purpose. Production code asks `FaultInjector::instance().fires(site)`
// at the places failures can really happen (cache persistence, checkpoint
// writes, server socket I/O); with nothing armed that is one relaxed
// atomic load, so the sites stay compiled into release builds and chaos
// runs drive the exact binaries that ship.
//
// Arming: the CRNKIT_FAULTS environment variable (read once at first
// use), `crnc serve --faults SPEC`, or configure() from tests. SPEC is a
// comma-separated list of `site=trigger` pairs:
//
//   cache.save.crash=once:2        fire on the 2nd hit only
//   server.read.reset=every:7      fire on every 7th hit
//   server.dispatch.delay=prob:0.1:42   fire w.p. 0.1 (seeded, deterministic)
//   checkpoint.save.short_write=always  fire on every hit
//   cache.save.crash=at:4096       fire when the site's reported byte
//                                  offset reaches 4096 (writers pass their
//                                  cumulative offset to fires_at())
//
// An optional `:arg=N` suffix attaches an integer parameter the site
// reads back with arg() — the injected-delay milliseconds, a short-write
// byte count, and so on: `server.dispatch.delay=every:5:arg=20`.
//
// The failpoint catalog (what each site does when it fires) is in the
// README's "Robustness & operations" section; sites are just strings, so
// adding one needs no registry change. Every fire increments the
// crnkit_faults_injected_total{site} counter.
#ifndef CRNKIT_UTIL_FAULT_INJECTOR_H_
#define CRNKIT_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace crnkit::util {

class FaultInjector {
 public:
  /// The process-wide injector. First call reads CRNKIT_FAULTS.
  static FaultInjector& instance();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Parses and arms a spec ("site=trigger,site=trigger"); throws
  /// std::invalid_argument on malformed specs. Replaces any existing
  /// failpoint for the same site; an empty spec is a no-op.
  void configure(const std::string& spec);

  /// Disarms everything and zeroes the hit/fire counters.
  void reset();

  /// Counts a hit of `site` and decides whether the fault fires now.
  /// False (after one relaxed load) when nothing is armed anywhere.
  [[nodiscard]] bool fires(const char* site);

  /// Offset-triggered variant for writers: fires once the caller's
  /// cumulative `offset` reaches an `at:N` trigger (count/prob triggers
  /// evaluate as in fires()). The byte offset a failpoint crosses is what
  /// makes "kill -9 at any byte offset" reproducible.
  [[nodiscard]] bool fires_at(const char* site, std::uint64_t offset);

  /// The `arg=N` parameter of the site's failpoint (fallback when absent
  /// or unarmed). Does not count a hit.
  [[nodiscard]] std::int64_t arg(const char* site,
                                 std::int64_t fallback = 0) const;

  /// True when any failpoint is armed (the cheap branch-out the hot
  /// sites rely on).
  [[nodiscard]] bool armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  struct SiteStats {
    std::string site;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };
  [[nodiscard]] std::vector<SiteStats> stats() const;

 private:
  enum class Trigger { kAlways, kOnce, kEvery, kProb, kAt };

  struct Point {
    Trigger trigger = Trigger::kAlways;
    std::uint64_t n = 0;        ///< once: target hit; every: period; at: offset
    double p = 0.0;             ///< prob trigger probability
    std::uint64_t rng = 0;      ///< prob trigger PRNG state
    bool has_arg = false;
    std::int64_t arg = 0;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  [[nodiscard]] bool evaluate_locked(Point& point, bool offset_reached);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
  std::atomic<int> armed_count_{0};
};

}  // namespace crnkit::util

#endif  // CRNKIT_UTIL_FAULT_INJECTOR_H_
