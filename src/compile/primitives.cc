#include "compile/primitives.h"

#include "crn/checks.h"
#include "math/check.h"

namespace crnkit::compile {

using crn::Crn;
using math::Int;

Crn min_crn(int k) {
  require(k >= 1, "min_crn: need at least one input");
  Crn out("min" + std::to_string(k));
  std::vector<std::string> inputs;
  std::vector<std::pair<std::string, Int>> reactants;
  for (int i = 0; i < k; ++i) {
    inputs.push_back("X" + std::to_string(i + 1));
    reactants.emplace_back(inputs.back(), 1);
  }
  out.set_input_species(inputs);
  out.set_output_species("Y");
  out.add_reaction(reactants, {{"Y", 1}});
  crn::require_output_oblivious(out);
  return out;
}

Crn clamp_crn(Int n) {
  require(n >= 0, "clamp_crn: negative threshold");
  Crn out("clamp" + std::to_string(n));
  out.set_input_species({"X"});
  out.set_output_species("Y");
  if (n == 0) {
    out.add_reaction({{"X", 1}}, {{"Y", 1}});
  } else {
    out.add_reaction({{"X", n + 1}}, {{"X", n}, {"Y", 1}});
  }
  crn::require_output_oblivious(out);
  return out;
}

Crn indicator_crn(Int j) {
  require(j >= 0, "indicator_crn: negative threshold");
  Crn out("indicator>" + std::to_string(j));
  out.set_input_species({"A", "B", "C"});
  out.set_output_species("Y");
  out.add_reaction({{"A", 1}}, {{"Y", 1}});
  out.add_reaction({{"C", j + 1}, {"B", 1}}, {{"C", j + 1}, {"Y", 1}});
  crn::require_output_oblivious(out);
  return out;
}

Crn constant_crn(Int c) {
  require(c >= 0, "constant_crn: negative constant");
  Crn out("const" + std::to_string(c));
  out.set_output_species("Y");
  out.set_leader_species("L");
  if (c == 0) {
    out.add_reaction({{"L", 1}}, {{"L#done", 1}});
  } else {
    out.add_reaction({{"L", 1}}, {{"Y", c}});
  }
  crn::require_output_oblivious(out);
  return out;
}

Crn identity_crn() {
  Crn out("identity");
  out.set_input_species({"X"});
  out.set_output_species("Y");
  out.add_reaction({{"X", 1}}, {{"Y", 1}});
  crn::require_output_oblivious(out);
  return out;
}

Crn scale_crn(Int k) {
  require(k >= 1, "scale_crn: scale must be >= 1");
  Crn out("scale" + std::to_string(k));
  out.set_input_species({"X"});
  out.set_output_species("Y");
  out.add_reaction({{"X", 1}}, {{"Y", k}});
  crn::require_output_oblivious(out);
  return out;
}

Crn affine_crn(const std::vector<Int>& coefficients, Int constant) {
  require(!coefficients.empty() || constant > 0,
          "affine_crn: empty form (use constant_crn)");
  require(constant >= 0, "affine_crn: negative constant");
  Crn out("affine");
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < coefficients.size(); ++i) {
    require(coefficients[i] >= 0, "affine_crn: negative coefficient");
    inputs.push_back("X" + std::to_string(i + 1));
  }
  out.set_input_species(inputs);
  out.set_output_species("Y");
  for (std::size_t i = 0; i < coefficients.size(); ++i) {
    if (coefficients[i] == 0) {
      // The port must still be consumed so its molecules cannot linger.
      out.add_reaction({{inputs[i], 1}}, {{"W", 1}});
    } else {
      out.add_reaction({{inputs[i], 1}}, {{"Y", coefficients[i]}});
    }
  }
  if (constant > 0) {
    out.set_leader_species("L");
    out.add_reaction({{"L", 1}}, {{"Y", constant}});
  }
  crn::require_output_oblivious(out);
  return out;
}

Crn max_const_crn(Int n) {
  require(n >= 0, "max_const_crn: negative constant");
  if (n == 0) return identity_crn();
  Crn out("max-const" + std::to_string(n));
  out.set_input_species({"X"});
  out.set_output_species("Y");
  out.set_leader_species("L");
  out.add_reaction({{"L", 1}}, {{"Y", n}});
  out.add_reaction({{"X", n + 1}}, {{"X", n}, {"Y", 1}});
  crn::require_output_oblivious(out);
  return out;
}

Crn fig1_max_crn() {
  Crn out("fig1-max");
  out.set_input_species({"X1", "X2"});
  out.set_output_species("Y");
  out.add_reaction_str("X1 -> Z1 + Y");
  out.add_reaction_str("X2 -> Z2 + Y");
  out.add_reaction_str("Z1 + Z2 -> K");
  out.add_reaction_str("K + Y -> 0");
  return out;
}

Crn fig2_min1_leaderless() {
  Crn out("fig2-min1-leaderless");
  out.set_input_species({"X"});
  out.set_output_species("Y");
  out.add_reaction_str("X -> Y");
  out.add_reaction_str("2Y -> Y");
  return out;
}

Crn fig2_min1_leader() {
  Crn out("fig2-min1-leader");
  out.set_input_species({"X"});
  out.set_output_species("Y");
  out.set_leader_species("L");
  out.add_reaction_str("L + X -> Y");
  crn::require_output_oblivious(out);
  return out;
}

}  // namespace crnkit::compile
