// Theorem 3.1: every semilinear nondecreasing f : N -> N is obliviously-
// computable with a leader. The leader walks through explicit states
// L_0..L_{n-1} while x < n, then cycles through periodic states P_0..P_{p-1},
// emitting the finite difference on each input absorption:
//     L -> f(0) Y + L_0
//     L_i + X -> [f(i+1) - f(i)] Y + L_{i+1}        (i < n-1)
//     L_{n-1} + X -> [f(n) - f(n-1)] Y + P_{n mod p}
//     P_a + X -> delta_a Y + P_{(a+1) mod p}
#ifndef CRNKIT_COMPILE_ONED_H_
#define CRNKIT_COMPILE_ONED_H_

#include "crn/network.h"
#include "fn/oned_structure.h"

namespace crnkit::compile {

/// Compiles from explicit eventual structure. Requires all finite
/// differences (initial and periodic) to be nonnegative, i.e. f
/// nondecreasing; throws otherwise.
[[nodiscard]] crn::Crn compile_oned(const fn::OneDStructure& structure,
                                    const std::string& name = "oned");

/// Convenience: detect the structure of a 1D black box, then compile.
/// Throws if detection fails or f is decreasing somewhere.
[[nodiscard]] crn::Crn compile_oned(
    const fn::DiscreteFunction& f,
    const fn::OneDStructureOptions& options = {});

}  // namespace crnkit::compile

#endif  // CRNKIT_COMPILE_ONED_H_
