// Theorem 5.2 / Lemma 6.2: the general compiler from an eventually-min-of-
// quilt-affine description to an output-oblivious CRN.
//
// Equation (1) of the paper:
//   f(x) = min[ f(x v n),
//               f_[x(i)->j](x) + 1_{x(i)>j}(x) * f(x v n) ]   for i<=d, j<n
// is realized as a feed-forward circuit of output-oblivious modules:
//   - per-component clamps (x_i - n)+                  (primitives)
//   - translated quilt-affine modules g_k(x + n)       (Lemma 6.1)
//   - a min over the m translated modules = f(x v n)
//   - per-(i,j) restriction modules (recursive; Theorem 3.1 at d = 1)
//   - per-(i,j) indicator modules c(a, b, x_i)
//   - a final (1 + d*n)-ary min
// Composition correctness is Observation 2.2; the Circuit class implements
// the renaming/fan-out/leader-splitting mechanics.
#ifndef CRNKIT_COMPILE_THEOREM52_H_
#define CRNKIT_COMPILE_THEOREM52_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "crn/compose.h"
#include "fn/oned_structure.h"
#include "fn/quilt_affine.h"

namespace crnkit::compile {

/// The data of Theorem 5.2 for one function: a black box (used for
/// restrictions and validation), the eventual threshold n (uniform across
/// components, WLOG as in the paper), and the quilt-affine functions whose
/// min describes f on x >= (n, ..., n).
///
/// `children` optionally carries hand-authored specs for the fixed-input
/// restrictions f_[x(i)->j] (keyed by (i, j), each of dimension d-1, over
/// the remaining inputs in order). When absent, 1D restrictions are derived
/// automatically by scanning; higher-dimensional restrictions require either
/// a child spec or a provider hook (the analysis pipeline supplies one).
struct ObliviousSpec {
  fn::DiscreteFunction f;
  math::Int threshold = 0;
  std::vector<fn::QuiltAffine> eventual;
  std::map<std::pair<int, math::Int>, std::shared_ptr<ObliviousSpec>> children;
};

struct Theorem52Options {
  /// Verify f == min_k g_k on [n, n+window]^d before compiling (cheap
  /// misuse detection; the compiler's output is only as correct as the
  /// spec).
  math::Int validation_window = 3;
  /// Options for automatic 1D restriction detection.
  fn::OneDStructureOptions oned;
  /// Fallback provider for restriction specs of dimension >= 2 when
  /// `children` has no entry. Receives (i, j) and the restricted black box
  /// (dimension d-1); returns the spec.
  std::function<ObliviousSpec(int, math::Int, const fn::DiscreteFunction&)>
      restriction_provider;
};

/// The restriction of `f` dropping input i pinned at value j: a black box
/// of dimension d-1 over the remaining inputs in order.
[[nodiscard]] fn::DiscreteFunction drop_input(const fn::DiscreteFunction& f,
                                              int i, math::Int j);

/// Compiles the spec into an output-oblivious CRN with a leader.
[[nodiscard]] crn::Crn compile_theorem52(const ObliviousSpec& spec,
                                         const Theorem52Options& options = {});

}  // namespace crnkit::compile

#endif  // CRNKIT_COMPILE_THEOREM52_H_
