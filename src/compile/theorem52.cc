#include "compile/theorem52.h"

#include "compile/oned.h"
#include "compile/primitives.h"
#include "compile/quilt.h"
#include "fn/properties.h"
#include "geom/arrangement.h"
#include "math/check.h"

namespace crnkit::compile {

using crn::Circuit;
using crn::Crn;
using crn::Wire;
using math::Int;

fn::DiscreteFunction drop_input(const fn::DiscreteFunction& f, int i,
                                Int j) {
  require(i >= 0 && i < f.dimension(), "drop_input: bad input index");
  require(f.dimension() >= 2, "drop_input: needs dimension >= 2");
  require(j >= 0, "drop_input: negative pin value");
  const int d = f.dimension();
  return fn::DiscreteFunction(
      d - 1,
      [f, i, j, d](const fn::Point& rest) {
        fn::Point full(static_cast<std::size_t>(d));
        int from = 0;
        for (int k = 0; k < d; ++k) {
          if (k == i) {
            full[static_cast<std::size_t>(k)] = j;
          } else {
            full[static_cast<std::size_t>(k)] =
                rest[static_cast<std::size_t>(from++)];
          }
        }
        return f(full);
      },
      f.name() + "[x(" + std::to_string(i + 1) + ")=" + std::to_string(j) +
          "]");
}

namespace {

void validate_spec(const ObliviousSpec& spec,
                   const Theorem52Options& options) {
  const int d = spec.f.dimension();
  require(!spec.eventual.empty(),
          "compile_theorem52: spec has no eventual quilt-affine parts");
  for (const auto& g : spec.eventual) {
    require(g.dimension() == d,
            "compile_theorem52: quilt-affine dimension mismatch");
    require(g.is_nondecreasing(),
            "compile_theorem52: eventual part '" + g.name() +
                "' is not nondecreasing");
  }
  require(spec.threshold >= 0, "compile_theorem52: negative threshold");
  if (options.validation_window > 0) {
    const fn::Point n(static_cast<std::size_t>(d), spec.threshold);
    fn::MinOfQuiltAffine eventual_min(spec.eventual);
    const auto mismatch = fn::find_domination_violation(
        eventual_min.as_function(), spec.f, n, options.validation_window);
    const auto mismatch2 = fn::find_domination_violation(
        spec.f, eventual_min.as_function(), n, options.validation_window);
    require(!mismatch && !mismatch2,
            "compile_theorem52: f != min_k g_k near the threshold; the spec "
            "is inconsistent with the black box");
  }
}

}  // namespace

Crn compile_theorem52(const ObliviousSpec& spec,
                      const Theorem52Options& options) {
  const int d = spec.f.dimension();

  // Base case: Theorem 3.1 handles every 1D semilinear nondecreasing f
  // directly (the eventual-min data is not needed).
  if (d == 1) {
    return compile_oned(spec.f, options.oned);
  }

  validate_spec(spec, options);
  const Int n = spec.threshold;
  const fn::Point n_vec(static_cast<std::size_t>(d), n);
  const int m = static_cast<int>(spec.eventual.size());

  Circuit circuit(d, "thm52[" + spec.f.name() + "]");

  // --- f(x v n) = min_k g_k((x - n)+ + n) ---
  std::vector<int> clamps;
  for (int i = 0; i < d; ++i) {
    clamps.push_back(circuit.add_module(clamp_crn(n)));
    circuit.connect(Wire::external(i), clamps.back(), 0);
  }
  std::vector<int> quilt_modules;
  for (int k = 0; k < m; ++k) {
    fn::QuiltAffine translated = spec.eventual[static_cast<std::size_t>(k)]
                                     .translated(n_vec);
    require(translated.is_nonnegative_everywhere(),
            "compile_theorem52: g_k(x + n) takes negative values — the "
            "spec's threshold is too small (Lemma 6.2 requires g_k >= f >= 0 "
            "beyond n)");
    quilt_modules.push_back(circuit.add_module(
        compile_quilt_affine(translated)));
    for (int i = 0; i < d; ++i) {
      circuit.connect(Wire::of_module(clamps[static_cast<std::size_t>(i)]),
                      quilt_modules.back(), i);
    }
  }
  const int min_eventual = circuit.add_module(min_crn(m));
  for (int k = 0; k < m; ++k) {
    circuit.connect(Wire::of_module(quilt_modules[static_cast<std::size_t>(k)]),
                    min_eventual, k);
  }

  // --- terms c(f_[x(i)->j](x), f(x v n), x_i) for i < d, j < n ---
  std::vector<int> term_modules;
  for (int i = 0; i < d; ++i) {
    for (Int j = 0; j < n; ++j) {
      // Restriction module: dimension d-1 over the remaining inputs.
      Crn restriction_crn("unset");
      const auto child = spec.children.find({i, j});
      if (child != spec.children.end()) {
        restriction_crn = compile_theorem52(*child->second, options);
      } else if (d - 1 == 1) {
        restriction_crn = compile_oned(drop_input(spec.f, i, j),
                                       options.oned);
      } else if (options.restriction_provider) {
        const ObliviousSpec derived =
            options.restriction_provider(i, j, drop_input(spec.f, i, j));
        restriction_crn = compile_theorem52(derived, options);
      } else {
        throw std::invalid_argument(
            "compile_theorem52: restriction (i=" + std::to_string(i) +
            ", j=" + std::to_string(j) +
            ") has dimension >= 2 but no child spec or provider was given");
      }
      const int restriction = circuit.add_module(std::move(restriction_crn));
      {
        int port = 0;
        for (int k = 0; k < d; ++k) {
          if (k == i) continue;
          circuit.connect(Wire::external(k), restriction, port++);
        }
      }
      const int indicator = circuit.add_module(indicator_crn(j));
      circuit.connect(Wire::of_module(restriction), indicator, 0);    // A
      circuit.connect(Wire::of_module(min_eventual), indicator, 1);   // B
      circuit.connect(Wire::external(i), indicator, 2);               // C
      term_modules.push_back(indicator);
    }
  }

  // --- final min over 1 + d*n wires ---
  const int min_all =
      circuit.add_module(min_crn(1 + static_cast<int>(term_modules.size())));
  circuit.connect(Wire::of_module(min_eventual), min_all, 0);
  for (std::size_t t = 0; t < term_modules.size(); ++t) {
    circuit.connect(Wire::of_module(term_modules[t]), min_all,
                    static_cast<int>(t) + 1);
  }
  circuit.add_output(Wire::of_module(min_all));

  Crn out = circuit.compile();
  out.set_name("thm52[" + spec.f.name() + "]");
  crn::require_output_oblivious(out);
  return out;
}

}  // namespace crnkit::compile
