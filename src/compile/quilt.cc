#include "compile/quilt.h"

#include "crn/checks.h"
#include "math/check.h"

namespace crnkit::compile {

using crn::Crn;
using math::Int;

Crn compile_quilt_affine(const fn::QuiltAffine& g) {
  require(g.is_nondecreasing(),
          "compile_quilt_affine: '" + g.name() + "' is not nondecreasing");
  require(g.is_nonnegative_everywhere(),
          "compile_quilt_affine: '" + g.name() +
              "' takes negative values; translate it first (Lemma 6.2)");

  const int d = g.dimension();
  const Int p = g.period();
  Crn out("quilt[" + g.name() + "]");

  std::vector<std::string> inputs;
  for (int i = 0; i < d; ++i) inputs.push_back("X" + std::to_string(i + 1));
  out.set_input_species(inputs);
  out.set_output_species("Y");
  out.set_leader_species("L");

  auto state_name = [](const math::CongruenceClass& a) {
    std::string s = "L[";
    const auto& rep = a.representative();
    for (std::size_t i = 0; i < rep.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(rep[i]);
    }
    return s + "]";
  };

  // L -> g(0) Y + L_0.
  const fn::Point zero(static_cast<std::size_t>(d), 0);
  const math::CongruenceClass class0(zero, p);
  const Int g0 = g(zero);
  {
    std::vector<std::pair<std::string, Int>> products;
    if (g0 > 0) products.emplace_back("Y", g0);
    products.emplace_back(state_name(class0), 1);
    out.add_reaction({{"L", 1}}, products);
  }

  // L_a + X_i -> delta^i_a Y + L_{a+e_i}.
  for (const auto& a : math::all_classes(d, p)) {
    for (int i = 0; i < d; ++i) {
      const Int delta = g.finite_difference(i, a);
      ensure(delta >= 0, "compile_quilt_affine: negative finite difference");
      // delta == 0 with an unchanged leader state would be a no-op reaction
      // (g ignores input i in this class); absorbing such inputs is
      // unnecessary, so the reaction is simply omitted.
      if (delta == 0 && a.shifted(i) == a) continue;
      std::vector<std::pair<std::string, Int>> products;
      if (delta > 0) products.emplace_back("Y", delta);
      products.emplace_back(state_name(a.shifted(i)), 1);
      out.add_reaction(
          {{state_name(a), 1}, {inputs[static_cast<std::size_t>(i)], 1}},
          products);
    }
  }

  crn::require_output_oblivious(out);
  return out;
}

}  // namespace crnkit::compile
