// The function-expression IR behind `crnc compose`: nested min / affine /
// clamp / constant-max / floor-division terms over k external inputs. Every
// operator has an output-oblivious primitive CRN (compile/primitives.h and
// the Lemma 6.1 quilt compiler), so a whole expression lowers through
// crn::Circuit — one module per operator node, wires for the data edges —
// into a single flat CRN that stably computes the expression (Observation
// 2.2 / Lemma 6.2). General binary max is deliberately absent: it is not
// obliviously computable (Section 4); only "x v n" with constant n is.
//
// The IR is a node pool. Children always precede parents (indices are
// topological), shared children are real DAG edges (the lowering fans the
// wire out), and evaluation doubles as the recorded reference function for
// verification of the compiled network.
#ifndef CRNKIT_COMPILE_CIRCUIT_EXPR_H_
#define CRNKIT_COMPILE_CIRCUIT_EXPR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crn/network.h"
#include "fn/function.h"

namespace crnkit::compile {

class CircuitExpr {
 public:
  enum class Kind {
    kInput,     ///< external input x_i
    kConst,     ///< constant c
    kAffine,    ///< a0 + a1 e1 + ... + am em (ai >= 0)
    kMin,       ///< min(e1, ..., em), m >= 2
    kMaxConst,  ///< max(e, n) for constant n
    kClamp,     ///< (e - n)+  i.e. max(0, e - n)
    kDiv,       ///< floor(e / k), lowered via a Lemma 6.1 quilt module
  };

  struct Node {
    Kind kind = Kind::kInput;
    int input = -1;                        ///< kInput: 0-based input index
    math::Int value = 0;                   ///< c, n, or k by kind
    math::Int constant = 0;                ///< kAffine: a0
    std::vector<math::Int> coefficients;   ///< kAffine: parallel to children
    std::vector<int> children;             ///< node indices, all < own index
  };

  CircuitExpr() = default;

  // --- builders; each returns the new node's index ---
  int input(int i);
  int constant(math::Int c);
  int affine(math::Int a0, std::vector<math::Int> coefficients,
             std::vector<int> children);
  int min_of(std::vector<int> children);
  int max_const(int child, math::Int n);
  int clamp(int child, math::Int n);
  int div(int child, math::Int k);
  void set_root(int node);

  [[nodiscard]] int arity() const { return arity_; }
  [[nodiscard]] int root() const { return root_; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  /// Operator nodes — the number of circuit modules the lowering creates.
  [[nodiscard]] int module_count() const;

  [[nodiscard]] math::Int evaluate(const fn::Point& x) const;
  /// The expression as a reference function of dimension max(arity, 1).
  [[nodiscard]] fn::DiscreteFunction as_function(
      const std::string& name) const;
  [[nodiscard]] std::string to_string() const;

 private:
  int add_node(Node node);

  std::vector<Node> nodes_;
  int root_ = -1;
  int arity_ = 0;
};

/// Parses the `crnc compose` expression syntax:
///   expr   := term ('+' term)*
///   term   := INT '*' factor | INT | factor
///   factor := 'x'INT | 'min(' expr (',' expr)+ ')' | 'max(' expr ',' INT ')'
///           | 'sub(' expr ',' INT ')' | 'div(' expr ',' INT ')'
///           | '(' expr ')'
/// e.g. "min(x1 + x2, 2*x3) + 1" or "div(sub(x1, 2), 3)". Inputs are
/// 1-based in the syntax. Throws std::invalid_argument with the offending
/// position on malformed input, including `max` with a non-constant second
/// argument (not obliviously computable).
[[nodiscard]] CircuitExpr parse_circuit_expr(const std::string& text);

/// A deterministic pseudo-random circuit DAG with exactly `modules`
/// operator nodes over 2-3 inputs: the scenario family
/// `circuit/random-<modules>-<seed>`. The last module is a fan-in sum that
/// consumes every otherwise-unconsumed value, so the DAG always satisfies
/// the Circuit wiring invariants. Values stay small enough for exact
/// verification on the {0,1}^d grid.
[[nodiscard]] CircuitExpr random_circuit_expr(int modules,
                                              std::uint64_t seed);

/// One lowered module with the function it computes, for Lemma 2.3
/// certification and reporting. `fn` is absent for zero-input (constant)
/// modules, whose composability is their syntactic obliviousness.
struct CircuitModule {
  std::string label;  ///< e.g. "m2: min/2"
  crn::Crn crn;
  std::optional<fn::DiscreteFunction> fn;
};

struct LoweredCircuit {
  crn::Crn crn;  ///< the flat composed network (inputs X1..Xd, output Y)
  std::vector<CircuitModule> modules;  ///< in circuit module order
};

/// Lowers the expression through crn::Circuit into a single flat CRN.
[[nodiscard]] LoweredCircuit lower_circuit_expr(const CircuitExpr& expr,
                                                const std::string& name);

/// floor(x / k) as an output-oblivious module: identity for k = 1, the
/// Lemma 6.1 quilt compilation of x/k - (x mod k)/k otherwise.
[[nodiscard]] crn::Crn div_crn(math::Int k);

}  // namespace crnkit::compile

#endif  // CRNKIT_COMPILE_CIRCUIT_EXPR_H_
