#include "compile/leaderless.h"

#include "crn/checks.h"
#include "math/check.h"

namespace crnkit::compile {

using crn::Crn;
using math::Int;

Crn compile_leaderless_oned(const fn::DiscreteFunction& f,
                            const fn::OneDStructureOptions& options) {
  fn::OneDStructure s = fn::require_oned_structure(f, options);
  require(s.initial[0] == 0,
          "compile_leaderless_oned: superadditive f must have f(0) = 0");

  // Arrange p | n with n >= p (the paper's WLOG): raising the threshold to
  // the next positive multiple of p keeps the structure valid, since the
  // differences are periodic beyond the original n.
  {
    const Int padded = ((s.n + s.p - 1) / s.p + (s.n == 0 ? 1 : 0)) * s.p;
    const Int target = std::max<Int>(padded, s.p);
    if (target != s.n) {
      std::vector<Int> initial(static_cast<std::size_t>(target + 1));
      for (Int x = 0; x <= target; ++x) {
        initial[static_cast<std::size_t>(x)] = s.evaluate(x);
      }
      // Re-anchor deltas so deltas[a] = f(x+1) - f(x) for x >= target,
      // x mod p == a. The periodic differences are unchanged; only the
      // threshold moves (by a multiple of p, so indexing is stable).
      s.n = target;
      s.initial = std::move(initial);
    }
  }
  const Int n = s.n;
  const Int p = s.p;
  auto fval = [&s](Int x) { return s.evaluate(x); };

  Crn out("leaderless[" + f.name() + "]");
  out.set_input_species({"X"});
  out.set_output_species("Y");

  auto state_name = [n, p](Int k) {
    // Auxiliary leader remembering k absorbed inputs (mod p once k >= n).
    if (k < n) return "L" + std::to_string(k);
    return "P" + std::to_string(math::floor_mod(k, p));
  };
  auto emit = [&out](const std::string& r1, const std::string& r2, Int d,
                     const std::string& next) {
    std::vector<std::pair<std::string, Int>> reactants;
    if (r1 == r2) {
      reactants.emplace_back(r1, 2);
    } else {
      reactants.emplace_back(r1, 1);
      reactants.emplace_back(r2, 1);
    }
    std::vector<std::pair<std::string, Int>> products;
    if (d > 0) products.emplace_back("Y", d);
    products.emplace_back(next, 1);
    out.add_reaction(reactants, products);
  };

  // X -> f(1) Y + L_1.
  {
    std::vector<std::pair<std::string, Int>> products;
    const Int f1 = fval(1);
    if (f1 > 0) products.emplace_back("Y", f1);
    products.emplace_back(state_name(1), 1);
    out.add_reaction({{"X", 1}}, products);
  }

  auto check_nonneg = [&f](Int d, Int i, Int j) {
    require(d >= 0, "compile_leaderless_oned: '" + f.name() +
                        "' is not superadditive: f(" + std::to_string(i) +
                        ") + f(" + std::to_string(j) + ") > f(" +
                        std::to_string(i + j) + ")");
  };

  // L_i + L_j (i <= j), both below the threshold.
  for (Int i = 1; i < n; ++i) {
    for (Int j = i; j < n; ++j) {
      const Int d = fval(i + j) - fval(i) - fval(j);
      check_nonneg(d, i, j);
      emit(state_name(i), state_name(j), d, state_name(i + j));
    }
  }
  // L_i + P_a: the P side stands for n + a (mod p beyond); the corrective
  // difference is independent of the wrapped multiple because the
  // differences are periodic past n.
  for (Int i = 1; i < n; ++i) {
    for (Int a = 0; a < p; ++a) {
      const Int d = fval(i + n + a) - fval(i) - fval(n + a);
      check_nonneg(d, i, n + a);
      emit(state_name(i), "P" + std::to_string(a), d,
           "P" + std::to_string(math::floor_mod(i + a, p)));
    }
  }
  // P_a + P_b (a <= b).
  for (Int a = 0; a < p; ++a) {
    for (Int b = a; b < p; ++b) {
      const Int d = fval(2 * n + a + b) - fval(n + a) - fval(n + b);
      check_nonneg(d, n + a, n + b);
      const std::string next = "P" + std::to_string(math::floor_mod(a + b, p));
      // Skip the degenerate no-op (possible when p == 1 and d == 0:
      // 2 P0 -> P0 is NOT a no-op — it merges two leaders — so only the
      // truly identical-sides case is skipped, which cannot happen here).
      emit("P" + std::to_string(a), "P" + std::to_string(b), d, next);
    }
  }

  crn::require_output_oblivious(out);
  ensure(!out.leader().has_value(), "compile_leaderless_oned: leader leaked");
  return out;
}

}  // namespace crnkit::compile
