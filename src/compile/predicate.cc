#include "compile/predicate.h"

#include "compile/primitives.h"
#include "crn/compose.h"
#include "math/check.h"

namespace crnkit::compile {

using math::Int;

struct MonotoneFormula::Node {
  enum class Kind { kAtom, kAnd, kOr };
  Kind kind = Kind::kAtom;
  int dimension = 0;
  std::vector<Int> a;
  Int b = 0;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

MonotoneFormula::MonotoneFormula(std::shared_ptr<const Node> root)
    : root_(std::move(root)) {}

MonotoneFormula MonotoneFormula::atom(std::vector<Int> a, Int b) {
  require(!a.empty(), "MonotoneFormula::atom: empty coefficients");
  for (const Int ai : a) {
    require(ai >= 0, "MonotoneFormula::atom: coefficients must be >= 0 "
                     "(monotone atoms only)");
  }
  require(b >= 0, "MonotoneFormula::atom: threshold must be >= 0");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAtom;
  node->dimension = static_cast<int>(a.size());
  node->a = std::move(a);
  node->b = b;
  return MonotoneFormula(std::move(node));
}

MonotoneFormula MonotoneFormula::operator&&(const MonotoneFormula& o) const {
  require(dimension() == o.dimension(),
          "MonotoneFormula: AND dimension mismatch");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  node->dimension = dimension();
  node->left = root_;
  node->right = o.root_;
  return MonotoneFormula(std::move(node));
}

MonotoneFormula MonotoneFormula::operator||(const MonotoneFormula& o) const {
  require(dimension() == o.dimension(),
          "MonotoneFormula: OR dimension mismatch");
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kOr;
  node->dimension = dimension();
  node->left = root_;
  node->right = o.root_;
  return MonotoneFormula(std::move(node));
}

int MonotoneFormula::dimension() const { return root_->dimension; }

namespace {

bool eval_node(const MonotoneFormula::Node& node, const fn::Point& x) {
  using Kind = MonotoneFormula::Node::Kind;
  switch (node.kind) {
    case Kind::kAtom: {
      Int acc = 0;
      for (std::size_t i = 0; i < node.a.size(); ++i) {
        acc = math::checked_add(acc, math::checked_mul(node.a[i], x[i]));
      }
      return acc >= node.b;
    }
    case Kind::kAnd:
      return eval_node(*node.left, x) && eval_node(*node.right, x);
    case Kind::kOr:
      return eval_node(*node.left, x) || eval_node(*node.right, x);
  }
  return false;
}

/// The atom module: X_i -> a_i S; L + b S -> Y (or L -> Y when b == 0).
crn::Crn atom_crn(const std::vector<Int>& a, Int b) {
  crn::Crn out("atom>=" + std::to_string(b));
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    inputs.push_back("X" + std::to_string(i + 1));
    out.get_or_add_species(inputs.back());
  }
  out.set_input_species(inputs);
  out.set_output_species("Y");
  out.set_leader_species("L");
  if (b == 0) {
    out.add_reaction({{"L", 1}}, {{"Y", 1}});
  } else {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] == 0) continue;  // unused input stays inert
      out.add_reaction({{inputs[i], 1}}, {{"S", a[i]}});
    }
    out.add_reaction({{"L", 1}, {"S", b}}, {{"Y", 1}});
  }
  crn::require_output_oblivious(out);
  return out;
}

/// OR of two indicator wires: W1 -> W; W2 -> W; L + W -> Y.
crn::Crn or_crn() {
  crn::Crn out("or2");
  out.set_input_species({"W1", "W2"});
  out.set_output_species("Y");
  out.set_leader_species("L");
  out.add_reaction({{"W1", 1}}, {{"W", 1}});
  out.add_reaction({{"W2", 1}}, {{"W", 1}});
  out.add_reaction({{"L", 1}, {"W", 1}}, {{"Y", 1}});
  crn::require_output_oblivious(out);
  return out;
}

/// Recursively lowers the formula into circuit modules; returns the wire
/// carrying the node's indicator.
crn::Wire lower(const MonotoneFormula::Node& node, crn::Circuit& circuit) {
  using Kind = MonotoneFormula::Node::Kind;
  switch (node.kind) {
    case Kind::kAtom: {
      const int m = circuit.add_module(atom_crn(node.a, node.b));
      for (int i = 0; i < node.dimension; ++i) {
        circuit.connect(crn::Wire::external(i), m, i);
      }
      return crn::Wire::of_module(m);
    }
    case Kind::kAnd: {
      const crn::Wire left = lower(*node.left, circuit);
      const crn::Wire right = lower(*node.right, circuit);
      const int m = circuit.add_module(min_crn(2));
      circuit.connect(left, m, 0);
      circuit.connect(right, m, 1);
      return crn::Wire::of_module(m);
    }
    case Kind::kOr: {
      const crn::Wire left = lower(*node.left, circuit);
      const crn::Wire right = lower(*node.right, circuit);
      const int m = circuit.add_module(or_crn());
      circuit.connect(left, m, 0);
      circuit.connect(right, m, 1);
      return crn::Wire::of_module(m);
    }
  }
  throw std::logic_error("lower: unreachable");
}

}  // namespace

bool MonotoneFormula::evaluate(const fn::Point& x) const {
  require(static_cast<int>(x.size()) == dimension(),
          "MonotoneFormula::evaluate: arity mismatch");
  return eval_node(*root_, x);
}

fn::DiscreteFunction MonotoneFormula::indicator() const {
  MonotoneFormula copy = *this;
  return fn::DiscreteFunction(
      dimension(),
      [copy](const fn::Point& x) -> Int { return copy.evaluate(x) ? 1 : 0; },
      "predicate");
}

crn::Crn compile_monotone_predicate(const MonotoneFormula& formula) {
  crn::Circuit circuit(formula.dimension(), "predicate");
  circuit.add_output(lower(formula.root(), circuit));
  crn::Crn out = circuit.compile();
  out.set_name("predicate");
  crn::require_output_oblivious(out);
  return out;
}

}  // namespace crnkit::compile
