// Theorem 9.2: f : N -> N is obliviously-computable by a *leaderless* CRN
// iff f is semilinear and superadditive. The construction removes the leader
// from the Theorem 3.1 chain: every input immediately becomes an auxiliary
// leader (X -> f(1) Y + L_1) and pairwise "merge" reactions combine
// auxiliary leaders while emitting the corrective difference
// D_{i,j} = f(i+j) - f(i) - f(j) >= 0 (nonnegative exactly by
// superadditivity):
//     L_i + L_j -> D_{i,j} Y + (L_{i+j} or P_{i+j})
//     L_i + P_a -> [f(i+n+a) - f(i) - f(n+a)] Y + P_{(i+a) mod p}
//     P_a + P_b -> [f(2n+a+b) - f(n+a) - f(n+b)] Y + P_{(a+b) mod p}
// The period p is arranged to divide the threshold n, as in the paper.
#ifndef CRNKIT_COMPILE_LEADERLESS_H_
#define CRNKIT_COMPILE_LEADERLESS_H_

#include "crn/network.h"
#include "fn/oned_structure.h"

namespace crnkit::compile {

/// Compiles a 1D superadditive semilinear function into a leaderless
/// output-oblivious CRN. Throws std::invalid_argument if f(0) != 0 or any
/// corrective difference is negative (i.e. f is not superadditive on the
/// range the construction touches).
[[nodiscard]] crn::Crn compile_leaderless_oned(
    const fn::DiscreteFunction& f,
    const fn::OneDStructureOptions& options = {});

}  // namespace crnkit::compile

#endif  // CRNKIT_COMPILE_LEADERLESS_H_
