// Lemma 6.1: every quilt-affine g : N^d -> N is obliviously-computable.
//
// The CRN keeps one leader state L_a per congruence class a in Z^d/pZ^d.
// The leader absorbs inputs one at a time, tracking x mod p, and emits the
// periodic finite difference delta^i_a = g(x + e_i) - g(x) as output on
// each absorption:
//     L -> g(0) Y + L_0
//     L_a + X_i -> delta^i_a Y + L_{a + e_i}     (d * p^d reactions)
#ifndef CRNKIT_COMPILE_QUILT_H_
#define CRNKIT_COMPILE_QUILT_H_

#include "crn/network.h"
#include "fn/quilt_affine.h"

namespace crnkit::compile {

/// Compiles a nondecreasing, everywhere-nonnegative quilt-affine function
/// into an output-oblivious CRN with a leader. Throws std::invalid_argument
/// if g is decreasing somewhere or takes a negative value.
[[nodiscard]] crn::Crn compile_quilt_affine(const fn::QuiltAffine& g);

}  // namespace crnkit::compile

#endif  // CRNKIT_COMPILE_QUILT_H_
