#include "compile/circuit_expr.h"

#include <algorithm>
#include <sstream>

#include "compile/primitives.h"
#include "compile/quilt.h"
#include "crn/compose.h"
#include "fn/quilt_affine.h"
#include "math/check.h"
#include "math/rational.h"
#include "sim/rng.h"

namespace crnkit::compile {

using math::Int;

int CircuitExpr::add_node(Node node) {
  for (const int c : node.children) {
    require(c >= 0 && c < static_cast<int>(nodes_.size()),
            "CircuitExpr: child index out of range");
  }
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int CircuitExpr::input(int i) {
  require(i >= 0, "CircuitExpr::input: negative index");
  arity_ = std::max(arity_, i + 1);
  Node n;
  n.kind = Kind::kInput;
  n.input = i;
  return add_node(std::move(n));
}

int CircuitExpr::constant(Int c) {
  require(c >= 0, "CircuitExpr::constant: negative constant");
  Node n;
  n.kind = Kind::kConst;
  n.value = c;
  return add_node(std::move(n));
}

int CircuitExpr::affine(Int a0, std::vector<Int> coefficients,
                        std::vector<int> children) {
  require(!children.empty(),
          "CircuitExpr::affine: no children (use constant)");
  require(coefficients.size() == children.size(),
          "CircuitExpr::affine: coefficient/child count mismatch");
  require(a0 >= 0, "CircuitExpr::affine: negative constant");
  for (const Int a : coefficients) {
    require(a >= 0, "CircuitExpr::affine: negative coefficient");
  }
  Node n;
  n.kind = Kind::kAffine;
  n.constant = a0;
  n.coefficients = std::move(coefficients);
  n.children = std::move(children);
  return add_node(std::move(n));
}

int CircuitExpr::min_of(std::vector<int> children) {
  require(children.size() >= 2, "CircuitExpr::min_of: need >= 2 children");
  Node n;
  n.kind = Kind::kMin;
  n.children = std::move(children);
  return add_node(std::move(n));
}

int CircuitExpr::max_const(int child, Int value) {
  require(value >= 0, "CircuitExpr::max_const: negative constant");
  Node n;
  n.kind = Kind::kMaxConst;
  n.value = value;
  n.children = {child};
  return add_node(std::move(n));
}

int CircuitExpr::clamp(int child, Int value) {
  require(value >= 0, "CircuitExpr::clamp: negative threshold");
  Node n;
  n.kind = Kind::kClamp;
  n.value = value;
  n.children = {child};
  return add_node(std::move(n));
}

int CircuitExpr::div(int child, Int k) {
  require(k >= 1, "CircuitExpr::div: divisor must be >= 1");
  Node n;
  n.kind = Kind::kDiv;
  n.value = k;
  n.children = {child};
  return add_node(std::move(n));
}

void CircuitExpr::set_root(int node) {
  require(node >= 0 && node < static_cast<int>(nodes_.size()),
          "CircuitExpr::set_root: bad node");
  root_ = node;
}

int CircuitExpr::module_count() const {
  int count = 0;
  for (const Node& n : nodes_) {
    if (n.kind != Kind::kInput) ++count;
  }
  return count;
}

Int CircuitExpr::evaluate(const fn::Point& x) const {
  require(root_ >= 0, "CircuitExpr::evaluate: no root set");
  require(static_cast<int>(x.size()) >= arity_,
          "CircuitExpr::evaluate: point too short");
  std::vector<Int> value(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const auto child = [&](std::size_t j) {
      return value[static_cast<std::size_t>(n.children[j])];
    };
    switch (n.kind) {
      case Kind::kInput:
        value[i] = x[static_cast<std::size_t>(n.input)];
        break;
      case Kind::kConst:
        value[i] = n.value;
        break;
      case Kind::kAffine: {
        Int sum = n.constant;
        for (std::size_t j = 0; j < n.children.size(); ++j) {
          sum += n.coefficients[j] * child(j);
        }
        value[i] = sum;
        break;
      }
      case Kind::kMin: {
        Int best = child(0);
        for (std::size_t j = 1; j < n.children.size(); ++j) {
          best = std::min(best, child(j));
        }
        value[i] = best;
        break;
      }
      case Kind::kMaxConst:
        value[i] = std::max(child(0), n.value);
        break;
      case Kind::kClamp:
        value[i] = std::max<Int>(0, child(0) - n.value);
        break;
      case Kind::kDiv:
        value[i] = child(0) / n.value;
        break;
    }
  }
  return value[static_cast<std::size_t>(root_)];
}

fn::DiscreteFunction CircuitExpr::as_function(const std::string& name) const {
  require(root_ >= 0, "CircuitExpr::as_function: no root set");
  const CircuitExpr copy = *this;
  return fn::DiscreteFunction(
      std::max(1, arity_),
      [copy](const fn::Point& x) { return copy.evaluate(x); }, name);
}

std::string CircuitExpr::to_string() const {
  require(root_ >= 0, "CircuitExpr::to_string: no root set");
  std::vector<std::string> text(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const auto child = [&](std::size_t j) {
      return text[static_cast<std::size_t>(n.children[j])];
    };
    std::ostringstream os;
    switch (n.kind) {
      case Kind::kInput:
        os << "x" << (n.input + 1);
        break;
      case Kind::kConst:
        os << n.value;
        break;
      case Kind::kAffine: {
        os << "(";
        for (std::size_t j = 0; j < n.children.size(); ++j) {
          if (j > 0) os << " + ";
          if (n.coefficients[j] != 1) os << n.coefficients[j] << "*";
          os << child(j);
        }
        if (n.constant != 0) os << " + " << n.constant;
        os << ")";
        break;
      }
      case Kind::kMin: {
        os << "min(";
        for (std::size_t j = 0; j < n.children.size(); ++j) {
          if (j > 0) os << ", ";
          os << child(j);
        }
        os << ")";
        break;
      }
      case Kind::kMaxConst:
        os << "max(" << child(0) << ", " << n.value << ")";
        break;
      case Kind::kClamp:
        os << "sub(" << child(0) << ", " << n.value << ")";
        break;
      case Kind::kDiv:
        os << "div(" << child(0) << ", " << n.value << ")";
        break;
    }
    text[i] = os.str();
  }
  return text[static_cast<std::size_t>(root_)];
}

namespace {

/// Recursive-descent parser for the compose expression syntax.
class ExprParser {
 public:
  explicit ExprParser(const std::string& text) : text_(text) {}

  CircuitExpr parse() {
    const int root = expr();
    skip_ws();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    out_.set_root(root);
    return std::move(out_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("expression parse error at position " +
                                std::to_string(pos_ + 1) + ": " + what +
                                " in '" + text_ + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool at_digit() {
    const char c = peek();
    return c >= '0' && c <= '9';
  }

  Int integer() {
    skip_ws();
    if (!at_digit()) fail("expected an integer");
    Int value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + (text_[pos_] - '0');
      if (value > 1'000'000'000'000LL) fail("integer out of range");
      ++pos_;
    }
    return value;
  }

  std::string identifier() {
    skip_ws();
    std::string word;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= 'a' && text_[pos_] <= 'z') ||
            (text_[pos_] >= 'A' && text_[pos_] <= 'Z'))) {
      word += text_[pos_++];
    }
    return word;
  }

  /// expr := term ('+' term)*; constant terms fold into one affine node.
  int expr() {
    Int a0 = 0;
    std::vector<Int> coefficients;
    std::vector<int> children;
    while (true) {
      term(a0, coefficients, children);
      if (peek() != '+') break;
      ++pos_;
    }
    if (children.empty()) return out_.constant(a0);
    if (children.size() == 1 && coefficients[0] == 1 && a0 == 0) {
      return children[0];  // no wrapper module for a bare factor
    }
    return out_.affine(a0, std::move(coefficients), std::move(children));
  }

  void term(Int& a0, std::vector<Int>& coefficients,
            std::vector<int>& children) {
    if (at_digit()) {
      const Int value = integer();
      if (peek() == '*') {
        ++pos_;
        coefficients.push_back(value);
        children.push_back(factor());
      } else {
        a0 += value;
      }
      return;
    }
    coefficients.push_back(1);
    children.push_back(factor());
  }

  int factor() {
    const char c = peek();
    if (c == '(') {
      ++pos_;
      const int node = expr();
      expect(')');
      return node;
    }
    const std::string word = identifier();
    if (word.empty()) fail("expected a factor");
    if (word == "x") {
      if (!at_digit()) fail("input needs an index, e.g. x1");
      const Int index = integer();
      if (index < 1 || index > 64) fail("input index out of range");
      return out_.input(static_cast<int>(index) - 1);
    }
    if (word == "min") {
      expect('(');
      std::vector<int> children{expr()};
      while (peek() == ',') {
        ++pos_;
        children.push_back(expr());
      }
      expect(')');
      if (children.size() < 2) fail("min needs at least two arguments");
      return out_.min_of(std::move(children));
    }
    if (word == "max" || word == "sub" || word == "div") {
      expect('(');
      const int child = expr();
      if (peek() != ',') {
        if (word == "max") {
          fail("max needs a constant second argument (general max is not "
               "obliviously computable, Section 4)");
        }
        fail(word + " needs a constant second argument");
      }
      ++pos_;
      if (!at_digit()) {
        if (word == "max") {
          fail("max(e, n) requires constant n: general max is not "
               "obliviously computable (Section 4)");
        }
        fail(word + "(e, n) requires constant n");
      }
      const Int n = integer();
      expect(')');
      if (word == "max") return out_.max_const(child, n);
      if (word == "sub") return out_.clamp(child, n);
      if (n < 1) fail("div needs a divisor >= 1");
      return out_.div(child, n);
    }
    fail("unknown function '" + word + "'");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  CircuitExpr out_;
};

/// Deterministic, seed-stable stream for the random family: the ensemble
/// runner's splitmix64 stream derivation (sim::Rng::derive_stream_seed)
/// over an avalanched base, one draw per counter value.
struct SplitMix {
  explicit SplitMix(std::uint64_t seed)
      : base_(seed * 0x632be59bd9b4e019ULL + 0xd1b54a32d192ed03ULL) {}
  std::uint64_t next() { return sim::Rng::derive_stream_seed(base_, index_++); }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t base_;
  std::uint64_t index_ = 0;
};

}  // namespace

CircuitExpr parse_circuit_expr(const std::string& text) {
  require(!text.empty(), "parse_circuit_expr: empty expression");
  return ExprParser(text).parse();
}

CircuitExpr random_circuit_expr(int modules, std::uint64_t seed) {
  require(modules >= 1, "random_circuit_expr: need >= 1 module");
  SplitMix rng(seed);
  CircuitExpr e;
  const int arity = 2 + static_cast<int>(rng.below(2));
  std::vector<int> node_ids;
  std::vector<bool> consumed;
  for (int i = 0; i < arity; ++i) {
    node_ids.push_back(e.input(i));
    consumed.push_back(false);
  }
  const auto pick_child = [&]() {
    std::vector<std::size_t> fresh;
    for (std::size_t i = 0; i < node_ids.size(); ++i) {
      if (!consumed[i]) fresh.push_back(i);
    }
    std::size_t slot;
    if (!fresh.empty() && rng.below(2) == 0) {
      slot = fresh[rng.below(fresh.size())];
    } else {
      slot = rng.below(node_ids.size());
    }
    consumed[slot] = true;
    return node_ids[slot];
  };
  for (int m = 0; m + 1 < modules; ++m) {
    const std::uint64_t roll = rng.below(100);
    int id;
    if (roll < 35) {
      const std::size_t ports = 1 + rng.below(2);
      std::vector<Int> coefficients;
      std::vector<int> children;
      for (std::size_t j = 0; j < ports; ++j) {
        coefficients.push_back(1 + static_cast<Int>(rng.below(2)));
        children.push_back(pick_child());
      }
      id = e.affine(static_cast<Int>(rng.below(3)), std::move(coefficients),
                    std::move(children));
    } else if (roll < 60) {
      const int a = pick_child();
      const int b = pick_child();
      id = e.min_of({a, b});
    } else if (roll < 75) {
      id = e.clamp(pick_child(), 1 + static_cast<Int>(rng.below(2)));
    } else if (roll < 90) {
      id = e.max_const(pick_child(), 1 + static_cast<Int>(rng.below(2)));
    } else {
      id = e.div(pick_child(), 2 + static_cast<Int>(rng.below(2)));
    }
    node_ids.push_back(id);
    consumed.push_back(false);
  }
  // Final fan-in sum over everything still unconsumed: the DAG has a single
  // sink and every module output a consumer, and its coefficient-1 ports
  // are exactly the unary conversions the collapse pass exists for.
  std::vector<Int> coefficients;
  std::vector<int> children;
  for (std::size_t i = 0; i < node_ids.size(); ++i) {
    if (consumed[i]) continue;
    coefficients.push_back(1);
    children.push_back(node_ids[i]);
  }
  ensure(!children.empty(), "random_circuit_expr: no root candidates");
  e.set_root(e.affine(0, std::move(coefficients), std::move(children)));
  return e;
}

crn::Crn div_crn(Int k) {
  require(k >= 1, "div_crn: divisor must be >= 1");
  if (k == 1) return identity_crn();
  math::RatVec gradient{math::Rational(1, k)};
  std::vector<math::Rational> offsets;
  for (Int a = 0; a < k; ++a) offsets.emplace_back(-a, k);
  const fn::QuiltAffine g(std::move(gradient), k, std::move(offsets),
                          "x/" + std::to_string(k));
  return compile_quilt_affine(g);
}

LoweredCircuit lower_circuit_expr(const CircuitExpr& expr,
                                  const std::string& name) {
  require(expr.root() >= 0, "lower_circuit_expr: no root set");
  crn::Circuit circuit(std::max(1, expr.arity()), name);
  std::vector<crn::Wire> wires(expr.nodes().size());
  LoweredCircuit out;

  for (std::size_t i = 0; i < expr.nodes().size(); ++i) {
    const CircuitExpr::Node& node = expr.nodes()[i];
    if (node.kind == CircuitExpr::Kind::kInput) {
      wires[i] = crn::Wire::external(node.input);
      continue;
    }
    CircuitModule module;
    switch (node.kind) {
      case CircuitExpr::Kind::kConst: {
        module.crn = constant_crn(node.value);
        module.label = "const-" + std::to_string(node.value);
        break;
      }
      case CircuitExpr::Kind::kAffine: {
        module.crn = affine_crn(node.coefficients, node.constant);
        module.label = "affine/" + std::to_string(node.children.size());
        const std::vector<Int> coefficients = node.coefficients;
        const Int constant = node.constant;
        module.fn = fn::DiscreteFunction(
            static_cast<int>(node.children.size()),
            [coefficients, constant](const fn::Point& x) {
              Int sum = constant;
              for (std::size_t j = 0; j < coefficients.size(); ++j) {
                sum += coefficients[j] * x[j];
              }
              return sum;
            },
            "affine");
        break;
      }
      case CircuitExpr::Kind::kMin: {
        module.crn = min_crn(static_cast<int>(node.children.size()));
        module.label = "min/" + std::to_string(node.children.size());
        module.fn = fn::DiscreteFunction(
            static_cast<int>(node.children.size()),
            [](const fn::Point& x) {
              return *std::min_element(x.begin(), x.end());
            },
            "min");
        break;
      }
      case CircuitExpr::Kind::kMaxConst: {
        module.crn = max_const_crn(node.value);
        module.label = "max-" + std::to_string(node.value);
        const Int n = node.value;
        module.fn = fn::DiscreteFunction(
            1, [n](const fn::Point& x) { return std::max(x[0], n); }, "max");
        break;
      }
      case CircuitExpr::Kind::kClamp: {
        module.crn = clamp_crn(node.value);
        module.label = "sub-" + std::to_string(node.value);
        const Int n = node.value;
        module.fn = fn::DiscreteFunction(
            1, [n](const fn::Point& x) { return std::max<Int>(0, x[0] - n); },
            "sub");
        break;
      }
      case CircuitExpr::Kind::kDiv: {
        module.crn = div_crn(node.value);
        module.label = "div/" + std::to_string(node.value);
        const Int k = node.value;
        module.fn = fn::DiscreteFunction(
            1, [k](const fn::Point& x) { return x[0] / k; }, "div");
        break;
      }
      case CircuitExpr::Kind::kInput:
        break;  // handled above
    }
    const int m = circuit.add_module(module.crn);
    module.label = "m" + std::to_string(m) + ": " + module.label;
    for (std::size_t j = 0; j < node.children.size(); ++j) {
      circuit.connect(wires[static_cast<std::size_t>(node.children[j])], m,
                      static_cast<int>(j));
    }
    wires[i] = crn::Wire::of_module(m);
    out.modules.push_back(std::move(module));
  }

  circuit.add_output(wires[static_cast<std::size_t>(expr.root())]);
  out.crn = circuit.compile();
  return out;
}

}  // namespace crnkit::compile
