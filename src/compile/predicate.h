// Monotone Boolean predicates as output-oblivious CRNs.
//
// The paper's Figure 2 already contains the key atom: min(1, x) — the
// indicator of x >= 1 — is obliviously-computable with a leader. This
// module develops the observation into a compiler for *monotone* Boolean
// combinations of nonnegative-threshold atoms [a . x >= b] with a >= 0:
//
//   - atom  [a . x >= b]: inputs fan into a tally species S (X_i -> a_i S)
//     and a leader collects b of them:  L + b S -> Y    (output-oblivious)
//   - AND = min of indicators (X1 + X2 -> Y)
//   - OR  = min(1, sum) (indicators renamed onto one wire, L + W -> Y)
//
// Monotonicity is essential: an indicator with negation somewhere is not
// nondecreasing, hence not obliviously-computable (Observation 2.1) — the
// compiler rejects such formulas by construction (no NOT node). The result
// is a CRN whose stable output counts 1/0 decide the predicate, and which
// composes downstream like any output-oblivious module.
#ifndef CRNKIT_COMPILE_PREDICATE_H_
#define CRNKIT_COMPILE_PREDICATE_H_

#include <memory>
#include <vector>

#include "crn/network.h"
#include "fn/function.h"

namespace crnkit::compile {

/// A monotone predicate formula over N^d.
class MonotoneFormula {
 public:
  /// Atom [a . x >= b] with a >= 0 componentwise and b >= 0. (b == 0 atoms
  /// are constant-true; allowed for convenience.)
  [[nodiscard]] static MonotoneFormula atom(std::vector<math::Int> a,
                                            math::Int b);

  [[nodiscard]] MonotoneFormula operator&&(const MonotoneFormula& o) const;
  [[nodiscard]] MonotoneFormula operator||(const MonotoneFormula& o) const;

  [[nodiscard]] int dimension() const;

  /// Exact truth value.
  [[nodiscard]] bool evaluate(const fn::Point& x) const;

  /// The 0/1 indicator as a function (what the CRN stably computes).
  [[nodiscard]] fn::DiscreteFunction indicator() const;

  struct Node;
  [[nodiscard]] const Node& root() const { return *root_; }

 private:
  explicit MonotoneFormula(std::shared_ptr<const Node> root);
  std::shared_ptr<const Node> root_;
};

/// Compiles the formula into an output-oblivious CRN (with leader) whose
/// stable output count is the indicator value.
[[nodiscard]] crn::Crn compile_monotone_predicate(
    const MonotoneFormula& formula);

}  // namespace crnkit::compile

#endif  // CRNKIT_COMPILE_PREDICATE_H_
