// The primitive output-oblivious CRNs of Lemma 6.2's composition:
//   - k-ary min:            X_1 + ... + X_k -> Y
//   - clamp (x - n)+:       (n+1) X -> n X + Y          (per component)
//   - indicator c(a,b,x):   A -> Y;  (j+1) C + B -> (j+1) C + Y
//   - constant:             L -> c Y
//   - identity:             X -> Y
//   - scale by k:           X -> k Y
// plus the Fig 1 examples (including the non-output-oblivious max CRN used
// by the impossibility demonstrations).
#ifndef CRNKIT_COMPILE_PRIMITIVES_H_
#define CRNKIT_COMPILE_PRIMITIVES_H_

#include "crn/network.h"

namespace crnkit::compile {

/// min(x_1, ..., x_k) via the single reaction X1 + ... + Xk -> Y.
[[nodiscard]] crn::Crn min_crn(int k);

/// max(0, x - n) via (n+1) X -> n X + Y. For n = 0 this is the identity
/// conversion X -> Y.
[[nodiscard]] crn::Crn clamp_crn(math::Int n);

/// c(a, b, x_i) = a + [x_i > j] * b with ports (A, B, C): A -> Y and
/// (j+1) C + B -> (j+1) C + Y, where C receives (a fan-out copy of) X_i.
[[nodiscard]] crn::Crn indicator_crn(math::Int j);

/// The constant function c >= 0, leader-seeded: L -> c Y (for c = 0 the
/// leader converts to an inert token).
[[nodiscard]] crn::Crn constant_crn(math::Int c);

/// Identity: X -> Y.
[[nodiscard]] crn::Crn identity_crn();

/// f(x) = k x via X -> k Y (Fig 1's 2x for k = 2).
[[nodiscard]] crn::Crn scale_crn(math::Int k);

/// The nonnegative affine form a0 + a1 x1 + ... + am xm with ports
/// X1..Xm: Xi -> ai Y (Xi -> inert for ai = 0) and L -> a0 Y when a0 > 0.
/// The workhorse of sum terms in composed circuits.
[[nodiscard]] crn::Crn affine_crn(const std::vector<math::Int>& coefficients,
                                  math::Int constant);

/// max(x, n) for a constant n >= 0 — the "x v n" of Lemma 6.2 — via
/// L -> n Y and (n+1) X -> n X + Y (identity for n = 0). General binary
/// max is NOT obliviously computable (Section 4); only the constant form
/// composes.
[[nodiscard]] crn::Crn max_const_crn(math::Int n);

/// Fig 1's max CRN (NOT output-oblivious; consumes Y via K + Y -> 0):
///   X1 -> Z1 + Y; X2 -> Z2 + Y; Z1 + Z2 -> K; K + Y -> 0.
[[nodiscard]] crn::Crn fig1_max_crn();

/// Fig 2 left: leaderless min(1,x) via X -> Y; 2Y -> Y (not output-
/// oblivious).
[[nodiscard]] crn::Crn fig2_min1_leaderless();

/// Fig 2 right: min(1,x) via L + X -> Y (output-oblivious, needs leader).
[[nodiscard]] crn::Crn fig2_min1_leader();

}  // namespace crnkit::compile

#endif  // CRNKIT_COMPILE_PRIMITIVES_H_
