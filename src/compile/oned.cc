#include "compile/oned.h"

#include "crn/checks.h"
#include "math/check.h"

namespace crnkit::compile {

using crn::Crn;
using math::Int;

Crn compile_oned(const fn::OneDStructure& s, const std::string& name) {
  require(static_cast<Int>(s.initial.size()) == s.n + 1,
          "compile_oned: initial values must cover f(0..n)");
  require(static_cast<Int>(s.deltas.size()) == s.p,
          "compile_oned: need exactly p periodic differences");
  for (Int i = 0; i + 1 <= s.n; ++i) {
    require(s.initial[static_cast<std::size_t>(i + 1)] >=
                s.initial[static_cast<std::size_t>(i)],
            "compile_oned: initial values must be nondecreasing");
  }
  for (const Int delta : s.deltas) {
    require(delta >= 0, "compile_oned: negative periodic difference");
  }

  Crn out(name);
  out.set_input_species({"X"});
  out.set_output_species("Y");
  out.set_leader_species("L");

  auto lname = [](Int i) { return "L" + std::to_string(i); };
  auto pname = [](Int a) { return "P" + std::to_string(a); };

  // L -> f(0) Y + first state.
  {
    const Int f0 = s.initial[0];
    const std::string first = (s.n == 0) ? pname(0) : lname(0);
    std::vector<std::pair<std::string, Int>> products;
    if (f0 > 0) products.emplace_back("Y", f0);
    products.emplace_back(first, 1);
    out.add_reaction({{"L", 1}}, products);
  }

  // Explicit chain below the threshold.
  for (Int i = 0; i + 1 <= s.n; ++i) {
    const Int diff = s.initial[static_cast<std::size_t>(i + 1)] -
                     s.initial[static_cast<std::size_t>(i)];
    const std::string next =
        (i + 1 == s.n) ? pname(math::floor_mod(s.n, s.p)) : lname(i + 1);
    std::vector<std::pair<std::string, Int>> products;
    if (diff > 0) products.emplace_back("Y", diff);
    products.emplace_back(next, 1);
    out.add_reaction({{lname(i), 1}, {"X", 1}}, products);
  }

  // Periodic cycle. When p == 1 and delta == 0 the reaction would be a
  // no-op (P0 + X -> P0); omit it — an eventually-constant function simply
  // stops consuming input.
  for (Int a = 0; a < s.p; ++a) {
    const Int delta = s.deltas[static_cast<std::size_t>(a)];
    const Int next = math::floor_mod(a + 1, s.p);
    if (delta == 0 && next == a) continue;
    std::vector<std::pair<std::string, Int>> products;
    if (delta > 0) products.emplace_back("Y", delta);
    products.emplace_back(pname(next), 1);
    out.add_reaction({{pname(a), 1}, {"X", 1}}, products);
  }

  crn::require_output_oblivious(out);
  return out;
}

Crn compile_oned(const fn::DiscreteFunction& f,
                 const fn::OneDStructureOptions& options) {
  const fn::OneDStructure s = fn::require_oned_structure(f, options);
  return compile_oned(s, "oned[" + f.name() + "]");
}

}  // namespace crnkit::compile
