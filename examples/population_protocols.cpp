// The population-protocol view (Section 1): compile floor(3x/2) with
// Theorem 3.1, convert to bimolecular form (footnote 5), and run the
// uniform pair scheduler, reporting parallel time as input size grows —
// the leader-driven construction needs Theta(n) parallel time per absorbed
// input, so expect superlinear totals.
//
// Run:  ./build/examples/population_protocols
#include <cstdio>

#include "compile/oned.h"
#include "crn/bimolecular.h"
#include "fn/examples.h"
#include "sim/population.h"

int main() {
  using namespace crnkit;
  using math::Int;

  const auto f = fn::examples::floor_3x_over_2();
  const crn::Crn compiled = compile::compile_oned(f);
  const crn::Crn bi = crn::to_bimolecular(compiled);
  std::printf("bimolecular CRN for %s:\n%s\n\n", f.name().c_str(),
              bi.to_string().c_str());

  std::printf("%8s %12s %16s %14s\n", "x", "output", "interactions",
              "parallel time");
  for (const Int x : {4, 8, 16, 32, 64, 128}) {
    double time_sum = 0.0;
    std::uint64_t interactions_sum = 0;
    Int output = -1;
    const int trials = 5;
    bool ok = true;
    for (int t = 0; t < trials; ++t) {
      sim::Rng rng(static_cast<std::uint64_t>(7 * x + t));
      const auto run =
          sim::run_population(bi, bi.initial_configuration({x}), rng);
      ok = ok && run.silent;
      output = bi.output_count(run.final_config);
      if (output != f(x)) ok = false;
      time_sum += run.parallel_time;
      interactions_sum += run.interactions;
    }
    std::printf("%8lld %12lld %16llu %14.1f %s\n",
                static_cast<long long>(x), static_cast<long long>(output),
                static_cast<unsigned long long>(interactions_sum / trials),
                time_sum / trials, ok ? "" : "MISMATCH");
  }
  return 0;
}
