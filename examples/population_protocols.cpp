// The population-protocol view (Section 1): the registry's
// protocol/floor-3x2 scenario — floor(3x/2) compiled with Theorem 3.1 and
// converted to bimolecular form (footnote 5) — run under the uniform pair
// scheduler, reporting parallel time as input size grows. The
// leader-driven construction needs Theta(n) parallel time per absorbed
// input, so expect superlinear totals.
//
// Run:  ./build/examples/population_protocols
#include <cstdio>

#include "scenario/registry.h"
#include "sim/population.h"

int main() {
  using namespace crnkit;
  using math::Int;

  const scenario::Scenario s =
      scenario::Registry::builtin().build("protocol/floor-3x2");
  const crn::Crn& bi = s.crn;
  const fn::DiscreteFunction& f = *s.reference;
  std::printf("bimolecular CRN for %s:\n%s\n\n", f.name().c_str(),
              bi.to_string().c_str());

  std::printf("%8s %12s %16s %14s\n", "x", "output", "interactions",
              "parallel time");
  for (const Int x : {4, 8, 16, 32, 64, 128}) {
    double time_sum = 0.0;
    std::uint64_t interactions_sum = 0;
    Int output = -1;
    const int trials = 5;
    bool ok = true;
    for (int t = 0; t < trials; ++t) {
      sim::Rng rng(static_cast<std::uint64_t>(7 * x + t));
      const auto run =
          sim::run_population(bi, bi.initial_configuration({x}), rng);
      ok = ok && run.silent;
      output = bi.output_count(run.final_config);
      if (output != f(x)) ok = false;
      time_sum += run.parallel_time;
      interactions_sum += run.interactions;
    }
    std::printf("%8lld %12lld %16llu %14.1f %s\n",
                static_cast<long long>(x), static_cast<long long>(output),
                static_cast<unsigned long long>(interactions_sum / trials),
                time_sum / trials, ok ? "" : "MISMATCH");
  }
  return 0;
}
