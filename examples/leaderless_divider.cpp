// Theorem 9.2, executably: a leaderless output-oblivious CRN for the
// superadditive function floor(x/3) ("division by three with no leader"),
// with the corrective-difference merge reactions printed, verified
// exhaustively, and contrasted with the leader-based Theorem 3.1 CRN.
//
// Run:  ./build/examples/leaderless_divider
#include <cstdio>

#include "compile/leaderless.h"
#include "compile/oned.h"
#include "crn/checks.h"
#include "fn/function.h"
#include "verify/stable.h"

int main() {
  using namespace crnkit;
  using math::Int;

  const fn::DiscreteFunction f(
      1, [](const fn::Point& x) { return x[0] / 3; }, "floor(x/3)");

  const crn::Crn leaderless = compile::compile_leaderless_oned(f);
  std::printf("leaderless CRN (Theorem 9.2):\n%s\n\n",
              leaderless.to_string().c_str());
  std::printf("has leader: %s; output-oblivious: %s\n\n",
              leaderless.leader() ? "yes" : "no",
              crn::is_output_oblivious(leaderless) ? "yes" : "no");

  const crn::Crn with_leader = compile::compile_oned(f);
  std::printf("for comparison, Theorem 3.1 CRN: %zu species / %zu reactions "
              "(leader) vs %zu / %zu (leaderless)\n\n",
              with_leader.species_count(), with_leader.reactions().size(),
              leaderless.species_count(), leaderless.reactions().size());

  bool all_ok = true;
  for (Int x = 0; x <= 20; ++x) {
    const auto result =
        verify::check_stable_computation(leaderless, {x}, f(x));
    if (!result.ok) {
      std::printf("FAIL at x = %lld: %s\n", static_cast<long long>(x),
                  result.summary(leaderless).c_str());
      all_ok = false;
    }
  }
  std::printf("exhaustive verification on x = 0..20: %s\n",
              all_ok ? "all stably compute floor(x/3)" : "FAILED");
  return all_ok ? 0 : 1;
}
