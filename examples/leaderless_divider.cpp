// Theorem 9.2, executably: a leaderless output-oblivious CRN for the
// superadditive function floor(x/3) ("division by three with no leader"),
// with the corrective-difference merge reactions printed, verified
// exhaustively, and contrasted with the leader-based Theorem 3.1 CRN.
// Both networks come from the scenario registry (fn/div3-leaderless and
// fn/div3) — the same workloads `crnc verify` and `crnc bench` exercise.
//
// Run:  ./build/examples/leaderless_divider
#include <cstdio>

#include "crn/checks.h"
#include "scenario/registry.h"
#include "verify/stable.h"

int main() {
  using namespace crnkit;
  using math::Int;

  const auto& registry = scenario::Registry::builtin();
  const scenario::Scenario leaderless = registry.build("fn/div3-leaderless");
  const scenario::Scenario with_leader = registry.build("fn/div3");
  const fn::DiscreteFunction& f = *leaderless.reference;

  std::printf("leaderless CRN (Theorem 9.2):\n%s\n\n",
              leaderless.crn.to_string().c_str());
  std::printf("has leader: %s; output-oblivious: %s\n\n",
              leaderless.crn.leader() ? "yes" : "no",
              crn::is_output_oblivious(leaderless.crn) ? "yes" : "no");

  std::printf("for comparison, Theorem 3.1 CRN: %zu species / %zu reactions "
              "(leader) vs %zu / %zu (leaderless)\n\n",
              with_leader.crn.species_count(),
              with_leader.crn.reactions().size(),
              leaderless.crn.species_count(),
              leaderless.crn.reactions().size());

  bool all_ok = true;
  for (Int x = 0; x <= 20; ++x) {
    const auto result =
        verify::check_stable_computation(leaderless.crn, {x}, f(x));
    if (!result.ok) {
      std::printf("FAIL at x = %lld: %s\n", static_cast<long long>(x),
                  result.summary(leaderless.crn).c_str());
      all_ok = false;
    }
  }
  std::printf("exhaustive verification on x = 0..20: %s\n",
              all_ok ? "all stably compute floor(x/3)" : "FAILED");
  return all_ok ? 0 : 1;
}
