// Quickstart: composable computation with output-oblivious CRNs.
//
// Builds the paper's Section 1.2 example — 2 * min(x1, x2) — by
// concatenating the (output-oblivious) min CRN with the doubling CRN,
// proves stable computation exhaustively on small inputs, and runs
// Gillespie simulations on a large input.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "compile/primitives.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "sim/ensemble.h"
#include "sim/gillespie.h"
#include "verify/stable.h"

int main() {
  using namespace crnkit;

  // 1. The two modules from Figure 1.
  const crn::Crn min2 = compile::min_crn(2);    // X1 + X2 -> Y
  const crn::Crn twice = compile::scale_crn(2);  // X -> 2Y
  std::printf("upstream module:\n%s\n\n", min2.to_string().c_str());
  std::printf("downstream module:\n%s\n\n", twice.to_string().c_str());

  // 2. Compose by concatenation (Observation 2.2): rename min's output to
  //    the doubler's input. Correct because min is output-oblivious.
  const crn::Crn composed = crn::concatenate(min2, twice, "2*min");
  std::printf("composed CRN:\n%s\n\n", composed.to_string().c_str());
  std::printf("upstream output-oblivious: %s\n",
              crn::is_output_oblivious(min2) ? "yes" : "no");

  // 3. Prove stable computation exhaustively for all inputs <= (6,6).
  const fn::DiscreteFunction f(
      2, [](const fn::Point& x) { return 2 * std::min(x[0], x[1]); },
      "2*min");
  const auto sweep = verify::check_stable_computation_on_grid(composed, f, 6);
  std::printf("exhaustive check on [0,6]^2: %s (%d input points)\n",
              sweep.all_ok ? "all stably compute" : "FAILED",
              sweep.points_checked);

  // 4. Gillespie kinetics on a large input.
  sim::Rng rng(2024);
  const auto run = sim::simulate_direct(
      composed, composed.initial_configuration({1500, 2000}), rng);
  std::printf(
      "Gillespie on x = (1500, 2000): Y = %lld after %llu reactions "
      "(t = %.3f); expected %lld\n",
      static_cast<long long>(composed.output_count(run.final_config)),
      static_cast<unsigned long long>(run.events), run.time,
      static_cast<long long>(f(fn::Point{1500, 2000})));

  // 5. Batched kinetics: compile once, run 32 seeded trajectories across
  //    all cores, aggregate. Bit-identical results for any thread count.
  const sim::EnsembleRunner runner(composed);
  sim::EnsembleOptions ensemble;
  ensemble.trajectories = 32;
  ensemble.method = sim::EnsembleMethod::kDirect;
  ensemble.seed = 2024;
  const auto batch = runner.run_for_input({1500, 2000}, ensemble);
  std::printf("ensemble of 32 trajectories: %s\n", batch.summary().c_str());
  std::printf("all agree on Y = %lld: %s\n",
              static_cast<long long>(batch.output),
              batch.output_consistent ? "yes" : "NO");
  return sweep.all_ok && batch.output_consistent ? 0 : 1;
}
