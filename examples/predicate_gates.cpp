// Monotone Boolean predicates as composable CRN modules: build
// ([x1 >= 2] AND [x2 >= 1]) OR [x1 + x2 >= 6], compile it to an
// output-oblivious CRN (Fig 2's min(1,x) atom generalized), verify it
// exhaustively, and gate a downstream payload on the predicate — the
// composability the paper's title is about, applied to decisions.
//
// Run:  ./build/examples/predicate_gates
#include <cstdio>

#include "compile/predicate.h"
#include "compile/primitives.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "verify/stable.h"

int main() {
  using namespace crnkit;
  using math::Int;

  const auto formula =
      (compile::MonotoneFormula::atom({1, 0}, 2) &&
       compile::MonotoneFormula::atom({0, 1}, 1)) ||
      compile::MonotoneFormula::atom({1, 1}, 6);

  const crn::Crn predicate = compile::compile_monotone_predicate(formula);
  std::printf("predicate CRN (%zu species, %zu reactions), "
              "output-oblivious: %s\n\n",
              predicate.species_count(), predicate.reactions().size(),
              crn::is_output_oblivious(predicate) ? "yes" : "no");

  std::printf("truth table (proved by exhaustive stable-computation "
              "checks):\n     ");
  for (Int x1 = 0; x1 <= 5; ++x1) std::printf(" x1=%lld", (long long)x1);
  std::printf("\n");
  bool all_ok = true;
  for (Int x2 = 0; x2 <= 5; ++x2) {
    std::printf("x2=%lld ", (long long)x2);
    for (Int x1 = 0; x1 <= 5; ++x1) {
      const Int want = formula.evaluate({x1, x2}) ? 1 : 0;
      const bool ok =
          verify::check_stable_computation(predicate, {x1, x2}, want).ok;
      all_ok = all_ok && ok;
      std::printf("%5s", ok ? (want ? "1" : "0") : "FAIL");
    }
    std::printf("\n");
  }

  // Gate a payload: release 5 reward molecules iff the predicate holds.
  const crn::Crn gated =
      crn::concatenate(predicate, compile::scale_crn(5), "5*[pred]");
  const auto result = verify::check_stable_computation(gated, {3, 1}, 5);
  const auto result0 = verify::check_stable_computation(gated, {1, 0}, 0);
  std::printf("\ngated payload 5*[pred]: f(3,1) = 5 %s, f(1,0) = 0 %s\n",
              result.ok ? "proved" : "FAIL", result0.ok ? "proved" : "FAIL");
  return all_ok && result.ok && result0.ok ? 0 : 1;
}
