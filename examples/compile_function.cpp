// The flagship pipeline: a user-defined integer function goes through the
// Section 7 analysis (region decomposition, quilt-affine extensions,
// eventual-min extraction) and the Theorem 5.2 compiler, producing an
// output-oblivious CRN that is then verified against the original function.
//
// The function here is the paper's Figure 7 example:
//   f = x1 + 1 if x1 < x2;  x2 + 1 if x1 > x2;  x1 if x1 = x2.
//
// Run:  ./build/examples/compile_function
#include <cstdio>

#include "analysis/eventual_min.h"
#include "compile/theorem52.h"
#include "crn/checks.h"
#include "fn/examples.h"
#include "verify/simcheck.h"

int main() {
  using namespace crnkit;

  // 1. The function, its threshold arrangement, and period (Lemma 7.3 data).
  analysis::AnalysisInput input{fn::examples::fig7(),
                                fn::examples::fig7_arrangement(), 1, 12};
  std::printf("analyzing '%s' over:\n%s\n\n", input.f.name().c_str(),
              input.arrangement.to_string().c_str());

  // 2. Section 7 analysis: regions, extensions, eventual-min.
  const auto regions = analysis::decompose(input);
  for (const auto& info : regions) {
    std::printf("  %s\n", info.to_string().c_str());
  }
  const auto eventual = analysis::extract_eventual_min(input);
  std::printf("\neventual-min extraction: %s\n", eventual.summary().c_str());
  for (const auto& g : eventual.parts) {
    std::printf("  part: %s\n", g.to_string().c_str());
  }

  // 3. Theorem 5.2 compilation.
  const compile::ObliviousSpec spec = analysis::make_spec_via_analysis(input);
  const crn::Crn crn = compile::compile_theorem52(spec);
  std::printf("\ncompiled CRN '%s': %zu species, %zu reactions, "
              "output-oblivious: %s\n",
              crn.name().c_str(), crn.species_count(),
              crn.reactions().size(),
              crn::is_output_oblivious(crn) ? "yes" : "no");

  // 4. Verify against the black box on a spread of inputs.
  const auto result = verify::sim_check_points(
      crn, input.f,
      {{0, 0}, {1, 1}, {2, 5}, {5, 2}, {4, 4}, {7, 3}, {8, 8}, {10, 11}});
  std::printf("randomized verification: %s\n", result.summary().c_str());
  return result.ok ? 0 : 1;
}
