// Section 8, executably: the infinity-scaling (Definition 8.1) of discrete
// obliviously-computable functions, its convergence, the analytic min-of-
// linear form (Theorem 8.2), and the continuous-CRN side via mass-action
// ODE integration.
//
// Run:  ./build/examples/scaling_limit
#include <cstdio>

#include "compile/primitives.h"
#include "cont/ode.h"
#include "cont/scaling.h"
#include "fn/examples.h"

int main() {
  using namespace crnkit;
  using math::Rational;

  // 1. Scaling of floor(3x/2): estimates converge to gradient 3/2.
  const auto f1 = fn::examples::floor_3x_over_2();
  std::printf("f = floor(3x/2), f(floor(c))/c for growing c:\n");
  for (const double e : cont::scaling_estimates(f1, {1.0}, 4.0, 8)) {
    std::printf("  %.6f\n", e);
  }
  std::printf("analytic scaling: %s\n\n",
              math::to_string(cont::scaling_of(fn::examples::fig3a_quilt()))
                  .c_str());

  // 2. Scaling of the Fig 4a function: min of the part gradients
  //    (the Fig 4b surface).
  const cont::PiecewiseLinearMin fhat =
      cont::scaling_of(fn::examples::fig4a_eventual());
  std::printf("fig4a scaling on sample directions (fhat = min of linear):\n");
  for (const auto& z :
       std::vector<math::RatVec>{{Rational(1), Rational(1)},
                                 {Rational(2), Rational(1)},
                                 {Rational(1), Rational(3)},
                                 {Rational(5), Rational(0)}}) {
    const double numeric = cont::scaling_estimate(
        fn::examples::fig4a(),
        {z[0].to_double(), z[1].to_double()}, 2048.0);
    std::printf("  z = %-10s analytic = %-8s numeric(c=2048) = %.4f\n",
                math::to_string(z).c_str(), fhat(z).to_string().c_str(),
                numeric);
  }

  // 3. Continuous CRN: X1 + X2 -> Y drives y -> min(x1, x2) in mass-action.
  const crn::Crn min2 = compile::min_crn(2);
  cont::Concentrations c0(min2.species_count(), 0.0);
  c0[static_cast<std::size_t>(min2.inputs()[0])] = 1.8;
  c0[static_cast<std::size_t>(min2.inputs()[1])] = 0.7;
  cont::OdeOptions options;
  options.t_end = 60.0;
  const auto c = cont::integrate_mass_action(min2, c0, options);
  std::printf("\ncontinuous min CRN from (1.8, 0.7): y(t_end) = %.5f "
              "(target 0.7)\n",
              c[static_cast<std::size_t>(min2.output_or_throw())]);
  return 0;
}
