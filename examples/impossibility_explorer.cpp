// Impossibility, executably: Lemma 4.1 witness families for max and the
// Equation (2) counterexample, the analysis pipeline's diagnosis of
// Equation (2), and an explicit overproducing reaction sequence in the
// broken "2 * max" concatenation from Section 1.2.
//
// Run:  ./build/examples/impossibility_explorer
#include <cstdio>

#include "analysis/eventual_min.h"
#include "compile/primitives.h"
#include "crn/compose.h"
#include "fn/examples.h"
#include "verify/reachability.h"
#include "verify/witness.h"

int main() {
  using namespace crnkit;

  // 1. Lemma 4.1 witness search over small direction pairs.
  for (const auto& f :
       {fn::examples::max2(), fn::examples::eq2_counterexample(),
        fn::examples::min2(), fn::examples::fig4a()}) {
    const auto witness = verify::find_lemma41_witness(f);
    if (witness) {
      std::printf("%-6s NOT obliviously-computable; witness: %s\n",
                  f.name().c_str(), witness->to_string().c_str());
    } else {
      std::printf("%-6s no Lemma 4.1 witness found (consistent with being "
                  "obliviously-computable)\n",
                  f.name().c_str());
    }
  }

  // 2. The analysis pipeline diagnoses Equation (2) structurally.
  analysis::AnalysisInput eq2{fn::examples::eq2_counterexample(),
                              fn::examples::fig7_arrangement(), 1, 12};
  const auto result = analysis::extract_eventual_min(eq2);
  std::printf("\nSection 7 pipeline on eq. (2): %s\n",
              result.summary().c_str());

  // 3. Explicit overproduction in the 2*max concatenation.
  const crn::Crn broken = crn::concatenate(compile::fig1_max_crn(),
                                           compile::scale_crn(2), "2max");
  const auto graph =
      verify::explore(broken, broken.initial_configuration({2, 3}));
  const auto over = verify::find_output_exceeding(broken, graph, 6);
  if (over) {
    const auto path = verify::path_from_root(graph, *over);
    std::printf("\n2*max on (2,3): expected 6, but Y can reach %lld via %zu "
                "reactions:\n",
                static_cast<long long>(
                    broken.output_count(graph.config(*over))),
                path.size());
    for (const int r : path) {
      std::printf("  %s\n",
                  broken.reactions()[static_cast<std::size_t>(r)]
                      .to_string(broken.species_table())
                      .c_str());
    }
  }
  return 0;
}
