# Kill-and-resume end-to-end smoke (ctest checkpoint_resume_smoke).
#
# Interrupts a chain/compose-24 exploration mid-run and resumes it from
# the checkpoint, requiring the resumed verdict, configuration count, and
# edge count to be identical to an uninterrupted reference run. The
# interruption is a deadline expiry: a cancelled exploration writes the
# same level-boundary checkpoint a periodic snapshot leaves behind after
# kill -9 (crash_durability proves torn checkpoint writes never corrupt
# that file; this smoke proves the resume plumbing end to end).
#
# Invoked as:
#   cmake -DCRNC=<path-to-crnc> -DWORK_DIR=<dir> -P resume_smoke.cmake

set(CKPT "${WORK_DIR}/resume_smoke.ckpt")
file(REMOVE "${CKPT}")

# --stats puts per-point "edges" in the JSON; without it the edge-count
# comparison below would match nothing on both sides and pass vacuously.
set(POINT_ARGS verify chain/compose-24 --input 7 --expect 7 --force --stats)

# Reference: the uninterrupted run.
execute_process(
  COMMAND ${CRNC} ${POINT_ARGS} --json
  OUTPUT_VARIABLE REF_JSON
  RESULT_VARIABLE REF_RC)
if(NOT REF_RC EQUAL 0)
  message(FATAL_ERROR "reference verify failed (rc=${REF_RC}): ${REF_JSON}")
endif()

# Interrupted: a 300ms deadline cuts the exploration mid-run; the cancel
# path checkpoints before returning the typed deadline_exceeded verdict.
execute_process(
  COMMAND ${CRNC} ${POINT_ARGS} --deadline-ms 300 --checkpoint "${CKPT}"
          --json
  OUTPUT_VARIABLE CUT_JSON
  RESULT_VARIABLE CUT_RC)
string(FIND "${CUT_JSON}" "deadline_exceeded\": 1" CUT_AT)
if(CUT_AT EQUAL -1)
  message(FATAL_ERROR
    "interrupted run was not cut short by the deadline: ${CUT_JSON}")
endif()
if(NOT EXISTS "${CKPT}")
  message(FATAL_ERROR "interrupted run left no checkpoint at ${CKPT}")
endif()

# Resumed: pick the exploration back up from the checkpoint, no deadline.
execute_process(
  COMMAND ${CRNC} ${POINT_ARGS} --checkpoint "${CKPT}" --resume --json
  OUTPUT_VARIABLE RES_JSON
  RESULT_VARIABLE RES_RC)
if(NOT RES_RC EQUAL 0)
  message(FATAL_ERROR "resumed verify failed (rc=${RES_RC}): ${RES_JSON}")
endif()

# The resumed run must be indistinguishable from the reference run.
foreach(FIELD "\"status\": \"[a-z]+\"" "\"configs\": [0-9]+"
        "\"edges\": [0-9]+" "\"proved\": [0-9]+")
  string(REGEX MATCH "${FIELD}" REF_VALUE "${REF_JSON}")
  string(REGEX MATCH "${FIELD}" RES_VALUE "${RES_JSON}")
  if(REF_VALUE STREQUAL "")
    message(FATAL_ERROR
      "field ${FIELD} missing from the reference JSON — the comparison "
      "would be vacuous: ${REF_JSON}")
  endif()
  if(NOT REF_VALUE STREQUAL RES_VALUE)
    message(FATAL_ERROR
      "resume mismatch: reference '${REF_VALUE}' vs resumed '${RES_VALUE}'")
  endif()
  message(STATUS "resume agrees: ${RES_VALUE}")
endforeach()
string(FIND "${RES_JSON}" "\"status\": \"proved\"" PROVED_AT)
if(PROVED_AT EQUAL -1)
  message(FATAL_ERROR "resumed run did not prove the point: ${RES_JSON}")
endif()

file(REMOVE "${CKPT}")
message(STATUS "checkpoint_resume_smoke: PASS")
