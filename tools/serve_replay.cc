// serve_replay: replays a request mix against the crnc service twice —
// a cold pass and a warm pass over the same sequence — and reports p50/p99
// latency and throughput for each, plus the proof-cache counters. The mix
// is zipf-distributed over the scenario registry (popular networks
// dominate, the tail keeps the cache honest), weighted toward verify so
// the cached path is what is being measured.
//
// Modes:
//   serve_replay                        in-process Service (default)
//   serve_replay --connect HOST:PORT    line-JSON over TCP to a live
//                                       `crnc serve` (one connection per
//                                       pass; the daemon must be fresh for
//                                       the cold pass to be cold)
//   serve_replay --requests FILE        replay FILE (one JSON request per
//                                       line) instead of the generated mix
//
// Emits BENCH_serve.json (override with --out). --assert-warm-faster exits
// nonzero unless warm p50 < cold p50 — the CI regression gate for the
// cache. CRNKIT_BENCH_FAST=1 trims the generated mix for smoke runs.
//
// Observability hooks: --scrape polls the `metrics` op before and after
// the two passes and embeds the counter deltas in BENCH_serve.json (what
// did this workload actually cost, in requests/configs/cache traffic);
// --metrics-out FILE dumps the final Prometheus text exposition (the
// payload tools/metrics_check validates in CI).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "scenario/registry.h"
#include "svc/server.h"
#include "svc/service.h"
#include "util/hash.h"
#include "util/json_value.h"
#include "util/json_writer.h"

namespace {

using crnkit::util::splitmix64;

struct PassReport {
  std::size_t requests = 0;
  std::size_t errors = 0;
  std::size_t retries = 0;  ///< overloaded/reset retries (connect mode)
  double wall_seconds = 0;
  double requests_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

double percentile(std::vector<double> sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

/// Deterministic splitmix64 counter PRNG in [0, 1).
class Prng {
 public:
  explicit Prng(std::uint64_t seed) : state_(seed) {}
  double uniform() {
    state_ = splitmix64(state_ + 0x9e3779b97f4a7c15ULL);
    return static_cast<double>(state_ >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// The generated mix: zipf over the verifiable registry scenarios, ops
/// weighted verify 70% / show 20% / simulate 10% (simulate is never
/// cached, so it stays a small fraction of the measured traffic).
std::vector<std::string> generate_requests(std::size_t count,
                                           std::uint64_t seed) {
  std::vector<std::string> names;
  for (const crnkit::scenario::Scenario& s :
       crnkit::scenario::Registry::builtin().build_all()) {
    if (s.has_tag("large") || s.unverifiable()) continue;
    names.push_back(s.name);
  }
  if (names.empty()) throw std::runtime_error("no verifiable scenarios");

  std::vector<double> cumulative;
  double total = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    total += 1.0 / static_cast<double>(i + 1);
    cumulative.push_back(total);
  }

  Prng prng(seed);
  std::vector<std::string> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u = prng.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const std::string& name =
        names[static_cast<std::size_t>(it - cumulative.begin())];
    const double op = prng.uniform();
    if (op < 0.70) {
      requests.push_back("{\"op\": \"verify\", \"target\": \"" + name +
                         "\"}");
    } else if (op < 0.90) {
      requests.push_back("{\"op\": \"show\", \"target\": \"" + name + "\"}");
    } else {
      requests.push_back("{\"op\": \"simulate\", \"target\": \"" + name +
                         "\", \"trajectories\": 4, \"max_events\": 50000}");
    }
  }
  return requests;
}

/// Counter series from a `metrics` op response: {"series{labels}": value}.
std::map<std::string, std::int64_t> parse_counters(
    const std::string& response) {
  std::map<std::string, std::int64_t> out;
  const crnkit::util::JsonValue v = crnkit::util::JsonValue::parse(response);
  for (const auto& [key, value] :
       v.get("metrics").get("counters").members()) {
    out[key] = value.as_int();
  }
  return out;
}

std::vector<std::string> read_requests(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot read request file '" + path + "'");
  }
  std::vector<std::string> requests;
  std::string line;
  while (std::getline(file, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    requests.push_back(line);
  }
  return requests;
}

/// Line-JSON TCP client for --connect mode; one connection per pass.
class LineClient {
 public:
  LineClient(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd_);
      throw std::runtime_error("bad host '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      throw std::runtime_error("cannot connect to " + host + ":" +
                               std::to_string(port));
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  std::string roundtrip(const std::string& line) {
    const std::string out = line + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, 0);
      if (n <= 0) throw std::runtime_error("send failed");
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return response;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) throw std::runtime_error("connection closed mid-reply");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// LineClient with fault handling: typed retriable `overloaded` responses
/// back off (jittered exponential, seeded by the response's
/// retry_after_ms) and retry; a connection reset reconnects and retries.
/// Both draw from a per-request attempt budget — when it runs out the
/// last response (or the reset) is surfaced so the caller sees the
/// overload instead of an infinite retry loop.
class RetryingClient {
 public:
  RetryingClient(std::string host, int port, std::uint64_t seed)
      : host_(std::move(host)), port_(port), prng_(seed) {
    client_.emplace(host_, port_);
  }

  std::string roundtrip(const std::string& line) {
    int attempt = 0;
    for (;;) {
      try {
        if (!client_) client_.emplace(host_, port_);
        const std::string response = client_->roundtrip(line);
        const long retry_after_ms = retriable_after_ms(response);
        if (retry_after_ms < 0 || attempt >= kMaxAttempts) return response;
        ++attempt;
        ++retries_;
        backoff(attempt, retry_after_ms);
      } catch (const std::runtime_error&) {
        client_.reset();
        if (attempt >= kMaxAttempts) throw;
        ++attempt;
        ++retries_;
        backoff(attempt, 50);
      }
    }
  }

  [[nodiscard]] std::size_t retries() const { return retries_; }

 private:
  static constexpr int kMaxAttempts = 5;

  /// retry_after_ms of a typed retriable shed response, -1 otherwise.
  static long retriable_after_ms(const std::string& response) {
    if (response.find("\"overloaded\"") == std::string::npos) return -1;
    try {
      const crnkit::util::JsonValue v =
          crnkit::util::JsonValue::parse(response);
      if (v.get_string("error", "") != "overloaded" ||
          !v.get_bool("retriable", false)) {
        return -1;
      }
      return static_cast<long>(v.get_int("retry_after_ms", 50));
    } catch (const std::invalid_argument&) {
      return -1;
    }
  }

  void backoff(int attempt, long base_ms) {
    if (base_ms <= 0) base_ms = 50;
    const double jitter = 0.5 + 0.5 * prng_.uniform();  // half to full
    const double ms =
        static_cast<double>(base_ms) * static_cast<double>(1 << (attempt - 1)) *
        jitter;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }

  std::string host_;
  int port_;
  Prng prng_;
  std::optional<LineClient> client_;
  std::size_t retries_ = 0;
};

template <typename Dispatch>
PassReport run_pass(const std::vector<std::string>& requests,
                    Dispatch&& dispatch) {
  using Clock = std::chrono::steady_clock;
  PassReport report;
  std::vector<double> latencies_us;
  latencies_us.reserve(requests.size());
  std::vector<std::string> responses;
  responses.reserve(requests.size());

  const auto pass_start = Clock::now();
  for (const std::string& request : requests) {
    const auto start = Clock::now();
    responses.push_back(dispatch(request));
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
  }
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - pass_start).count();

  report.requests = requests.size();
  for (const std::string& response : responses) {
    try {
      if (crnkit::util::JsonValue::parse(response).has("error")) {
        ++report.errors;
      }
    } catch (const std::invalid_argument&) {
      ++report.errors;
    }
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  report.p50_us = percentile(latencies_us, 0.50);
  report.p99_us = percentile(latencies_us, 0.99);
  report.requests_per_sec =
      report.wall_seconds > 0
          ? static_cast<double>(report.requests) / report.wall_seconds
          : 0;
  return report;
}

void write_pass(crnkit::util::JsonWriter& w, const char* key,
                const PassReport& report) {
  w.key(key)
      .begin_object()
      .kv("requests", report.requests)
      .kv("errors", report.errors)
      .kv("retries", report.retries)
      .kv_fixed("wall_seconds", report.wall_seconds, 6)
      .kv_fixed("requests_per_sec", report.requests_per_sec, 2)
      .kv_fixed("p50_us", report.p50_us, 2)
      .kv_fixed("p99_us", report.p99_us, 2)
      .end_object();
}

int run(int argc, char** argv) {
  std::size_t count = std::getenv("CRNKIT_BENCH_FAST") ? 48 : 160;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_serve.json";
  std::optional<std::string> requests_path;
  std::optional<std::string> connect;
  std::optional<std::string> metrics_out;
  bool assert_warm_faster = false;
  bool scrape = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--count") {
      count = static_cast<std::size_t>(std::stoull(need_value("--count")));
    } else if (arg == "--seed") {
      seed = std::stoull(need_value("--seed"));
    } else if (arg == "--out") {
      out_path = need_value("--out");
    } else if (arg == "--requests") {
      requests_path = need_value("--requests");
    } else if (arg == "--connect") {
      connect = need_value("--connect");
    } else if (arg == "--assert-warm-faster") {
      assert_warm_faster = true;
    } else if (arg == "--scrape") {
      scrape = true;
    } else if (arg == "--metrics-out") {
      metrics_out = need_value("--metrics-out");
    } else {
      std::fprintf(stderr,
                   "usage: serve_replay [--count N] [--seed S] [--out FILE] "
                   "[--requests FILE] [--connect HOST:PORT] "
                   "[--assert-warm-faster] [--scrape] "
                   "[--metrics-out FILE]\n");
      return 2;
    }
  }

  const std::vector<std::string> requests =
      requests_path ? read_requests(*requests_path)
                    : generate_requests(count, seed);
  if (requests.empty()) {
    std::fprintf(stderr, "serve_replay: empty request list\n");
    return 2;
  }

  std::map<std::string, std::size_t> mix;
  for (const std::string& request : requests) {
    std::string op = "?";
    try {
      op = crnkit::util::JsonValue::parse(request).get_string("op", "?");
    } catch (const std::invalid_argument&) {
    }
    ++mix[op];
  }

  PassReport cold;
  PassReport warm;
  crnkit::svc::ProofCache::Stats cache;
  bool have_cache = false;
  std::map<std::string, std::int64_t> counters_before;
  std::map<std::string, std::int64_t> counters_after;
  std::string prometheus_text;
  if (connect) {
    const auto colon = connect->rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "serve_replay: --connect wants HOST:PORT\n");
      return 2;
    }
    const std::string host = connect->substr(0, colon);
    const int port = std::stoi(connect->substr(colon + 1));
    if (scrape) {
      LineClient client(host, port);
      counters_before =
          parse_counters(client.roundtrip("{\"op\": \"metrics\"}"));
    }
    {
      RetryingClient client(host, port, seed);
      cold = run_pass(requests, [&](const std::string& line) {
        return client.roundtrip(line);
      });
      cold.retries = client.retries();
    }
    {
      RetryingClient client(host, port, seed + 1);
      warm = run_pass(requests, [&](const std::string& line) {
        return client.roundtrip(line);
      });
      warm.retries = client.retries();
    }
    if (scrape || metrics_out) {
      LineClient client(host, port);
      if (scrape) {
        counters_after =
            parse_counters(client.roundtrip("{\"op\": \"metrics\"}"));
      }
      if (metrics_out) {
        prometheus_text =
            crnkit::util::JsonValue::parse(
                client.roundtrip(
                    "{\"op\": \"metrics\", \"format\": \"prometheus\"}"))
                .get("prometheus")
                .as_string();
      }
    }
  } else {
    crnkit::svc::Service service;
    const auto dispatch = [&](const std::string& line) {
      return crnkit::svc::Server::dispatch_line(service, line);
    };
    if (scrape) {
      counters_before = parse_counters(dispatch("{\"op\": \"metrics\"}"));
    }
    cold = run_pass(requests, dispatch);
    warm = run_pass(requests, dispatch);
    cache = service.proof_cache().stats();
    have_cache = true;
    if (scrape) {
      counters_after = parse_counters(dispatch("{\"op\": \"metrics\"}"));
    }
    if (metrics_out) {
      prometheus_text =
          crnkit::util::JsonValue::parse(
              dispatch("{\"op\": \"metrics\", \"format\": \"prometheus\"}"))
              .get("prometheus")
              .as_string();
    }
  }

  const double throughput_ratio =
      cold.requests_per_sec > 0
          ? warm.requests_per_sec / cold.requests_per_sec
          : 0;
  const double p50_speedup =
      warm.p50_us > 0 ? cold.p50_us / warm.p50_us : 0;

  crnkit::util::JsonWriter w;
  w.begin_object()
      .kv("schema_version", 1)
      .kv("bench", "serve_replay")
      .kv("mode", connect ? "connect" : "inprocess")
      .kv("seed", seed)
      .kv("requests", requests.size())
      .key("mix")
      .begin_object();
  for (const auto& [op, n] : mix) w.kv(op, n);
  w.end_object();
  write_pass(w, "cold", cold);
  write_pass(w, "warm", warm);
  w.kv_fixed("cached_throughput_ratio", throughput_ratio, 3)
      .kv_fixed("warm_p50_speedup", p50_speedup, 3);
  if (have_cache) {
    w.key("cache")
        .begin_object()
        .kv("hits", cache.hits)
        .kv("misses", cache.misses)
        .kv("insertions", cache.insertions)
        .kv("evictions", cache.evictions)
        .kv("entries", cache.entries)
        .kv("bytes", cache.bytes)
        .end_object();
  }
  if (scrape) {
    // What this workload cost, as counter deltas between the bracketing
    // `metrics` scrapes (zero-delta series are omitted).
    w.key("scrape").begin_object();
    w.kv("series_before", counters_before.size())
        .kv("series_after", counters_after.size());
    w.key("counter_deltas").begin_object();
    for (const auto& [key, value] : counters_after) {
      const auto it = counters_before.find(key);
      const std::int64_t delta =
          value - (it == counters_before.end() ? 0 : it->second);
      if (delta != 0) w.kv(key, delta);
    }
    w.end_object().end_object();
  }
  w.end_object();

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "serve_replay: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";

  if (metrics_out) {
    std::ofstream prom(*metrics_out, std::ios::trunc);
    if (!prom) {
      std::fprintf(stderr, "serve_replay: cannot write %s\n",
                   metrics_out->c_str());
      return 1;
    }
    prom << prometheus_text;
  }

  std::printf(
      "serve_replay: %zu requests (%zu errors cold, %zu warm)\n"
      "  cold: %8.1f req/s  p50 %9.1f us  p99 %9.1f us\n"
      "  warm: %8.1f req/s  p50 %9.1f us  p99 %9.1f us\n"
      "  cached throughput ratio %.2fx, warm p50 speedup %.2fx -> %s\n",
      requests.size(), cold.errors, warm.errors, cold.requests_per_sec,
      cold.p50_us, cold.p99_us, warm.requests_per_sec, warm.p50_us,
      warm.p99_us, throughput_ratio, p50_speedup, out_path.c_str());
  if (have_cache) {
    std::printf("  cache: %zu hits / %zu misses, %zu entries, %zu bytes\n",
                static_cast<std::size_t>(cache.hits),
                static_cast<std::size_t>(cache.misses), cache.entries,
                cache.bytes);
  }

  if (assert_warm_faster && !(warm.p50_us < cold.p50_us)) {
    std::fprintf(stderr,
                 "serve_replay: FAIL — warm p50 (%.1f us) is not below cold "
                 "p50 (%.1f us)\n",
                 warm.p50_us, cold.p50_us);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_replay: %s\n", e.what());
    return 1;
  }
}
