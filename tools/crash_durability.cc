// crash_durability: kill -9 the persistence paths mid-write and prove
// recovery. For each durable artifact — the proof-cache snapshot, the
// proof-cache journal, and the exploration checkpoint — the harness:
//
//   1. writes a known-good state A (no faults armed);
//   2. forks a child that arms a `<site>.crash=at:OFFSET` failpoint and
//      attempts to write state B — the failpoint raises SIGKILL once the
//      writer crosses that byte offset, so the child dies mid-write at a
//      deterministic position;
//   3. asserts the child actually died of SIGKILL, then reloads the
//      artifact in the parent: it must be either state A (crash before
//      the atomic rename / torn journal tail discarded) or a fully
//      consistent state B — never an error, never a torn file.
//
// Offsets sweep from inside the header to past the first payload chunk so
// crashes land in every region of each format. Exits 0 when every
// scenario recovers, 1 otherwise.
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "svc/proof_cache.h"
#include "util/deadline.h"
#include "util/fault_injector.h"
#include "verify/checkpoint.h"
#include "verify/reachability.h"

namespace {

using crnkit::svc::ProofCache;
using crnkit::svc::ProofKey;
using crnkit::svc::ProofVerdict;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  ok: %s\n", what.c_str());
  } else {
    std::fprintf(stderr, "  FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

std::string tmp_path(const std::string& stem) {
  const char* env = std::getenv("TMPDIR");
  return std::string(env != nullptr ? env : "/tmp") + "/" + stem + "." +
         std::to_string(::getpid());
}

/// Runs `body` in a forked child with `faults` armed and asserts the
/// child was killed by SIGKILL (the crash failpoint fired). Returns false
/// when the child survived or died differently.
template <typename Body>
bool run_crashing_child(const std::string& faults, Body&& body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    // Child: arm the failpoint, run the write. The SIGKILL inside the
    // write path is the expected exit; reaching _exit(0) means the
    // failpoint never fired.
    try {
      crnkit::util::FaultInjector::instance().configure(faults);
      body();
    } catch (...) {
    }
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

ProofVerdict make_verdict(std::size_t configs, bool complete) {
  ProofVerdict v;
  v.ok = true;
  v.complete = complete;
  v.budget = configs * 2;
  v.num_configs = configs;
  v.num_edges = configs * 3;
  return v;
}

ProofKey make_key(std::uint64_t crn_hash, std::int64_t x0) {
  ProofKey key;
  key.crn_hash = crn_hash;
  key.x = {x0, x0 + 1};
  key.expected = x0 * 2;
  return key;
}

/// Cache entries for state A (and extras for the child's state B).
void fill_cache(ProofCache& cache, std::size_t n, std::uint64_t tag) {
  for (std::size_t i = 0; i < n; ++i) {
    cache.insert(make_key(tag + i, static_cast<std::int64_t>(i)),
                 make_verdict(100 + i, /*complete=*/true));
  }
}

void cache_snapshot_scenario() {
  std::printf("scenario: proof-cache snapshot crash mid-write\n");
  const std::string path = tmp_path("crashdur_cache");
  ProofCache cache;
  fill_cache(cache, 8, 0x1000);
  cache.save(path);  // state A, clean

  for (const std::uint64_t offset : {1ull, 64ull, 600ull, 1800ull}) {
    const bool killed = run_crashing_child(
        "cache.save.crash=at:" + std::to_string(offset), [&] {
          ProofCache child_cache;
          fill_cache(child_cache, 16, 0x2000);  // state B, bigger
          child_cache.save(path);
        });
    check(killed, "cache.save crash at offset " + std::to_string(offset) +
                      " killed the child");
    // Recovery: the destination must still be state A, byte-consistent.
    try {
      ProofCache fresh;
      const std::size_t loaded = fresh.load(path);
      check(loaded == 8, "snapshot still loads state A (8 entries, got " +
                             std::to_string(loaded) + ")");
    } catch (const std::exception& e) {
      check(false, std::string("snapshot load threw: ") + e.what());
    }
  }

  // crash_before_rename: the full temp file is written and fsync'd but
  // the rename never happens — the destination must still be state A.
  const bool killed = run_crashing_child(
      "cache.save.crash_before_rename=always", [&] {
        ProofCache child_cache;
        fill_cache(child_cache, 16, 0x2000);
        child_cache.save(path);
      });
  check(killed, "cache.save crash_before_rename killed the child");
  try {
    ProofCache fresh;
    check(fresh.load(path) == 8, "snapshot untouched before the rename");
  } catch (const std::exception& e) {
    check(false, std::string("snapshot load threw: ") + e.what());
  }

  // A clean rewrite after all those crashes must fully replace it.
  ProofCache replacement;
  fill_cache(replacement, 16, 0x2000);
  replacement.save(path);
  ProofCache fresh;
  check(fresh.load(path) == 16, "clean save after crashes reaches state B");
  ::unlink(path.c_str());
}

void cache_journal_scenario() {
  std::printf("scenario: proof-cache journal crash mid-append\n");
  const std::string path = tmp_path("crashdur_journal");

  // State A: two journaled inserts, no faults.
  {
    ProofCache cache;
    cache.enable_journal(path);
    fill_cache(cache, 2, 0x3000);
  }
  {
    ProofCache fresh;
    check(fresh.replay_journal(path) == 2, "journal replays state A");
  }

  for (const std::uint64_t offset : {1ull, 40ull, 200ull}) {
    const bool killed = run_crashing_child(
        "cache.journal.crash=at:" + std::to_string(offset), [&] {
          ProofCache child_cache;
          child_cache.enable_journal(path);
          // Appends until the cumulative offset crosses the failpoint.
          fill_cache(child_cache, 64, 0x4000);
        });
    check(killed, "journal crash at offset " + std::to_string(offset) +
                      " killed the child");
    ProofCache fresh;
    std::size_t replayed = 0;
    try {
      replayed = fresh.replay_journal(path);
    } catch (const std::exception& e) {
      check(false, std::string("journal replay threw: ") + e.what());
      continue;
    }
    // Valid-prefix: at least state A, never a failure; the torn tail
    // (if the crash landed mid-line) is silently discarded.
    check(replayed >= 2, "journal keeps the valid prefix (replayed " +
                             std::to_string(replayed) + ")");
    // The journal must still accept appends after a torn tail, and the
    // new record must replay.
    ProofCache appender;
    appender.enable_journal(path);
    appender.insert(make_key(0x5000 + offset, 1), make_verdict(7, true));
    ProofCache fresh2;
    check(fresh2.replay_journal(path) >= replayed,
          "journal still appends and replays after a torn tail");
  }
  ::unlink(path.c_str());
}

void checkpoint_scenario() {
  std::printf("scenario: exploration checkpoint crash mid-save\n");
  const std::string path = tmp_path("crashdur_ckpt");
  const crnkit::scenario::Scenario scenario =
      crnkit::scenario::Registry::builtin().build("fig1/min");
  const crnkit::crn::Config initial =
      scenario.crn.initial_configuration(scenario.verify_points.front());

  // State A: a cancelled exploration checkpoints at its first level
  // boundary — a small but complete, checksummed checkpoint file.
  crnkit::util::CancelToken cancelled;
  cancelled.cancel();
  crnkit::verify::ExploreOptions options;
  options.max_configs = 10'000;
  options.threads = 1;
  options.cancel = &cancelled;
  options.checkpoint_path = path;
  (void)crnkit::verify::explore(scenario.crn, initial, options);

  crnkit::verify::ExploreCheckpoint state_a;
  std::string error;
  check(crnkit::verify::load_checkpoint(path, &state_a, &error),
        "state A checkpoint loads (" + error + ")");

  // Crash offsets scaled to the actual file: a fixed list risks offsets
  // past the end of a small checkpoint, where the failpoint never fires
  // and the child exits cleanly.
  std::uint64_t size = 0;
  {
    struct ::stat st {};
    if (::stat(path.c_str(), &st) == 0) {
      size = static_cast<std::uint64_t>(st.st_size);
    }
  }
  check(size > 16, "state A checkpoint is non-trivial (" +
                       std::to_string(size) + " bytes)");
  for (const std::uint64_t offset :
       {std::uint64_t{1}, size / 4, size / 2, size - 8}) {
    const bool killed = run_crashing_child(
        "checkpoint.save.crash=at:" + std::to_string(offset), [&] {
          crnkit::util::CancelToken token;
          token.cancel();
          crnkit::verify::ExploreOptions child_options;
          child_options.max_configs = 10'000;
          child_options.threads = 1;
          child_options.cancel = &token;
          child_options.checkpoint_path = path;
          (void)crnkit::verify::explore(scenario.crn, initial,
                                        child_options);
        });
    check(killed, "checkpoint crash at offset " + std::to_string(offset) +
                      " killed the child");
    crnkit::verify::ExploreCheckpoint recovered;
    error.clear();
    const bool loaded =
        crnkit::verify::load_checkpoint(path, &recovered, &error);
    check(loaded, "checkpoint still loads after the crash (" + error + ")");
    if (loaded) {
      check(recovered.pool.size() == state_a.pool.size() &&
                recovered.level_begin == state_a.level_begin &&
                recovered.level_end == state_a.level_end,
            "recovered checkpoint is bit-consistent with state A");
    }
  }
  ::unlink(path.c_str());
}

/// Removes a spill directory and any segment files a killed child left
/// behind (SpillPool cleans up after itself only when it gets to run its
/// destructor — SIGKILL mid-write is exactly the case where it doesn't).
void remove_spill_dir(const std::string& dir) {
  if (::DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

void spill_segment_scenario() {
  std::printf("scenario: spill segment crash mid-write\n");
  const std::string ckpt = tmp_path("crashdur_spill_ckpt");
  const std::string spill_dir = tmp_path("crashdur_spill_dir");
  const crnkit::scenario::Scenario scenario =
      crnkit::scenario::Registry::builtin().build("chain/compose-18");
  const crnkit::crn::Config initial =
      scenario.crn.initial_configuration({4});

  // Tiny pages + a tiny budget so even this small graph spills hard.
  const auto spill_options = [&] {
    crnkit::verify::ExploreOptions options;
    options.threads = 1;
    options.spill_dir = spill_dir;
    options.memory_budget_bytes = 4096;
    options.spill_page_bytes = 4096;
    return options;
  };

  // The reference: a clean spilled run, and the spill write volume that
  // scales the crash offsets (a fixed list could land past the last
  // segment write, where the failpoint never fires).
  const crnkit::verify::ReachabilityGraph want =
      crnkit::verify::explore(scenario.crn, initial, spill_options());
  check(want.complete && want.stats.spilled,
        "reference run completes spilled");
  check(want.stats.spill_segments_written > 8,
        "reference run spilled enough segments to aim at (" +
            std::to_string(want.stats.spill_segments_written) + ")");

  // Two axes of crash positions. `at:` offsets are per segment file
  // (each segment is its own writer), scaled to the segment size so the
  // kill lands in its header, payload, and checksum regions; the seeded
  // coin flips are deterministic per seed and land the kill inside a
  // *later* segment, after level checkpoints exist to resume from.
  // Segment size derived from the reference run itself (the payload is a
  // power-of-two row count, not the raw page-byte knob): 32-byte header
  // + payload + 8-byte checksum.
  const std::uint64_t seg = 32 +
                            want.stats.spill_bytes_written /
                                want.stats.spill_segments_written +
                            8;
  const std::vector<std::string> fault_specs = {
      "spill.write.crash=at:1",
      "spill.write.crash=at:" + std::to_string(seg / 4),
      "spill.write.crash=at:" + std::to_string(seg / 2),
      "spill.write.crash=at:" + std::to_string(seg - 8),
      "spill.write.crash=prob:0.02:1",
      "spill.write.crash=prob:0.02:2",
  };
  bool resumed_at_least_once = false;
  for (const std::string& spec : fault_specs) {
    const bool killed = run_crashing_child(spec, [&] {
          // Checkpoint at every level barrier, so the kill lands with a
          // durable prefix on disk for the parent to resume from.
          crnkit::verify::ExploreOptions options = spill_options();
          options.checkpoint_path = ckpt;
          options.checkpoint_every_secs = 0.0;
          (void)crnkit::verify::explore(scenario.crn, initial, options);
        });
    check(killed, "spill write crash (" + spec + ") killed the child");

    // Recovery: resume from whatever checkpoint survived (a kill during
    // the very first shed may precede the first save — then we start
    // over, which is the same contract: nothing durable was corrupted).
    crnkit::verify::ExploreCheckpoint recovered;
    std::string error;
    crnkit::verify::ExploreOptions options = spill_options();
    options.checkpoint_path = ckpt;
    options.checkpoint_every_secs = 0.0;
    if (crnkit::verify::load_checkpoint(ckpt, &recovered, &error)) {
      options.resume = true;
      resumed_at_least_once = true;
    }
    const crnkit::verify::ReachabilityGraph got =
        crnkit::verify::explore(scenario.crn, initial, options);
    check(got.complete, "resumed run completes");
    bool identical = got.size() == want.size() &&
                     got.succ == want.succ && got.succ_off == want.succ_off &&
                     got.parent == want.parent &&
                     got.parent_reaction == want.parent_reaction;
    for (std::size_t s = 0; identical && s < want.store.width(); ++s) {
      std::vector<crnkit::verify::ConfigStore::Count> got_col;
      std::vector<crnkit::verify::ConfigStore::Count> want_col;
      got.store.collect_column(s, got_col);
      want.store.collect_column(s, want_col);
      identical = got_col == want_col;
    }
    check(identical,
          "graph after crash + resume is bit-identical to the reference");
    ::unlink(ckpt.c_str());
  }
  check(resumed_at_least_once,
        "at least one crash left a resumable checkpoint behind");
  remove_spill_dir(spill_dir);
}

}  // namespace

int main() {
  cache_snapshot_scenario();
  cache_journal_scenario();
  checkpoint_scenario();
  spill_segment_scenario();
  if (g_failures > 0) {
    std::fprintf(stderr, "crash_durability: FAIL (%d checks failed)\n",
                 g_failures);
    return 1;
  }
  std::printf("crash_durability: PASS\n");
  return 0;
}
