// The crnc binary: thin argv wrapper over cli::run_crnc (which tests call
// directly with captured streams).
#include <iostream>
#include <string>
#include <vector>

#include "cli/crnc.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return crnkit::cli::run_crnc(args, std::cout, std::cerr);
}
