// bench_compare: the verifier's performance regression gate.
//
//   bench_compare <fresh.json> <baseline.json> [--threshold F]
//
// Both files are BENCH_*.json artifacts (bench/bench_table.h format: a
// "records" array of {name, events_per_sec, wall_seconds, events}). Every
// record name present in BOTH files is compared on events_per_sec; the
// *gated* set is the exploration-throughput records (names starting with
// "arena", "legacy", "proof", or "oo_core" — the configs/s numbers the
// verifier's perf trajectory is defined by — plus the composition
// pipeline's "circuit/" records from BENCH_composition.json, so the gate
// covers both tables). If any gated fresh record falls more
// than `threshold` (default 0.30, i.e. 30%) below its baseline the tool
// prints the offenders and exits 1. Other shared records (e.g. the
// job-submission latency microbenches, which measure condvar wakeups and
// swing far more than 30% on virtualized hosts) are diffed for
// information only. Records only one side has — fast-mode runs emit a
// subset; new workloads appear over time — are reported but never fail
// the gate, so the committed baseline and the bench can evolve
// independently.
//
// Exit codes: 0 = no regression, 1 = regression, 2 = usage/parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_parse.h"

namespace {

struct Record {
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
};

/// Extracts {name -> record} from a bench_table.h-format JSON file. The
/// format is machine-written and syntax-checked first, so a focused
/// scanner is enough: walk the "records" array and pull the three fixed
/// keys of each object.
bool load_records(const std::string& path,
                  std::map<std::string, Record>& out,
                  std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (!crnkit::util::JsonSyntaxChecker(text).valid()) {
    error = path + " is not valid JSON";
    return false;
  }

  const std::size_t records_at = text.find("\"records\"");
  if (records_at == std::string::npos) {
    error = path + " has no \"records\" array";
    return false;
  }
  std::size_t pos = text.find('[', records_at);
  if (pos == std::string::npos) {
    error = path + ": malformed records array";
    return false;
  }

  const auto find_string = [&](std::size_t from, const char* record_key,
                               std::size_t end, std::string& value) {
    const std::string needle = std::string("\"") + record_key + "\":";
    const std::size_t at = text.find(needle, from);
    if (at == std::string::npos || at >= end) return false;
    const std::size_t q1 = text.find('"', at + needle.size());
    if (q1 == std::string::npos) return false;
    const std::size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos) return false;
    value = text.substr(q1 + 1, q2 - q1 - 1);
    return true;
  };
  const auto find_number = [&](std::size_t from, const char* record_key,
                               std::size_t end, double& value) {
    const std::string needle = std::string("\"") + record_key + "\":";
    const std::size_t at = text.find(needle, from);
    if (at == std::string::npos || at >= end) return false;
    value = std::strtod(text.c_str() + at + needle.size(), nullptr);
    return true;
  };

  while (true) {
    const std::size_t obj = text.find('{', pos);
    const std::size_t close = text.find(']', pos);
    if (obj == std::string::npos || (close != std::string::npos &&
                                     close < obj)) {
      break;  // end of the records array
    }
    const std::size_t obj_end = text.find('}', obj);
    if (obj_end == std::string::npos) {
      error = path + ": unterminated record object";
      return false;
    }
    std::string name;
    Record r;
    if (!find_string(obj, "name", obj_end, name) ||
        !find_number(obj, "events_per_sec", obj_end, r.events_per_sec) ||
        !find_number(obj, "wall_seconds", obj_end, r.wall_seconds)) {
      error = path + ": record missing name/events_per_sec/wall_seconds";
      return false;
    }
    out[name] = r;
    pos = obj_end + 1;
  }
  if (out.empty()) {
    error = path + " has an empty records array";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
      if (threshold <= 0.0 || threshold >= 1.0) {
        std::fprintf(stderr,
                     "bench_compare: --threshold must be in (0, 1)\n");
        return 2;
      }
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <fresh.json> <baseline.json> "
                 "[--threshold F]\n");
    return 2;
  }

  std::map<std::string, Record> fresh;
  std::map<std::string, Record> baseline;
  std::string error;
  if (!load_records(paths[0], fresh, error) ||
      !load_records(paths[1], baseline, error)) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 2;
  }

  const auto gated = [](const std::string& name) {
    return name.rfind("arena", 0) == 0 || name.rfind("legacy", 0) == 0 ||
           name.rfind("proof", 0) == 0 || name.rfind("oo_core", 0) == 0 ||
           name.rfind("circuit/", 0) == 0;
  };
  int compared = 0;
  int only_one_side = 0;
  std::vector<std::string> regressions;
  for (const auto& [name, base] : baseline) {
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      ++only_one_side;
      continue;
    }
    if (base.events_per_sec <= 0.0) continue;  // nothing to regress from
    const bool gate = gated(name);
    if (gate) ++compared;
    const double ratio = it->second.events_per_sec / base.events_per_sec;
    const bool regressed = gate && ratio < 1.0 - threshold;
    std::printf("%-44s %12.0f -> %12.0f  (%+.1f%%)%s\n", name.c_str(),
                base.events_per_sec, it->second.events_per_sec,
                (ratio - 1.0) * 100.0,
                regressed ? " REGRESSION" : (gate ? "" : "  [not gated]"));
    if (regressed) {
      char line[160];
      std::snprintf(line, sizeof(line), "%s: %.0f -> %.0f (%.1f%% drop)",
                    name.c_str(), base.events_per_sec,
                    it->second.events_per_sec, (1.0 - ratio) * 100.0);
      regressions.emplace_back(line);
    }
  }
  for (const auto& [name, rec] : fresh) {
    if (baseline.find(name) == baseline.end()) ++only_one_side;
    (void)rec;
  }

  std::printf("\ngated %d records (%d present on one side only), "
              "threshold %.0f%%\n",
              compared, only_one_side, threshold * 100.0);
  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_compare: no overlapping gated records to compare\n");
    return 2;
  }
  if (!regressions.empty()) {
    std::fprintf(stderr, "bench_compare: %zu regression(s) beyond %.0f%%:\n",
                 regressions.size(), threshold * 100.0);
    for (const std::string& r : regressions) {
      std::fprintf(stderr, "  %s\n", r.c_str());
    }
    return 1;
  }
  std::printf("no regressions beyond %.0f%%\n", threshold * 100.0);
  return 0;
}
