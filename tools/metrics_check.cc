// metrics_check <file> [--min-series N]: validates a Prometheus text
// exposition (format 0.0.4) dump, the way json_check validates the
// BENCH_*.json artifacts. CI scrapes GET /metrics off a live `crnc serve`
// (and serve_replay --metrics-out) and runs this over the result, so a
// malformed sample line, an undeclared family, or an incoherent histogram
// fails the build instead of the scrape pipeline.
//
// Checks:
//  * every sample line parses as `name{labels} value` with a legal metric
//    name and a numeric value (+Inf/-Inf/NaN allowed);
//  * every sample belongs to a family declared by preceding # HELP and
//    # TYPE lines (histogram samples match their base family);
//  * histogram buckets are cumulative (non-decreasing in le order), end
//    in an +Inf bucket, and agree with the family's _count sample;
//  * --min-series N: at least N distinct series (a histogram counts once
//    per label set, like obs::Registry::series_count()).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool parse_value(const std::string& text, double* out) {
  if (text == "+Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (text == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  if (text == "NaN") {
    *out = NAN;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

struct Sample {
  std::string name;
  std::string labels;  ///< raw text inside {...}, "" when absent
  double value = 0;
};

/// Splits one sample line; returns false (with a message) on bad syntax.
bool parse_sample(const std::string& line, Sample* out, std::string* why) {
  std::size_t name_end = line.find_first_of("{ ");
  if (name_end == std::string::npos) {
    *why = "no value";
    return false;
  }
  out->name = line.substr(0, name_end);
  if (!valid_name(out->name)) {
    *why = "bad metric name '" + out->name + "'";
    return false;
  }
  std::size_t value_at = name_end;
  out->labels.clear();
  if (line[name_end] == '{') {
    // Labels may contain escaped quotes; scan to the closing brace
    // outside a quoted string.
    bool in_string = false;
    std::size_t i = name_end + 1;
    for (; i < line.size(); ++i) {
      const char c = line[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '}') {
        break;
      }
    }
    if (i >= line.size()) {
      *why = "unterminated label set";
      return false;
    }
    out->labels = line.substr(name_end + 1, i - name_end - 1);
    value_at = i + 1;
  }
  const std::size_t sp = line.find_first_not_of(' ', value_at);
  if (sp == std::string::npos || line[value_at] != ' ') {
    *why = "no value";
    return false;
  }
  const std::string value_text = line.substr(sp);
  if (!parse_value(value_text, &out->value)) {
    *why = "bad value '" + value_text + "'";
    return false;
  }
  return true;
}

/// The `le` label's value, and the label set with `le` removed (the
/// histogram series identity).
bool split_le(const std::string& labels, std::string* le,
              std::string* rest) {
  *le = "";
  rest->clear();
  std::size_t i = 0;
  bool found = false;
  while (i < labels.size()) {
    const std::size_t eq = labels.find('=', i);
    if (eq == std::string::npos || eq + 1 >= labels.size() ||
        labels[eq + 1] != '"') {
      return false;
    }
    std::size_t end = eq + 2;
    while (end < labels.size() && labels[end] != '"') {
      if (labels[end] == '\\') ++end;
      ++end;
    }
    if (end >= labels.size()) return false;
    const std::string key = labels.substr(i, eq - i);
    const std::string value = labels.substr(eq + 2, end - eq - 2);
    if (key == "le") {
      *le = value;
      found = true;
    } else {
      if (!rest->empty()) *rest += ",";
      *rest += key + "=\"" + value + "\"";
    }
    i = end + 1;
    if (i < labels.size() && labels[i] == ',') ++i;
  }
  return found;
}

int check_file(const std::string& path, std::size_t min_series) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "metrics_check: cannot read %s\n", path.c_str());
    return 1;
  }

  std::map<std::string, std::string> types;  ///< family -> TYPE
  std::set<std::string> helped;
  std::set<std::string> series;  ///< distinct (family, labels) series
  // Histogram bookkeeping per (family|labels-minus-le).
  struct HistState {
    double last_bucket = -1;
    bool saw_inf = false;
    double inf_value = 0;
    bool have_count = false;
    double count = 0;
  };
  std::map<std::string, HistState> hists;

  std::string line;
  std::size_t lineno = 0;
  std::size_t samples = 0;
  int bad = 0;
  const auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "metrics_check: %s:%zu: %s\n", path.c_str(), lineno,
                 why.c_str());
    ++bad;
  };

  while (std::getline(file, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, kind, family;
      comment >> hash >> kind >> family;
      if (kind == "HELP") {
        helped.insert(family);
      } else if (kind == "TYPE") {
        std::string type;
        comment >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail("unknown type '" + type + "' for family '" + family + "'");
        }
        if (types.count(family) != 0) {
          fail("family '" + family + "' declared twice");
        }
        types[family] = type;
      }
      continue;
    }

    Sample sample;
    std::string why;
    if (!parse_sample(line, &sample, &why)) {
      fail(why);
      continue;
    }
    ++samples;

    // Resolve the declared family: exact, or a histogram expansion.
    std::string family = sample.name;
    std::string suffix;
    if (types.count(family) == 0) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        if (family.size() > std::strlen(s) &&
            family.compare(family.size() - std::strlen(s), std::strlen(s),
                           s) == 0) {
          const std::string base =
              family.substr(0, family.size() - std::strlen(s));
          const auto it = types.find(base);
          if (it != types.end() && it->second == "histogram") {
            family = base;
            suffix = s;
            break;
          }
        }
      }
    }
    const auto type_it = types.find(family);
    if (type_it == types.end()) {
      fail("sample '" + sample.name + "' has no # TYPE declaration");
      continue;
    }
    if (helped.count(family) == 0) {
      fail("family '" + family + "' has no # HELP line");
    }

    if (type_it->second == "histogram") {
      std::string le, rest;
      if (suffix == "_bucket" && !split_le(sample.labels, &le, &rest)) {
        fail("bucket sample without an le label: " + line);
        continue;
      }
      const std::string key =
          family + "|" + (suffix == "_bucket" ? rest : sample.labels);
      HistState& h = hists[key];
      series.insert("hist:" + key);
      if (suffix == "_bucket") {
        if (sample.value + 1e-9 < h.last_bucket) {
          fail("histogram '" + family + "' buckets are not cumulative");
        }
        h.last_bucket = sample.value;
        if (le == "+Inf") {
          h.saw_inf = true;
          h.inf_value = sample.value;
        }
      } else if (suffix == "_count") {
        h.have_count = true;
        h.count = sample.value;
      } else if (suffix != "_sum") {
        fail("bare sample '" + sample.name + "' in histogram family");
      }
    } else {
      const std::string key =
          sample.name +
          (sample.labels.empty() ? "" : "{" + sample.labels + "}");
      if (!series.insert(key).second) {
        fail("duplicate series '" + key + "'");
      }
      if (type_it->second == "counter" && sample.value < 0) {
        fail("counter '" + key + "' is negative");
      }
    }
  }

  for (const auto& [key, h] : hists) {
    const std::string family = key.substr(0, key.find('|'));
    if (!h.saw_inf) {
      fail("histogram '" + family + "' has no +Inf bucket");
    }
    if (!h.have_count) {
      fail("histogram '" + family + "' has no _count sample");
    } else if (h.saw_inf && h.inf_value != h.count) {
      fail("histogram '" + family + "' +Inf bucket disagrees with _count");
    }
  }

  if (series.size() < min_series) {
    std::fprintf(stderr,
                 "metrics_check: %s has %zu series, expected >= %zu\n",
                 path.c_str(), series.size(), min_series);
    ++bad;
  }
  if (bad == 0) {
    std::printf("metrics_check: %s OK (%zu samples, %zu series)\n",
                path.c_str(), samples, series.size());
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t min_series = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-series") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "metrics_check: --min-series needs a value\n");
        return 2;
      }
      min_series = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr,
                                                          10));
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: metrics_check <file>... [--min-series N]\n");
    return 2;
  }
  int bad = 0;
  for (const std::string& file : files) bad += check_file(file, min_series);
  return bad == 0 ? 0 : 1;
}
