// json_check <file>...: exits 0 iff every file is exactly one valid JSON
// value. CTest and CI run it over the BENCH_*.json artifacts so a
// malformed token (NaN, Infinity, truncation) fails the build instead of
// the downstream consumer.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json_parse.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_check <file>...\n");
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      std::fprintf(stderr, "json_check: cannot read %s\n", argv[i]);
      ++bad;
      continue;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    const std::string text = contents.str();
    if (!crnkit::util::JsonSyntaxChecker(text).valid()) {
      std::fprintf(stderr, "json_check: %s is not valid JSON\n", argv[i]);
      ++bad;
      continue;
    }
    std::printf("json_check: %s OK (%zu bytes)\n", argv[i], text.size());
  }
  return bad == 0 ? 0 : 1;
}
