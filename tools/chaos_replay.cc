// chaos_replay: the fault-injection acceptance harness for the serving
// stack. It arms the util::FaultInjector failpoints (accept drops, read
// and write resets, dispatch delays, journal short-writes), drives >= 1k
// mixed line-JSON requests through real sockets with a reconnecting
// backoff client, and asserts the robustness contract:
//
//   * zero crashes — the daemon survives every armed fault class;
//   * every shed or refused request is TYPED retriable (the line-JSON
//     `overloaded` shape with retry_after_ms), never a silent drop with
//     the connection left readable;
//   * the proof cache snapshot + journal written under fire load back
//     cleanly into a fresh cache (no corrupt cache loads);
//   * tail latency stays bounded (p99 under --p99-budget-ms).
//
// Modes:
//   chaos_replay                       self-hosting: in-process Server on
//                                      a loopback port, tight admission
//                                      limits, faults armed in-process
//   chaos_replay --connect HOST:PORT   hammer a live `crnc serve`
//                                      (arm its faults via --faults)
//
// Exits 0 when every assertion holds, 1 otherwise.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "svc/proof_cache.h"
#include "svc/server.h"
#include "svc/service.h"
#include "util/fault_injector.h"
#include "util/hash.h"
#include "util/json_value.h"

namespace {

using crnkit::util::JsonValue;
using crnkit::util::splitmix64;

/// The default armed fault classes for the self-hosting mode: every
/// server-side failpoint plus journal short-writes, at rates high enough
/// that 1k requests hit each class many times.
constexpr const char* kDefaultFaults =
    "server.accept=prob:0.02,server.read.reset=prob:0.03,"
    "server.write.reset=prob:0.03,server.dispatch.delay=prob:0.05:arg=5,"
    "cache.journal.short_write=prob:0.05:arg=16";

struct Tally {
  std::size_t completed = 0;    ///< requests that got a full JSON reply
  std::size_t sheds = 0;        ///< typed retriable overloaded replies
  std::size_t untyped = 0;      ///< refusals NOT carrying the typed shape
  std::size_t resets = 0;       ///< connection resets (reconnect + retry)
  std::size_t retries = 0;
  std::size_t hard_failures = 0;  ///< retry budget exhausted
  std::vector<double> latencies_ms;
};

class Prng {
 public:
  explicit Prng(std::uint64_t seed) : state_(seed) {}
  double uniform() {
    state_ = splitmix64(state_ + 0x9e3779b97f4a7c15ULL);
    return static_cast<double>(state_ >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Blocking line client; throws std::runtime_error on any socket fault so
/// the chaos loop can count the reset and reconnect.
class LineClient {
 public:
  LineClient(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      ::close(fd_);
      throw std::runtime_error("cannot connect");
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  std::string roundtrip(const std::string& line) {
    const std::string out = line + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) throw std::runtime_error("send failed");
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return response;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) throw std::runtime_error("connection closed mid-reply");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// The mixed request stream: mostly cheap cached verifies, with shows,
/// pings, and small simulates mixed in — the shapes a real client sends.
/// In --spill mode a quarter of the stream is an over-budget verify that
/// runs out-of-core, so the armed spill failpoints have traffic to hit
/// (the first one explores and spills; the rest coalesce or hit cache).
std::string pick_request(Prng& prng, bool spill) {
  const double u = prng.uniform();
  if (spill && u < 0.25) {
    return R"({"op": "verify", "target": "chain/compose-18", "input": "6"})";
  }
  if (u < 0.45) return R"({"op": "verify", "target": "fig1/min"})";
  if (u < 0.65) return R"({"op": "verify", "target": "fig1/twice"})";
  if (u < 0.80) return R"({"op": "show", "target": "fig1/min"})";
  if (u < 0.90) return R"({"op": "ping"})";
  return R"({"op": "simulate", "target": "fig1/twice", "trajectories": 2,)"
         R"( "max_events": 20000})";
}

/// One request with reconnect-on-reset and backoff-on-overload. Updates
/// the tally; returns when the request completed, was typed-shed past the
/// retry budget, or hard-failed.
void drive_one(const std::string& host, int port, const std::string& request,
               std::optional<LineClient>& client, Prng& prng, Tally& tally,
               int max_attempts) {
  const auto t0 = std::chrono::steady_clock::now();
  // Resets get their own budget: a long exploration can legitimately eat
  // the whole shed budget as backpressure (tolerated by design), and one
  // unlucky injected reset on top must not masquerade as a hard failure.
  int reset_attempts = 0;
  for (int attempt = 0;; ++attempt) {
    try {
      if (!client) client.emplace(host, port);
      const std::string response = client->roundtrip(request);
      const JsonValue v = JsonValue::parse(response);
      if (!v.get_string("error", "").empty()) {
        // Any refusal (`overloaded` backpressure, `spill_io` disk
        // trouble, ...) must carry the typed retriable shape; the error
        // name only picks the backoff, the contract is the same.
        ++tally.sheds;
        if (!v.get_bool("retriable", false) ||
            v.get_int("retry_after_ms", 0) <= 0) {
          ++tally.untyped;
          return;  // contract violation — recorded, no point retrying
        }
        if (attempt >= max_attempts) return;  // budget spent on backpressure
        ++tally.retries;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            static_cast<double>(v.get_int("retry_after_ms", 10)) *
            (0.5 + 0.5 * prng.uniform())));
        continue;
      }
      ++tally.completed;
      tally.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
      return;
    } catch (const std::exception&) {
      // Socket fault (armed accept drop / read reset / write reset, or a
      // torn reply): reconnect and retry.
      client.reset();
      ++tally.resets;
      if (++reset_attempts > max_attempts) {
        ++tally.hard_failures;
        return;
      }
      ++tally.retries;
      // Linear backoff: consecutive resets mean the accept loop is
      // starved, so waiting longer each time is what actually clears it.
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          5.0 * static_cast<double>(reset_attempts) *
          (0.5 + 0.5 * prng.uniform())));
    }
  }
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  return sorted[static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1))];
}

int run(int argc, char** argv) {
  std::size_t count = 1200;
  std::size_t threads = 4;
  std::uint64_t seed = 1;
  double p99_budget_ms = 30'000;
  // Per-request retry budget. 8 is ample on a native build; sanitizer CI
  // (TSan slows the server ~10x, so injected resets pile onto loaded
  // accept queues much longer) raises it — the contract checked there is
  // "no races, no crashes, typed sheds", not the retry SLO.
  int max_attempts = 8;
  bool spill = false;
  std::optional<std::string> connect;
  std::string faults = kDefaultFaults;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--count") {
      count = std::stoull(need_value("--count"));
    } else if (arg == "--threads") {
      threads = std::max<std::size_t>(1, std::stoull(need_value("--threads")));
    } else if (arg == "--seed") {
      seed = std::stoull(need_value("--seed"));
    } else if (arg == "--connect") {
      connect = need_value("--connect");
    } else if (arg == "--faults") {
      faults = need_value("--faults");
    } else if (arg == "--p99-budget-ms") {
      p99_budget_ms = std::stod(need_value("--p99-budget-ms"));
    } else if (arg == "--max-attempts") {
      max_attempts = std::max(1, std::stoi(need_value("--max-attempts")));
    } else if (arg == "--spill") {
      spill = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_replay [--count N] [--threads N] [--seed S] "
                   "[--connect HOST:PORT] [--faults SPEC] [--spill] "
                   "[--p99-budget-ms N] [--max-attempts N]\n");
      return 2;
    }
  }
  if (spill) {
    // Out-of-core chaos: arm the spill-segment failpoints on top of the
    // serving faults. Writes die with short writes (disk full) and reads
    // fail outright; both must surface as the typed retriable `spill_io`
    // shed, never a crash or a wrong verdict.
    faults += ",spill.write.short_write=prob:0.05:arg=64,"
              "spill.read=prob:0.02";
  }

  std::string host = "127.0.0.1";
  int port = 0;
  std::optional<crnkit::svc::Service> service;
  std::optional<crnkit::svc::Server> server;
  std::string journal_path;
  std::string snapshot_path;
  std::string spill_dir;
  if (connect) {
    const auto colon = connect->rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "chaos_replay: --connect wants HOST:PORT\n");
      return 2;
    }
    host = connect->substr(0, colon);
    port = std::stoi(connect->substr(colon + 1));
  } else {
    // Self-hosting: tight admission limits so the inflight and connection
    // gates actually fire under the single-threaded driver, journal armed
    // so its failpoints have something to hit.
    const std::string dir = [] {
      const char* env = std::getenv("TMPDIR");
      return std::string(env != nullptr ? env : "/tmp");
    }();
    journal_path =
        dir + "/chaos_cache_journal." + std::to_string(::getpid());
    snapshot_path =
        dir + "/chaos_cache_snapshot." + std::to_string(::getpid());
    crnkit::util::FaultInjector::instance().configure(faults);
    crnkit::svc::Service::Options service_options;
    service_options.default_deadline_ms = 10'000;
    if (spill) {
      // A 4 MiB budget the compose-18 point (~10 MiB arena) must
      // overflow: the ladder sends it out-of-core instead of degrading.
      service_options.memory_budget_bytes = std::size_t{4} << 20;
      spill_dir = dir + "/chaos_spill." + std::to_string(::getpid());
      service_options.spill_dir = spill_dir;
    }
    service.emplace(service_options);
    service->proof_cache().enable_journal(journal_path);
    crnkit::svc::Server::Options server_options;
    server_options.port = 0;  // ephemeral
    server_options.max_connections = 32;
    server_options.max_inflight = 2;
    // The retry hint must roughly match how long the gate stays busy: a
    // spilled exploration holds a worker for ~100 ms+, so a 5 ms hint
    // would burn every client's whole retry budget inside one window.
    server_options.retry_after_ms = spill ? 50 : 5;
    server.emplace(*service, server_options);
    server->start();
    port = server->port();
  }

  // Concurrent drivers so the inflight gate actually sheds (self-host
  // mode caps it at 2); each worker gets its own connection, PRNG
  // stream, and tally, merged afterwards.
  std::vector<Tally> tallies(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Prng prng(seed + w * 0x51ed2701ULL);
      Tally& tally = tallies[w];
      std::optional<LineClient> client;
      const std::size_t quota = count / threads + (w < count % threads);
      for (std::size_t i = 0; i < quota; ++i) {
        // Fresh connections now and then so the accept failpoint and the
        // connection gate see steady traffic.
        if (i % 16 == 0) client.reset();
        drive_one(host, port, pick_request(prng, spill), client, prng, tally,
                  max_attempts);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  Tally tally;
  for (const Tally& t : tallies) {
    tally.completed += t.completed;
    tally.sheds += t.sheds;
    tally.untyped += t.untyped;
    tally.resets += t.resets;
    tally.retries += t.retries;
    tally.hard_failures += t.hard_failures;
    tally.latencies_ms.insert(tally.latencies_ms.end(),
                              t.latencies_ms.begin(), t.latencies_ms.end());
  }

  bool corrupt_cache = false;
  std::size_t replayed = 0;
  if (server) {
    server->stop();
    // The durability check: what the cache persisted under fire must load
    // cleanly into a fresh instance. Disarm faults first — this is the
    // recovery path, not the chaos path.
    crnkit::util::FaultInjector::instance().reset();
    try {
      service->proof_cache().save(snapshot_path);
      crnkit::svc::ProofCache fresh;
      fresh.load(snapshot_path);
      replayed = fresh.replay_journal(journal_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos_replay: corrupt cache: %s\n", e.what());
      corrupt_cache = true;
    }
    ::unlink(journal_path.c_str());
    ::unlink(snapshot_path.c_str());
    // SpillPool unlinks its own segments; just drop the directory.
    if (!spill_dir.empty()) ::rmdir(spill_dir.c_str());
  }

  std::sort(tally.latencies_ms.begin(), tally.latencies_ms.end());
  const double p50 = percentile(tally.latencies_ms, 0.50);
  const double p99 = percentile(tally.latencies_ms, 0.99);

  const auto fault_stats = crnkit::util::FaultInjector::instance().stats();
  std::printf("chaos_replay: %zu requests -> %zu completed, %zu shed, "
              "%zu resets, %zu retries, %zu hard failures\n",
              count, tally.completed, tally.sheds, tally.resets,
              tally.retries, tally.hard_failures);
  std::printf("  latency: p50 %.1f ms, p99 %.1f ms (budget %.0f ms)\n", p50,
              p99, p99_budget_ms);
  std::printf("  journal replay after the run: %zu entries\n", replayed);
  for (const auto& s : fault_stats) {
    std::printf("  fault %-28s hits=%llu fired=%llu\n", s.site.c_str(),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.fired));
  }

  bool ok = true;
  if (tally.completed == 0) {
    std::fprintf(stderr, "chaos_replay: FAIL — nothing completed\n");
    ok = false;
  }
  if (tally.untyped > 0) {
    std::fprintf(stderr,
                 "chaos_replay: FAIL — %zu refusals were not typed "
                 "retriable overloaded responses\n",
                 tally.untyped);
    ok = false;
  }
  if (tally.hard_failures > 0) {
    std::fprintf(stderr,
                 "chaos_replay: FAIL — %zu requests exhausted the retry "
                 "budget\n",
                 tally.hard_failures);
    ok = false;
  }
  if (corrupt_cache) {
    std::fprintf(stderr,
                 "chaos_replay: FAIL — cache persisted under faults did "
                 "not load back\n");
    ok = false;
  }
  if (p99 > p99_budget_ms) {
    std::fprintf(stderr,
                 "chaos_replay: FAIL — p99 %.1f ms above the %.0f ms "
                 "budget\n",
                 p99, p99_budget_ms);
    ok = false;
  }
  std::printf("chaos_replay: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos_replay: %s\n", e.what());
    return 1;
  }
}
