// E8 / Figure 8: the two worked arrangements — (a,b) 2D with three
// hyperplanes realizing exactly five regions, (c,d) 3D with two parallel
// pairs realizing nine eventual regions — with recession-cone dimensions,
// determined/under-determined classification, and the nested neighbor
// chains of Fig 8d.
#include "bench_table.h"
#include "fn/examples.h"
#include "geom/arrangement.h"
#include "geom/strips.h"

namespace {

using namespace crnkit;
using math::Int;

void classify(const geom::Arrangement& arr, Int grid,
              const std::string& title) {
  const auto regions = arr.enumerate_regions(grid);
  std::vector<std::vector<std::string>> rows;
  for (const auto& realized : regions) {
    const geom::Region& r = realized.region;
    // Count determined neighbors.
    int neighbors = 0;
    for (const auto& other : regions) {
      if (other.region == r) continue;
      if (other.region.is_determined() && geom::cone_subset(r,
                                                            other.region)) {
        ++neighbors;
      }
    }
    rows.push_back({r.key(), bench::fmt(static_cast<long long>(
                                 r.cone_dimension())),
                    r.is_determined() ? "determined" : "under-det.",
                    r.is_eventual() ? "eventual" : "finite",
                    bench::fmt(static_cast<long long>(neighbors)),
                    bench::fmt(static_cast<long long>(
                        realized.sample_points.size()))});
  }
  bench::print_table(title,
                     {"signs", "cone dim", "class", "eventual",
                      "det. nbrs", "grid pts"},
                     rows, 12);
}

void print_artifacts() {
  classify(fn::examples::fig8a_arrangement(), 14,
           "Fig 8a/8b: 2D arrangement, 3 hyperplanes, 5 regions");
  classify(fn::examples::fig8c_arrangement(), 10,
           "Fig 8c/8d: 3D arrangement, 2 parallel pairs, 9 regions");

  // The Fig 8d nesting: recc(5) in recc(6) in recc(3).
  const auto arr = fn::examples::fig8c_arrangement();
  const geom::Region center = arr.region_of({5, 5, 5});
  const geom::Region side = arr.region_of({9, 5, 5});
  const geom::Region corner = arr.region_of({9, 5, 1});
  std::printf("\nFig 8d chain: recc(center) subset recc(side): %s; "
              "recc(side) subset recc(corner): %s\n",
              geom::cone_subset(center, side) ? "yes" : "no",
              geom::cone_subset(side, corner) ? "yes" : "no");

  // Strip census of the Fig 8a band region.
  const geom::Region band =
      fn::examples::fig8a_arrangement().region_of({7, 5});
  const auto strips = geom::decompose_strips(band, 14);
  std::printf("Fig 8a band region splits into %zu strips "
              "(x1 - x2 = 1, 2, 3)\n",
              strips.size());
}

void BM_ConeDimension2D(benchmark::State& state) {
  const auto arr = fn::examples::fig8a_arrangement();
  const geom::Region r = arr.region_of({7, 5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.cone_dimension());
  }
}
BENCHMARK(BM_ConeDimension2D);

void BM_ConeDimension3D(benchmark::State& state) {
  const auto arr = fn::examples::fig8c_arrangement();
  const geom::Region r = arr.region_of({5, 5, 5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.cone_dimension());
  }
}
BENCHMARK(BM_ConeDimension3D);

void BM_EnumerateRegions3D(benchmark::State& state) {
  const auto arr = fn::examples::fig8c_arrangement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.enumerate_regions(state.range(0)).size());
  }
}
BENCHMARK(BM_EnumerateRegions3D)->Arg(6)->Arg(10)->Arg(14);

void BM_ConeSubset3D(benchmark::State& state) {
  const auto arr = fn::examples::fig8c_arrangement();
  const geom::Region center = arr.region_of({5, 5, 5});
  const geom::Region corner = arr.region_of({9, 5, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::cone_subset(center, corner));
  }
}
BENCHMARK(BM_ConeSubset3D);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
