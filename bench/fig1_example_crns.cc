// E1 / Figure 1: the example CRNs for 2x, min, and max.
//
// Regenerates: the computed values of all three CRNs across inputs
// (verified by the exhaustive checker), plus the transient-overshoot
// statistics for max that motivate output-obliviousness (Section 1.2).
// Timings: SSA throughput for each CRN.
#include "bench_table.h"
#include "compile/primitives.h"
#include "crn/checks.h"
#include "fn/examples.h"
#include "sim/gillespie.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using math::Int;

void print_artifacts() {
  const crn::Crn twice = compile::scale_crn(2);
  const crn::Crn min2 = compile::min_crn(2);
  const crn::Crn max2 = compile::fig1_max_crn();

  std::vector<std::vector<std::string>> rows;
  for (const auto& x : std::vector<fn::Point>{
           {0, 0}, {1, 0}, {2, 3}, {3, 2}, {4, 4}, {5, 2}, {6, 6}}) {
    const Int mn = std::min(x[0], x[1]);
    const Int mx = std::max(x[0], x[1]);
    const bool min_ok = verify::check_stable_computation(min2, x, mn).ok;
    const bool max_ok = verify::check_stable_computation(max2, x, mx).ok;
    const bool twice_ok =
        verify::check_stable_computation(twice, {x[0]}, 2 * x[0]).ok;
    rows.push_back({"(" + std::to_string(x[0]) + "," + std::to_string(x[1]) +
                        ")",
                    bench::fmt(2 * x[0]), twice_ok ? "proved" : "FAIL",
                    bench::fmt(mn), min_ok ? "proved" : "FAIL",
                    bench::fmt(mx), max_ok ? "proved" : "FAIL"});
  }
  bench::print_table(
      "Fig 1: stable computation of the three example CRNs",
      {"x", "2*x1", "check", "min", "check", "max", "check"}, rows, 10);

  // Overshoot: max's Y transiently exceeds the answer before K + Y -> 0
  // cleans up. Track the peak Y over SSA runs.
  std::vector<std::vector<std::string>> overshoot;
  for (const auto& x : std::vector<fn::Point>{{5, 5}, {10, 10}, {20, 20}}) {
    Int peak = 0;
    sim::Rng rng(99);
    sim::GillespieOptions options;
    const auto y = static_cast<std::size_t>(max2.output_or_throw());
    options.observer = [&](double, const crn::Config& c) {
      peak = std::max(peak, c[y]);
    };
    const auto run =
        sim::simulate_direct(max2, max2.initial_configuration(x), rng,
                             options);
    overshoot.push_back({"(" + std::to_string(x[0]) + "," +
                             std::to_string(x[1]) + ")",
                         bench::fmt(std::max(x[0], x[1])), bench::fmt(peak),
                         bench::fmt(max2.output_count(run.final_config))});
  }
  bench::print_table(
      "Fig 1 (max): transient output overshoot under SSA (why max is not "
      "output-oblivious)",
      {"x", "max(x)", "peak Y", "final Y"}, overshoot, 10);

  std::printf("\noutput-oblivious: 2x=%d min=%d max=%d\n",
              crn::is_output_oblivious(twice),
              crn::is_output_oblivious(min2),
              crn::is_output_oblivious(max2));
}

void BM_SsaMin(benchmark::State& state) {
  const crn::Crn min2 = compile::min_crn(2);
  const sim::CompiledNetwork compiled(min2);
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(42);
    const auto run = sim::simulate_direct(
        compiled, min2.initial_configuration({n, n}), rng);
    benchmark::DoNotOptimize(run.events);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SsaMin)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SsaMax(benchmark::State& state) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const sim::CompiledNetwork compiled(max2);
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(42);
    const auto run = sim::simulate_direct(
        compiled, max2.initial_configuration({n, n}), rng);
    benchmark::DoNotOptimize(run.events);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SsaMax)->Arg(100)->Arg(1000);

void BM_ExhaustiveCheckMin(benchmark::State& state) {
  const crn::Crn min2 = compile::min_crn(2);
  for (auto _ : state) {
    const auto result =
        verify::check_stable_computation(min2, {state.range(0),
                                                state.range(0)},
                                         state.range(0));
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_ExhaustiveCheckMin)->Arg(10)->Arg(50);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
